"""Benchmark T5: cluster failure probability (Inequality (1))."""

from conftest import run_once

from repro.harness.experiments import t05_failure_probability


def test_t05_failure_probability(benchmark, show):
    table = run_once(benchmark, t05_failure_probability, quick=True)
    show(table)
    assert all(table.column("ordered"))
