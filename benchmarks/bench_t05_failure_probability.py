"""Benchmark T5: cluster failure probability (Inequality (1))."""

from conftest import run_registry


def test_t05_failure_probability(benchmark, show):
    table = run_registry(benchmark, "t05")
    show(table)
    assert all(table.column("ordered"))
