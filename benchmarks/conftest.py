"""Shared helpers for the benchmark suite.

Each benchmark regenerates one experiment table (T1-T12, see DESIGN.md)
and prints it, so ``pytest benchmarks/ --benchmark-only`` reproduces
every "table and figure" of the paper in one go.  Timings use
``benchmark.pedantic`` with a single iteration: the experiments are
deterministic simulations, so repetition would only measure the
interpreter's warmth.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def show(capsys):
    """Print a harness table outside pytest's capture."""

    def _show(table) -> None:
        with capsys.disabled():
            print()
            print(table.format())

    return _show


def run_once(benchmark, fn, **kwargs):
    """Benchmark one experiment function with a single timed run."""
    return benchmark.pedantic(fn, kwargs=kwargs, rounds=1, iterations=1)
