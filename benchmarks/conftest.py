"""Shared helpers for the benchmark suite.

Each benchmark regenerates one experiment table (T1-T18, see DESIGN.md)
through the experiment registry and prints it, so
``pytest benchmarks/ --benchmark-only`` reproduces every "table and
figure" of the paper in one go.  Timings use ``benchmark.pedantic``
with a single iteration: the experiments are deterministic
simulations, so repetition would only measure the interpreter's
warmth.

Every experiment runs through
:func:`~repro.harness.registry.run_experiment`, fanning its scenario
grid across a worker pool sized by :func:`sweep_processes`; per-cell
results are bit-identical for any worker count, so the printed tables
do not depend on the pool size.
"""

from __future__ import annotations

import os

import pytest


def sweep_processes() -> int:
    """Worker pool size for the benchmarks.

    ``REPRO_BENCH_PROCESSES`` overrides, then the library-wide
    ``REPRO_SWEEP_PROCESSES``; the stock default caps at 4 workers and
    degrades to serial on single-CPU machines (where a pool can only
    lose).
    """
    from repro.harness.sweep import default_processes

    return default_processes(
        os.environ.get("REPRO_BENCH_PROCESSES") or None,
        fallback=min(4, os.cpu_count() or 1))


@pytest.fixture
def show(capsys):
    """Print a harness table outside pytest's capture."""

    def _show(table) -> None:
        with capsys.disabled():
            print()
            print(table.format())

    return _show


def run_registry(benchmark, experiment_id: str, **kwargs):
    """Benchmark one registered experiment with a single timed run."""
    from repro.harness.registry import run_experiment

    kwargs.setdefault("quick", True)
    kwargs.setdefault("processes", sweep_processes())
    return benchmark.pedantic(run_experiment, args=(experiment_id,),
                              kwargs=kwargs, rounds=1, iterations=1)
