"""Benchmark T2: intra-cluster skew vs cluster size (Corollary 3.2)."""

from conftest import run_registry


def test_t02_intra_cluster_skew(benchmark, show):
    table = run_registry(benchmark, "t02")
    show(table)
    assert all(table.column("holds"))
    # Pulse diameters stay below the steady-state error E.
    for pulse, cap_e in zip(table.column("max ||p(r)||"),
                            table.column("E")):
        assert pulse <= cap_e
