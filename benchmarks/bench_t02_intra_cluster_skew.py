"""Benchmark T2: intra-cluster skew vs cluster size (Corollary 3.2)."""

from conftest import run_once

from repro.harness.experiments import t02_intra_cluster_skew


def test_t02_intra_cluster_skew(benchmark, show):
    table = run_once(benchmark, t02_intra_cluster_skew, quick=True)
    show(table)
    assert all(table.column("holds"))
    # Pulse diameters stay below the steady-state error E.
    for pulse, cap_e in zip(table.column("max ||p(r)||"),
                            table.column("E")):
        assert pulse <= cap_e
