"""End-to-end smoke check for ``python -m repro serve``.

Boots the real server in a subprocess (fresh temp cache, a free
port), then drives the serving layer's two contracts over actual
HTTP:

1. **Byte identity** — the t01 quick job's ``format=json`` result is
   byte-identical to direct ``run_experiment("t01")`` output.
2. **Cache completeness** — resubmitting the identical job finishes
   with ``executed_cells == 0``: every cell came from the
   content-addressed result store.

Run it as ``make smoke-serve`` (CI does).  Exit 0 on success.
"""

import json
import os
import socket
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.harness.registry import run_experiment  # noqa: E402

EXPERIMENT = "t01"
BOOT_TIMEOUT = 30.0
JOB_TIMEOUT = 120.0


def free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def request(base: str, path: str, payload: dict | None = None) -> bytes:
    req = urllib.request.Request(
        base + path,
        data=None if payload is None
        else json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"})
    with urllib.request.urlopen(req, timeout=30) as response:
        return response.read()


def wait_for_boot(base: str) -> None:
    deadline = time.monotonic() + BOOT_TIMEOUT
    while time.monotonic() < deadline:
        try:
            body = json.loads(request(base, "/health"))
            if body.get("status") == "ok":
                return
        except (urllib.error.URLError, ConnectionError, OSError):
            time.sleep(0.2)
    raise RuntimeError(f"server did not come up within {BOOT_TIMEOUT}s")


def run_job(base: str) -> dict:
    """Submit the experiment, poll to a terminal state, return the
    final snapshot."""
    snapshot = json.loads(request(
        base, "/jobs", {"experiment": EXPERIMENT, "quick": True}))
    job_id = snapshot["id"]
    deadline = time.monotonic() + JOB_TIMEOUT
    while time.monotonic() < deadline:
        snapshot = json.loads(request(base, f"/jobs/{job_id}"))
        if snapshot["state"] in ("done", "failed", "cancelled"):
            break
        time.sleep(0.2)
    if snapshot["state"] != "done":
        raise RuntimeError(f"job ended {snapshot['state']!r}: "
                           f"{snapshot.get('error')}")
    return snapshot


def main() -> int:
    port = free_port()
    base = f"http://127.0.0.1:{port}"
    direct = run_experiment(EXPERIMENT, quick=True).to_json() \
        .encode("utf-8")
    with tempfile.TemporaryDirectory(prefix="repro-smoke-") as cache:
        server = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port",
             str(port), "--cache-dir", cache],
            env={**os.environ,
                 "PYTHONPATH": os.pathsep.join(
                     ["src", os.environ.get("PYTHONPATH", "")])
                 .rstrip(os.pathsep)})
        try:
            wait_for_boot(base)

            cold = run_job(base)
            served = request(base,
                             f"/jobs/{cold['id']}/result?format=json")
            if served != direct:
                print("FAIL: served result differs from direct "
                      "run_experiment output", file=sys.stderr)
                return 1
            executed = cold["progress"]["executed_cells"]
            print(f"[smoke-serve] cold run: {executed} cells "
                  f"executed, result byte-identical to direct run")

            warm = run_job(base)
            progress = warm["progress"]
            if progress["executed_cells"] != 0:
                print(f"FAIL: resubmission executed "
                      f"{progress['executed_cells']} cells (expected "
                      f"0 — all from cache)", file=sys.stderr)
                return 1
            served = request(base,
                             f"/jobs/{warm['id']}/result?format=json")
            if served != direct:
                print("FAIL: cached result differs from direct "
                      "run_experiment output", file=sys.stderr)
                return 1
            print(f"[smoke-serve] resubmission: 0 executed / "
                  f"{progress['cached_cells']} cached, byte-identical "
                  f"again — ok")
            return 0
        finally:
            server.terminate()
            try:
                server.wait(timeout=10)
            except subprocess.TimeoutExpired:  # pragma: no cover
                server.kill()


if __name__ == "__main__":
    sys.exit(main())
