"""Record substrate throughput numbers to ``BENCH_kernel.json``.

Run from the repo root::

    PYTHONPATH=src python benchmarks/record_baseline.py [--force]

Appends one entry per invocation (keyed by git revision when
available) so the perf trajectory of the kernel and the system hot
path is tracked PR over PR.  When the latest recorded entry came from
a multi-core machine, recording from a 1-CPU container is refused
(``--force`` overrides): a single-core entry at the head of the
history would silently become the comparison baseline for
``bench-quick --check`` and misrepresent the trajectory.  The measurements are the shared
microbenchmarks of :mod:`repro.harness.microbench`: event dispatch,
repeating-event dispatch, alarm inversion under rate-change storms,
full system rounds, and the sweep grid (serial vs pool, with the
bit-identical check).

Hardware context (CPU count) is recorded with every entry: the sweep
speedup is meaningless without it — a single-CPU container can never
show a pool win.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_kernel.json"


def git_revision() -> str | None:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"], cwd=REPO_ROOT,
            capture_output=True, text=True, timeout=10)
    except (OSError, subprocess.SubprocessError):
        return None
    return out.stdout.strip() or None


def _latest_cpu_count(history: list[dict]) -> int | None:
    for entry in reversed(history):
        count = entry.get("cpu_count")
        if count is not None:
            return count
    return None


def _load_history() -> list[dict]:
    if not OUTPUT.exists():
        return []
    try:
        return json.loads(OUTPUT.read_text())
    except json.JSONDecodeError:
        print(f"warning: {OUTPUT} was unreadable; starting fresh",
              file=sys.stderr)
        return []


def main(argv: list[str] | None = None) -> int:
    force = "--force" in (sys.argv[1:] if argv is None else argv)
    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.harness.microbench import microbench_table, run_all_micro

    history = _load_history()
    cpu_count = os.cpu_count()
    if cpu_count is not None and cpu_count <= 1:
        recorded = _latest_cpu_count(history)
        if recorded is not None and recorded > 1 and not force:
            print(
                f"error: the latest BENCH_kernel.json entry was "
                f"recorded on {recorded} CPUs; refusing to append a "
                f"1-CPU entry on top of it (it would become the "
                f"bench-quick comparison baseline).  Re-record on "
                f"comparable hardware, or pass --force to record "
                f"anyway.", file=sys.stderr)
            return 1
        # Non-fatal: the entry is still recorded (the cpu_count stamp
        # lets readers discount it), but warn loudly so single-core
        # container numbers don't silently pollute the trajectory.
        print(
            "warning: recording on a 1-CPU machine — the sweep pool "
            "cannot win here, so parallel speedups in this entry are "
            "not meaningful; prefer re-recording on multi-core "
            "hardware (entry is stamped with cpu_count for readers)",
            file=sys.stderr)

    results = run_all_micro(quick=True)
    entry = {
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "git_revision": git_revision(),
        "python": platform.python_version(),
        "cpu_count": cpu_count,
        "results": {r["name"]: r for r in results},
    }

    history.append(entry)
    OUTPUT.write_text(json.dumps(history, indent=2) + "\n")

    print(microbench_table(results).format())
    print(f"\nrecorded entry {len(history)} to {OUTPUT}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
