"""Benchmark T3: attack gallery; fault-intolerant GCS fails."""

from conftest import run_once, sweep_processes

from repro.harness.experiments import t03_attack_gallery


def test_t03_attack_gallery(benchmark, show):
    table = run_once(benchmark, t03_attack_gallery, quick=True,
                     processes=sweep_processes())
    show(table)
    for row in table.rows:
        system, _attack, _intra, _local, holds, trend = row
        if system == "FTGCS":
            assert holds
            assert trend == "bounded"
        else:
            assert trend == "GROWS"
