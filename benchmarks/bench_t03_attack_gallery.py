"""Benchmark T3: attack gallery; fault-intolerant GCS fails."""

from conftest import run_registry


def test_t03_attack_gallery(benchmark, show):
    table = run_registry(benchmark, "t03")
    show(table)
    for row in table.rows:
        system, _attack, _intra, _local, holds, trend = row
        if system == "FTGCS":
            assert holds
            assert trend == "bounded"
        else:
            assert trend == "GROWS"
