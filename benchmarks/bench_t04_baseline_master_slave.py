"""Benchmark T4: master-slave skew-wave compression vs FTGCS."""

from conftest import run_registry


def test_t04_master_slave_compression(benchmark, show):
    table = run_registry(benchmark, "t04")
    show(table)
    for row in table.rows:
        _d, injected, ms_interior, ft_interior, cap, ratio = row
        # Master-slave pushes (nearly) the full injected skew through
        # interior edges; FTGCS keeps them within the gradient cap.
        assert ms_interior > 0.5 * injected
        assert ft_interior <= cap
        assert ms_interior > 2 * ft_interior
