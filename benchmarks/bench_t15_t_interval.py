"""Benchmark T15: T-interval connectivity vs measured local skew."""

from conftest import run_registry


def test_t15_t_interval(benchmark, show):
    table = run_registry(benchmark, "t15")
    show(table)
    t_values = table.column("T")
    assert 1 in t_values and max(t_values) > 1
    # Skews stay bounded against the worst-case rotating backbone.
    assert all(value >= 0.0 for value in table.column("local skew"))
    assert all(value < 10.0 for value in table.column("local skew"))
    # First-contact machinery actually engaged: every row brought
    # estimators up from dormant (the initial spanning tree leaves
    # some cluster edges down at time zero).
    assert all(count > 0 for count in table.column("bring-ups"))
