"""Benchmark T1: local skew vs diameter (Theorem 1.1)."""

from conftest import run_registry


def test_t01_local_skew_vs_diameter(benchmark, show):
    table = run_registry(benchmark, "t01")
    show(table)
    assert all(table.column("holds"))
    # The bound grows with D (logarithmically via the level count).
    bounds = table.column("cluster bound")
    assert bounds == sorted(bounds)
