"""Benchmark T7: the amortization-stretch ablation (Section 1)."""

from conftest import run_registry


def test_t07_ablation_c1(benchmark, show):
    table = run_registry(benchmark, "t07")
    show(table)
    outcomes = table.column("fast outruns slow")
    # Naive (small) c1 destroys the fast/slow gap; the paper's
    # c1 = Theta(1/rho) restores it.
    assert outcomes[0] is False
    assert outcomes[-1] is True
