"""Benchmark T18: adversarial resilience under the unified layer."""

import pytest

from conftest import run_registry


def test_t18_resilience(benchmark, show):
    pytest.importorskip("numpy")
    table = run_registry(benchmark, "t18")
    show(table)
    protocols = set(table.column("protocol"))
    assert protocols == {"ftgcs", "gcs_single", "srikanth_toueg"}
    # The fault-free reference rows carry zero extra skew by
    # construction, one per protocol.
    baselines = [row for row in table.rows if row[1] == "none"]
    assert len(baselines) == 3
    assert all(row[6] == 0.0 for row in baselines)
    # Both engines appear: the same .adversarial(...) spelling runs on
    # the vectorized struct-of-arrays engine and the event kernel.
    assert set(table.column("engine")) == {"vectorized", "event"}
    # The deadband-protected protocols stay inside the absorption
    # envelope on every adversarial row.  (gcs_single is the
    # fault-INtolerant baseline; its rows are allowed to escape.)
    protected = [row for row in table.rows
                 if row[1] != "none" and row[0] != "gcs_single"]
    assert protected and all(row[8] is True for row in protected)
    # Adaptive search dominates every static pattern at equal budget
    # on the ftgcs vectorized challenge cells.
    ft_amp = max(row[2] for row in table.rows if row[0] == "ftgcs")
    ft = {row[1]: row[6] for row in table.rows
          if row[0] == "ftgcs" and row[3] == "vectorized"
          and row[2] == ft_amp}
    static = [ft[name] for name in ("silent", "equivocate",
                                    "fast_clock")]
    assert max(ft["greedy"], ft["random_restart"]) >= max(static)
    # The scale cell reports a measured, positive rounds/s.
    timed = [row for row in table.rows if row[9] != "-"]
    assert len(timed) == 1 and timed[0][9] > 0.0
    assert timed[0][4] >= 10_000
