"""Microbenchmarks of the simulation substrate itself.

These are classic pytest-benchmark measurements (many iterations): the
event loop, logical-clock alarm inversion, and a small end-to-end
system round, so substrate regressions show up independently of the
experiment suite.
"""

import pytest

from repro.clocks import ConstantRate, HardwareClock, LogicalClock
from repro.core.params import Parameters
from repro.core.system import FtgcsSystem
from repro.harness.microbench import _delivery_flood
from repro.sim import Simulator
from repro.topology import ClusterGraph


def test_event_throughput(benchmark):
    """Schedule-and-run 10k self-chaining events."""

    def run():
        sim = Simulator()
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < 10_000:
                sim.call_in(1.0, tick)

        sim.call_at(0.0, tick)
        sim.run_until_idle()
        return count[0]

    assert benchmark(run) == 10_000


def test_alarm_inversion_with_rate_changes(benchmark):
    """Alarms surviving 1k rate changes reschedule in O(log n)."""

    def run():
        sim = Simulator()
        hw = HardwareClock(sim, ConstantRate(1.0), rho=0.01)
        clock = LogicalClock(sim, hw, phi=0.01, mu=0.001)
        fired = []
        for i in range(100):
            clock.at_value(2000.0 + i, fired.append, i)
        for i in range(1_000):
            sim.call_at(float(i), clock.set_delta, 1.0 + (i % 2) * 0.5)
        sim.run(until=3000.0)
        return len(fired)

    assert benchmark(run) == 100


def test_delivery_batching_throughput_d64(benchmark):
    """The batched delivery fast path on a delivery-bound D=64 flood.

    The same workload through the legacy per-message-event path is
    ``test_delivery_legacy_throughput_d64`` below; the batched run
    must deliver the identical message stream (same count, same
    handler order) with fewer kernel events.
    """
    delivered, kernel_events = benchmark(_delivery_flood, True, 64, 6)
    assert delivered == 15_732
    assert kernel_events < delivered  # one wake-up per batch


def test_delivery_legacy_throughput_d64(benchmark):
    """Reference: the unbatched per-message event stream at D=64."""
    delivered, kernel_events = benchmark(_delivery_flood, False, 64, 6)
    assert delivered == 15_732
    assert kernel_events == delivered  # one kernel event per message


def test_system_round_throughput(benchmark):
    """One full round of a 12-node, 3-cluster system."""
    params = Parameters.practical(rho=1e-4, d=1.0, u=0.1, f=1)

    def run():
        system = FtgcsSystem.build(ClusterGraph.line(3), params, seed=1)
        result = system.run_rounds(1)
        return result.rounds_completed

    assert benchmark(run) >= 1


def test_adversary_overhead(benchmark):
    """The adversary layer must not slow the no-adversary hot path.

    Times the bare vectorized GCS cell and asserts its headline skews
    still match the pre-adversary-layer constants bit-for-bit; the
    static/adaptive slowdown ratios ride along in the report (see
    ``repro.harness.microbench.bench_adversary_overhead``).
    """
    pytest.importorskip("numpy")
    from repro.harness.microbench import bench_adversary_overhead

    result = benchmark.pedantic(bench_adversary_overhead,
                                kwargs={"repeats": 1}, rounds=1,
                                iterations=1)
    assert result["baseline_unchanged"] is True
    # A static adversary's per-round act is O(slots) masked writes —
    # same order as the round itself; generous cap to stay hardware-
    # agnostic.
    assert result["static_ratio"] < 3.0
