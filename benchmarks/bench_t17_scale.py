"""Benchmark T17: vectorized-engine skew agreement and scale."""

import pytest

from conftest import run_registry


def test_t17_scale(benchmark, show):
    pytest.importorskip("numpy")
    table = run_registry(benchmark, "t17")
    show(table)
    # Three small line diameters on both engines, plus the two big
    # caterpillar cells only the vectorized engine can touch.
    assert len(table.rows) == 8
    assert set(table.column("engine")) == {"event", "vectorized"}
    # Every vectorized small-D row agrees with its event twin within
    # one trigger-level width.
    small_vec = [row for row in table.rows
                 if row[0] == "line" and row[3] == "vectorized"]
    assert small_vec and all(row[8] is True for row in small_vec)
    # The D=256 caterpillar runs 1e5+ nodes at a measured, positive
    # round throughput.
    big = [row for row in table.rows if row[1] == 256]
    assert len(big) == 1
    assert big[0][2] >= 100_000
    assert big[0][7] > 0.0
