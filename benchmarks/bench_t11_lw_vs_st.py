"""Benchmark T11: Lynch-Welch vs Srikanth-Toueg cliques (Appendix A)."""

from conftest import run_registry


def test_t11_lw_vs_st(benchmark, show):
    table = run_registry(benchmark, "t11")
    show(table)
    lw = table.column("LW steady skew")
    st = table.column("ST steady skew")
    # Lynch-Welch (the paper's choice) wins at every uncertainty level,
    # and both measured skews shrink with U.
    for lw_skew, st_skew in zip(lw, st):
        assert lw_skew <= st_skew
    assert lw == sorted(lw, reverse=True)
