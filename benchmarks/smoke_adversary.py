"""The adversary-layer smoke check (``make smoke-adversary``).

Runs the quick T18 resilience sweep (static and adaptive adversaries
through the unified :mod:`repro.faults.adversary` layer, both engines,
absorption-envelope column) plus the three adversary cells of the
cross-engine equivalence matrix.  Prints both reports and exits
nonzero if any envelope is violated, the adaptive models fail to
dominate the static patterns, or the engines disagree on an adversary
cell.  Takes a few seconds; CI runs it on every push.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))


def main() -> int:
    try:
        import numpy  # noqa: F401
    except ImportError:
        print("smoke-adversary: numpy unavailable; the vectorized "
              "adversary path cannot run here — skipping (not a "
              "failure)", file=sys.stderr)
        return 0

    from repro.engine_vec.equivalence import quick_cells, run_equivalence
    from repro.harness.registry import run_experiment

    failures: list[str] = []
    started = time.perf_counter()

    table = run_experiment("t18", quick=True)
    print(table.format())
    protected = [row for row in table.rows
                 if row[1] != "none" and row[0] != "gcs_single"]
    broken = [row for row in protected if row[8] is not True]
    if broken:
        failures.append(
            f"{len(broken)} deadband-protected row(s) escaped the "
            f"absorption envelope: "
            + ", ".join(f"{r[0]}/{r[1]}@{r[2]}" for r in broken))
    ft_amp = max(row[2] for row in table.rows if row[0] == "ftgcs")
    ft = {row[1]: row[6] for row in table.rows
          if row[0] == "ftgcs" and row[3] == "vectorized"
          and row[2] == ft_amp}
    static = max(ft[name] for name in ("silent", "equivocate",
                                       "fast_clock"))
    adaptive = max(ft["greedy"], ft["random_restart"])
    if adaptive < static:
        failures.append(
            f"adaptive search ({adaptive:.4g}) below the best static "
            f"pattern ({static:.4g}) at equal budget")

    adversary_cells = [cell for cell in quick_cells()
                       if "adv" in cell.name]
    report = run_equivalence(cells=adversary_cells)
    print(report.summary())
    if not report.passed:
        failures.append("the engines disagree on an adversary "
                        "equivalence cell")

    elapsed = time.perf_counter() - started
    print(f"[smoke-adversary finished in {elapsed:.1f}s]")
    if failures:
        for line in failures:
            print(f"smoke-adversary: FAILED — {line}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
