"""The vectorized-engine smoke check (``make smoke-vec``).

Runs the full cross-engine equivalence matrix
(:func:`repro.engine_vec.equivalence.run_equivalence`): every
(protocol, topology, seed) quick cell executes on both the event and
the vectorized engine and must agree — bit-equal on exact cells,
within the documented per-cell tolerance otherwise, inside the
analytic envelope for the ftgcs round skeleton.  Prints the per-cell
report and exits nonzero on any disagreement.  Takes about a second;
CI runs it on every push.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))


def main() -> int:
    try:
        import numpy  # noqa: F401
    except ImportError:
        print("smoke-vec: numpy unavailable; vectorized engine "
              "cannot run here — skipping (not a failure)",
              file=sys.stderr)
        return 0

    from repro.engine_vec.equivalence import run_equivalence

    started = time.perf_counter()
    report = run_equivalence()
    elapsed = time.perf_counter() - started
    print(report.summary())
    print(f"[smoke-vec finished in {elapsed:.1f}s]")
    if not report.passed:
        print("smoke-vec: FAILED — the engines disagree on the cells "
              "marked above", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
