"""Benchmark T9: global skew bound and the Theorem C.3 max-rule."""

import math

from conftest import run_registry


def test_t09_global_skew(benchmark, show):
    table = run_registry(benchmark, "t09")
    show(table)
    recovery = {}
    for row in table.rows:
        scenario, _d, policy, value, bound, holds = row
        if scenario == "random init":
            assert holds
            assert value <= bound
        else:
            recovery[policy] = value
    # The max-rule recovers; slow-default freezes below the trigger
    # thresholds and never does.
    assert math.isfinite(recovery["max_rule"])
    assert recovery["max_rule"] < recovery["slow_default"]
