"""Benchmark T14: Gradient-TRIX-style parameter grid (mu x diameter)."""

from conftest import run_registry


def test_t14_parameter_grid(benchmark, show):
    table = run_registry(benchmark, "t14")
    show(table)
    # kappa grows with mu; the steady local skew tracks it.
    kappas = table.column("kappa")
    locals_ = table.column("steady local")
    assert all(k > 0 for k in kappas)
    assert all(s > 0 for s in locals_)
    # kappa-normalized skew stays bounded across the grid (the
    # Gradient-TRIX design-space property the claim states).
    ratios = table.column("local/kappa")
    assert max(ratios) < 4.0
