"""Benchmark T6: unanimous cluster rates and errors (Lemma 3.6)."""

from conftest import run_registry


def test_t06_unanimous_rates(benchmark, show):
    table = run_registry(benchmark, "t06")
    show(table)
    assert all(table.column("holds"))
    assert {"fast", "slow"} == set(table.column("mode"))
