"""Benchmark T6: unanimous cluster rates and errors (Lemma 3.6)."""

from conftest import run_once

from repro.harness.experiments import t06_unanimous_rates


def test_t06_unanimous_rates(benchmark, show):
    table = run_once(benchmark, t06_unanimous_rates, quick=True)
    show(table)
    assert all(table.column("holds"))
    assert {"fast", "slow"} == set(table.column("mode"))
