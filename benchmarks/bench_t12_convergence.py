"""Benchmark T12: convergence from loose initialization (Prop. B.14)."""

from conftest import run_once, sweep_processes

from repro.harness.experiments import t12_convergence


def test_t12_convergence(benchmark, show):
    table = run_once(benchmark, t12_convergence, quick=True,
                     processes=sweep_processes())
    show(table)
    assert all(table.column("within"))
    predicted = table.column("predicted e(r)")
    assert predicted == sorted(predicted, reverse=True)
