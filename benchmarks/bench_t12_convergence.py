"""Benchmark T12: convergence from loose initialization (Prop. B.14)."""

from conftest import run_registry


def test_t12_convergence(benchmark, show):
    table = run_registry(benchmark, "t12")
    show(table)
    assert all(table.column("within"))
    predicted = table.column("predicted e(r)")
    assert predicted == sorted(predicted, reverse=True)
