"""Benchmark T16: robustness under message loss and node churn."""

from conftest import run_registry


def test_t16_robustness(benchmark, show):
    table = run_registry(benchmark, "t16")
    show(table)
    protocols = table.column("protocol")
    assert set(protocols) == {"ftgcs", "gcs_single", "master_slave"}
    # The fault-free corner is clean: no losses, crashes, or rejoins.
    corner = [row for row in table.rows
              if row[1] == 0.0 and row[2] == 0.0]
    assert len(corner) == 3
    assert all(row[5] == 0 and row[7] == 0 for row in corner)
    # Fault injection actually engaged everywhere else: lossy cells
    # lose messages, churny cells crash (and rejoin) nodes.
    lossy = [row for row in table.rows if row[1] > 0.0]
    churny = [row for row in table.rows if row[2] > 0.0]
    assert lossy and all(row[5] > 0 for row in lossy)
    assert churny and sum(row[7] for row in churny) > 0
    assert churny and sum(row[8] for row in churny) > 0
    # Skews stay finite — degradation is graceful, not divergent.
    assert all(0.0 <= value < 50.0
               for value in table.column("steady local skew"))
