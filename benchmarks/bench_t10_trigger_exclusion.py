"""Benchmark T10: trigger exclusion and faithfulness (Lemmas 4.5/4.8)."""

from conftest import run_once

from repro.harness.experiments import t10_trigger_exclusion


def test_t10_trigger_exclusion(benchmark, show):
    table = run_once(benchmark, t10_trigger_exclusion, quick=True)
    show(table)
    assert all(v == 0 for v in table.column("violations"))
