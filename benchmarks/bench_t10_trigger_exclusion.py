"""Benchmark T10: trigger exclusion and faithfulness (Lemmas 4.5/4.8)."""

from conftest import run_registry


def test_t10_trigger_exclusion(benchmark, show):
    table = run_registry(benchmark, "t10")
    show(table)
    assert all(v == 0 for v in table.column("violations"))
