"""Benchmark T8: augmentation overhead accounting (Theorem 1.1)."""

from conftest import run_registry


def test_t08_overheads(benchmark, show):
    table = run_registry(benchmark, "t08")
    show(table)
    for row in table.rows:
        _graph, f, k, _nodes, node_factor, _edges, edge_factor = row
        assert k == 3 * f + 1
        assert node_factor == k
        # Edge factor is Theta(k^2) = Theta(f^2) for f >= 1.
        if f >= 1:
            assert k * k / 2 <= edge_factor <= 2 * k * k
