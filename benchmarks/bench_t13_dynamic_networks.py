"""Benchmark T13: dynamic networks — skew vs edge churn (Kuhn et al.)."""

from conftest import run_registry


def test_t13_dynamic_networks(benchmark, show):
    table = run_registry(benchmark, "t13")
    show(table)
    churn = table.column("churn")
    rates = [value for value in churn if isinstance(value, float)]
    assert 0.0 in rates and max(rates) > 0.0
    # The adversarial cut-sweep row rides along.
    assert "sweep" in churn
    # Every skew column is finite and non-negative.
    for column in ("ftgcs local", "ftgcs global", "gcs local",
                   "gcs global"):
        assert all(value >= 0.0 for value in table.column(column))
