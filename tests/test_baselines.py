"""Tests for the four baseline algorithms."""

import pytest

from repro.baselines.gcs_single import GcsParams, GcsSingleSystem
from repro.baselines.lynch_welch import run_lynch_welch
from repro.baselines.master_slave import MasterSlaveSystem, bfs_tree
from repro.baselines.srikanth_toueg import SrikanthTouegSystem, StParams
from repro.core.params import Parameters
from repro.errors import ConfigError
from repro.topology import ClusterGraph


@pytest.fixture(scope="module")
def params():
    return Parameters.practical(rho=1e-4, d=1.0, u=0.1, f=1)


@pytest.fixture(scope="module")
def params_f0():
    return Parameters.practical(rho=1e-4, d=1.0, u=0.1, f=0)


class TestLynchWelch:
    def test_clique_within_bounds(self, params):
        result = run_lynch_welch(params, rounds=8, seed=1)
        assert result.within_intra_bound
        assert result.max_local_cluster_skew == 0.0

    def test_with_silent_fault(self, params):
        from repro.faults import SilentStrategy

        result = run_lynch_welch(params, rounds=8, seed=2,
                                 byzantine={0: SilentStrategy()})
        assert result.within_intra_bound
        assert result.missing_pulses > 0


class TestSrikanthToueg:
    def test_accepts_happen_every_round(self):
        st_params = StParams(n=4, f=1, rho=1e-4, d=1.0, u=0.1,
                             period=50.0)
        system = SrikanthTouegSystem(st_params, seed=1)
        system.run(rounds=6)
        for node in system.correct_nodes():
            assert node.stats.accepts >= 5

    def test_skew_stays_order_d(self):
        st_params = StParams(n=4, f=1, rho=1e-4, d=1.0, u=0.1,
                             period=50.0)
        system = SrikanthTouegSystem(st_params, seed=2)
        skew = system.run(rounds=8)
        assert skew <= 2.0 * st_params.d

    def test_tolerates_silent_fault(self):
        st_params = StParams(n=4, f=1, rho=1e-4, d=1.0, u=0.1,
                             period=50.0)
        system = SrikanthTouegSystem(st_params, seed=3, silent_faults=1)
        skew = system.run(rounds=8)
        assert skew <= 2.0 * st_params.d
        for node in system.correct_nodes():
            assert node.stats.accepts >= 7

    def test_relay_rule_pulls_laggards(self):
        # With a wide rate spread the slowest node should sometimes be
        # pulled by f+1 earlier proposals before its own timeout.
        st_params = StParams(n=4, f=1, rho=1e-2, d=1.0, u=0.1,
                             period=400.0)
        system = SrikanthTouegSystem(st_params, seed=4)
        system.run(rounds=10)
        relays = sum(n.stats.relay_proposals
                     for n in system.correct_nodes())
        assert relays > 0

    def test_validation(self):
        with pytest.raises(ConfigError):
            StParams(n=3, f=1, rho=1e-4, d=1.0, u=0.1, period=50.0)
        with pytest.raises(ConfigError):
            StParams(n=4, f=1, rho=1e-4, d=1.0, u=0.1, period=1.5)
        st_params = StParams(n=4, f=1, rho=1e-4, d=1.0, u=0.1,
                             period=50.0)
        with pytest.raises(ConfigError):
            SrikanthTouegSystem(st_params, silent_faults=2)


class TestGcsSingle:
    def test_fault_free_local_skew_small(self):
        gcs = GcsParams.default()
        system = GcsSingleSystem(ClusterGraph.line(4), gcs, seed=1)
        samples = system.run(until=600.0)
        assert samples
        final_local = samples[-1][1]
        assert final_local <= gcs.kappa

    def test_liar_breaks_local_skew(self):
        gcs = GcsParams.default()
        system = GcsSingleSystem(ClusterGraph.ring(6), gcs, seed=2,
                                 liars={0: {1: +1, 5: -1}})
        samples = system.run(until=4000.0)
        half = len(samples) // 2
        first = max(s[1] for s in samples[:half])
        second = max(s[1] for s in samples[half:])
        assert second > first  # growing, not stabilizing

    def test_liar_must_target_neighbors(self):
        gcs = GcsParams.default()
        with pytest.raises(ConfigError):
            GcsSingleSystem(ClusterGraph.line(4), gcs,
                            liars={0: {3: +1}})

    def test_correct_edges_exclude_liar(self):
        gcs = GcsParams.default()
        system = GcsSingleSystem(ClusterGraph.ring(4), gcs,
                                 liars={0: {1: +1, 3: -1}})
        edges = system.correct_edges()
        assert all(0 not in edge for edge in edges)


class TestMasterSlave:
    def test_bfs_tree_on_line(self):
        parents = bfs_tree(ClusterGraph.line(4))
        assert parents == {0: 0, 1: 0, 2: 1, 3: 2}

    def test_bfs_tree_disconnected_raises(self):
        graph = ClusterGraph(4, [(0, 1), (2, 3)])
        with pytest.raises(ConfigError):
            bfs_tree(graph)

    def test_slew_mode_runs_and_tracks(self, params):
        system = MasterSlaveSystem(ClusterGraph.line(3), params, seed=1)
        maxima = system.run_rounds(8)
        assert maxima.samples > 0
        assert maxima.global_skew < params.kappa

    def test_jump_mode_requires_k1(self, params):
        with pytest.raises(ConfigError):
            MasterSlaveSystem(ClusterGraph.line(3), params, jump=True)

    def test_jump_mode_compresses_wave(self, params_f0):
        injected = 6 * params_f0.kappa
        offsets = [injected, 0.0, 0.0, 0.0]
        system = MasterSlaveSystem(
            ClusterGraph.line(4), params_f0, seed=2, jump=True,
            cluster_offsets=offsets, track_edges=True)
        maxima = system.run_rounds(15)
        interior = [skew for edge, skew in maxima.edge_maxima.items()
                    if 0 not in edge]
        # The wave pushes (nearly) the full injected skew through the
        # interior edges.
        assert max(interior) > 0.5 * injected

    def test_offsets_validation(self, params):
        with pytest.raises(ConfigError):
            MasterSlaveSystem(ClusterGraph.line(3), params,
                              cluster_offsets=[0.0])

    def test_unknown_rate_model(self, params):
        with pytest.raises(ConfigError):
            MasterSlaveSystem(ClusterGraph.line(2), params,
                              rate_model="warp").run_rounds(2)

    def test_flip_rate_model_runs(self, params):
        system = MasterSlaveSystem(ClusterGraph.line(3), params, seed=3,
                                   rate_model="flip")
        maxima = system.run_rounds(6)
        assert maxima.samples > 0
