"""Unit tests for the global-skew estimate M_v (Lemma C.2)."""

import pytest

from repro.clocks import ConstantRate, HardwareClock
from repro.core.max_estimate import MaxEstimate
from repro.errors import ConfigError
from repro.sim import Simulator

#: Two clusters: 0 owns nodes 1..4, 1 owns nodes 5..8; node 0 is us.
CLUSTER_OF = {n: 0 for n in range(1, 5)}
CLUSTER_OF.update({n: 1 for n in range(5, 9)})


def make_max(rho=0.1, unit=1.0, f=1, initial=0.0, hw_rate=None,
             transit_bonus=1.0):
    """Paper configuration: unit == transit_bonus == d - U."""
    sim = Simulator()
    rate = hw_rate if hw_rate is not None else 1.0 + rho
    hw = HardwareClock(sim, ConstantRate(rate), rho=rho)
    sent = []
    est = MaxEstimate(sim, hw, rho, unit, f, CLUSTER_OF, initial,
                      send_pulse=lambda: sent.append(sim.now),
                      transit_bonus=transit_bonus)
    return sim, est, sent


class TestLocalProgress:
    def test_rate_is_scaled_down(self):
        sim, est, _ = make_max(rho=0.1, hw_rate=1.1)
        est.start()
        sim.run(until=11.0)
        # h/(1+rho) = 1.1/1.1 = 1.0
        assert est.value() == pytest.approx(11.0)

    def test_never_exceeds_true_time_budget(self):
        # With h <= 1+rho, M advances at <= 1: can never overtake a
        # correct clock that advances at >= 1.
        sim, est, _ = make_max(rho=0.1, hw_rate=1.05)
        est.start()
        sim.run(until=100.0)
        assert est.value() <= 100.0 + 1e-9

    def test_pulses_sent_at_unit_multiples(self):
        sim, est, sent = make_max(rho=0.0, unit=2.0, hw_rate=1.0)
        est.start()
        sim.run(until=7.0)
        # Crossings at M = 2, 4, 6 -> times 2, 4, 6.
        assert [pytest.approx(t) for t in (2.0, 4.0, 6.0)] == sent

    def test_initial_value_counts_toward_levels(self):
        sim, est, sent = make_max(rho=0.0, unit=2.0, initial=5.0,
                                  hw_rate=1.0)
        est.start()
        sim.run(until=2.0)
        # M starts at 5 (level 2 announced implicitly); next crossing
        # is M=6 at t=1.
        assert len(sent) == 1
        assert sent[0] == pytest.approx(1.0)


class TestFloodRule:
    def test_f_plus_one_witnesses_trigger_jump(self):
        sim, est, sent = make_max(rho=0.1, unit=1.0, f=1, hw_rate=1.0)
        est.start()
        # Two members (f+1 = 2) of cluster 0 each announce 3 levels.
        for _ in range(3):
            est.on_pulse(1, sim.now)
            est.on_pulse(2, sim.now)
        # Confirmed level 3 -> jump to (3+1)*unit = 4.
        assert est.value() == pytest.approx(4.0)
        assert est.jumps >= 1
        # Our own announcements must cover the jumped levels 1..4.
        assert est.pulses_sent >= 4

    def test_single_witness_is_ignored(self):
        sim, est, _ = make_max(rho=0.1, unit=1.0, f=1, hw_rate=1.0)
        est.start()
        for _ in range(5):
            est.on_pulse(1, sim.now)  # one Byzantine flooder
        assert est.value() == pytest.approx(0.0)

    def test_witnesses_split_across_clusters_ignored(self):
        """One sender per cluster is not f+1 in any *single* cluster."""
        sim, est, _ = make_max(rho=0.1, unit=1.0, f=1, hw_rate=1.0)
        est.start()
        for _ in range(4):
            est.on_pulse(1, sim.now)  # cluster 0
            est.on_pulse(5, sim.now)  # cluster 1
        assert est.value() == pytest.approx(0.0)

    def test_unknown_sender_ignored(self):
        sim, est, _ = make_max()
        est.start()
        est.on_pulse(999, 0.0)
        assert est.value() == pytest.approx(0.0)

    def test_jump_is_monotone(self):
        sim, est, _ = make_max(rho=0.1, unit=1.0, f=1, initial=10.0,
                               hw_rate=1.0)
        est.start()
        est.on_pulse(1, sim.now)
        est.on_pulse(2, sim.now)
        # Confirmed level 1 -> target 2 < current 10: no jump.
        assert est.value() == pytest.approx(10.0)
        assert est.jumps == 0


class TestValidation:
    def test_bad_unit(self):
        sim = Simulator()
        hw = HardwareClock(sim, ConstantRate(1.0), rho=0.1)
        with pytest.raises(ConfigError):
            MaxEstimate(sim, hw, 0.1, 0.0, 1, {}, 0.0, lambda: None)

    def test_double_start_rejected(self):
        sim, est, _ = make_max()
        est.start()
        with pytest.raises(ConfigError):
            est.start()

    def test_stopped_estimate_ignores_pulses(self):
        sim, est, _ = make_max(f=0)
        est.start()
        est.stop()
        est.on_pulse(1, 0.0)
        assert est.value() == pytest.approx(0.0)


class TestFirstContactReset:
    def test_announced_level_exposed(self):
        sim, est, sent = make_max(rho=0.0, unit=2.0, hw_rate=1.0)
        est.start()
        sim.run(until=6.5)
        assert est.announced_level == 3
        assert len(sent) == 3

    def test_reset_sender_restarts_decode_from_zero(self):
        sim, est, _ = make_max(rho=0.1, unit=1.0, f=1)
        est.start()
        # Two witnesses from cluster 0 at level 2 -> jump.
        for sender in (1, 2):
            for _ in range(2):
                est.on_pulse(sender, sim.now)
        assert est.jumps >= 1  # levels 1 and 2 both confirm
        value_after_jump = est.value()
        est.reset_sender(1)
        est.reset_sender(2)
        assert est.sender_resets == 2
        # The estimate itself is untouched (M never moves backwards)...
        assert est.value() >= value_after_jump
        # ...and a re-announced stream decodes from level 1 again:
        # one pulse each re-attests only level 1, which cannot raise
        # the already-higher estimate (undercount = sound direction).
        jumps_before = est.jumps
        for sender in (1, 2):
            est.on_pulse(sender, sim.now)
        assert est.jumps == jumps_before

    def test_reset_then_full_reannounce_restores_decode(self):
        sim, est, _ = make_max(rho=0.1, unit=1.0, f=1)
        est.start()
        for sender in (1, 2):
            for _ in range(3):
                est.on_pulse(sender, sim.now)
        level_settled = est.value()
        est.reset_sender(1)
        est.reset_sender(2)
        # The paired protocol: senders re-announce their full level
        # over the fresh link; the decode then reads it exactly.
        for sender in (1, 2):
            for _ in range(5):
                est.on_pulse(sender, sim.now)
        assert est.value() >= level_settled

    def test_quarantine_drops_pre_outage_in_flight_pulses(self):
        """The over-count hole: a pulse in flight from before the
        outage must not stack on top of the re-announced stream."""
        sim, est, _ = make_max(rho=0.1, unit=1.0, f=1)
        est.start()
        est.reset_sender(1, quarantine_until=sim.now + 1.0)  # d = 1
        # Arrivals inside the window (possibly pre-outage) are dropped.
        est.on_pulse(1, sim.now + 0.5)
        assert est.quarantined_pulses == 1
        assert est._sender_levels.get(1) is None
        # Arrivals at or after the deadline (the delayed
        # re-announcement's earliest possible arrival) count normally.
        est.on_pulse(1, sim.now + 1.0)
        assert est._sender_levels[1] == 1
        # The quarantine clears after the first post-deadline pulse.
        est.on_pulse(1, sim.now + 1.1)
        assert est._sender_levels[1] == 2
