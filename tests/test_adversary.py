"""The unified adversary layer: budget contract, engine-agnostic
plumbing, legacy compatibility, and the resilience claims behind T18.
"""

import pytest

np = pytest.importorskip("numpy")

from repro.baselines.gcs_single import GcsParams
from repro.baselines.srikanth_toueg import StParams
from repro.errors import ConfigError
from repro.faults.adversary import (
    ADVERSARIES,
    AdversaryModel,
    get_adversary,
    resolve_strategy,
    stride_placement,
)
from repro.faults.strategies import STRATEGIES
from repro.harness.experiments import fast_dynamics_params
from repro.harness.scenario import Scenario
from repro.harness.sweep import SweepRunner, run_cell, spec_hash
from repro.service.store import ResultStore

FT = fast_dynamics_params(f=1)
GCS = GcsParams(rho=1e-3, d=1.0, u=0.01, mu=0.01, period=10.0,
                kappa=0.3, slack=0.1)
ST = StParams(n=7, f=2, rho=1e-3, d=1.0, u=0.01, period=10.0)


def ft_cell(rounds=20, seed=18):
    return Scenario.line(6).params(FT).rounds(rounds).seed(seed)


def st_cell(seed=18, **payload):
    return (Scenario.of_protocol("srikanth_toueg")
            .payload(params=ST, rounds=10, **payload).seed(seed))


class TestLegacyCompat:
    """Re-homing the strategies must not move a single spec hash."""

    def test_legacy_spec_hashes_unchanged(self):
        # Literal pre-refactor hashes: the adversary field is omitted
        # from serialization when empty, so every spec that existed
        # before the layer landed still hashes (and caches)
        # identically.
        cell = (Scenario.line(3).params(FT).rounds(40).seed(7)
                .attack("equivocate").tag("D", 2).build())
        assert spec_hash(cell) \
            == "efde166a4f0018239d6c46eaf9a8d8781c7dcfe9"
        plain = Scenario.line(3).params(FT).rounds(10).seed(11).build()
        assert spec_hash(plain) \
            == "c1a3382e42963a1a71f9762e8141cc4681b2c58f"
        st = (Scenario.of_protocol("srikanth_toueg")
              .payload(params=StParams(n=4, f=1, rho=1e-3, d=1.0,
                                       u=0.01, period=10.0),
                       rounds=5, silent_faults=1)
              .seed(5).build())
        assert spec_hash(st) \
            == "f613590771aa97fe45a2e03723dee533a3c27de1"

    def test_every_legacy_strategy_name_resolves(self):
        assert set(STRATEGIES) <= set(ADVERSARIES)
        for name in STRATEGIES:
            assert resolve_strategy(name) is STRATEGIES[name]

    def test_adversary_field_round_trips_but_hashes_apart(self):
        legacy = ft_cell().build()
        adv = ft_cell().adversarial("equivocate").build()
        assert spec_hash(adv) != spec_hash(legacy)
        from repro.harness.sweep import ScenarioSpec
        clone = ScenarioSpec.from_dict(adv.to_dict())
        assert clone == adv
        assert clone.adversary == {"name": "equivocate"}

    def test_result_store_still_hits_on_legacy_specs(self, tmp_path):
        store = ResultStore(tmp_path / "cache")
        spec = ft_cell(rounds=4).build()
        store.put(spec, run_cell(spec))
        # A freshly built, bit-identical legacy spec hits the cache;
        # the adversarial variant of the same cell does not collide.
        assert store.get(ft_cell(rounds=4).build()) is not None
        assert store.get(ft_cell(rounds=4)
                         .adversarial("silent").build()) is None


class TestEagerValidation:
    def test_unknown_name_rejected_at_build(self):
        with pytest.raises(ConfigError, match="unknown adversary"):
            ft_cell().adversarial("nope").build()

    def test_attack_and_adversarial_do_not_compose(self):
        with pytest.raises(ConfigError, match="not both"):
            (ft_cell().attack("equivocate")
             .adversarial("equivocate").build())

    def test_adaptive_rejected_on_event_engine(self):
        with pytest.raises(ConfigError, match="vectorized"):
            ft_cell().adversarial("greedy").build()

    def test_clique_count_capped_at_f(self):
        spec = (st_cell().adversarial("silent", count=ST.f + 1)
                .engine("vectorized").build())
        with pytest.raises(ConfigError, match="fault budget"):
            run_cell(spec)

    def test_bad_budget_knobs_rejected(self):
        with pytest.raises(ConfigError, match="amplitude"):
            get_adversary("silent", amplitude=-1.0)
        with pytest.raises(ConfigError, match="count"):
            get_adversary("silent", count=0)
        with pytest.raises(ConfigError):
            stride_placement(4, 4)  # no honest nodes left


class _RogueSpray(AdversaryModel):
    """Writes offsets on honest-sender slots (outside its budget)."""

    name = "rogue_spray"
    supports_vectorized = True

    def act(self, view):
        return (np.full(view.num_slots, 0.1),
                np.ones(view.num_slots, dtype=bool))


class _RogueLoud(AdversaryModel):
    """Exceeds the amplitude cap on its own slots."""

    name = "rogue_loud"
    supports_vectorized = True

    def act(self, view):
        offsets = np.where(view.faulty_slots,
                           2.0 * view.amplitude + 1.0, 0.0)
        return offsets, np.ones(view.num_slots, dtype=bool)


class TestBudgetEnforcement:
    """A model cannot cheat the runtime: the budget is enforced on
    every act(), not trusted."""

    def rogue_spec(self, monkeypatch, cls):
        monkeypatch.setitem(ADVERSARIES, cls.name, cls)
        return (Scenario.line(6).protocol("gcs_single")
                .payload(params=GCS, until=30.0).seed(1)
                .adversarial(cls.name).engine("vectorized").build())

    def test_offsets_outside_fault_set_rejected(self, monkeypatch):
        spec = self.rogue_spec(monkeypatch, _RogueSpray)
        with pytest.raises(ConfigError, match="outside its fault set"):
            run_cell(spec)

    def test_amplitude_budget_enforced(self, monkeypatch):
        spec = self.rogue_spec(monkeypatch, _RogueLoud)
        with pytest.raises(ConfigError, match="amplitude budget"):
            run_cell(spec)


class TestEngineAgnostic:
    """One .adversarial(...) spelling, both engines, uniform
    counters."""

    def test_vectorized_counters_surfaced(self):
        spec = (ft_cell().adversarial("equivocate", amplitude=30.0)
                .engine("vectorized").build())
        counters = run_cell(spec).result.adversary
        assert counters["name"] == "equivocate"
        assert counters["mechanism"] == "vectorized"
        assert counters["rounds_acted"] > 0
        assert 0.0 < counters["injected_abs_max"] <= 30.0 * (1 + 1e-9)

    def test_event_realization_runs_and_reports(self):
        spec = ft_cell(rounds=6).adversarial("equivocate").build()
        result = run_cell(spec).result
        assert result.adversary is not None
        assert result.adversary["name"] == "equivocate"

    def test_silent_matches_legacy_silent_faults_bitwise(self):
        legacy = (st_cell(silent_faults=2).engine("vectorized")
                  .build())
        unified = (st_cell().adversarial("silent", count=2)
                   .engine("vectorized").build())
        a = run_cell(legacy).result
        b = run_cell(unified).result
        assert a.max_local_skew == b.max_local_skew
        assert a.max_global_skew == b.max_global_skew

    def test_adaptive_deterministic_serial_equals_pooled(self):
        spec = (ft_cell().adversarial("random_restart", amplitude=30.0)
                .engine("vectorized").build())
        serial = SweepRunner(processes=1).run([spec], base_seed=18)
        pooled = SweepRunner(processes=2).run([spec], base_seed=18)
        assert serial[0].result.max_local_skew \
            == pooled[0].result.max_local_skew
        assert serial[0].result.max_global_skew \
            == pooled[0].result.max_global_skew


class TestResilience:
    """The physics behind T18: deadband absorption and adaptive
    dominance."""

    def run_ft(self, adversary=None, amplitude=0.0):
        cell = ft_cell(rounds=40)
        if adversary is not None:
            cell = cell.adversarial(adversary, amplitude=amplitude)
        return run_cell(cell.engine("vectorized")
                        .build()).result.max_local_skew

    def test_sub_deadband_injection_absorbed_bitwise(self):
        # Lies below 2*kappa - slack cannot flip a trigger: the run is
        # bit-identical to the fault-free one, not merely close.
        assert self.run_ft("equivocate", 0.5 * FT.kappa) \
            == self.run_ft()

    def test_adaptive_dominates_static_at_equal_budget(self):
        amplitude = 2.5 * FT.kappa
        static = max(self.run_ft(name, amplitude)
                     for name in ("silent", "equivocate",
                                  "fast_clock"))
        assert self.run_ft("greedy", amplitude) >= static

    def test_challenge_injection_stays_in_envelope(self):
        from repro.analysis.bounds import resilience_bound

        amplitude = 2.5 * FT.kappa
        baseline = self.run_ft()
        skew = self.run_ft("greedy", amplitude)
        envelope = resilience_bound(
            amplitude, kappa=FT.kappa, slack=FT.delta_trigger,
            correction=FT.mu * FT.round_length)
        assert skew - baseline <= envelope * (1 + 1e-9)
