"""Unit tests for topologies and the augmentation construction."""

import random

import pytest

from repro.errors import TopologyError
from repro.topology import ClusterGraph, hop_diameter, adjacency_from_edges


class TestGenerators:
    def test_line(self):
        graph = ClusterGraph.line(5)
        assert graph.num_clusters == 5
        assert graph.num_edges == 4
        assert graph.diameter() == 4
        assert graph.neighbors(2) == (1, 3)

    def test_ring(self):
        graph = ClusterGraph.ring(6)
        assert graph.num_edges == 6
        assert graph.diameter() == 3
        assert graph.neighbors(0) == (1, 5)

    def test_complete(self):
        graph = ClusterGraph.complete(5)
        assert graph.num_edges == 10
        assert graph.diameter() == 1
        assert graph.max_degree() == 4

    def test_star(self):
        graph = ClusterGraph.star(5)
        assert graph.diameter() == 2
        assert graph.degree(0) == 4

    def test_grid(self):
        graph = ClusterGraph.grid(3, 3)
        assert graph.num_clusters == 9
        assert graph.num_edges == 12
        assert graph.diameter() == 4

    def test_torus(self):
        graph = ClusterGraph.torus(4, 4)
        assert graph.num_clusters == 16
        assert graph.num_edges == 32
        assert graph.diameter() == 4

    def test_balanced_tree(self):
        graph = ClusterGraph.balanced_tree(2, 3)
        assert graph.num_clusters == 15
        assert graph.num_edges == 14
        assert graph.diameter() == 6

    def test_hypercube(self):
        graph = ClusterGraph.hypercube(3)
        assert graph.num_clusters == 8
        assert graph.num_edges == 12
        assert graph.diameter() == 3

    def test_random_connected_seed_deterministic(self):
        import random

        from repro.topology.graphs import random_connected_edges

        first = random_connected_edges(15, 0.2, random.Random(42))
        second = random_connected_edges(15, 0.2, random.Random(42))
        assert first == second
        moved = random_connected_edges(15, 0.2, random.Random(43))
        assert first != moved
        # Canonical form: sorted (min, max) pairs, spanning, no dups.
        assert first == sorted(first)
        assert all(a < b for a, b in first)
        assert len(set(first)) == len(first)
        assert len(first) >= 14

    def test_random_connected(self):
        rng = random.Random(0)
        graph = ClusterGraph.random_connected(20, 0.1, rng)
        assert graph.is_connected()
        assert graph.num_edges >= 19

    def test_single_cluster(self):
        graph = ClusterGraph.line(1)
        assert graph.num_clusters == 1
        assert graph.num_edges == 0
        assert graph.diameter() == 0


class TestValidation:
    def test_duplicate_edge_rejected(self):
        with pytest.raises(TopologyError):
            ClusterGraph(3, [(0, 1), (1, 0)])

    def test_self_loop_rejected(self):
        with pytest.raises(TopologyError):
            ClusterGraph(3, [(1, 1)])

    def test_out_of_range_edge_rejected(self):
        with pytest.raises(TopologyError):
            ClusterGraph(3, [(0, 5)])

    def test_disconnected_diameter_raises(self):
        graph = ClusterGraph(4, [(0, 1), (2, 3)])
        assert not graph.is_connected()
        with pytest.raises(TopologyError):
            graph.diameter()

    def test_ring_too_small(self):
        with pytest.raises(TopologyError):
            ClusterGraph.ring(2)


class TestAugmentation:
    def test_member_blocks(self):
        aug = ClusterGraph.line(3).augment(4)
        assert aug.num_nodes == 12
        assert aug.members(0) == (0, 1, 2, 3)
        assert aug.members(2) == (8, 9, 10, 11)
        assert aug.cluster_of(5) == 1
        assert aug.cluster_of(0) == 0

    def test_cluster_neighbors_form_clique(self):
        aug = ClusterGraph.line(2).augment(4)
        assert aug.cluster_neighbors(0) == (1, 2, 3)
        assert aug.cluster_neighbors(5) == (4, 6, 7)

    def test_inter_neighbors_grouped_by_cluster(self):
        aug = ClusterGraph.line(3).augment(3)
        groups = aug.inter_neighbors(4)  # node in middle cluster 1
        assert set(groups) == {0, 2}
        assert groups[0] == (0, 1, 2)
        assert groups[2] == (6, 7, 8)

    def test_full_neighbor_list(self):
        aug = ClusterGraph.line(2).augment(3)
        # Node 0: peers 1,2 plus all of cluster 1 (3,4,5).
        assert set(aug.neighbors(0)) == {1, 2, 3, 4, 5}

    def test_edge_counts_match_formulas(self):
        graph = ClusterGraph.ring(5)
        for k in (1, 4, 7):
            aug = graph.augment(k)
            assert aug.num_cluster_edges == 5 * k * (k - 1) // 2
            assert aug.num_intercluster_edges == 5 * k * k
            assert aug.num_edges == len(aug.node_edges())

    def test_node_edges_unique(self):
        aug = ClusterGraph.grid(2, 2).augment(3)
        edges = aug.node_edges()
        assert len(edges) == len(set(edges))

    def test_k1_augmentation_is_original_graph(self):
        graph = ClusterGraph.ring(5)
        aug = graph.augment(1)
        assert aug.num_nodes == 5
        assert aug.num_cluster_edges == 0
        assert aug.num_intercluster_edges == 5
        assert aug.cluster_neighbors(0) == ()

    def test_invalid_cluster_size(self):
        with pytest.raises(TopologyError):
            ClusterGraph.line(2).augment(0)

    def test_unknown_ids_raise(self):
        aug = ClusterGraph.line(2).augment(2)
        with pytest.raises(TopologyError):
            aug.members(5)
        with pytest.raises(TopologyError):
            aug.cluster_of(99)

    def test_overhead_scaling_in_f(self):
        """Nodes scale as O(f) and edges as O(f^2) (Theorem 1.1)."""
        graph = ClusterGraph.grid(3, 3)
        base_nodes = graph.num_clusters
        base_edges = graph.num_edges
        for f in (1, 2, 3):
            k = 3 * f + 1
            aug = graph.augment(k)
            assert aug.num_nodes == base_nodes * k
            expected_edges = (base_nodes * k * (k - 1) // 2
                              + base_edges * k * k)
            assert aug.num_edges == expected_edges


class TestDiameterHelper:
    def test_hop_diameter_direct(self):
        adjacency = adjacency_from_edges(4, [(0, 1), (1, 2), (2, 3)])
        assert hop_diameter(adjacency) == 3
