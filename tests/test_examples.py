"""The examples are part of the public API surface: run them.

Each example is executed in-process (``runpy``) with stdout captured;
we assert on the conclusions they print, so a regression that silently
breaks a bound check in an example fails here.
"""

import pathlib
import runpy

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, capsys) -> str:
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


@pytest.mark.slow
class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart.py", capsys)
        assert "all bounds hold" in out
        assert "BOUND VIOLATION" not in out

    def test_byzantine_line(self, capsys):
        out = run_example("byzantine_line.py", capsys)
        assert "all bounds hold        : True" in out
        assert "per-edge max cluster skew" in out

    def test_noc_grid(self, capsys):
        out = run_example("noc_grid.py", capsys)
        assert "all bounds hold: True" in out

    def test_attack_gallery(self, capsys):
        out = run_example("attack_gallery.py", capsys)
        assert "FAIL" not in out
        assert out.count("OK") == 7

    def test_experiment_api_tour(self, capsys):
        out = run_example("experiment_api_tour.py", capsys)
        assert "T8  Augmentation overheads" in out
        assert "quick grid: 9 cells" in out
        assert "custom sweep: all bounds hold" in out
        assert "VIOLATION" not in out
        assert "service resubmit: 0 executed / 3 cached" in out
        assert "bytes identical: True" in out

    def test_baseline_comparison(self, capsys):
        out = run_example("baseline_comparison.py", capsys)
        assert "full compression" in out
        assert "-> True" in out
