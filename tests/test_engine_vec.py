"""The vectorized synchronous-round engine (`repro.engine_vec`).

Degenerate topologies (edgeless, single node), faulty-node vectors at
the f-bound, the `engine` spec field's serialization/cache behavior,
and the builder's eager rejection of event-only features.  The
cross-engine skew agreement itself lives in
``tests/test_equivalence.py``.
"""

import math

import pytest

np = pytest.importorskip("numpy")

from repro.baselines.gcs_single import GcsParams
from repro.baselines.srikanth_toueg import StParams
from repro.core.params import Parameters
from repro.core.protocol import ENGINES, SystemBuilder
from repro.engine_vec.csr import CSRAdjacency
from repro.engine_vec.engine import (
    VecStreams,
    fast_trigger_mask,
    slow_trigger_mask,
)
from repro.errors import ConfigError
from repro.harness.scenario import Scenario
from repro.harness.sweep import (
    ScenarioSpec,
    SweepRunner,
    run_cell,
    spec_hash,
)
from repro.service.store import ResultStore
from repro.topology import ClusterGraph

GCS = GcsParams(rho=1e-3, d=1.0, u=0.01, mu=0.01, period=10.0,
                kappa=0.3, slack=0.1)


def vec_gcs(graph, until=100.0, seed=3):
    return (SystemBuilder("gcs_single").topology(graph)
            .payload(params=GCS, until=until)
            .engine("vectorized").seed(seed).build())


class TestDegenerateTopologies:
    def test_single_node_edgeless_graph_runs(self):
        result = vec_gcs(ClusterGraph.line(1)).run()
        assert result.max_local_skew == 0.0
        assert result.max_global_skew == 0.0
        assert result.detail["nodes"] == 1

    def test_edgeless_node_never_triggers(self):
        # Degree 0 everywhere: segment reductions see only empty
        # segments, so the masked fills must never read as estimates.
        result = vec_gcs(ClusterGraph.line(1), until=1000.0).run()
        assert result.detail["rounds"] == 100
        assert result.max_global_skew == 0.0

    def test_single_node_srikanth_toueg_drifts_by_d_per_round(self):
        p = StParams(n=1, f=0, rho=0.0, d=1.0, u=0.0, period=10.0)
        result = (SystemBuilder("srikanth_toueg")
                  .payload(params=p, rounds=5)
                  .engine("vectorized").seed(0).build().run())
        assert result.max_global_skew == 0.0

    def test_csr_empty_segments_masked(self):
        # One isolated node next to a connected pair.
        csr = CSRAdjacency(ClusterGraph(3, [(1, 2)], name="pair+iso"))
        values = np.array([5.0, 1.0, 9.0])
        up = csr.segment_max(csr.gather(values))
        down = csr.segment_min(csr.gather(values))
        assert up[0] == -math.inf and down[0] == math.inf
        assert up[1] == 9.0 and down[2] == 1.0
        gamma = fast_trigger_mask(up - values, values - down,
                                  kappa=0.3, slack=0.1)
        assert not gamma[0]  # masked fills never fire a trigger


class TestFaultyVectors:
    def test_silent_faults_at_f_bound(self):
        # n = 3f + 1 with exactly f silent nodes: the quorum
        # (n - f = 5) still closes every round.
        p = StParams(n=7, f=2, rho=1e-4, d=1.0, u=0.01, period=10.0)
        result = (SystemBuilder("srikanth_toueg")
                  .payload(params=p, rounds=10, silent_faults=2,
                           rate_spread=True)
                  .engine("vectorized").seed(5).build().run())
        assert result.detail["silent_faults"] == 2
        # Correct nodes stay inside the analytic resync envelope.
        assert result.max_global_skew <= 2 * (p.u + p.rho * p.period)

    def test_silent_faults_beyond_f_rejected(self):
        p = StParams(n=7, f=2, rho=0.0, d=1.0, u=0.0, period=10.0)
        builder = (SystemBuilder("srikanth_toueg")
                   .payload(params=p, rounds=3, silent_faults=3)
                   .engine("vectorized").seed(0))
        with pytest.raises(ConfigError, match="silent"):
            builder.build().run()

    def test_lynch_welch_trims_at_f_bound(self):
        params = Parameters.practical(rho=1e-4, d=1.0, u=0.1, f=1)
        result = (SystemBuilder("lynch_welch").params(params)
                  .rounds(8).engine("vectorized").seed(2)
                  .build().run())
        assert result.max_global_skew <= params.intra_skew_bound()


class TestEngineSelection:
    def test_engines_constant(self):
        assert ENGINES == ("event", "vectorized")

    def test_unknown_engine_rejected(self):
        with pytest.raises(ConfigError, match="unknown engine"):
            SystemBuilder("gcs_single").engine("cuda")

    def test_master_slave_not_vectorized(self):
        builder = (SystemBuilder("master_slave")
                   .topology(ClusterGraph.line(2))
                   .params(Parameters.practical(rho=1e-4, d=1.0,
                                                u=0.1, f=1))
                   .engine("vectorized"))
        with pytest.raises(ConfigError, match="vectorized"):
            builder.build()

    def test_strategy_rejected_on_vectorized(self):
        params = Parameters.practical(rho=1e-4, d=1.0, u=0.1, f=1)
        builder = (SystemBuilder("ftgcs")
                   .topology(ClusterGraph.line(3)).params(params)
                   .rounds(2).faults("equivocate")
                   .engine("vectorized"))
        with pytest.raises(ConfigError):
            builder.build()


class TestSpecSerialization:
    def spec(self, engine="vectorized", timing=False, seed=9):
        s = (Scenario.line(4).protocol("gcs_single")
             .payload(params=GCS, until=50.0).seed(seed))
        if engine != "event":
            s = s.engine(engine)
        if timing:
            s = s.timed()
        return s.build()

    def test_engine_round_trips_through_dict(self):
        spec = self.spec(timing=True)
        clone = ScenarioSpec.from_dict(spec.to_dict())
        assert clone == spec
        assert clone.engine == "vectorized"
        assert clone.timing is True

    def test_spec_hash_differs_by_engine(self):
        assert spec_hash(self.spec("event")) \
            != spec_hash(self.spec("vectorized"))

    def test_result_store_keys_engines_separately(self, tmp_path):
        store = ResultStore(tmp_path / "cache")
        event_spec = self.spec("event")
        vec_spec = self.spec("vectorized")
        store.put(event_spec, run_cell(event_spec))
        assert store.get(event_spec) is not None
        assert store.get(vec_spec) is None  # no cross-engine hit
        store.put(vec_spec, run_cell(vec_spec))
        assert store.stats()["entries"] == 2

    def test_sweep_timing_extras_on_vectorized(self):
        cells = SweepRunner(processes=1).run(
            [self.spec(timing=True)], base_seed=9)
        timing = cells[0].extras["timing"]
        assert timing["wall_seconds"] > 0.0
        assert timing["rounds_per_second"] > 0.0


class TestVecStreams:
    def test_streams_deterministic_and_namespaced(self):
        def draw(scope, name):
            stream = VecStreams(7, scope).stream(name)
            return stream.uniform(0.0, 1.0, 5)

        assert np.array_equal(draw("gcs_single", "delays"),
                              draw("gcs_single", "delays"))
        assert not np.array_equal(draw("gcs_single", "delays"),
                                  draw("gcs_single", "other"))
        assert not np.array_equal(draw("gcs_single", "delays"),
                                  draw("ftgcs", "delays"))

    def test_fast_trigger_closed_form(self):
        # Level s=1 opens at up >= 2*kappa - slack = 0.5 (down small).
        up = np.array([0.0, 0.49, 0.51, 2.0])
        down = np.zeros(4)
        fast = fast_trigger_mask(up, down, kappa=0.3, slack=0.1)
        assert fast.tolist() == [False, False, True, True]
        # down past 2*s*kappa + slack closes every level below up.
        blocked = fast_trigger_mask(np.array([0.51]),
                                    np.array([0.71]),
                                    kappa=0.3, slack=0.1)
        assert blocked.tolist() == [False]

    def test_slow_trigger_odd_rung_form(self):
        kappa, slack = 0.3, 0.1
        # m=1 rung: down + slack >= kappa and up - slack <= kappa.
        assert slow_trigger_mask(np.array([0.0]), np.array([0.35]),
                                 kappa, slack).tolist() == [True]
        # up far above every rung down reaches: no odd m in range.
        assert slow_trigger_mask(np.array([2.0]), np.array([0.35]),
                                 kappa, slack).tolist() == [False]
