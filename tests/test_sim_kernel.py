"""Unit tests for the discrete-event kernel."""

import pytest

from repro.errors import SimulationError
from repro.sim import Simulator


class TestScheduling:
    def test_call_at_and_call_in(self):
        sim = Simulator()
        fired = []
        sim.call_at(1.0, fired.append, "at")
        sim.call_in(0.5, fired.append, "in")
        sim.run(until=2.0)
        assert fired == ["in", "at"]

    def test_run_advances_time_to_until(self):
        sim = Simulator()
        sim.run(until=10.0)
        assert sim.now == 10.0

    def test_events_after_horizon_stay_queued(self):
        sim = Simulator()
        fired = []
        sim.call_at(5.0, fired.append, "late")
        sim.run(until=1.0)
        assert fired == []
        sim.run(until=6.0)
        assert fired == ["late"]

    def test_scheduling_in_past_raises(self):
        sim = Simulator()
        sim.run(until=5.0)
        with pytest.raises(SimulationError):
            sim.call_at(1.0, lambda: None)

    def test_tiny_past_tolerance_clamps(self):
        sim = Simulator()
        sim.run(until=5.0)
        event = sim.call_at(5.0 - 1e-12, lambda: None)
        assert event.time == 5.0

    def test_negative_delay_raises(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.call_in(-1.0, lambda: None)

    def test_run_backwards_raises(self):
        sim = Simulator()
        sim.run(until=3.0)
        with pytest.raises(SimulationError):
            sim.run(until=1.0)


class TestExecution:
    def test_callback_sees_current_time(self):
        sim = Simulator()
        seen = []
        sim.call_at(2.5, lambda: seen.append(sim.now))
        sim.run(until=3.0)
        assert seen == [2.5]

    def test_self_scheduling_chain(self):
        sim = Simulator()
        ticks = []

        def tick():
            ticks.append(sim.now)
            if len(ticks) < 5:
                sim.call_in(1.0, tick)

        sim.call_at(0.0, tick)
        sim.run(until=10.0)
        assert ticks == [0.0, 1.0, 2.0, 3.0, 4.0]

    def test_cancel_pending_event(self):
        sim = Simulator()
        fired = []
        event = sim.call_at(1.0, fired.append, "x")
        sim.cancel(event)
        sim.run(until=2.0)
        assert fired == []

    def test_step_returns_false_when_empty(self):
        assert Simulator().step() is False

    def test_step_fires_single_event(self):
        sim = Simulator()
        fired = []
        sim.call_at(1.0, fired.append, "a")
        sim.call_at(2.0, fired.append, "b")
        assert sim.step() is True
        assert fired == ["a"]
        assert sim.now == 1.0

    def test_events_processed_counter(self):
        sim = Simulator()
        for i in range(4):
            sim.call_at(float(i), lambda: None)
        sim.run(until=10.0)
        assert sim.events_processed == 4

    def test_run_until_idle_bound(self):
        sim = Simulator()

        def forever():
            sim.call_in(1.0, forever)

        sim.call_at(0.0, forever)
        with pytest.raises(SimulationError):
            sim.run_until_idle(max_events=10)

    def test_run_until_idle_bound_fires_exactly_max_events(self):
        # Regression: the bound used to fire max_events + 1 events
        # before raising.
        sim = Simulator()

        def forever():
            sim.call_in(1.0, forever)

        sim.call_at(0.0, forever)
        with pytest.raises(SimulationError):
            sim.run_until_idle(max_events=10)
        assert sim.events_processed == 10

    def test_run_until_idle_zero_budget_raises_without_firing(self):
        sim = Simulator()
        fired = []
        sim.call_at(1.0, fired.append, "x")
        with pytest.raises(SimulationError):
            sim.run_until_idle(max_events=0)
        assert fired == []
        assert sim.events_processed == 0
        # The un-fired event is still intact in the queue.
        assert sim.run_until_idle() == 1
        assert fired == ["x"]

    def test_run_until_idle_zero_budget_empty_queue_ok(self):
        assert Simulator().run_until_idle(max_events=0) == 0

    def test_run_until_idle_exact_budget_completes(self):
        sim = Simulator()
        for i in range(5):
            sim.call_at(float(i), lambda: None)
        assert sim.run_until_idle(max_events=5) == 5

    def test_run_until_idle_counts(self):
        sim = Simulator()
        for i in range(3):
            sim.call_at(float(i), lambda: None)
        assert sim.run_until_idle() == 3

    def test_simultaneous_events_fifo(self):
        sim = Simulator()
        fired = []
        for tag in "abc":
            sim.call_at(1.0, fired.append, tag)
        sim.run(until=1.0)
        assert fired == ["a", "b", "c"]


class TestRepeatingEvents:
    def test_fires_every_interval(self):
        sim = Simulator()
        times = []
        sim.call_repeating(2.0, lambda: times.append(sim.now))
        sim.run(until=7.0)
        assert times == [2.0, 4.0, 6.0]

    def test_first_in_overrides_initial_delay(self):
        sim = Simulator()
        times = []
        sim.call_repeating(2.0, lambda: times.append(sim.now),
                           first_in=0.0)
        sim.run(until=5.0)
        assert times == [0.0, 2.0, 4.0]

    def test_reuses_one_event_object(self):
        sim = Simulator()
        count = [0]
        event = sim.call_repeating(1.0, lambda: count.__setitem__(
            0, count[0] + 1))
        sim.run(until=100.0)
        assert count[0] == 100
        # The same Event object is re-armed; no per-tick allocations.
        assert sim.pending_events == 1
        assert event.time == 101.0

    def test_cancel_stops_future_firings(self):
        sim = Simulator()
        count = [0]
        event = sim.call_repeating(1.0, lambda: count.__setitem__(
            0, count[0] + 1))
        sim.run(until=3.0)
        sim.cancel(event)
        sim.run(until=10.0)
        assert count[0] == 3
        assert sim.pending_events == 0

    def test_cancel_from_inside_callback(self):
        sim = Simulator()
        count = [0]

        def tick():
            count[0] += 1
            if count[0] == 4:
                sim.cancel(event)

        event = sim.call_repeating(1.0, tick)
        sim.run(until=20.0)
        assert count[0] == 4
        assert sim.pending_events == 0

    def test_repeating_via_step(self):
        sim = Simulator()
        count = [0]
        sim.call_repeating(1.0, lambda: count.__setitem__(
            0, count[0] + 1))
        for _ in range(5):
            assert sim.step() is True
        assert count[0] == 5

    def test_invalid_interval_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.call_repeating(0.0, lambda: None)
        with pytest.raises(SimulationError):
            sim.call_repeating(-1.0, lambda: None)


class TestHeapCompaction:
    def test_long_run_with_heavy_rescheduling_keeps_heap_bounded(self):
        # The acceptance shape of the alarm-reschedule storm: a long
        # run where almost every scheduled event is cancelled and
        # replaced (LogicalClock.set_delta re-inverts its one pending
        # kernel event on every rate change).  Without compaction the
        # heap grows with every reschedule; with it, the physical heap
        # length stays within 2x the live count (above the compaction
        # floor).
        from repro.sim.events import COMPACT_MIN_SIZE

        sim = Simulator()
        queue = sim._queue
        live = [sim.call_at(1e12, lambda: None) for _ in range(100)]
        total = 1_000_000
        worst_ratio = 0.0
        for i in range(total):
            slot = i % 100
            sim.cancel(live[slot])
            live[slot] = sim.call_at(1e12 + i, lambda: None)
            if i % 10_000 == 0:
                worst_ratio = max(worst_ratio,
                                  queue.heap_size / len(queue))
        assert len(queue) == 100
        assert queue.heap_size <= max(COMPACT_MIN_SIZE, 2 * len(queue))
        assert worst_ratio <= 2.0
        # And the queue still works: all survivors are poppable.
        assert sum(1 for _ in queue.drain()) == 100

    def test_compaction_during_run_with_set_delta_storm(self):
        # End-to-end shape: alarms rescheduled by logical-clock rate
        # changes during Simulator.run must not accumulate cancelled
        # heap entries.
        from repro.clocks import ConstantRate, HardwareClock, LogicalClock
        from repro.sim.events import COMPACT_MIN_SIZE

        sim = Simulator()
        hw = HardwareClock(sim, ConstantRate(1.0), rho=0.01)
        clock = LogicalClock(sim, hw, phi=0.01, mu=0.001)
        fired = []
        for i in range(50):
            clock.at_value(200_000.0 + i, fired.append, i)
        for i in range(20_000):
            sim.call_at(float(i), clock.set_delta, 1.0 + (i % 2) * 0.5)
        sim.run(until=250_000.0)
        assert len(fired) == 50
        queue = sim._queue
        assert queue.heap_size <= max(COMPACT_MIN_SIZE,
                                      2 * max(len(queue), 1))


class TestBatchConsumerApi:
    """The internal surface the batched network delivery path rides on."""

    def test_alloc_seq_burns_the_sequence(self):
        sim = Simulator()
        first = sim.alloc_seq()
        second = sim.alloc_seq()
        assert second == first + 1
        event = sim.call_at(1.0, lambda: None)
        assert event.seq == second + 1

    def test_call_at_key_orders_by_explicit_seq(self):
        # An event co-keyed with an earlier-allocated seq fires before
        # a same-time event scheduled later — the property that keeps
        # batched deliveries in legacy order among simultaneous events.
        sim = Simulator()
        fired = []
        early_seq = sim.alloc_seq()
        sim.call_at(1.0, fired.append, "normal")
        sim.call_at_key(1.0, early_seq, fired.append, "co-keyed")
        sim.run(until=2.0)
        assert fired == ["co-keyed", "normal"]

    def test_horizon_exposed_during_run(self):
        sim = Simulator()
        seen = []
        sim.call_at(1.0, lambda: seen.append(sim._horizon))
        sim.run(until=4.0)
        assert seen == [4.0]
        import math

        assert sim._horizon == math.inf

    def test_nested_bounded_run_until_idle_keeps_outer_guard(self):
        # Regression: an inner bounded run_until_idle used to reset
        # the shared budget to infinity on exit, silently disabling
        # the outer call's runaway-loop guard.
        sim = Simulator()
        count = [0]

        def loop():
            count[0] += 1
            if count[0] > 500:  # keeps a regression a failure, not a hang
                return
            sim.call_in(1.0, loop)
            if count[0] == 1:
                # Inner bounded drain on the same simulator exhausts
                # its own small budget; the outer budget must survive.
                with pytest.raises(SimulationError):
                    sim.run_until_idle(max_events=2)

        sim.call_at(0.0, loop)
        with pytest.raises(SimulationError):
            sim.run_until_idle(max_events=50)
        assert count[0] <= 60  # outer guard tripped, not the 500 fuse
