"""Unit tests for the discrete-event kernel."""

import pytest

from repro.errors import SimulationError
from repro.sim import Simulator


class TestScheduling:
    def test_call_at_and_call_in(self):
        sim = Simulator()
        fired = []
        sim.call_at(1.0, fired.append, "at")
        sim.call_in(0.5, fired.append, "in")
        sim.run(until=2.0)
        assert fired == ["in", "at"]

    def test_run_advances_time_to_until(self):
        sim = Simulator()
        sim.run(until=10.0)
        assert sim.now == 10.0

    def test_events_after_horizon_stay_queued(self):
        sim = Simulator()
        fired = []
        sim.call_at(5.0, fired.append, "late")
        sim.run(until=1.0)
        assert fired == []
        sim.run(until=6.0)
        assert fired == ["late"]

    def test_scheduling_in_past_raises(self):
        sim = Simulator()
        sim.run(until=5.0)
        with pytest.raises(SimulationError):
            sim.call_at(1.0, lambda: None)

    def test_tiny_past_tolerance_clamps(self):
        sim = Simulator()
        sim.run(until=5.0)
        event = sim.call_at(5.0 - 1e-12, lambda: None)
        assert event.time == 5.0

    def test_negative_delay_raises(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.call_in(-1.0, lambda: None)

    def test_run_backwards_raises(self):
        sim = Simulator()
        sim.run(until=3.0)
        with pytest.raises(SimulationError):
            sim.run(until=1.0)


class TestExecution:
    def test_callback_sees_current_time(self):
        sim = Simulator()
        seen = []
        sim.call_at(2.5, lambda: seen.append(sim.now))
        sim.run(until=3.0)
        assert seen == [2.5]

    def test_self_scheduling_chain(self):
        sim = Simulator()
        ticks = []

        def tick():
            ticks.append(sim.now)
            if len(ticks) < 5:
                sim.call_in(1.0, tick)

        sim.call_at(0.0, tick)
        sim.run(until=10.0)
        assert ticks == [0.0, 1.0, 2.0, 3.0, 4.0]

    def test_cancel_pending_event(self):
        sim = Simulator()
        fired = []
        event = sim.call_at(1.0, fired.append, "x")
        sim.cancel(event)
        sim.run(until=2.0)
        assert fired == []

    def test_step_returns_false_when_empty(self):
        assert Simulator().step() is False

    def test_step_fires_single_event(self):
        sim = Simulator()
        fired = []
        sim.call_at(1.0, fired.append, "a")
        sim.call_at(2.0, fired.append, "b")
        assert sim.step() is True
        assert fired == ["a"]
        assert sim.now == 1.0

    def test_events_processed_counter(self):
        sim = Simulator()
        for i in range(4):
            sim.call_at(float(i), lambda: None)
        sim.run(until=10.0)
        assert sim.events_processed == 4

    def test_run_until_idle_bound(self):
        sim = Simulator()

        def forever():
            sim.call_in(1.0, forever)

        sim.call_at(0.0, forever)
        with pytest.raises(SimulationError):
            sim.run_until_idle(max_events=10)

    def test_run_until_idle_counts(self):
        sim = Simulator()
        for i in range(3):
            sim.call_at(float(i), lambda: None)
        assert sim.run_until_idle() == 3

    def test_simultaneous_events_fifo(self):
        sim = Simulator()
        fired = []
        for tag in "abc":
            sim.call_at(1.0, fired.append, tag)
        sim.run(until=1.0)
        assert fired == ["a", "b", "c"]
