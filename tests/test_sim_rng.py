"""Unit tests for deterministic named RNG streams."""

from repro.sim.rng import RngRegistry, derive_seed


class TestDeriveSeed:
    def test_stable_across_instances(self):
        assert derive_seed(1, "a") == derive_seed(1, "a")

    def test_differs_by_name(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")

    def test_differs_by_master(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_64_bit_range(self):
        seed = derive_seed(123456789, "some/long/stream-name")
        assert 0 <= seed < 2 ** 64


class TestRngRegistry:
    def test_same_name_same_object(self):
        reg = RngRegistry(7)
        assert reg.stream("x") is reg.stream("x")

    def test_replay_across_registries(self):
        draws1 = [RngRegistry(7).stream("x").random() for _ in range(1)]
        draws2 = [RngRegistry(7).stream("x").random() for _ in range(1)]
        assert draws1 == draws2

    def test_streams_are_independent(self):
        reg = RngRegistry(7)
        a = reg.stream("a")
        b = reg.stream("b")
        # Drawing from one stream must not affect the other.
        seq_b_expected = RngRegistry(7).stream("b")
        a.random()
        a.random()
        assert b.random() == seq_b_expected.random()

    def test_fork_is_deterministic(self):
        v1 = RngRegistry(7).fork("rep1").stream("x").random()
        v2 = RngRegistry(7).fork("rep1").stream("x").random()
        assert v1 == v2

    def test_fork_differs_from_parent(self):
        parent = RngRegistry(7)
        child = parent.fork("rep1")
        assert parent.master_seed != child.master_seed
        assert parent.stream("x").random() != child.stream("x").random()
