"""Tests for the fluent Scenario builder."""

import pytest

from repro.errors import ConfigError
from repro.harness.runner import default_params
from repro.harness.scenario import Scenario
from repro.harness.sweep import ScenarioSpec, run_cell


class TestBuilding:
    def test_compiles_to_spec(self):
        params = default_params()
        spec = (Scenario.line(3).params(params).rounds(7).seed(42)
                .attack("equivocate", )
                .configure(init_jitter=0.1)
                .measure("pulse_diameters")
                .tag("D", 2).build())
        assert isinstance(spec, ScenarioSpec)
        assert spec.graph == "line"
        assert spec.graph_args == (3,)
        assert spec.params is params
        assert spec.rounds == 7
        assert spec.seed == 42
        assert spec.strategy == "equivocate"
        assert spec.config == {"init_jitter": 0.1}
        assert spec.collect == ("pulse_diameters",)
        assert spec.key == ("D", 2)
        assert spec.kind == "protocol"
        assert spec.protocol is None  # worker defaults to "ftgcs"

    def test_graph_entry_points(self):
        assert Scenario.ring(4).build().graph == "ring"
        assert Scenario.grid_graph(2, 3).build().graph_args == (2, 3)
        assert Scenario.on("hypercube", 4).build().graph == "hypercube"

    def test_kind_and_payload(self):
        spec = (Scenario.of_kind("failure_mc").seed(1)
                .payload(f=1, p=0.05, trials=10).build())
        assert spec.kind == "failure_mc"
        assert spec.graph == ""
        assert spec.payload == {"f": 1, "p": 0.05, "trials": 10}

    def test_offsets_sugar(self):
        spec = Scenario.line(2).offsets([0.0, 1.0]).build()
        assert spec.config == {"cluster_offsets": [0.0, 1.0]}

    def test_configure_and_payload_merge(self):
        spec = (Scenario.line(2).configure(init_jitter=0.1)
                .configure(policy="max_rule").build())
        assert spec.config == {"init_jitter": 0.1, "policy": "max_rule"}
        spec = (Scenario.of_kind("trigger_fuzz").payload(trials=5)
                .payload(kappa=1.0).build())
        assert spec.payload == {"trials": 5, "kappa": 1.0}

    def test_measure_deduplicates(self):
        spec = (Scenario.line(1).measure("unanimity")
                .measure("unanimity", "amortized_rates").build())
        assert spec.collect == ("unanimity", "amortized_rates")


class TestImmutability:
    def test_methods_return_new_builders(self):
        base = Scenario.line(2).params(default_params()).rounds(3)
        fast = base.attack("equivocate")
        assert base.build().strategy is None
        assert fast.build().strategy == "equivocate"

    def test_shared_base_fans_out(self):
        base = Scenario.line(2).params(default_params()).rounds(2)
        specs = [base.tag("jitter", j).configure(init_jitter=j).build()
                 for j in (0.01, 0.02)]
        assert specs[0].config != specs[1].config
        assert specs[0].key == ("jitter", 0.01)

    def test_setattr_blocked(self):
        with pytest.raises(AttributeError):
            Scenario.line(2).rounds = 5


class TestValidation:
    def test_unknown_protocol_rejected_at_build(self):
        with pytest.raises(ConfigError) as err:
            Scenario.line(2).protocol("paxos").build()
        assert "ftgcs" in str(err.value)

    def test_unknown_schedule_rejected_at_build(self):
        with pytest.raises(ConfigError) as err:
            Scenario.line(2).dynamic("teleport").build()
        assert "churn" in str(err.value)

    def test_known_protocol_and_schedule_build(self):
        spec = (Scenario.line(2).protocol("gcs_single")
                .dynamic("churn", interval=5.0, churn=0.1).build())
        assert spec.kind == "protocol"
        assert spec.protocol == "gcs_single"
        assert spec.schedule == "churn"
        assert spec.schedule_args == {"interval": 5.0, "churn": 0.1}

    def test_of_protocol_entry_point(self):
        spec = Scenario.of_protocol("srikanth_toueg").build()
        assert spec.kind == "protocol"
        assert spec.protocol == "srikanth_toueg"
        assert spec.graph == ""

    def test_dynamic_on_incapable_protocol_rejected_at_build(self):
        with pytest.raises(ConfigError) as err:
            (Scenario.line(3).protocol("master_slave")
             .dynamic("churn", interval=1.0, churn=0.5).build())
        assert "dynamic" in str(err.value)
        # Legacy alias kinds get the same eager check.
        with pytest.raises(ConfigError):
            (Scenario.line(3).kind("srikanth_toueg")
             .dynamic("churn", interval=1.0, churn=0.5).build())
        # Capable protocols build fine.
        spec = (Scenario.line(3)
                .dynamic("churn", interval=1.0, churn=0.5).build())
        assert spec.schedule == "churn"

    def test_schedule_on_schedule_blind_kind_rejected(self):
        with pytest.raises(ConfigError):
            (Scenario.of_kind("failure_mc").payload(f=1, p=0.05,
                                                    trials=10)
             .dynamic("churn", interval=1.0, churn=0.5).build())

    def test_unknown_strategy_rejected_at_build(self):
        with pytest.raises(ConfigError):
            Scenario.line(2).attack("quantum").build()

    def test_unknown_kind_rejected_at_build(self):
        with pytest.raises(ConfigError):
            Scenario.line(2).kind("teleport").build()

    def test_unknown_collector_rejected_at_build(self):
        with pytest.raises(ConfigError):
            Scenario.line(2).measure("entropy").build()


class TestEndToEnd:
    def test_built_spec_runs(self):
        spec = (Scenario.line(2).params(default_params()).rounds(3)
                .seed(5).attack("silent").build())
        cell = run_cell(spec)
        assert cell.result.protocol == "ftgcs"
        assert cell.result.detail.missing_pulses > 0


class TestFirstContactValidation:
    def test_first_contact_builds_for_ftgcs(self):
        spec = (Scenario.line(2).params(default_params(f=1)).rounds(2)
                .dynamic("adversarial_sweep", interval=10.0)
                .first_contact().build())
        assert spec.first_contact

    def test_first_contact_on_incapable_protocol_rejected(self):
        with pytest.raises(ConfigError) as err:
            Scenario.ring(4).protocol("gcs_single").first_contact().build()
        assert "first-contact" in str(err.value)

    def test_first_contact_on_schedule_blind_kind_rejected(self):
        with pytest.raises(ConfigError):
            Scenario.of_kind("failure_mc").first_contact().build()

    def test_first_contact_spec_runs_end_to_end(self):
        params = default_params(f=1)
        spec = (Scenario.line(3).params(params).rounds(4).seed(5)
                .dynamic("adversarial_sweep",
                         interval=params.round_length)
                .first_contact().build())
        cell = run_cell(spec)
        # The walking cut leaves edge (0,1) down at start, so its
        # estimators come up from dormant once the cut moves on, and
        # the cut returning forces resyncs.
        assert cell.result.detail.estimator_bring_ups > 0
        assert cell.result.detail.estimator_resyncs > 0
        assert cell.result.messages_dropped > 0
