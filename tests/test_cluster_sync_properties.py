"""Property-based tests for the ClusterSync engine.

These check the *unconditional* invariants of Algorithm 1 — the ones
that must survive arbitrary (including Byzantine-garbage) pulse
patterns because the GCS layer's axioms depend on them:

* corrections are always clamped into ``[-phi*tau3, +phi*tau3]``;
* hence ``delta_v in [0, 2/(1-phi)]`` and logical rates stay within
  the Lemma B.4 envelope;
* Lemma 3.1: the round's real duration on a unit-rate clock equals
  ``(T + Delta) / (1 + phi)`` exactly, whatever Delta resulted.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clocks import ConstantRate, HardwareClock, LogicalClock
from repro.core.cluster_sync import ClusterSyncCore
from repro.core.params import Parameters
from repro.core.rounds import RoundSchedule
from repro.sim import Simulator

PARAMS = Parameters.practical(rho=1e-4, d=1.0, u=0.1, f=1)
PEERS = (101, 102, 103)


def run_one_round(pulse_offsets):
    """Run round 1 with each peer's pulse at the given real-time
    offset into the round (``None`` = never arrives)."""
    sim = Simulator()
    hw = HardwareClock(sim, ConstantRate(1.0), rho=PARAMS.rho)
    clock = LogicalClock(sim, hw, phi=PARAMS.phi, mu=PARAMS.mu)
    schedule = RoundSchedule(PARAMS)
    core = ClusterSyncCore(
        clock, schedule, 0.0, PEERS, PARAMS.f,
        self_delay=lambda: PARAMS.d, broadcast=None, record_rounds=True)
    core.start()
    for peer, offset in zip(PEERS, pulse_offsets):
        if offset is not None:
            sim.call_at(offset, core.on_pulse, peer, offset)
    sim.run(until=1.5 * PARAMS.round_length)
    return sim, clock, core


# Phase 2 ends (on a unit-rate clock with delta=1) at this real time;
# pulses anywhere in [0, end) exercise the full sample range.
PHASE2_END_REAL = (PARAMS.tau1 + PARAMS.tau2) / (1 + PARAMS.phi)

pulse_offset = st.one_of(
    st.none(), st.floats(0.001, PHASE2_END_REAL * 0.999))


class TestUnconditionalInvariants:
    @given(offsets=st.tuples(pulse_offset, pulse_offset, pulse_offset))
    @settings(max_examples=80, deadline=None)
    def test_correction_always_clamped(self, offsets):
        _sim, _clock, core = run_one_round(offsets)
        assert core.stats.corrections, "round must complete"
        cap = PARAMS.phi * PARAMS.tau3
        for correction in core.stats.corrections:
            assert -cap - 1e-9 <= correction <= cap + 1e-9

    @given(offsets=st.tuples(pulse_offset, pulse_offset, pulse_offset))
    @settings(max_examples=80, deadline=None)
    def test_lemma_3_1_holds_for_any_pulses(self, offsets):
        """Real round duration == (T + Delta) / (1 + phi) exactly."""
        _sim, _clock, core = run_one_round(offsets)
        record = core.records[0]
        delta_corr = core.stats.corrections[0]
        expected = ((PARAMS.round_length + delta_corr)
                    / (1 + PARAMS.phi))
        assert (record.t_end - record.t_start) == pytest.approx(
            expected, rel=1e-9)

    @given(offsets=st.tuples(pulse_offset, pulse_offset, pulse_offset))
    @settings(max_examples=80, deadline=None)
    def test_delta_v_in_lemma_b4_range(self, offsets):
        sim, clock, core = run_one_round(offsets)
        assert 0.0 <= clock.delta <= 2.0 / (1.0 - PARAMS.phi) + 1e-12

    @given(offsets=st.tuples(pulse_offset, pulse_offset, pulse_offset),
           extra_pulses=st.integers(0, 6))
    @settings(max_examples=50, deadline=None)
    def test_flooding_never_stalls_rounds(self, offsets, extra_pulses):
        """A peer spamming extra pulses cannot stop round progress."""
        sim = Simulator()
        hw = HardwareClock(sim, ConstantRate(1.0), rho=PARAMS.rho)
        clock = LogicalClock(sim, hw, phi=PARAMS.phi, mu=PARAMS.mu)
        schedule = RoundSchedule(PARAMS)
        core = ClusterSyncCore(
            clock, schedule, 0.0, PEERS, PARAMS.f,
            self_delay=lambda: PARAMS.d, broadcast=None)
        core.start()
        for peer, offset in zip(PEERS, offsets):
            if offset is not None:
                sim.call_at(offset, core.on_pulse, peer, offset)
        for i in range(extra_pulses):
            sim.call_at(0.5 + 0.01 * i, core.on_pulse, PEERS[0],
                        0.5 + 0.01 * i)
        sim.run(until=3.2 * PARAMS.round_length)
        assert core.stats.rounds_completed >= 3
