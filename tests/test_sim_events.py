"""Unit tests for the event queue primitives."""

import pytest

from repro.sim.events import Event, EventQueue


class TestEventOrdering:
    def test_orders_by_time(self):
        queue = EventQueue()
        fired = []
        queue.push(2.0, fired.append, ("b",))
        queue.push(1.0, fired.append, ("a",))
        queue.push(3.0, fired.append, ("c",))
        for event in queue.drain():
            event.fire()
        assert fired == ["a", "b", "c"]

    def test_fifo_among_simultaneous_events(self):
        queue = EventQueue()
        fired = []
        for tag in ("first", "second", "third"):
            queue.push(5.0, fired.append, (tag,))
        for event in queue.drain():
            event.fire()
        assert fired == ["first", "second", "third"]

    def test_len_counts_live_events(self):
        queue = EventQueue()
        e1 = queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        assert len(queue) == 2
        queue.cancel(e1)
        assert len(queue) == 1

    def test_event_repr_and_lt(self):
        a = Event(1.0, 0, lambda: None, ())
        b = Event(1.0, 1, lambda: None, ())
        c = Event(0.5, 2, lambda: None, ())
        assert a < b
        assert c < a


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        queue = EventQueue()
        fired = []
        event = queue.push(1.0, fired.append, ("x",))
        queue.cancel(event)
        assert queue.pop() is None
        assert fired == []

    def test_double_cancel_is_idempotent(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda: None)
        queue.cancel(event)
        queue.cancel(event)
        assert len(queue) == 0

    def test_cancel_releases_references(self):
        queue = EventQueue()
        payload = object()
        event = queue.push(1.0, lambda x: None, (payload,))
        queue.cancel(event)
        assert event.args == ()

    def test_cancel_after_fire_does_not_corrupt_live_count(self):
        # Regression: cancelling a stale reference to an event that
        # already fired used to decrement the live count a second time.
        queue = EventQueue()
        fired = []
        stale = queue.push(1.0, fired.append, ("x",))
        queue.push(2.0, fired.append, ("y",))
        popped = queue.pop()
        popped.fire()
        assert popped is stale and fired == ["x"]
        queue.cancel(stale)  # stale handle; the event already fired
        assert len(queue) == 1
        assert queue.pop() is not None
        assert len(queue) == 0

    def test_cancel_after_fire_is_flagged_but_harmless(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda: None)
        queue.pop()
        queue.cancel(event)
        assert event.cancelled
        assert len(queue) == 0

    def test_compaction_keeps_heap_within_twice_live(self):
        from repro.sim.events import COMPACT_MIN_SIZE

        queue = EventQueue()
        live = [queue.push(float(i), lambda: None) for i in range(200)]
        for i in range(5_000):
            slot = i % 200
            queue.cancel(live[slot])
            live[slot] = queue.push(1000.0 + i, lambda: None)
            assert queue.heap_size <= max(COMPACT_MIN_SIZE,
                                          2 * len(queue))
        assert len(queue) == 200

    def test_peek_time_skips_cancelled(self):
        queue = EventQueue()
        e1 = queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        queue.cancel(e1)
        assert queue.peek_time() == 2.0

    def test_peek_time_empty(self):
        assert EventQueue().peek_time() is None
