"""Tests for the experiment registry and its uniform run path."""

import pytest

from repro.errors import ConfigError
from repro.harness.registry import (
    REGISTRY,
    Experiment,
    ExperimentPlan,
    ExperimentRegistry,
    run_experiment,
)
from repro.harness.tables import Table


class TestRegistryContents:
    def test_all_eighteen_registered(self):
        assert REGISTRY.ids() == [f"t{i:02d}" for i in range(1, 19)]
        assert len(REGISTRY) == 18

    def test_metadata_complete(self):
        for experiment in REGISTRY:
            assert experiment.id
            assert experiment.title
            assert experiment.claim
            assert len(experiment.columns) >= 3
            assert isinstance(experiment.default_seed, int)

    def test_titles_carry_t_identifiers(self):
        for experiment in REGISTRY:
            number = int(experiment.id[1:])
            assert experiment.title.startswith(f"T{number} ")

    def test_contains_and_get(self):
        assert "t05" in REGISTRY
        assert "t99" not in REGISTRY
        assert REGISTRY.get("t05").id == "t05"

    def test_unknown_id_rejected(self):
        with pytest.raises(ConfigError):
            REGISTRY.get("t99")
        with pytest.raises(ConfigError):
            run_experiment("nope")

    def test_plans_compile_without_running(self):
        # Both grid sizes build for every experiment; quick never
        # exceeds full.
        for experiment in REGISTRY:
            quick = experiment.plan(quick=True,
                                    seed=experiment.default_seed)
            full = experiment.plan(quick=False,
                                   seed=experiment.default_seed)
            assert quick.specs
            assert len(quick.specs) <= len(full.specs)
            # Cells either pin an explicit seed or leave seed=None for
            # the runner's deterministic per-cell derivation from the
            # experiment's base seed (t13 uses the derived path).
            for spec in quick.specs:
                assert spec.seed is None or isinstance(spec.seed, int)


class TestRegistryValidation:
    def _plan(self, quick, seed):
        return ExperimentPlan(specs=[], finish=lambda cells, table: table)

    def test_duplicate_id_rejected(self):
        registry = ExperimentRegistry()
        registry.add(Experiment(id="x", title="X", claim="c",
                                columns=("a",), plan=self._plan))
        with pytest.raises(ConfigError):
            registry.add(Experiment(id="x", title="X2", claim="c",
                                    columns=("a",), plan=self._plan))

    def test_incomplete_metadata_rejected(self):
        registry = ExperimentRegistry()
        with pytest.raises(ConfigError):
            registry.add(Experiment(id="y", title="", claim="c",
                                    columns=("a",), plan=self._plan))
        with pytest.raises(ConfigError):
            registry.add(Experiment(id="y", title="t", claim="c",
                                    columns=(), plan=self._plan))

    def test_decorator_registers(self):
        registry = ExperimentRegistry()

        @registry.experiment("z", title="Z", claim="c", columns=("a",))
        def plan(quick, seed):
            return ExperimentPlan(
                specs=[], finish=lambda cells, table: table)

        assert registry._experiments["z"].plan is plan


class TestRunExperiment:
    @pytest.mark.parametrize("experiment_id",
                             [f"t{i:02d}" for i in range(1, 19)])
    def test_every_experiment_runs_quick(self, experiment_id):
        experiment = REGISTRY.get(experiment_id)
        table = run_experiment(experiment_id, quick=True)
        assert isinstance(table, Table)
        assert table.title == experiment.title
        assert tuple(table.columns) == experiment.columns
        assert table.rows

    def test_serial_vs_parallel_bit_identical(self):
        # T5 shares one Monte Carlo RNG stream across its grid — the
        # hardest case for the parallel split.
        serial = run_experiment("t05", quick=True, processes=1)
        parallel = run_experiment("t05", quick=True, processes=3)
        assert serial.rows == parallel.rows
        assert serial.format() == parallel.format()

    def test_dynamic_experiments_serial_vs_parallel(self):
        # The dynamic-topology experiments (adversarial schedules +
        # first-contact bring-up) must also be pool-size invariant.
        for experiment_id in ("t13", "t15"):
            serial = run_experiment(experiment_id, quick=True,
                                    processes=1)
            parallel = run_experiment(experiment_id, quick=True,
                                      processes=2)
            assert serial.rows == parallel.rows
            assert serial.notes == parallel.notes

    def test_seed_override_changes_monte_carlo(self):
        default = run_experiment("t05", quick=True)
        reseeded = run_experiment("t05", quick=True, seed=99)
        assert default.column("monte carlo") != \
            reseeded.column("monte carlo")
        # The analytic columns do not depend on the seed.
        assert default.column("exact tail") == \
            reseeded.column("exact tail")

    def test_default_seed_used(self):
        assert run_experiment("t05", quick=True).rows == \
            run_experiment("t05", quick=True, seed=5).rows


class TestT14ProtocolGrid:
    """The full-mode Gradient-TRIX grid: D=32/64 rows, the FTGCS
    comparison block, and the kappa regression column."""

    @pytest.fixture(scope="class")
    def table(self):
        return run_experiment("t14", quick=True)

    def test_grid_covers_large_diameters(self, table):
        diameters = {d for d, p in zip(table.column("D"),
                                       table.column("protocol"))
                     if p == "gcs"}
        assert {4, 8, 32, 64} <= diameters

    def test_ftgcs_block_present_on_same_mu_grid(self, table):
        gcs_mus = {mu for mu, p in zip(table.column("mu"),
                                       table.column("protocol"))
                   if p == "gcs"}
        ftgcs_mus = {mu for mu, p in zip(table.column("mu"),
                                         table.column("protocol"))
                     if p == "ftgcs"}
        assert ftgcs_mus == gcs_mus

    def test_feasible_ftgcs_rows_carry_exact_mu(self, table):
        from repro.harness.experiments import ftgcs_params_for_mu

        rows = [row for row in table.rows if row[0] == "ftgcs"]
        assert rows
        feasible = [row for row in rows if row[3] is not None]
        infeasible = [row for row in rows if row[3] is None]
        assert len(feasible) >= 2  # enough points for the fit
        for row in feasible:
            params = ftgcs_params_for_mu(row[2])
            assert params is not None
            assert params.mu == row[2]  # power-of-two rho keeps mu exact
            assert params.kappa == row[3]
        for row in infeasible:
            assert ftgcs_params_for_mu(row[2]) is None

    def test_regression_column_matches_hand_computed_fit(self, table):
        from repro.analysis.metrics import log_log_fit

        for group_protocol, group_d in (("gcs", 4), ("gcs", 64),
                                        ("ftgcs", 4)):
            rows = [row for row in table.rows
                    if row[0] == group_protocol and row[1] == group_d]
            points = [(row[3], row[4]) for row in rows
                      if row[3] is not None and row[3] > 0
                      and row[4] > 0]
            slope, _intercept, residual = log_log_fit(
                [p[0] for p in points], [p[1] for p in points])
            for row in rows:
                if row[3] is None:
                    # Infeasible rows carry no fit at all.
                    assert row[7] is None and row[8] is None
                    continue
                assert row[7] == slope
                assert row[8] == residual

    def test_skew_tracks_kappa(self, table):
        # The headline regression: slope near 1, small residual, for
        # every diameter group.
        for row in table.rows:
            if row[0] != "gcs":
                continue
            assert 0.7 <= row[7] <= 1.3
            assert row[8] < 0.25
        # Feasible ftgcs rows carry the block's own fit, near slope 1.
        ftgcs_slopes = {row[7] for row in table.rows
                        if row[0] == "ftgcs" and row[7] is not None}
        assert ftgcs_slopes
        for slope in ftgcs_slopes:
            assert 0.7 <= slope <= 1.3

    def test_deterministic_and_pool_invariant(self, table):
        again = run_experiment("t14", quick=True)
        assert again.rows == table.rows
        pooled = run_experiment("t14", quick=True, processes=2)
        assert pooled.rows == table.rows
        assert pooled.notes == table.notes


class TestT17VectorizedScale:
    """t17: cross-engine skew agreement plus the 1e5-node D=256 cell."""

    @pytest.fixture(scope="class")
    def table(self):
        return run_experiment("t17", quick=True)

    def test_quick_shape(self, table):
        # Three small diameters x two engines, plus two big cells.
        assert len(table.rows) == 8
        assert table.columns[:4] == ["topology", "D", "nodes", "engine"]

    def test_small_d_rows_agree_across_engines(self, table):
        vec_line_rows = [row for row in table.rows
                        if row[0] == "line" and row[3] == "vectorized"]
        assert len(vec_line_rows) == 3
        for row in vec_line_rows:
            assert row[8] is True  # agrees within one level width

    def test_d256_cell_has_1e5_nodes_and_throughput(self, table):
        big = [row for row in table.rows if row[1] == 256]
        assert len(big) == 1
        row = big[0]
        assert row[0] == "caterpillar"
        assert row[2] >= 100_000
        assert row[3] == "vectorized"
        assert row[7] > 0  # measured rounds/s

    def test_skew_columns_deterministic(self, table):
        # rounds/s is wall clock; every other column is reproducible.
        again = run_experiment("t17", quick=True)
        stable = [row[:7] + row[8:] for row in table.rows]
        assert stable == [row[:7] + row[8:] for row in again.rows]


class TestTableContentSmoke:
    """Per-table content checks for the experiments that previously
    rode only the generic all-registry loops (the lint
    registry-coverage rule requires every id to be referenced by at
    least one test)."""

    def test_t04_master_slave_leaks_skew_ftgcs_caps_it(self):
        table = run_experiment("t04", quick=True)
        assert table.columns[0] == "D"
        assert len(table.rows) == 2  # D = 3, 5 quick
        for row in table.rows:
            injected, ms_max, ft_max, cap, ratio = row[1:6]
            # Master-slave carries most of the injected skew across
            # interior edges; FTGCS stays under its 2*kappa cap.
            assert ratio > 0.5
            assert ms_max > ft_max
            assert ft_max <= cap

    def test_t06_unanimous_rates_hold(self):
        table = run_experiment("t06", quick=True)
        holds = table.column("holds")
        assert holds and all(holds)
        assert set(table.column("mode")) == {"fast", "slow"}

    def test_t11_lw_tracks_bound_st_carries_od(self):
        table = run_experiment("t11", quick=True)
        assert len(table.rows) == 2  # U/d = 0.2, 0.05 quick
        for row in table.rows:
            lw_skew, lw_bound, st_skew, st_bound = row[1:5]
            assert lw_skew <= lw_bound
            assert st_skew <= st_bound
        # Lynch-Welch's skew shrinks with U; Srikanth-Toueg's O(d)
        # worst case does not improve with it.
        lw = table.column("LW steady skew")
        assert lw[1] <= lw[0]

    def test_t18_resilience_rows_within_envelope(self):
        table = run_experiment("t18", quick=True)
        protected = [row for row in table.rows
                     if row[1] != "none" and row[0] != "gcs_single"]
        assert protected
        assert all(row[8] is True for row in protected)
        assert set(table.column("engine")) == {"event", "vectorized"}
