"""Integration tests: the full FTGCS system on small topologies."""

import pytest

from repro.core.params import Parameters
from repro.core.system import FtgcsSystem, SystemConfig
from repro.errors import ConfigError
from repro.faults import (
    ColludingEquivocatorStrategy,
    CrashStrategy,
    EquivocatorStrategy,
    FastClockStrategy,
    PullApartStrategy,
    RandomPulseStrategy,
    SilentStrategy,
    place_everywhere,
    place_in_clusters,
)
from repro.topology import ClusterGraph


@pytest.fixture(scope="module")
def params():
    return Parameters.practical(rho=1e-4, d=1.0, u=0.1, f=1)


@pytest.fixture(scope="module")
def params_f0():
    return Parameters.practical(rho=1e-4, d=1.0, u=0.1, f=0)


@pytest.fixture(scope="module")
def params_fast():
    """Short-round parameters for the dynamic-topology tests."""
    return Parameters.practical(rho=1e-4, d=1.0, u=0.05, f=1,
                                eps=0.2, k_stab=1)


class TestFaultFree:
    def test_line_converges_within_bounds(self, params):
        system = FtgcsSystem.build(ClusterGraph.line(3), params, seed=1)
        result = system.run_rounds(12)
        assert result.rounds_completed >= 12
        assert result.within_intra_bound
        assert result.within_local_cluster_bound
        assert result.within_global_bound
        assert result.missing_pulses == 0
        assert result.clamped_corrections == 0
        assert result.both_triggers_rounds == 0

    def test_estimate_error_within_corollary_3_5(self, params):
        system = FtgcsSystem.build(ClusterGraph.line(3), params, seed=2)
        result = system.run_rounds(10)
        assert result.max_estimate_error <= params.estimate_error_bound()

    def test_intra_skew_below_paper_bound(self, params):
        system = FtgcsSystem.build(ClusterGraph.ring(3), params, seed=3)
        result = system.run_rounds(10)
        assert (result.max_intra_cluster_skew
                <= params.intra_skew_bound_paper())

    def test_single_cluster_is_plain_lynch_welch(self, params):
        system = FtgcsSystem.build(ClusterGraph.line(1), params, seed=4)
        result = system.run_rounds(10)
        assert result.max_local_cluster_skew == 0.0
        assert result.within_intra_bound

    def test_f0_minimal_system(self, params_f0):
        system = FtgcsSystem.build(ClusterGraph.line(3), params_f0,
                                   seed=5)
        result = system.run_rounds(8)
        assert result.within_intra_bound
        assert result.rounds_completed >= 8

    def test_determinism(self, params):
        results = []
        for _ in range(2):
            system = FtgcsSystem.build(ClusterGraph.line(3), params,
                                       seed=42)
            results.append(system.run_rounds(6))
        a, b = results
        assert a.max_global_skew == b.max_global_skew
        assert a.max_intra_cluster_skew == b.max_intra_cluster_skew
        assert a.messages_sent == b.messages_sent
        assert a.events_processed == b.events_processed

    def test_seed_changes_execution(self, params):
        a = FtgcsSystem.build(ClusterGraph.line(3), params,
                              seed=1).run_rounds(6)
        b = FtgcsSystem.build(ClusterGraph.line(3), params,
                              seed=2).run_rounds(6)
        assert a.max_global_skew != b.max_global_skew

    def test_report_renders(self, params):
        system = FtgcsSystem.build(ClusterGraph.line(2), params, seed=9)
        result = system.run_rounds(5)
        text = result.report()
        assert "global skew" in text
        assert "VIOLATED" not in text

    def test_pulse_diameters_within_e(self, params):
        system = FtgcsSystem.build(ClusterGraph.line(3), params, seed=6)
        system.run_rounds(10)
        table = system.pulse_diameter_table()
        assert table  # pulses were logged
        for (cluster, round_index), diameter in table.items():
            assert diameter <= params.cap_e + 1e-9


class TestInitialOffsets:
    def test_gradient_triggers_fast_mode(self, params):
        """A cluster lagging its neighbor by > 2*kappa must go fast
        (FT) while the leader goes slow (ST)."""
        offset = 2.5 * params.kappa
        config = SystemConfig(cluster_offsets=[0.0, offset])
        system = FtgcsSystem.build(ClusterGraph.line(2), params, seed=7,
                                   config=config)
        result = system.run_rounds(6)
        assert result.fast_rounds > 0
        # The laggards are cluster 0's members.
        for node in system.honest_nodes():
            modes = dict(node.stats.mode_by_round)
            if node.cluster_id == 0:
                assert modes[1] == 1  # fast from the first round
            else:
                assert modes[1] == 0

    def test_fast_mode_reduces_gap(self, params):
        offset = 2.5 * params.kappa
        config = SystemConfig(cluster_offsets=[0.0, offset],
                              record_series=True)
        system = FtgcsSystem.build(ClusterGraph.line(2), params, seed=8,
                                   config=config)
        result = system.run_rounds(12)
        first = result.series[0].max_local_cluster
        last = result.series[-1].max_local_cluster
        # Fast mode gains ~ mu per unit time over slow mode.
        assert last < first

    def test_offsets_validation(self, params):
        config = SystemConfig(cluster_offsets=[0.0])
        with pytest.raises(ConfigError):
            FtgcsSystem.build(ClusterGraph.line(2), params, seed=0,
                              config=config)


class TestByzantine:
    def run_with(self, params, graph, factory, seed, rounds=10,
                 per_cluster=1):
        aug = graph.augment(params.cluster_size)
        byz = place_everywhere(aug, per_cluster, factory)
        config = SystemConfig(byzantine=byz)
        system = FtgcsSystem.build(graph, params, seed=seed,
                                   config=config)
        return system.run_rounds(rounds)

    def test_silent_faults_bounds_hold(self, params):
        result = self.run_with(params, ClusterGraph.line(3),
                               lambda n: SilentStrategy(), seed=10)
        assert result.within_intra_bound
        assert result.within_local_cluster_bound
        assert result.missing_pulses > 0

    def test_equivocator_bounds_hold(self, params):
        result = self.run_with(params, ClusterGraph.line(3),
                               lambda n: EquivocatorStrategy(), seed=11)
        assert result.within_intra_bound
        assert result.within_local_cluster_bound

    def test_pull_apart_bounds_hold(self, params):
        result = self.run_with(params, ClusterGraph.ring(3),
                               lambda n: PullApartStrategy(), seed=12)
        assert result.within_intra_bound

    def test_colluding_equivocators_bounds_hold(self, params):
        result = self.run_with(
            params, ClusterGraph.line(3),
            lambda n: ColludingEquivocatorStrategy(), seed=16)
        assert result.within_intra_bound
        assert result.within_local_cluster_bound

    def test_random_pulses_bounds_hold(self, params):
        result = self.run_with(
            params, ClusterGraph.line(2),
            lambda n: RandomPulseStrategy(pulses_per_round=5.0), seed=13)
        assert result.within_intra_bound
        assert result.stale_pulses + result.flooded_pulses > 0

    def test_fast_clock_bounds_hold(self, params):
        result = self.run_with(params, ClusterGraph.line(2),
                               lambda n: FastClockStrategy(1.5), seed=14)
        assert result.within_intra_bound

    def test_crash_mid_run(self, params):
        crash_time = 3 * params.round_length
        result = self.run_with(params, ClusterGraph.line(2),
                               lambda n: CrashStrategy(crash_time),
                               seed=15)
        assert result.within_intra_bound
        assert result.rounds_completed >= 10

    def test_fault_budget_enforced(self, params):
        graph = ClusterGraph.line(2)
        aug = graph.augment(params.cluster_size)
        byz = place_in_clusters(aug, [0], per_cluster=2,
                                factory=lambda n: SilentStrategy())
        with pytest.raises(ConfigError):
            FtgcsSystem.build(graph, params, seed=0,
                              config=SystemConfig(byzantine=byz))

    def test_fault_overflow_opt_in(self, params):
        graph = ClusterGraph.line(2)
        aug = graph.augment(params.cluster_size)
        byz = place_in_clusters(aug, [0], per_cluster=2,
                                factory=lambda n: SilentStrategy())
        config = SystemConfig(byzantine=byz, allow_fault_overflow=True)
        system = FtgcsSystem.build(graph, params, seed=0, config=config)
        result = system.run_rounds(5)  # runs; bounds may legitimately fail
        assert result.rounds_completed >= 5


class TestMaxEstimate:
    def test_max_rule_system_runs(self, params):
        config = SystemConfig(policy="max_rule", enable_max_estimate=True)
        system = FtgcsSystem.build(ClusterGraph.line(3), params, seed=20,
                                   config=config)
        result = system.run_rounds(8)
        assert result.within_intra_bound
        assert result.rounds_completed >= 8

    def test_lagging_cluster_rescued_by_max_rule(self, params):
        """A cluster behind by far more than any trigger level still
        catches up via the M_v rule (Theorem C.3)."""
        lag = params.c_global * params.delta_trigger + 5 * params.kappa
        config = SystemConfig(
            policy="max_rule", enable_max_estimate=True,
            cluster_offsets=[0.0, lag], record_series=True)
        system = FtgcsSystem.build(ClusterGraph.line(2), params, seed=21,
                                   config=config)
        result = system.run_rounds(10)
        activations = sum(n.intercluster.stats.max_rule_activations
                          for n in system.honest_nodes())
        # The laggard sees its neighbor 5*kappa ahead -> FT fires, so
        # max-rule activations may be zero here; what matters is that
        # the gap shrinks.
        first = result.series[0].global_skew
        last = result.series[-1].global_skew
        assert last < first


class TestConfigSurface:
    def test_rate_model_specs(self, params):
        for spec in ("uniform", "extremes", "min", "max", "flip"):
            system = FtgcsSystem.build(
                ClusterGraph.line(2), params, seed=30,
                config=SystemConfig(rate_model=spec))
            result = system.run_rounds(3)
            assert result.rounds_completed >= 3

    def test_delay_model_specs(self, params):
        for spec in ("uniform", "min", "max"):
            system = FtgcsSystem.build(
                ClusterGraph.line(2), params, seed=31,
                config=SystemConfig(delay_model=spec))
            result = system.run_rounds(3)
            assert result.rounds_completed >= 3

    def test_unknown_specs_rejected(self, params):
        with pytest.raises(ConfigError):
            FtgcsSystem.build(ClusterGraph.line(2), params, seed=0,
                              config=SystemConfig(rate_model="warp"))
        with pytest.raises(ConfigError):
            FtgcsSystem.build(ClusterGraph.line(2), params, seed=0,
                              config=SystemConfig(delay_model="warp"))

    def test_custom_factories(self, params):
        from repro.clocks import ConstantRate
        from repro.net import FixedDelay

        config = SystemConfig(
            rate_model=lambda n, rng, p: ConstantRate(1.0),
            delay_model=lambda a, b, rng, p: FixedDelay(p.d))
        system = FtgcsSystem.build(ClusterGraph.line(2), params, seed=32,
                                   config=config)
        result = system.run_rounds(3)
        assert result.rounds_completed >= 3

    def test_run_rounds_validation(self, params):
        system = FtgcsSystem.build(ClusterGraph.line(2), params, seed=33)
        with pytest.raises(ConfigError):
            system.run_rounds(0)

    def test_adaptive_schedule_loose_init(self, params):
        config = SystemConfig(e1=4 * params.cap_e,
                              init_jitter=2 * params.cap_e)
        system = FtgcsSystem.build(ClusterGraph.line(2), params, seed=34,
                                   config=config)
        result = system.run_rounds(8)
        assert result.rounds_completed >= 8
        # With jitter within e(1), rounds stay proper.
        assert result.clamped_corrections == 0

    def test_unanimity_tracking(self, params):
        system = FtgcsSystem.build(ClusterGraph.line(2), params, seed=35)
        system.run_rounds(6)
        unanimity = system.cluster_unanimity(0)
        assert unanimity
        # Fault-free quiescent system: all-slow everywhere.
        for round_index, (unanimous, gamma) in unanimity.items():
            assert unanimous
            assert gamma == 0


class TestBatchedDeliveryEquivalence:
    def test_batched_flag_changes_nothing_but_event_count(self, params):
        results = {}
        for batched in (True, False):
            config = SystemConfig(record_series=True, track_edges=True,
                                  batched_delivery=batched)
            system = FtgcsSystem.build(ClusterGraph.line(3), params,
                                       seed=11, config=config)
            results[batched] = system.run_rounds(6)
        a, b = results[True], results[False]
        assert a.series == b.series
        assert a.max_global_skew == b.max_global_skew
        assert a.max_local_cluster_skew == b.max_local_cluster_skew
        assert a.max_local_node_skew == b.max_local_node_skew
        assert a.edge_maxima == b.edge_maxima
        assert a.messages_sent == b.messages_sent
        # The batched path is the whole point: far fewer kernel events.
        assert a.events_processed < b.events_processed


class TestReannounceCap:
    def toggle_edge(self, system, active):
        for na in system.graph.members(0):
            for nb in system.graph.members(1):
                system.network.set_link_active(na, nb, active)
        system.notify_cluster_edge((0, 1), active)

    def test_capped_run_reports_hits(self, params_fast):
        config = SystemConfig(
            enable_max_estimate=True,
            max_estimate_unit=params_fast.kappa / 4.0,
            dynamic_estimators=True, max_reannounce_levels=2)
        system = FtgcsSystem.build(ClusterGraph.line(2), params_fast,
                                   seed=5, config=config)
        system.start()
        # Long enough that every node's announced level far exceeds
        # the cap of 2 before the outage ends.
        system.sim.run(20 * params_fast.round_length)
        self.toggle_edge(system, False)
        system.sim.run(system.sim.now + 2 * params_fast.round_length)
        self.toggle_edge(system, True)
        system.sim.run(system.sim.now + 2 * params_fast.round_length)
        result = system.result()
        assert result.reannounce_cap_hits > 0
        assert result.reannounce_cap_hits == sum(
            node.stats.reannounce_cap_hits
            for node in system.honest_nodes())

    def test_uncapped_run_reports_none(self, params_fast):
        config = SystemConfig(
            enable_max_estimate=True,
            max_estimate_unit=params_fast.kappa / 4.0,
            dynamic_estimators=True, max_reannounce_levels=100_000)
        system = FtgcsSystem.build(ClusterGraph.line(2), params_fast,
                                   seed=5, config=config)
        system.start()
        system.sim.run(20 * params_fast.round_length)
        self.toggle_edge(system, False)
        system.sim.run(system.sim.now + 2 * params_fast.round_length)
        self.toggle_edge(system, True)
        system.sim.run(system.sim.now + 2 * params_fast.round_length)
        result = system.result()
        assert result.reannounce_cap_hits == 0
        # The re-announcement itself did happen.
        assert sum(node.stats.max_reannounce_pulses
                   for node in system.honest_nodes()) > 0

    def test_cap_must_be_positive(self, params_fast):
        config = SystemConfig(dynamic_estimators=True,
                              max_reannounce_levels=0)
        with pytest.raises(ConfigError):
            FtgcsSystem.build(ClusterGraph.line(2), params_fast,
                              seed=5, config=config)
