"""Unit tests for InterclusterSync mode policies."""

import pytest

from repro.core.intercluster import InterclusterSync
from repro.core.params import Parameters
from repro.errors import ConfigError


@pytest.fixture
def params():
    return Parameters.practical(rho=1e-4, d=1.0, u=0.1, f=1)


class StubMax:
    def __init__(self, value):
        self._value = value

    def value(self):
        return self._value


def make_sync(params, policy, own, estimates, max_value=None,
              record=False):
    max_est = StubMax(max_value) if max_value is not None else None
    return InterclusterSync(
        params, policy, own_value=lambda: own,
        estimate_values=lambda: dict(estimates),
        max_estimate=max_est, record_history=record)


class TestPolicies:
    def test_fast_trigger_wins(self, params):
        sync = make_sync(params, "slow_default", 0.0,
                         {1: 2 * params.kappa})
        assert sync.decide(1) == 1
        assert sync.stats.fast_rounds == 1

    def test_slow_trigger_yields_slow(self, params):
        sync = make_sync(params, "slow_default", 0.0,
                         {1: -2 * params.kappa})
        assert sync.decide(1) == 0

    def test_slow_default_without_triggers(self, params):
        sync = make_sync(params, "slow_default", 0.0, {1: 0.0})
        assert sync.decide(1) == 0

    def test_algorithm2_holds_previous_mode(self, params):
        sync = make_sync(params, "algorithm2", 0.0, {1: 0.0})
        # Start slow; no triggers: stays slow.
        assert sync.decide(1) == 0
        # Force fast via a changed estimate snapshot.
        sync._estimate_values = lambda: {1: 2 * params.kappa}
        assert sync.decide(2) == 1
        # Back to neutral: holds fast.
        sync._estimate_values = lambda: {1: 0.0}
        assert sync.decide(3) == 1

    def test_max_rule_activates_when_lagging(self, params):
        lag = params.c_global * params.delta_trigger + 1.0
        sync = make_sync(params, "max_rule", 0.0, {1: 0.0},
                         max_value=lag)
        assert sync.decide(1) == 1
        assert sync.stats.max_rule_activations == 1

    def test_max_rule_idle_when_current(self, params):
        sync = make_sync(params, "max_rule", 0.0, {1: 0.0},
                         max_value=0.0)
        assert sync.decide(1) == 0
        assert sync.stats.max_rule_activations == 0

    def test_max_rule_defers_to_triggers(self, params):
        # Slow trigger fires even though the node lags the max badly:
        # Theorem C.3's rule list puts triggers first.
        lag = params.c_global * params.delta_trigger + 1.0
        sync = make_sync(params, "max_rule", 0.0,
                         {1: -2 * params.kappa}, max_value=lag)
        assert sync.decide(1) == 0

    def test_unknown_policy_rejected(self, params):
        with pytest.raises(ConfigError):
            make_sync(params, "yolo", 0.0, {})

    def test_max_rule_requires_estimate(self, params):
        with pytest.raises(ConfigError):
            InterclusterSync(params, "max_rule", lambda: 0.0,
                             lambda: {})


class TestRecording:
    def test_history_records_decisions(self, params):
        sync = make_sync(params, "slow_default", 0.0,
                         {1: 2 * params.kappa}, record=True)
        sync.decide(1)
        sync._estimate_values = lambda: {1: 0.0}
        sync.decide(2)
        history = sync.stats.history
        assert len(history) == 2
        assert history[0].round_index == 1
        assert history[0].gamma == 1
        assert history[0].fast_trigger
        assert history[1].gamma == 0

    def test_mode_counters(self, params):
        sync = make_sync(params, "slow_default", 0.0, {1: 0.0})
        for r in range(1, 6):
            sync.decide(r)
        assert sync.stats.slow_rounds == 5
        assert sync.stats.fast_rounds == 0

    def test_mutual_exclusion_counter_stays_zero(self, params):
        sync = make_sync(params, "slow_default", 0.0,
                         {1: 2 * params.kappa, 2: -2 * params.kappa},
                         record=True)
        for r in range(1, 4):
            sync.decide(r)
        assert sync.stats.both_triggers_rounds == 0
