"""Unit tests for the ClusterSync engine (Algorithm 1)."""

import pytest

from repro.clocks import ConstantRate, HardwareClock, LogicalClock
from repro.core.cluster_sync import ClusterSyncCore
from repro.core.params import Parameters
from repro.core.rounds import RoundSchedule
from repro.errors import ConfigError
from repro.sim import Simulator

PEERS = (101, 102, 103)


@pytest.fixture
def params():
    return Parameters.practical(rho=1e-4, d=1.0, u=0.1, f=1)


def make_core(params, *, broadcasts=None, record=False, base=0.0,
              peers=PEERS):
    """A core on a drift-free clock with deterministic self-delay d."""
    sim = Simulator()
    hw = HardwareClock(sim, ConstantRate(1.0), rho=params.rho)
    clock = LogicalClock(sim, hw, phi=params.phi, mu=params.mu,
                         delta=1.0, gamma=0, initial_value=base)
    schedule = RoundSchedule(params)

    def on_broadcast():
        if broadcasts is not None:
            broadcasts.append(sim.now)

    core = ClusterSyncCore(
        clock, schedule, base, peers, params.f,
        self_delay=lambda: params.d, broadcast=on_broadcast,
        record_rounds=record, name="test-core")
    return sim, clock, core


def feed_symmetric_round(sim, core, params, r):
    """Deliver all three peer pulses exactly at the self-reference
    instant of round ``r``, making every sample 0 and Delta = 0."""
    # Own pulse fires at logical tau1-offset; with rate (1+phi) from a
    # start at round-start time, plus self-delay d in real time.
    start_real = core_round_start_real(core, params, r)
    t_ref = start_real + params.tau1 / (1.0 + params.phi) + params.d
    for peer in PEERS:
        sim.call_at(t_ref, core.on_pulse, peer, t_ref)


def core_round_start_real(core, params, r):
    # All rounds with Delta=0 take T/(1+phi) real time on a unit-rate
    # hardware clock.
    return (r - 1) * params.round_length / (1.0 + params.phi)


class TestRoundStructure:
    def test_pulse_at_logical_tau1(self, params):
        broadcasts = []
        sim, clock, core = make_core(params, broadcasts=broadcasts)
        core.start()
        sim.run(until=params.tau1)  # more than enough real time
        assert broadcasts
        expected = params.tau1 / (1.0 + params.phi)
        assert broadcasts[0] == pytest.approx(expected, rel=1e-9)

    def test_lemma_3_1_zero_correction(self, params):
        """With Delta=0 the nominal round length is exactly T: the real
        duration on a unit-rate clock is T / (1 + phi)."""
        broadcasts = []
        sim, clock, core = make_core(params, broadcasts=broadcasts,
                                     record=True)
        core.start()
        for r in (1, 2, 3):
            feed_symmetric_round(sim, core, params, r)
        sim.run(until=3.2 * params.round_length)
        assert core.stats.rounds_completed >= 2
        rec = core.records[0]
        duration = rec.t_end - rec.t_start
        assert duration == pytest.approx(
            params.round_length / (1.0 + params.phi), rel=1e-9)
        assert core.stats.corrections[0] == pytest.approx(0.0, abs=1e-9)

    def test_lemma_3_1_positive_correction(self, params):
        """Peers arriving LATE by x make Delta = x and stretch the
        round's real duration to (T + x) / (1 + phi)."""
        x = 0.5  # well within the clamp phi*tau3
        sim, clock, core = make_core(params, record=True)
        core.start()
        start_real = 0.0
        t_ref = start_real + params.tau1 / (1.0 + params.phi) + params.d
        t_late = t_ref + x / (1.0 + params.phi)  # logical offset x
        for peer in PEERS:
            sim.call_at(t_late, core.on_pulse, peer, t_late)
        sim.run(until=2 * params.round_length)
        assert core.stats.rounds_completed >= 1
        assert core.stats.corrections[0] == pytest.approx(x, rel=1e-6)
        rec = core.records[0]
        duration = rec.t_end - rec.t_start
        assert duration == pytest.approx(
            (params.round_length + x) / (1.0 + params.phi), rel=1e-6)

    def test_trimmed_midpoint_discards_extremes(self, params):
        """One Byzantine extreme sample per side must not move Delta."""
        sim, clock, core = make_core(params, record=True)
        core.start()
        t_ref = params.tau1 / (1.0 + params.phi) + params.d
        # Two honest peers exactly on time; one peer wildly late.
        for peer in (101, 102):
            sim.call_at(t_ref, core.on_pulse, peer, t_ref)
        t_wild = t_ref + 3.0 / (1.0 + params.phi)
        sim.call_at(t_wild, core.on_pulse, 103, t_wild)
        sim.run(until=2 * params.round_length)
        # S = [0(self), 0, 0, 3]; f=1 trims one from each side:
        # Delta = (S[1] + S[2]) / 2 = 0.
        assert core.stats.corrections[0] == pytest.approx(0.0, abs=1e-9)


class TestRobustness:
    def test_missing_pulses_substituted_and_counted(self, params):
        sim, clock, core = make_core(params, record=True)
        core.start()
        sim.run(until=1.5 * params.round_length)
        # No peer ever pulsed: 3 substitutions per completed round.
        assert core.stats.rounds_completed >= 1
        assert core.stats.missing_pulses >= 3
        # Substituted samples take the latest-possible value: the
        # phase-2 end, i.e. tau2 - d*(1+phi) logical units after the
        # self-reference.
        expected = params.tau2 - params.d * (1.0 + params.phi)
        assert core.stats.corrections[0] == pytest.approx(
            expected, rel=1e-6)

    def test_early_pulses_clamp_to_correction_cap(self, params):
        """Samples far in the past push Delta below -phi*tau3; the
        clamp (Lemma B.4) kicks in and delta_v hits 2/(1-phi)."""
        sim, clock, core = make_core(params, record=True)
        core.start()
        t_early = 1e-6  # right after the round starts, long before ref
        for peer in PEERS:
            sim.call_at(t_early, core.on_pulse, peer, t_early)
        sim.run(until=1.05 * params.round_length)
        assert core.stats.clamped_corrections >= 1
        cap = params.phi * params.tau3
        assert core.stats.corrections[0] == pytest.approx(-cap)

    def test_clamp_keeps_delta_in_lemma_b4_range(self, params):
        sim, clock, core = make_core(params)
        core.start()
        for peer in PEERS:
            sim.call_at(1e-6, core.on_pulse, peer, 1e-6)
        # Run to mid-phase-3 of round 1 (phases 1-2 take
        # (tau1+tau2)/(1+phi) real time; stop before the round ends).
        t_phase3 = (params.tau1 + params.tau2) / (1 + params.phi) + 1.0
        sim.run(until=t_phase3)
        # After the clamped correction, delta stays within [0, 2/(1-phi)].
        assert clock.delta == pytest.approx(2.0 / (1.0 - params.phi))

    def test_stale_pulse_dropped(self, params):
        sim, clock, core = make_core(params)
        core.start()
        # Two early pulses from one peer: first credits round 1; the
        # next credits round 2 -- then a third would credit round 3...
        for _ in range(4):
            core.on_pulse(101, 0.0)
        # 4th pulse exceeds round 1 + MAX_ROUNDS_AHEAD -> flooded.
        assert core.stats.flooded_pulses >= 1

    def test_unknown_sender_rejected(self, params):
        sim, clock, core = make_core(params)
        core.start()
        with pytest.raises(ConfigError):
            core.on_pulse(999, 0.0)

    def test_too_few_samples_rejected(self, params):
        with pytest.raises(ConfigError):
            make_core(params, peers=(101,))  # 2 samples < 3f+1

    def test_stop_cancels_activity(self, params):
        broadcasts = []
        sim, clock, core = make_core(params, broadcasts=broadcasts)
        core.start()
        core.stop()
        sim.run(until=2 * params.round_length)
        assert broadcasts == []
        assert core.stats.rounds_completed == 0

    def test_double_start_rejected(self, params):
        sim, clock, core = make_core(params)
        core.start()
        with pytest.raises(ConfigError):
            core.start()


class TestBaseOffsets:
    def test_nonzero_base_shifts_schedule(self, params):
        broadcasts = []
        base = 500.0
        sim, clock, core = make_core(params, broadcasts=broadcasts,
                                     base=base)
        core.start()
        sim.run(until=params.tau1)
        # L(0) = base, so the first pulse still comes tau1 later.
        expected = params.tau1 / (1.0 + params.phi)
        assert broadcasts[0] == pytest.approx(expected, rel=1e-9)

    def test_round_start_hook_fires_each_round(self, params):
        seen = []
        sim, clock, _ = make_core(params)
        # Rebuild with hook (make_core has no hook parameter).
        hw = clock.hardware
        schedule = RoundSchedule(params)
        core = ClusterSyncCore(
            clock, schedule, 0.0, PEERS, params.f,
            self_delay=lambda: params.d, broadcast=None,
            on_round_start=seen.append)
        core.start()
        sim.run(until=2.5 * params.round_length)
        assert seen[:3] == [1, 2, 3]
