"""Unit tests for the ClusterSync engine (Algorithm 1)."""

import pytest

from repro.clocks import ConstantRate, HardwareClock, LogicalClock
from repro.core.cluster_sync import ClusterSyncCore
from repro.core.params import Parameters
from repro.core.rounds import RoundSchedule
from repro.errors import ConfigError
from repro.sim import Simulator

PEERS = (101, 102, 103)


@pytest.fixture
def params():
    return Parameters.practical(rho=1e-4, d=1.0, u=0.1, f=1)


def make_core(params, *, broadcasts=None, record=False, base=0.0,
              peers=PEERS):
    """A core on a drift-free clock with deterministic self-delay d."""
    sim = Simulator()
    hw = HardwareClock(sim, ConstantRate(1.0), rho=params.rho)
    clock = LogicalClock(sim, hw, phi=params.phi, mu=params.mu,
                         delta=1.0, gamma=0, initial_value=base)
    schedule = RoundSchedule(params)

    def on_broadcast():
        if broadcasts is not None:
            broadcasts.append(sim.now)

    core = ClusterSyncCore(
        clock, schedule, base, peers, params.f,
        self_delay=lambda: params.d, broadcast=on_broadcast,
        record_rounds=record, name="test-core")
    return sim, clock, core


def feed_symmetric_round(sim, core, params, r):
    """Deliver all three peer pulses exactly at the self-reference
    instant of round ``r``, making every sample 0 and Delta = 0."""
    # Own pulse fires at logical tau1-offset; with rate (1+phi) from a
    # start at round-start time, plus self-delay d in real time.
    start_real = core_round_start_real(core, params, r)
    t_ref = start_real + params.tau1 / (1.0 + params.phi) + params.d
    for peer in PEERS:
        sim.call_at(t_ref, core.on_pulse, peer, t_ref)


def core_round_start_real(core, params, r):
    # All rounds with Delta=0 take T/(1+phi) real time on a unit-rate
    # hardware clock.
    return (r - 1) * params.round_length / (1.0 + params.phi)


class TestRoundStructure:
    def test_pulse_at_logical_tau1(self, params):
        broadcasts = []
        sim, clock, core = make_core(params, broadcasts=broadcasts)
        core.start()
        sim.run(until=params.tau1)  # more than enough real time
        assert broadcasts
        expected = params.tau1 / (1.0 + params.phi)
        assert broadcasts[0] == pytest.approx(expected, rel=1e-9)

    def test_lemma_3_1_zero_correction(self, params):
        """With Delta=0 the nominal round length is exactly T: the real
        duration on a unit-rate clock is T / (1 + phi)."""
        broadcasts = []
        sim, clock, core = make_core(params, broadcasts=broadcasts,
                                     record=True)
        core.start()
        for r in (1, 2, 3):
            feed_symmetric_round(sim, core, params, r)
        sim.run(until=3.2 * params.round_length)
        assert core.stats.rounds_completed >= 2
        rec = core.records[0]
        duration = rec.t_end - rec.t_start
        assert duration == pytest.approx(
            params.round_length / (1.0 + params.phi), rel=1e-9)
        assert core.stats.corrections[0] == pytest.approx(0.0, abs=1e-9)

    def test_lemma_3_1_positive_correction(self, params):
        """Peers arriving LATE by x make Delta = x and stretch the
        round's real duration to (T + x) / (1 + phi)."""
        x = 0.5  # well within the clamp phi*tau3
        sim, clock, core = make_core(params, record=True)
        core.start()
        start_real = 0.0
        t_ref = start_real + params.tau1 / (1.0 + params.phi) + params.d
        t_late = t_ref + x / (1.0 + params.phi)  # logical offset x
        for peer in PEERS:
            sim.call_at(t_late, core.on_pulse, peer, t_late)
        sim.run(until=2 * params.round_length)
        assert core.stats.rounds_completed >= 1
        assert core.stats.corrections[0] == pytest.approx(x, rel=1e-6)
        rec = core.records[0]
        duration = rec.t_end - rec.t_start
        assert duration == pytest.approx(
            (params.round_length + x) / (1.0 + params.phi), rel=1e-6)

    def test_trimmed_midpoint_discards_extremes(self, params):
        """One Byzantine extreme sample per side must not move Delta."""
        sim, clock, core = make_core(params, record=True)
        core.start()
        t_ref = params.tau1 / (1.0 + params.phi) + params.d
        # Two honest peers exactly on time; one peer wildly late.
        for peer in (101, 102):
            sim.call_at(t_ref, core.on_pulse, peer, t_ref)
        t_wild = t_ref + 3.0 / (1.0 + params.phi)
        sim.call_at(t_wild, core.on_pulse, 103, t_wild)
        sim.run(until=2 * params.round_length)
        # S = [0(self), 0, 0, 3]; f=1 trims one from each side:
        # Delta = (S[1] + S[2]) / 2 = 0.
        assert core.stats.corrections[0] == pytest.approx(0.0, abs=1e-9)


class TestRobustness:
    def test_missing_pulses_substituted_and_counted(self, params):
        sim, clock, core = make_core(params, record=True)
        core.start()
        sim.run(until=1.5 * params.round_length)
        # No peer ever pulsed: 3 substitutions per completed round.
        assert core.stats.rounds_completed >= 1
        assert core.stats.missing_pulses >= 3
        # Substituted samples take the latest-possible value: the
        # phase-2 end, i.e. tau2 - d*(1+phi) logical units after the
        # self-reference.
        expected = params.tau2 - params.d * (1.0 + params.phi)
        assert core.stats.corrections[0] == pytest.approx(
            expected, rel=1e-6)

    def test_early_pulses_clamp_to_correction_cap(self, params):
        """Samples far in the past push Delta below -phi*tau3; the
        clamp (Lemma B.4) kicks in and delta_v hits 2/(1-phi)."""
        sim, clock, core = make_core(params, record=True)
        core.start()
        t_early = 1e-6  # right after the round starts, long before ref
        for peer in PEERS:
            sim.call_at(t_early, core.on_pulse, peer, t_early)
        sim.run(until=1.05 * params.round_length)
        assert core.stats.clamped_corrections >= 1
        cap = params.phi * params.tau3
        assert core.stats.corrections[0] == pytest.approx(-cap)

    def test_clamp_keeps_delta_in_lemma_b4_range(self, params):
        sim, clock, core = make_core(params)
        core.start()
        for peer in PEERS:
            sim.call_at(1e-6, core.on_pulse, peer, 1e-6)
        # Run to mid-phase-3 of round 1 (phases 1-2 take
        # (tau1+tau2)/(1+phi) real time; stop before the round ends).
        t_phase3 = (params.tau1 + params.tau2) / (1 + params.phi) + 1.0
        sim.run(until=t_phase3)
        # After the clamped correction, delta stays within [0, 2/(1-phi)].
        assert clock.delta == pytest.approx(2.0 / (1.0 - params.phi))

    def test_stale_pulse_dropped(self, params):
        sim, clock, core = make_core(params)
        core.start()
        # Two early pulses from one peer: first credits round 1; the
        # next credits round 2 -- then a third would credit round 3...
        for _ in range(4):
            core.on_pulse(101, 0.0)
        # 4th pulse exceeds round 1 + MAX_ROUNDS_AHEAD -> flooded.
        assert core.stats.flooded_pulses >= 1

    def test_unknown_sender_rejected(self, params):
        sim, clock, core = make_core(params)
        core.start()
        with pytest.raises(ConfigError):
            core.on_pulse(999, 0.0)

    def test_too_few_samples_rejected(self, params):
        with pytest.raises(ConfigError):
            make_core(params, peers=(101,))  # 2 samples < 3f+1

    def test_stop_cancels_activity(self, params):
        broadcasts = []
        sim, clock, core = make_core(params, broadcasts=broadcasts)
        core.start()
        core.stop()
        sim.run(until=2 * params.round_length)
        assert broadcasts == []
        assert core.stats.rounds_completed == 0

    def test_double_start_rejected(self, params):
        sim, clock, core = make_core(params)
        core.start()
        with pytest.raises(ConfigError):
            core.start()


class TestBaseOffsets:
    def test_nonzero_base_shifts_schedule(self, params):
        broadcasts = []
        base = 500.0
        sim, clock, core = make_core(params, broadcasts=broadcasts,
                                     base=base)
        core.start()
        sim.run(until=params.tau1)
        # L(0) = base, so the first pulse still comes tau1 later.
        expected = params.tau1 / (1.0 + params.phi)
        assert broadcasts[0] == pytest.approx(expected, rel=1e-9)

    def test_round_start_hook_fires_each_round(self, params):
        seen = []
        sim, clock, _ = make_core(params)
        # Rebuild with hook (make_core has no hook parameter).
        hw = clock.hardware
        schedule = RoundSchedule(params)
        core = ClusterSyncCore(
            clock, schedule, 0.0, PEERS, params.f,
            self_delay=lambda: params.d, broadcast=None,
            on_round_start=seen.append)
        core.start()
        sim.run(until=2.5 * params.round_length)
        assert seen[:3] == [1, 2, 3]


class TestFirstContactSupport:
    """start(at_round), resync_peers, and exchange tracking — the
    engine half of first-contact estimator bring-up."""

    def test_start_at_round_aligns_pulse_attribution(self, params):
        sim, clock, core = make_core(params)
        # The clock starts at 0; jump it to the round-4 regime first so
        # the round-4 alarms lie in the future.
        clock.jump_to(3 * params.round_length)
        core.start(at_round=4)
        assert core.current_round == 4
        # The next pulse from a peer is credited to round 4, not 1.
        core.on_pulse(101, sim.now)
        assert core.stats.stale_pulses == 0
        assert core.stats.flooded_pulses == 0

    def test_start_at_round_one_matches_plain_start(self, params):
        broadcasts_a, broadcasts_b = [], []
        sim_a, _, core_a = make_core(params, broadcasts=broadcasts_a)
        sim_b, _, core_b = make_core(params, broadcasts=broadcasts_b)
        core_a.start()
        core_b.start(at_round=1)
        sim_a.run(until=2 * params.round_length)
        sim_b.run(until=2 * params.round_length)
        assert broadcasts_a == broadcasts_b

    def test_start_at_round_validated(self, params):
        _, _, core = make_core(params)
        with pytest.raises(ConfigError):
            core.start(at_round=0)

    def test_running_property(self, params):
        _, _, core = make_core(params)
        assert not core.running
        core.start()
        assert core.running
        core.stop()
        assert not core.running

    def test_resync_peers_fast_forwards_lagging_counts(self, params):
        sim, clock, core = make_core(params)
        core.start()
        # Simulate rounds passing without pulses (link down): advance
        # through 3 full rounds.
        sim.run(until=3.5 * params.round_length)
        assert core.current_round >= 3
        before = core.current_round
        resynced = core.resync_peers()
        assert resynced == len(PEERS)
        assert core.stats.peer_resyncs == len(PEERS)
        # Next pulse now credits the current round instead of round 1.
        core.on_pulse(101, sim.now)
        assert core.stats.stale_pulses == 0
        assert core.current_round == before

    def test_resync_is_idempotent_and_respects_floor(self, params):
        sim, clock, core = make_core(params)
        core.start()
        sim.run(until=2.5 * params.round_length)
        core.on_pulse(101, sim.now)
        core.resync_peers()
        counts = dict(core._pulse_counts)
        # Counts reach at least the conservative floor, and a second
        # resync with no intervening outage moves nothing.
        assert all(c >= core.current_round - 1 for c in counts.values())
        assert core.resync_peers() == 0
        assert dict(core._pulse_counts) == counts

    def test_without_resync_pulses_stay_stale_forever(self, params):
        """Documents the failure resync exists for: after missed
        rounds, count-based attribution drops every later pulse."""
        sim, clock, core = make_core(params)
        core.start()
        sim.run(until=3.5 * params.round_length)
        for _ in range(3):
            core.on_pulse(101, sim.now)
        assert core.stats.stale_pulses == 3

    def test_exchanges_completed_counts_rounds_with_pulses(self, params):
        sim, clock, core = make_core(params)
        core.start()
        feed_symmetric_round(sim, core, params, 1)
        sim.run(until=1.5 * params.round_length)
        assert core.stats.exchanges_completed == 1
        # A round with no pulses at all does not count as an exchange.
        sim.run(until=2.5 * params.round_length)
        assert core.stats.exchanges_completed == 1


class TestResyncBlipHealing:
    """Review regressions: outages shorter than one round must not
    lock pulse attribution one round behind forever."""

    def _run_to_past_phase2(self, params, core, sim, r):
        # Phase 2 of round r ends at logical phase2_end_offset(r); on
        # a unit-rate, delta=1 clock that is offset/(1+phi) real time.
        schedule = RoundSchedule(params)
        end = schedule.phase2_end_offset(r) / (1.0 + params.phi)
        sim.run(until=end + 1e-6)

    def test_resync_past_phase2_repairs_one_round_lag(self, params):
        sim, clock, core = make_core(params)
        core.start()
        # Round 1's pulses were dropped (no on_pulse calls); resync
        # after phase 2's end must raise counts to the current round,
        # so the next (round-2) pulse attributes correctly.
        self._run_to_past_phase2(params, core, sim, 1)
        assert core.current_round == 1
        assert core.resync_peers() == len(PEERS)
        core.on_pulse(101, sim.now)  # round-2 pulse
        assert core.stats.stale_pulses == 0

    def test_auto_resync_heals_unnoticed_blip(self, params):
        """A blip no resync call caught: the first stale pulse
        re-anchors the sender instead of starting a permanent
        stale-forever stream."""
        sim = Simulator()
        hw = HardwareClock(sim, ConstantRate(1.0), rho=params.rho)
        clock = LogicalClock(sim, hw, phi=params.phi, mu=params.mu,
                             delta=1.0, gamma=0)
        core = ClusterSyncCore(
            clock, RoundSchedule(params), 0.0, PEERS, params.f,
            self_delay=lambda: params.d, broadcast=None,
            auto_resync=True, name="healing-core")
        core.start()
        sim.run(until=2.5 * params.round_length)  # rounds 1-2 missed
        r = core.current_round
        core.on_pulse(101, sim.now)  # would be stale without healing
        assert core.stats.stale_pulses == 0
        assert core.stats.peer_resyncs == 1
        # The sender is re-anchored: the following pulse credits the
        # next round, not a round in the past.
        core.on_pulse(101, sim.now)
        assert core.stats.stale_pulses == 0
        assert core._pulse_counts[101] == r + 1

    def test_auto_resync_off_preserves_stale_accounting(self, params):
        sim, clock, core = make_core(params)
        core.start()
        sim.run(until=2.5 * params.round_length)
        core.on_pulse(101, sim.now)
        assert core.stats.stale_pulses == 1
        assert core.stats.peer_resyncs == 0
