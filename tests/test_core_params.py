"""Unit tests for the parameter system (Eq. (4)/(5)/(10)/(11))."""

import pytest

from repro.core.params import (
    PAPER_C2,
    PAPER_EPS,
    Parameters,
    contraction_factor,
)
from repro.errors import ParameterError


class TestContractionFactor:
    def test_limit_at_one_is_half(self):
        assert contraction_factor(1.0) == pytest.approx(0.5)

    def test_increasing_in_theta(self):
        assert contraction_factor(1.01) > contraction_factor(1.001)

    def test_theta_below_one_rejected(self):
        with pytest.raises(ParameterError):
            contraction_factor(0.99)


class TestConstructors:
    def test_practical_is_feasible(self):
        p = Parameters.practical(rho=1e-4, d=1.0, u=0.1, f=1)
        assert p.alpha < 1.0
        assert p.cap_e > 0
        assert 0 < p.phi < 1
        assert p.mu == pytest.approx(p.c2 * p.rho)
        assert p.c1 == pytest.approx(1.0 / p.phi)

    def test_paper_constants(self):
        p = Parameters.paper(rho=1e-7, d=1.0, u=0.01, f=1)
        assert p.c2 == PAPER_C2
        assert p.eps == PAPER_EPS
        # Eq. (5): c1 = ((1/2) - eps) / ((1 + c2) rho)
        assert p.c1 == pytest.approx(
            (0.5 - PAPER_EPS) / ((1 + PAPER_C2) * 1e-7))
        assert p.alpha < 1.0

    def test_paper_infeasible_for_large_rho(self):
        with pytest.raises(ParameterError):
            Parameters.paper(rho=1e-3, d=1.0, u=0.1, f=1)

    def test_eq11_matches_closed_form_without_stretch(self):
        """Our alpha/beta with tau_stretch=1 equal the printed Eq. (11)."""
        p = Parameters.custom(rho=1e-4, d=1.0, u=0.1, f=1,
                              c1=100.0, c2=16.0, use_tau_stretch=False)
        tg = p.theta_g
        phi = p.phi
        alpha_printed = ((6 * tg ** 2 * phi + 5 * tg * phi - 9 * phi
                          + 2 * tg ** 2 - 2)
                         / (2 * phi * (tg + 1)))
        beta_printed = ((3 * tg - 1 + (tg - 1) / phi) * p.u
                        + (tg - 1) * p.d)
        assert p.alpha == pytest.approx(alpha_printed, rel=1e-12)
        assert p.beta == pytest.approx(beta_printed, rel=1e-12)

    def test_cap_e_is_fixed_point(self):
        p = Parameters.practical(rho=1e-4, d=1.0, u=0.1, f=1)
        assert p.cap_e == pytest.approx(p.alpha * p.cap_e + p.beta)

    def test_tau_formulas(self):
        p = Parameters.practical(rho=1e-4, d=1.0, u=0.1, f=1)
        z = p.tau_stretch
        assert p.tau1 == pytest.approx(z * p.theta_g * p.cap_e)
        assert p.tau2 == pytest.approx(z * p.theta_g * (p.cap_e + p.d))
        assert p.tau3 == pytest.approx(
            z * p.theta_g * (p.cap_e + p.u) * p.c1)
        assert p.round_length == pytest.approx(p.tau1 + p.tau2 + p.tau3)

    def test_trigger_parameters_lemma_4_8(self):
        p = Parameters.practical(rho=1e-4, d=1.0, u=0.1, f=1, k_stab=4)
        assert p.delta_trigger == pytest.approx((4 + 5) * p.cap_e)
        assert p.kappa == pytest.approx(3 * p.delta_trigger)
        # Lemma 4.5 needs slack < 2 kappa.
        assert p.delta_trigger < 2 * p.kappa

    def test_default_cluster_size(self):
        for f in (0, 1, 2, 3):
            p = Parameters.practical(rho=1e-4, d=1.0, u=0.1, f=f)
            assert p.cluster_size == 3 * f + 1

    def test_cluster_size_validation(self):
        with pytest.raises(ParameterError):
            Parameters.practical(rho=1e-4, d=1.0, u=0.1, f=2,
                                 cluster_size=6)

    def test_argument_validation(self):
        with pytest.raises(ParameterError):
            Parameters.practical(rho=0.0, d=1.0, u=0.1, f=1)
        with pytest.raises(ParameterError):
            Parameters.practical(rho=1e-4, d=0.0, u=0.0, f=1)
        with pytest.raises(ParameterError):
            Parameters.practical(rho=1e-4, d=1.0, u=2.0, f=1)
        with pytest.raises(ParameterError):
            Parameters.practical(rho=1e-4, d=1.0, u=0.1, f=-1)
        with pytest.raises(ParameterError):
            Parameters.custom(rho=1e-4, d=1.0, u=0.1, f=1, c1=0.5, c2=8.0)
        with pytest.raises(ParameterError):
            Parameters.practical(rho=1e-4, d=1.0, u=0.1, f=1, eps=0.6)

    def test_infeasible_custom_raises(self):
        # Huge c1 at large rho pushes alpha over 1.
        with pytest.raises(ParameterError):
            Parameters.custom(rho=1e-2, d=1.0, u=0.1, f=1,
                              c1=1000.0, c2=32.0)


class TestDerivedBounds:
    @pytest.fixture
    def params(self):
        return Parameters.practical(rho=1e-4, d=1.0, u=0.1, f=1)

    def test_unanimous_far_below_general(self, params):
        """The Lemma 3.6 mechanism: unanimous steady-state error is far
        below the general E (here by an order of magnitude)."""
        e_slow = params.unanimous_steady_state("slow")
        e_fast = params.unanimous_steady_state("fast")
        assert e_slow < 0.2 * params.cap_e
        assert e_fast < 0.2 * params.cap_e

    def test_unanimous_mode_validation(self, params):
        with pytest.raises(ParameterError):
            params.unanimous_steady_state("wobbly")

    def test_intra_bounds_ordering(self, params):
        # The rigorous Lemma B.8 bound dominates the paper's 2*theta_g*E
        # only through its (theta_max - 1) * T term; both are positive.
        assert params.intra_skew_bound() > 0
        assert params.intra_skew_bound_paper() == pytest.approx(
            2 * params.theta_g * params.cap_e)

    def test_gcs_axioms_proposition_4_11(self, params):
        """Axioms (A2)-(A4) hold for the effective rho/mu."""
        rho_eff = params.gcs_effective_rho()
        mu_eff = params.gcs_effective_mu()
        # (A4): mu_eff / rho_eff > 1.
        assert mu_eff / rho_eff > 1.0
        # (A2): slow clusters stay below 1 + rho_eff by construction.
        assert (1 + params.phi) * (1 + params.mu / 8) <= 1 + rho_eff + 1e-12
        # (A3): fast clusters reach at least 1 + mu_eff.
        assert (1 + params.phi) * (1 + 7 * params.mu / 8) >= 1 + mu_eff - 1e-12

    def test_local_skew_levels_monotone_in_s(self, params):
        levels = [params.local_skew_levels(s)
                  for s in (params.kappa, 10 * params.kappa,
                            1000 * params.kappa)]
        assert levels[0] == 1
        assert levels[0] <= levels[1] <= levels[2]

    def test_local_skew_bound_logarithmic(self, params):
        """Bound grows ~log in S: squaring S at most doubles it."""
        s1 = 100 * params.kappa
        b1 = params.local_skew_bound(s1)
        b2 = params.local_skew_bound(s1 * s1 / params.kappa)
        assert b2 <= 2.2 * b1

    def test_global_skew_bound_linear_in_d(self, params):
        b2 = params.global_skew_bound(2)
        b8 = params.global_skew_bound(8)
        assert b8 == pytest.approx(3 * b2)

    def test_node_bound_exceeds_cluster_bound(self, params):
        s = params.global_skew_bound(4)
        assert (params.node_local_skew_bound(s)
                > params.local_skew_bound(s))

    def test_summary_contains_key_values(self, params):
        text = params.summary()
        assert "rho" in text and "kappa" in text

    def test_with_overrides(self, params):
        changed = params.with_overrides(c_global=16.0)
        assert changed.c_global == 16.0
        assert changed.cap_e == params.cap_e
