"""Unit tests for the passive cluster-clock estimator."""

import pytest

from repro.clocks import ConstantRate, HardwareClock
from repro.core.estimates import ClusterEstimator
from repro.core.params import Parameters
from repro.core.rounds import RoundSchedule
from repro.core.system import FtgcsSystem
from repro.sim import Simulator
from repro.topology import ClusterGraph

MEMBERS = (10, 11, 12, 13)


@pytest.fixture
def params():
    return Parameters.practical(rho=1e-4, d=1.0, u=0.1, f=1)


def make_estimator(params, sim=None, base=0.0, initial=0.0):
    sim = sim or Simulator()
    hw = HardwareClock(sim, ConstantRate(1.0), rho=params.rho)
    schedule = RoundSchedule(params)
    estimator = ClusterEstimator(
        sim, hw, params, schedule, cluster_id=1, member_ids=MEMBERS,
        base=base, initial_value=initial, self_delay=lambda: params.d)
    return sim, estimator


class TestEstimatorUnit:
    def test_value_advances(self, params):
        sim, estimator = make_estimator(params)
        estimator.start()
        sim.run(until=10.0)
        assert estimator.value() > 0.0

    def test_gamma_mirrors_owner_mode(self, params):
        sim, estimator = make_estimator(params)
        estimator.start()
        rate_slow = estimator.clock.rate
        estimator.set_gamma(1)
        assert estimator.clock.rate == pytest.approx(
            rate_slow * (1 + params.mu))

    def test_no_pulses_counts_missing(self, params):
        sim, estimator = make_estimator(params)
        estimator.start()
        sim.run(until=1.2 * params.round_length)
        assert estimator.stats.missing_pulses >= len(MEMBERS)

    def test_monotone_despite_corrections(self, params):
        sim, estimator = make_estimator(params)
        estimator.start()
        previous = estimator.value()
        for _ in range(20):
            sim.run(until=sim.now + params.round_length / 7)
            current = estimator.value()
            assert current >= previous
            previous = current

    def test_stop_halts_rounds(self, params):
        sim, estimator = make_estimator(params)
        estimator.start()
        estimator.stop()
        sim.run(until=2 * params.round_length)
        assert estimator.stats.rounds_completed == 0

    def test_tracks_synthetic_cluster(self, params):
        """Members pulsing exactly on the nominal schedule keep the
        estimator's corrections near zero."""
        sim, estimator = make_estimator(params)
        estimator.start()
        # Nominal pulse times of a drift-free, delta=1 cluster whose
        # pulses we hear after exactly d (matching our self-delay d,
        # so relative samples are ~0).
        for r in (1, 2, 3):
            t_pulse = ((r - 1) * params.round_length + params.tau1) \
                / (1 + params.phi)
            for member in MEMBERS:
                sim.call_at(t_pulse + params.d, estimator.on_pulse,
                            member, t_pulse + params.d)
        sim.run(until=3.2 * params.round_length)
        corrections = estimator.stats.corrections
        assert corrections
        assert abs(corrections[0]) < 0.05


class TestEstimatorIntegration:
    def test_corollary_3_5_bound_under_faults(self, params):
        """|L~_vB - L_C| <= E/ ... measured across a real system with
        Byzantine members in the observed cluster."""
        from repro.faults import EquivocatorStrategy, place_everywhere

        graph = ClusterGraph.line(2)
        aug = graph.augment(params.cluster_size)
        byz = place_everywhere(aug, 1, lambda n: EquivocatorStrategy())
        from repro.core.system import SystemConfig

        system = FtgcsSystem.build(graph, params, seed=5,
                                   config=SystemConfig(byzantine=byz))
        result = system.run_rounds(10)
        assert result.max_estimate_error <= params.estimate_error_bound()


class TestFirstContactBringUp:
    def test_dormant_estimator_not_running(self, params):
        _, estimator = make_estimator(params)
        assert not estimator.running
        estimator.start()
        assert estimator.running

    def test_bring_up_jumps_clock_and_aligns_round(self, params):
        sim, estimator = make_estimator(params)
        # Mid-run first contact: three rounds in, owner's clock leads.
        sim.run(until=3.0 * params.round_length)
        own_value = 3.2 * params.round_length
        schedule = RoundSchedule(params)
        at_round = schedule.rounds_until(own_value) + 1
        estimator.bring_up(own_value, at_round)
        assert estimator.running
        assert estimator.bring_ups == 1
        assert estimator.value() >= own_value
        assert estimator.current_round == at_round
        # Pulses attribute to the bring-up round, not round 1.
        estimator.on_pulse(MEMBERS[0], sim.now)
        assert estimator.stats.stale_pulses == 0

    def test_bring_up_on_running_estimator_rejected(self, params):
        _, estimator = make_estimator(params)
        estimator.start()
        with pytest.raises(Exception):
            estimator.bring_up(0.0, 1)

    def test_warm_up_rule(self, params):
        """An estimate is not ready until one exchange completed after
        (re)initialization."""
        sim, estimator = make_estimator(params)
        sim.run(until=1.0)
        estimator.bring_up(1.0, 1)
        assert not estimator.ready
        # Feed all members' round-1 pulses, then cross the round
        # boundary: the completed exchange makes the estimate ready.
        for member in MEMBERS:
            sim.call_at(sim.now + params.d, estimator.on_pulse, member,
                        sim.now + params.d)
        sim.run(until=sim.now + 1.5 * params.round_length)
        assert estimator.stats.exchanges_completed >= 1
        assert estimator.ready

    def test_resync_resets_readiness_only_when_lagging(self, params):
        sim, estimator = make_estimator(params)
        estimator.start()
        # Nothing missed yet: resync is a no-op and readiness state is
        # untouched.
        assert estimator.resync() == 0
        assert estimator.resyncs == 0
        # Let rounds pass with no pulses (outage), then resync.
        sim.run(until=3.5 * params.round_length)
        assert estimator.resync() == len(MEMBERS)
        assert estimator.resyncs == 1
        assert not estimator.ready
