"""Unit tests for the round schedule."""

import pytest

from repro.core.params import Parameters
from repro.core.rounds import RoundSchedule
from repro.errors import ParameterError


@pytest.fixture
def params():
    return Parameters.practical(rho=1e-4, d=1.0, u=0.1, f=1)


class TestConstantSchedule:
    def test_constant_when_e1_is_steady_state(self, params):
        sched = RoundSchedule(params)
        assert sched.is_constant
        for r in (1, 2, 5, 20):
            assert sched.e(r) == pytest.approx(params.cap_e)
            assert sched.round_length(r) == pytest.approx(
                params.round_length)

    def test_round_starts_are_cumulative(self, params):
        sched = RoundSchedule(params)
        assert sched.round_start(1) == 0.0
        assert sched.round_start(2) == pytest.approx(params.round_length)
        assert sched.round_start(4) == pytest.approx(
            3 * params.round_length)

    def test_phase_offsets(self, params):
        sched = RoundSchedule(params)
        assert sched.pulse_offset(1) == pytest.approx(params.tau1)
        assert sched.phase2_end_offset(1) == pytest.approx(
            params.tau1 + params.tau2)
        assert sched.pulse_offset(3) == pytest.approx(
            2 * params.round_length + params.tau1)

    def test_tau_match_params(self, params):
        sched = RoundSchedule(params)
        assert sched.tau1(1) == pytest.approx(params.tau1)
        assert sched.tau2(1) == pytest.approx(params.tau2)
        assert sched.tau3(1) == pytest.approx(params.tau3)


class TestAdaptiveSchedule:
    def test_error_contracts_geometrically(self, params):
        e1 = 10 * params.cap_e
        sched = RoundSchedule(params, e1=e1)
        assert not sched.is_constant
        assert sched.e(1) == pytest.approx(e1)
        expected = params.alpha * e1 + params.beta
        assert sched.e(2) == pytest.approx(expected)
        # Monotone non-increasing toward the fixed point.
        previous = sched.e(1)
        for r in range(2, 60):
            current = sched.e(r)
            assert current <= previous + 1e-12
            previous = current

    def test_error_floors_at_steady_state(self, params):
        sched = RoundSchedule(params, e1=4 * params.cap_e)
        # alpha ~ 0.97 here: the gap shrinks by that factor per round.
        e300 = sched.e(300)
        assert params.cap_e <= e300 <= 1.01 * params.cap_e
        # And never dips below the fixed point.
        assert sched.e(2000) >= params.cap_e

    def test_round_lengths_shrink_with_error(self, params):
        sched = RoundSchedule(params, e1=10 * params.cap_e)
        assert sched.round_length(1) > sched.round_length(50)
        assert sched.round_length(500) == pytest.approx(
            params.round_length)

    def test_e1_below_steady_state_rejected(self, params):
        with pytest.raises(ParameterError):
            RoundSchedule(params, e1=0.5 * params.cap_e)

    def test_round_indices_one_based(self, params):
        sched = RoundSchedule(params)
        with pytest.raises(ParameterError):
            sched.e(0)


class TestRoundsUntil:
    def test_rounds_until(self, params):
        sched = RoundSchedule(params)
        t = params.round_length
        assert sched.rounds_until(0.0) == 1
        assert sched.rounds_until(t * 0.99) == 1
        assert sched.rounds_until(t) == 2
        assert sched.rounds_until(3.5 * t) == 4
