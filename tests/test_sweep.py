"""Tests for the parallel scenario sweep engine."""

import pytest

from repro.errors import ConfigError
from repro.harness.runner import default_params, steady_state_skews
from repro.harness.sweep import (
    STRATEGIES,
    ScenarioSpec,
    SweepRunner,
    default_processes,
    run_cell,
)


def small_grid(params=None, cells=3, rounds=3, **overrides):
    params = params or default_params()
    return [
        ScenarioSpec(graph="line", graph_args=(2,), params=params,
                     rounds=rounds, key=("cell", i), **overrides)
        for i in range(cells)]


class TestRunCell:
    def test_runs_one_scenario(self):
        params = default_params()
        spec = ScenarioSpec(graph="line", graph_args=(2,), params=params,
                            rounds=3, seed=5, key=("only",))
        cell = run_cell(spec)
        assert cell.key == ("only",)
        assert cell.seed == 5
        assert cell.result.rounds_completed >= 3
        assert cell.result.series  # run_scenario records the series
        steady = cell.steady_state_skews()
        assert set(steady) == {"global", "intra", "local_cluster",
                               "local_node"}

    def test_strategy_by_name(self):
        params = default_params()
        spec = ScenarioSpec(graph="line", graph_args=(2,), params=params,
                            rounds=3, seed=5, strategy="silent")
        cell = run_cell(spec)
        assert cell.result.missing_pulses > 0

    def test_pulse_diameters_on_request(self):
        params = default_params()
        spec = ScenarioSpec(graph="line", graph_args=(1,), params=params,
                            rounds=3, seed=5,
                            collect_pulse_diameters=True)
        cell = run_cell(spec)
        assert cell.pulse_diameters
        assert all(isinstance(k, tuple) for k in cell.pulse_diameters)

    def test_unresolved_seed_rejected(self):
        spec = ScenarioSpec(graph="line", graph_args=(2,),
                            params=default_params(), rounds=1)
        with pytest.raises(ConfigError):
            run_cell(spec)

    def test_unknown_graph_rejected(self):
        spec = ScenarioSpec(graph="moebius", params=default_params(),
                            rounds=1, seed=0)
        with pytest.raises(ConfigError):
            run_cell(spec)

    def test_unknown_strategy_rejected(self):
        spec = ScenarioSpec(graph="line", graph_args=(2,),
                            params=default_params(), rounds=1, seed=0,
                            strategy="quantum")
        with pytest.raises(ConfigError):
            run_cell(spec)

    def test_registry_covers_attack_gallery(self):
        for name in ("silent", "crash", "random_pulse", "fast_clock",
                     "equivocate", "pull_apart", "collusion"):
            assert name in STRATEGIES


class TestSweepRunner:
    def test_serial_ordered_collection(self):
        cells = SweepRunner(processes=1).run(small_grid(cells=4))
        assert [c.key for c in cells] == [("cell", i) for i in range(4)]

    def test_derived_seeds_are_deterministic(self):
        runner = SweepRunner(processes=1)
        first = runner.run(small_grid(), base_seed=7)
        second = runner.run(small_grid(), base_seed=7)
        assert [c.seed for c in first] == [c.seed for c in second]
        # Distinct cells get distinct seeds.
        assert len({c.seed for c in first}) == len(first)
        # A different base seed moves every cell.
        other = runner.run(small_grid(), base_seed=8)
        assert all(a.seed != b.seed for a, b in zip(first, other))

    def test_explicit_seeds_respected(self):
        specs = small_grid(seed=123)
        cells = SweepRunner(processes=1).run(specs, base_seed=7)
        assert all(c.seed == 123 for c in cells)

    def test_parallel_matches_serial_bit_for_bit(self):
        specs = small_grid(cells=4, strategy="equivocate")
        serial = SweepRunner(processes=1).run(specs, base_seed=3)
        parallel = SweepRunner(processes=2).run(specs, base_seed=3)
        assert [c.key for c in parallel] == [c.key for c in serial]
        assert [c.seed for c in parallel] == [c.seed for c in serial]
        for a, b in zip(serial, parallel):
            assert a.result.max_global_skew == b.result.max_global_skew
            assert a.result.max_intra_cluster_skew == \
                b.result.max_intra_cluster_skew
            assert a.result.messages_sent == b.result.messages_sent
            assert a.result.events_processed == b.result.events_processed
            assert a.result.series == b.result.series
            assert a.result.edge_maxima == b.result.edge_maxima

    def test_worker_error_propagates_serial(self):
        specs = small_grid(cells=2) + [
            ScenarioSpec(graph="moebius", params=default_params(),
                         rounds=1)]
        with pytest.raises(ConfigError):
            SweepRunner(processes=1).run(specs)

    def test_worker_error_propagates_from_pool(self):
        specs = small_grid(cells=2) + [
            ScenarioSpec(graph="moebius", params=default_params(),
                         rounds=1)]
        with pytest.raises(ConfigError):
            SweepRunner(processes=2).run(specs)

    def test_invalid_chunksize_rejected(self):
        with pytest.raises(ConfigError):
            SweepRunner(processes=1, chunksize=0)


class TestDefaultProcesses:
    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_PROCESSES", "8")
        assert default_processes(3) == 3

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_PROCESSES", "6")
        assert default_processes() == 6

    def test_serial_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SWEEP_PROCESSES", raising=False)
        assert default_processes() == 1

    def test_floor_of_one(self):
        assert default_processes(0) == 1

    def test_fallback_used_when_nothing_set(self, monkeypatch):
        monkeypatch.delenv("REPRO_SWEEP_PROCESSES", raising=False)
        assert default_processes(fallback=4) == 4

    def test_garbage_env_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_PROCESSES", "many")
        with pytest.raises(ConfigError):
            default_processes()

    def test_garbage_explicit_rejected(self):
        with pytest.raises(ConfigError):
            default_processes("many")

    def test_string_values_coerced(self):
        assert default_processes("3") == 3


class TestSteadyStateSkews:
    def test_empty_series_rejected(self):
        with pytest.raises(ValueError):
            steady_state_skews([])
