"""Tests for the parallel scenario sweep engine."""

import random

import pytest

from repro.errors import ConfigError
from repro.harness.runner import default_params, steady_state_skews
from repro.harness.sweep import (
    CELL_KINDS,
    COLLECTORS,
    STRATEGIES,
    ScenarioSpec,
    SweepRunner,
    default_processes,
    register_cell_kind,
    run_cell,
)


def small_grid(params=None, cells=3, rounds=3, **overrides):
    params = params or default_params()
    return [
        ScenarioSpec(graph="line", graph_args=(2,), params=params,
                     rounds=rounds, key=("cell", i), **overrides)
        for i in range(cells)]


class TestRunCell:
    def test_runs_one_scenario(self):
        params = default_params()
        spec = ScenarioSpec(graph="line", graph_args=(2,), params=params,
                            rounds=3, seed=5, key=("only",))
        cell = run_cell(spec)
        assert cell.key == ("only",)
        assert cell.seed == 5
        assert cell.result.protocol == "ftgcs"
        assert cell.result.detail.rounds_completed >= 3
        assert cell.result.series  # the ftgcs protocol records the series
        steady = cell.steady_state_skews()
        assert set(steady) == {"global", "intra", "local_cluster",
                               "local_node"}

    def test_strategy_by_name(self):
        params = default_params()
        spec = ScenarioSpec(graph="line", graph_args=(2,), params=params,
                            rounds=3, seed=5, strategy="silent")
        cell = run_cell(spec)
        assert cell.result.detail.missing_pulses > 0

    def test_pulse_diameters_on_request(self):
        params = default_params()
        spec = ScenarioSpec(graph="line", graph_args=(1,), params=params,
                            rounds=3, seed=5,
                            collect_pulse_diameters=True)
        cell = run_cell(spec)
        assert cell.pulse_diameters
        assert all(isinstance(k, tuple) for k in cell.pulse_diameters)

    def test_unresolved_seed_rejected(self):
        spec = ScenarioSpec(graph="line", graph_args=(2,),
                            params=default_params(), rounds=1)
        with pytest.raises(ConfigError):
            run_cell(spec)

    def test_unknown_graph_rejected(self):
        spec = ScenarioSpec(graph="moebius", params=default_params(),
                            rounds=1, seed=0)
        with pytest.raises(ConfigError):
            run_cell(spec)

    def test_unknown_strategy_rejected(self):
        spec = ScenarioSpec(graph="line", graph_args=(2,),
                            params=default_params(), rounds=1, seed=0,
                            strategy="quantum")
        with pytest.raises(ConfigError):
            run_cell(spec)

    def test_registry_covers_attack_gallery(self):
        for name in ("silent", "crash", "random_pulse", "fast_clock",
                     "equivocate", "pull_apart", "collusion"):
            assert name in STRATEGIES


class TestCellKinds:
    def test_builtin_kinds_registered(self):
        for kind in ("protocol", "ftgcs", "master_slave",
                     "gcs_single", "srikanth_toueg", "failure_mc",
                     "trigger_fuzz", "augment_counts"):
            assert kind in CELL_KINDS

    def test_unknown_kind_rejected(self):
        spec = ScenarioSpec(kind="teleport", seed=0)
        with pytest.raises(ConfigError):
            run_cell(spec)

    def test_duplicate_kind_registration_rejected(self):
        with pytest.raises(ConfigError):
            register_cell_kind("ftgcs", lambda spec: None)

    def test_failure_mc_matches_shared_stream(self):
        # Two cells fast-forwarding one serial stream reproduce a
        # single-generator reference bit-for-bit.
        trials, f, p = 500, 1, 0.1
        k = 3 * f + 1
        specs = [
            ScenarioSpec(kind="failure_mc", seed=5,
                         payload={"f": f, "p": p, "trials": trials,
                                  "skip": i * trials * k})
            for i in range(2)]
        cells = [run_cell(spec) for spec in specs]

        rng = random.Random(5)
        expected = []
        for _ in range(2):
            failures = 0
            for _ in range(trials):
                faulty = sum(1 for _ in range(k) if rng.random() < p)
                if faulty > f:
                    failures += 1
            expected.append(failures / trials)
        assert [cell.result for cell in cells] == expected

        # The mid-stream cell is bit-identical whether it continues a
        # warm stream state or fast-forwards from scratch (the path a
        # pool worker landing mid-grid takes).
        from repro.harness.sweep import _MC_STREAM_STATES

        _MC_STREAM_STATES.clear()
        assert run_cell(specs[1]).result == expected[1]

    def test_trigger_fuzz_reports_zero_violations(self):
        params = default_params(f=1)
        spec = ScenarioSpec(
            kind="trigger_fuzz", seed=3,
            payload={"trials": 200, "kappa": params.kappa,
                     "slack": params.delta_trigger,
                     "err": 2.0 * params.cap_e})
        assert run_cell(spec).result == 0

    def test_augment_counts(self):
        spec = ScenarioSpec(kind="augment_counts", graph="line",
                            graph_args=(3,), seed=0,
                            payload={"fault_counts": (0, 1)})
        counts = run_cell(spec).result
        assert counts["clusters"] == 3
        assert [f for f, _, _, _ in counts["rows"]] == [0, 1]
        # k = 3f+1 nodes per cluster.
        assert counts["rows"][1][2] == 3 * 4

    def test_graphless_kind_needs_no_graph(self):
        spec = ScenarioSpec(kind="failure_mc", seed=1,
                            payload={"f": 1, "p": 0.5, "trials": 10})
        assert 0.0 <= run_cell(spec).result <= 1.0

    def test_ftgcs_kind_requires_graph(self):
        spec = ScenarioSpec(params=default_params(), rounds=1, seed=0)
        with pytest.raises(ConfigError):
            run_cell(spec)


class TestProtocolCells:
    def test_unknown_protocol_rejected(self):
        spec = ScenarioSpec(kind="protocol", protocol="paxos", seed=0)
        with pytest.raises(ConfigError):
            run_cell(spec)

    def test_schedule_without_graph_rejected(self):
        spec = ScenarioSpec(kind="protocol", protocol="srikanth_toueg",
                            schedule="churn", seed=0)
        with pytest.raises(ConfigError):
            run_cell(spec)

    def test_legacy_kinds_alias_protocol(self):
        # A legacy-kind spec and the explicit protocol spec are the
        # same cell, bit for bit.
        params = default_params()
        legacy = run_cell(ScenarioSpec(
            kind="ftgcs", graph="line", graph_args=(2,), params=params,
            rounds=3, seed=5))
        modern = run_cell(ScenarioSpec(
            kind="protocol", protocol="ftgcs", graph="line",
            graph_args=(2,), params=params, rounds=3, seed=5))
        assert legacy.result.series == modern.result.series
        assert legacy.result.protocol == "ftgcs"

    def test_collectors_rejected_for_non_ftgcs_protocols(self):
        from repro.baselines.srikanth_toueg import StParams

        spec = ScenarioSpec(
            kind="protocol", protocol="srikanth_toueg", seed=0,
            payload={"params": StParams(n=4, f=1, rho=1e-4, d=1.0,
                                        u=0.1, period=10.0),
                     "rounds": 2},
            collect=("pulse_diameters",))
        with pytest.raises(ConfigError):
            run_cell(spec)

    def test_dynamic_protocol_cell_runs(self):
        params = default_params(f=1)
        spec = ScenarioSpec(
            kind="protocol", graph="line", graph_args=(3,),
            params=params, rounds=4, seed=2, schedule="churn",
            schedule_args={"interval": params.round_length,
                           "churn": 0.5})
        static = ScenarioSpec(kind="protocol", graph="line",
                              graph_args=(3,), params=params, rounds=4,
                              seed=2)
        assert run_cell(spec).result.series != \
            run_cell(static).result.series


class TestCustomCellKind:
    def test_custom_kind_runs_serially(self):
        # Custom kinds run in-process with processes=1; pool visibility
        # needs the fork start method (module-docstring caveat).
        from repro.harness.sweep import CELL_KINDS

        def doubled(spec):
            from repro.harness.sweep import SweepCellResult

            return SweepCellResult(key=spec.key, seed=spec.seed,
                                   result=2 * spec.payload["x"])

        register_cell_kind("test_doubler", doubled)
        try:
            specs = [ScenarioSpec(kind="test_doubler", seed=0,
                                  payload={"x": x}, key=("x", x))
                     for x in (1, 2, 3)]
            cells = SweepRunner(processes=1).run(specs)
            assert [c.result for c in cells] == [2, 4, 6]
        finally:
            del CELL_KINDS["test_doubler"]

    def test_duplicate_custom_kind_rejected(self):
        from repro.harness.sweep import CELL_KINDS

        register_cell_kind("test_once", lambda spec: None)
        try:
            with pytest.raises(ConfigError):
                register_cell_kind("test_once", lambda spec: None)
        finally:
            del CELL_KINDS["test_once"]


class TestCollectors:
    def test_builtin_collectors_registered(self):
        for name in ("pulse_diameters", "unanimity", "amortized_rates"):
            assert name in COLLECTORS

    def test_collect_fills_extras(self):
        spec = ScenarioSpec(
            graph="line", graph_args=(2,), params=default_params(),
            rounds=4, seed=5,
            collect=("unanimity", "amortized_rates", "pulse_diameters"))
        cell = run_cell(spec)
        assert set(cell.extras) == {"unanimity", "amortized_rates",
                                    "pulse_diameters"}
        # Collected pulse diameters also fill the dedicated field.
        assert cell.pulse_diameters == cell.extras["pulse_diameters"]
        assert set(cell.extras["unanimity"]) == {0, 1}
        for cluster, round_index, rate in cell.extras["amortized_rates"]:
            assert cluster in (0, 1)
            assert rate == rate  # never NaN; unfinished rounds dropped

    def test_unknown_collector_rejected(self):
        spec = ScenarioSpec(graph="line", graph_args=(2,),
                            params=default_params(), rounds=1, seed=0,
                            collect=("entropy",))
        with pytest.raises(ConfigError):
            run_cell(spec)

    def test_non_ftgcs_cell_rejects_steady_state(self):
        spec = ScenarioSpec(kind="failure_mc", seed=1,
                            payload={"f": 1, "p": 0.5, "trials": 10})
        cell = run_cell(spec)
        with pytest.raises(ConfigError):
            cell.steady_state_skews()


class TestSweepRunner:
    def test_serial_ordered_collection(self):
        cells = SweepRunner(processes=1).run(small_grid(cells=4))
        assert [c.key for c in cells] == [("cell", i) for i in range(4)]

    def test_derived_seeds_are_deterministic(self):
        runner = SweepRunner(processes=1)
        first = runner.run(small_grid(), base_seed=7)
        second = runner.run(small_grid(), base_seed=7)
        assert [c.seed for c in first] == [c.seed for c in second]
        # Distinct cells get distinct seeds.
        assert len({c.seed for c in first}) == len(first)
        # A different base seed moves every cell.
        other = runner.run(small_grid(), base_seed=8)
        assert all(a.seed != b.seed for a, b in zip(first, other))

    def test_explicit_seeds_respected(self):
        specs = small_grid(seed=123)
        cells = SweepRunner(processes=1).run(specs, base_seed=7)
        assert all(c.seed == 123 for c in cells)

    def test_parallel_matches_serial_bit_for_bit(self):
        specs = small_grid(cells=4, strategy="equivocate")
        serial = SweepRunner(processes=1).run(specs, base_seed=3)
        parallel = SweepRunner(processes=2).run(specs, base_seed=3)
        assert [c.key for c in parallel] == [c.key for c in serial]
        assert [c.seed for c in parallel] == [c.seed for c in serial]
        for a, b in zip(serial, parallel):
            assert a.result.max_global_skew == b.result.max_global_skew
            assert a.result.detail.max_intra_cluster_skew == \
                b.result.detail.max_intra_cluster_skew
            assert a.result.messages_sent == b.result.messages_sent
            assert a.result.events_processed == b.result.events_processed
            assert a.result.series == b.result.series
            assert a.result.edge_maxima == b.result.edge_maxima

    def test_worker_error_propagates_serial(self):
        specs = small_grid(cells=2) + [
            ScenarioSpec(graph="moebius", params=default_params(),
                         rounds=1)]
        with pytest.raises(ConfigError):
            SweepRunner(processes=1).run(specs)

    def test_worker_error_propagates_from_pool(self):
        specs = small_grid(cells=2) + [
            ScenarioSpec(graph="moebius", params=default_params(),
                         rounds=1)]
        with pytest.raises(ConfigError):
            SweepRunner(processes=2).run(specs)

    def test_invalid_chunksize_rejected(self):
        with pytest.raises(ConfigError):
            SweepRunner(processes=1, chunksize=0)


class TestDefaultProcesses:
    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_PROCESSES", "8")
        assert default_processes(3) == 3

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_PROCESSES", "6")
        assert default_processes() == 6

    def test_serial_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SWEEP_PROCESSES", raising=False)
        assert default_processes() == 1

    def test_floor_of_one(self):
        assert default_processes(0) == 1

    def test_fallback_used_when_nothing_set(self, monkeypatch):
        monkeypatch.delenv("REPRO_SWEEP_PROCESSES", raising=False)
        assert default_processes(fallback=4) == 4

    def test_garbage_env_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_PROCESSES", "many")
        with pytest.raises(ConfigError):
            default_processes()

    def test_garbage_explicit_rejected(self):
        with pytest.raises(ConfigError):
            default_processes("many")

    def test_string_values_coerced(self):
        assert default_processes("3") == 3


class TestSteadyStateSkews:
    def test_empty_series_rejected(self):
        with pytest.raises(ValueError):
            steady_state_skews([])
