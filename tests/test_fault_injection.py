"""Fault-injection tests: loss models, heavy-tailed delays, in-flight
quarantine, node churn, and the t16 robustness sweep.

The overarching invariants:

* **Opt-out by construction** — no loss model / no churn schedule (or
  rate 0.0) leaves every measurement byte-identical to the historical
  path: loss draws come from their own seed stream, and a zero rate
  never draws at all.
* **Determinism** — identical seeds give identical drop sequences,
  crash schedules, and tables, at any pool size.
* **Recovery** — a crashed-and-rejoined system re-enters a steady band
  comparable to the undisturbed run (rejoin-with-amnesia actually
  converges).
"""

import random

import pytest

from repro.baselines.gcs_single import GcsParams
from repro.core.protocol import SystemBuilder
from repro.errors import ConfigError, NetworkError, TopologyError
from repro.harness import Scenario, SweepRunner, run_experiment
from repro.harness.experiments import fast_dynamics_params
from repro.net.delays import AsymmetricDelay, FixedDelay, ParetoDelay
from repro.net.loss import (
    BernoulliLoss,
    BurstLoss,
    NoLoss,
    build_loss_model,
    validate_loss_spec,
)
from repro.net.message import ValueMessage
from repro.net.network import Network
from repro.sim.kernel import Simulator
from repro.topology.cluster_graph import ClusterGraph
from repro.topology.schedule import NodeChurnSchedule, build_schedule


def make_net(d=1.0, u=0.2, batched=True):
    sim = Simulator()
    net = Network(sim, d=d, u=u, default_delay_model=FixedDelay(d),
                  batched=batched)
    for node in (0, 1, 2):
        net.add_node(node)
    net.add_link(0, 1)
    net.add_link(1, 2)
    return sim, net


class TestLossModels:
    def test_no_loss_never_drops(self):
        model = NoLoss()
        assert not any(model.drop(0, 1, float(t)) for t in range(50))

    def test_bernoulli_zero_rate_never_draws(self):
        class Exploding(random.Random):
            def random(self):
                raise AssertionError("rate=0.0 must not draw")

        model = BernoulliLoss(0.0, Exploding())
        assert not model.drop(0, 1, 0.0)

    def test_bernoulli_rate_bounds(self):
        with pytest.raises(NetworkError):
            BernoulliLoss(1.0, random.Random(0))
        with pytest.raises(NetworkError):
            BernoulliLoss(-0.1, random.Random(0))

    def test_bernoulli_deterministic_per_seed(self):
        a = BernoulliLoss(0.3, random.Random(7))
        b = BernoulliLoss(0.3, random.Random(7))
        seq_a = [a.drop(0, 1, float(t)) for t in range(200)]
        seq_b = [b.drop(0, 1, float(t)) for t in range(200)]
        assert seq_a == seq_b
        assert any(seq_a) and not all(seq_a)

    def test_burst_loss_is_bursty_and_per_link(self):
        model = BurstLoss(p_g2b=0.05, p_b2g=0.2, p_bad=1.0,
                          rng=random.Random(3))
        drops = [model.drop(0, 1, float(t)) for t in range(2000)]
        # p_bad=1.0: drops come in runs whose mean length is the
        # expected bad-state dwell time 1/p_b2g = 5, far above the
        # i.i.d. value of 1.
        runs, current = [], 0
        for dropped in drops:
            if dropped:
                current += 1
            elif current:
                runs.append(current)
                current = 0
        assert runs and sum(runs) / len(runs) > 2.0
        # Directed links carry independent channel state.
        state_01 = model._bad.get((0, 1))
        model.drop(1, 0, 0.0)
        assert (1, 0) in model._bad
        assert model._bad[(0, 1)] == state_01

    def test_validate_loss_spec(self):
        validate_loss_spec({"kind": "bernoulli", "rate": 0.1})
        validate_loss_spec({"kind": "burst", "p_g2b": 0.1,
                            "p_b2g": 0.5, "p_bad": 0.9})
        with pytest.raises(ConfigError):
            validate_loss_spec({"kind": "nope"})
        with pytest.raises(ConfigError):
            validate_loss_spec({"kind": "bernoulli", "rate": 2.0})
        with pytest.raises(ConfigError):
            validate_loss_spec({"kind": "bernoulli", "typo": 0.1})

    def test_build_loss_model(self):
        model = build_loss_model({"kind": "bernoulli", "rate": 0.2},
                                 random.Random(0))
        assert isinstance(model, BernoulliLoss)


class TestNetworkLoss:
    @pytest.mark.parametrize("batched", [True, False])
    def test_loss_counted_separately_from_link_down(self, batched):
        sim, net = make_net(batched=batched)
        net.set_loss_model(BernoulliLoss(0.5, random.Random(1)))
        received = []
        net.set_handler(1, lambda m, t: received.append(m))
        for index in range(100):
            net.send(0, 1, ValueMessage(sender=0, value=float(index)))
        net.set_link_active(0, 1, False)
        for index in range(10):
            net.send(0, 1, ValueMessage(sender=0, value=float(index)))
        sim.run(until=10.0)
        assert net.dropped_loss > 10
        assert net.dropped_link_down == 10
        assert net.messages_dropped == (net.dropped_loss
                                        + net.dropped_link_down
                                        + net.dropped_in_flight)
        assert len(received) == 100 - net.dropped_loss

    def test_loss_identical_on_both_delivery_paths(self):
        def run(batched):
            sim, net = make_net(batched=batched)
            net.set_loss_model(BernoulliLoss(0.3, random.Random(5)))
            received = []
            net.set_handler(1, lambda m, t: received.append(m.value))
            for index in range(50):
                net.send(0, 1, ValueMessage(sender=0,
                                            value=float(index)))
            sim.run(until=5.0)
            return received, net.dropped_loss

        assert run(True) == run(False)

    def test_set_loss_model_type_checked(self):
        _, net = make_net()
        with pytest.raises(NetworkError):
            net.set_loss_model(object())


class TestInFlightQuarantine:
    @pytest.mark.parametrize("batched", [True, False])
    def test_drop_in_flight_true_quarantines(self, batched):
        sim, net = make_net(batched=batched)
        received = []
        net.set_handler(1, lambda m, t: received.append(m.value))
        net.send(0, 1, ValueMessage(sender=0, value=1.0))
        net.send(1, 2, ValueMessage(sender=1, value=2.0))  # unrelated
        net.set_link_active(0, 1, False, drop_in_flight=True)
        sim.run(until=5.0)
        assert received == []
        assert net.dropped_in_flight == 1
        assert net.messages_dropped == 1

    @pytest.mark.parametrize("batched", [True, False])
    def test_drop_in_flight_false_delivers(self, batched):
        sim, net = make_net(batched=batched)
        received = []
        net.set_handler(1, lambda m, t: received.append(m.value))
        net.send(0, 1, ValueMessage(sender=0, value=1.0))
        net.set_link_active(0, 1, False)  # default: in-flight survives
        sim.run(until=5.0)
        assert received == [1.0]
        assert net.dropped_in_flight == 0

    def test_quarantine_is_directional_pairwise(self):
        sim, net = make_net()
        received = []
        net.set_handler(2, lambda m, t: received.append(m.value))
        net.send(1, 2, ValueMessage(sender=1, value=3.0))
        net.set_link_active(0, 1, False, drop_in_flight=True)
        sim.run(until=5.0)
        assert received == [3.0]  # (1, 2) traffic untouched


class TestHeavyTailedDelays:
    def test_pareto_exceed_policy_leaves_envelope(self):
        model = ParetoDelay(1.0, 0.3, alpha=1.5, rng=random.Random(2))
        assert model.in_model is False
        draws = [model.draw(0, 1, 0.0) for _ in range(3000)]
        assert min(draws) >= 0.7 - 1e-12
        assert max(draws) > 1.0  # the heavy tail actually exceeds d

    def test_pareto_clamp_policy_stays_in_model(self):
        model = ParetoDelay(1.0, 0.3, alpha=1.5, rng=random.Random(2),
                            policy="clamp")
        assert model.in_model is True
        draws = [model.draw(0, 1, 0.0) for _ in range(3000)]
        assert all(0.7 - 1e-12 <= x <= 1.0 + 1e-12 for x in draws)

    def test_pareto_deterministic_per_seed(self):
        a = ParetoDelay(1.0, 0.3, alpha=2.0, rng=random.Random(9))
        b = ParetoDelay(1.0, 0.3, alpha=2.0, rng=random.Random(9))
        assert ([a.draw(0, 1, 0.0) for _ in range(100)]
                == [b.draw(0, 1, 0.0) for _ in range(100)])

    def test_asymmetric_delay_routes_by_direction(self):
        model = AsymmetricDelay(FixedDelay(0.8), FixedDelay(0.9))
        assert model.draw(0, 1, 0.0) == pytest.approx(0.8)
        assert model.draw(1, 0, 0.0) == pytest.approx(0.9)
        assert model.in_model is True

    def test_out_of_model_delay_accepted_by_network(self):
        sim = Simulator()
        net = Network(sim, d=1.0, u=0.3,
                      default_delay_model=ParetoDelay(
                          1.0, 0.3, alpha=1.1, rng=random.Random(4)))
        net.add_node(0)
        net.add_node(1)
        net.add_link(0, 1)
        received = []
        net.set_handler(1, lambda m, t: received.append(t))
        for _ in range(200):
            net.send(0, 1, ValueMessage(sender=0, value=0.0))
        sim.run(until=100.0)
        assert len(received) == 200


class TestNodeChurnSchedule:
    def test_validation(self):
        graph = ClusterGraph.line(3)
        with pytest.raises(ConfigError):
            NodeChurnSchedule(graph, interval=0.0, crash=0.1)
        with pytest.raises(ConfigError):
            NodeChurnSchedule(graph, interval=1.0, crash=1.5)
        with pytest.raises(ConfigError):
            NodeChurnSchedule(graph, interval=1.0, crash=0.1,
                              rejoin=0.0)
        with pytest.raises(TopologyError):
            NodeChurnSchedule(graph, interval=1.0, crash=0.1,
                              protect=(7,))

    def test_events_deterministic_and_seed_sensitive(self):
        sched = build_schedule("node_churn", ClusterGraph.line(4),
                               interval=5.0, crash=0.4, rejoin=0.6)
        events_a = sched.node_events(100.0, seed=3)
        events_b = sched.node_events(100.0, seed=3)
        events_c = sched.node_events(100.0, seed=4)
        assert events_a == events_b
        assert events_a != events_c
        assert events_a  # something actually happens at these rates

    def test_protect_and_state_machine(self):
        sched = NodeChurnSchedule(ClusterGraph.line(4), interval=5.0,
                                  crash=0.5, rejoin=0.5, protect=(0,))
        events = sched.node_events(500.0, seed=1)
        assert all(cluster != 0 for _, cluster, _ in events)
        # Per cluster: strictly alternating crash/rejoin, crash first.
        state = {}
        for _, cluster, alive in events:
            assert state.get(cluster, True) != alive
            state[cluster] = alive

    def test_crash_zero_emits_nothing(self):
        sched = NodeChurnSchedule(ClusterGraph.line(3), interval=5.0,
                                  crash=0.0)
        assert sched.node_events(1000.0, seed=5) == []

    def test_schedule_flags(self):
        sched = NodeChurnSchedule(ClusterGraph.line(3), interval=5.0,
                                  crash=0.2)
        assert sched.has_node_events
        assert not sched.has_edge_events
        assert not sched.is_static


class TestChurnRuns:
    def test_ftgcs_crash_rejoin_converges_within_kappa(self):
        """After a crash wave and rejoin-with-amnesia, the steady band
        re-enters within kappa of the undisturbed run's band."""
        params = fast_dynamics_params(f=1)
        graph = ClusterGraph.line(3)

        def steady(schedule):
            builder = (SystemBuilder("ftgcs").topology(schedule)
                       .params(params).rounds(24).seed(2))
            result = builder.build().run()
            series = result.detail.series
            tail = series[int(len(series) * 0.7):]
            return max(s.max_local_cluster for s in tail), result

        baseline, _ = steady(graph)
        churned, result = steady(build_schedule(
            "node_churn", graph, interval=6.0 * params.round_length,
            crash=0.3, rejoin=1.0))
        assert result.node_crashes > 0
        assert result.node_rejoins > 0
        assert churned <= baseline + params.kappa

    def test_gcs_single_rejoin_with_amnesia(self):
        gcs_params = GcsParams.default()
        result = (SystemBuilder("gcs_single")
                  .topology(build_schedule(
                      "node_churn", ClusterGraph.line(4),
                      interval=30.0, crash=0.4, rejoin=0.9))
                  .payload(params=gcs_params, until=400.0)
                  .seed(6).build().run())
        assert result.node_crashes > 0
        assert result.node_rejoins > 0
        # The run survives churn and still measures finite skew.
        assert result.max_local_skew < 100.0

    def test_master_slave_churn_is_link_silencing(self):
        params = fast_dynamics_params(f=1)
        result = (SystemBuilder("master_slave")
                  .topology(build_schedule(
                      "node_churn", ClusterGraph.line(4),
                      interval=20.0, crash=0.4, rejoin=0.9,
                      protect=(0,)))
                  .params(params).rounds(10).seed(3).build().run())
        assert result.node_crashes > 0
        assert result.dropped_link_down > 0

    def test_lynch_welch_rejects_churn(self):
        params = fast_dynamics_params(f=1)
        with pytest.raises(ConfigError):
            (SystemBuilder("lynch_welch")
             .topology(build_schedule("node_churn",
                                      ClusterGraph.line(1),
                                      interval=5.0, crash=0.2))
             .params(params).rounds(5).seed(0).build())


class TestOptOutByteIdentity:
    def test_zero_rate_loss_is_byte_identical(self):
        params = fast_dynamics_params(f=1)

        def run(lossy):
            builder = (SystemBuilder("ftgcs")
                       .topology(ClusterGraph.line(3))
                       .params(params).rounds(8).seed(11))
            if lossy:
                builder.lossy(kind="bernoulli", rate=0.0)
            return builder.build().run()

        plain = run(False)
        zero = run(True)
        assert zero.messages_lost == 0
        assert plain.max_local_skew == zero.max_local_skew
        assert plain.max_global_skew == zero.max_global_skew
        assert ([s.max_local_cluster for s in plain.detail.series]
                == [s.max_local_cluster for s in zero.detail.series])

    def test_loss_stream_does_not_shift_delays(self):
        """Attaching a *non-zero* loss model must not perturb delay
        draws: surviving messages see the exact same latencies."""
        params = fast_dynamics_params(f=1)

        def run(rate):
            builder = (SystemBuilder("ftgcs")
                       .topology(ClusterGraph.line(2))
                       .params(params).rounds(6).seed(13))
            if rate:
                builder.lossy(kind="bernoulli", rate=rate)
            return builder.build().run()

        plain = run(0.0)
        lossy = run(0.01)
        assert lossy.messages_lost >= 0
        # Identical until the first drop diverges the executions; the
        # sampling cadence (pure kernel time) always matches.
        assert len(plain.detail.series) == len(lossy.detail.series)

    def test_seeded_lossy_run_is_deterministic(self):
        spec = (Scenario.line(3).params(fast_dynamics_params(f=1))
                .rounds(10).lossy(rate=0.1)
                .churn_nodes(interval=50.0, crash=0.3, rejoin=0.8)
                .seed(21).build())
        a = SweepRunner().run([spec])[0].result
        b = SweepRunner().run([spec])[0].result
        assert a.messages_lost == b.messages_lost
        assert a.node_crashes == b.node_crashes
        assert a.max_local_skew == b.max_local_skew


class TestT16Robustness:
    def test_quick_grid_serial_equals_pooled(self):
        serial = run_experiment("t16", quick=True, seed=16,
                                processes=1)
        pooled = run_experiment("t16", quick=True, seed=16,
                                processes=4)
        assert serial.rows == pooled.rows

    def test_quick_grid_shape_and_counters(self):
        table = run_experiment("t16", quick=True, seed=16)
        # 3 loss rates x 2 churn rates x 3 protocols.
        assert len(table.rows) == 18
        by_cell = {(row[0], row[1], row[2]): row for row in table.rows}
        # The fault-free corner is clean for every protocol.
        for protocol in ("ftgcs", "gcs_single", "master_slave"):
            row = by_cell[(protocol, 0.0, 0.0)]
            assert row[5] == 0 and row[6] == 0  # lost, link-down
            assert row[7] == 0 and row[8] == 0  # crashes, rejoins
        # Lossy cells actually lose messages; churny cells crash.
        assert by_cell[("ftgcs", 0.2, 0.0)][5] > 0
        assert by_cell[("ftgcs", 0.0, 0.1)][7] > 0
        assert by_cell[("ftgcs", 0.0, 0.1)][8] > 0
        # Loss accounting: heavier loss loses more (totals over seeds).
        assert (by_cell[("ftgcs", 0.2, 0.0)][5]
                > by_cell[("ftgcs", 0.05, 0.0)][5])
        # Degradation: every faulted ftgcs cell sits above the
        # fault-free corner.
        corner = by_cell[("ftgcs", 0.0, 0.0)][3]
        for (protocol, loss, churn), row in by_cell.items():
            if protocol == "ftgcs" and (loss or churn):
                assert row[3] > corner
