"""Unit tests for FtgcsNode message routing and lifecycle."""

import pytest

from repro.core.params import Parameters
from repro.core.system import FtgcsSystem, SystemConfig
from repro.net.message import Pulse, PulseKind, ValueMessage
from repro.topology import ClusterGraph


@pytest.fixture
def system():
    params = Parameters.practical(rho=1e-4, d=1.0, u=0.1, f=1)
    return FtgcsSystem.build(ClusterGraph.line(2), params, seed=1)


def first_node(system, cluster):
    return next(n for n in system.honest_nodes()
                if n.cluster_id == cluster)


class TestRouting:
    def test_own_cluster_pulse_feeds_core(self, system):
        system.start()
        node = first_node(system, 0)
        peer = node.core._peer_ids[0]
        before = node.core.stats.pulses_received
        node.on_message(Pulse(sender=peer), system.sim.now)
        assert node.core.stats.pulses_received == before + 1

    def test_adjacent_cluster_pulse_feeds_estimator(self, system):
        system.start()
        node = first_node(system, 0)
        neighbor_member = system.graph.members(1)[0]
        estimator = node.estimators[1]
        before = estimator.stats.pulses_received
        node.on_message(Pulse(sender=neighbor_member), system.sim.now)
        assert estimator.stats.pulses_received == before + 1

    def test_unknown_sender_counted(self, system):
        system.start()
        node = first_node(system, 0)
        node.on_message(Pulse(sender=9999), system.sim.now)
        assert node.stats.unknown_sender_pulses == 1

    def test_non_pulse_message_counted(self, system):
        system.start()
        node = first_node(system, 0)
        node.on_message(ValueMessage(sender=1, value=0.0),
                        system.sim.now)
        assert node.stats.unknown_sender_pulses == 1

    def test_max_pulse_dropped_without_max_estimate(self, system):
        system.start()
        node = first_node(system, 0)
        # Max estimate disabled by default: the pulse is ignored, not
        # an error.
        node.on_message(Pulse(sender=node.core._peer_ids[0],
                              kind=PulseKind.MAX), system.sim.now)
        assert node.max_estimate is None

    def test_propose_pulse_ignored(self, system):
        system.start()
        node = first_node(system, 0)
        before = node.core.stats.pulses_received
        node.on_message(Pulse(sender=node.core._peer_ids[0],
                              kind=PulseKind.PROPOSE), system.sim.now)
        assert node.core.stats.pulses_received == before


class TestLifecycle:
    def test_crash_drops_messages(self, system):
        system.start()
        node = first_node(system, 0)
        peer = node.core._peer_ids[0]
        node.crash()
        node.on_message(Pulse(sender=peer), system.sim.now)
        assert node.stats.dropped_after_crash == 1
        assert node.crashed

    def test_crash_stops_round_progress(self, system):
        system.start()
        node = first_node(system, 0)
        node.crash()
        params = system.params
        system.sim.run(until=2 * params.round_length)
        assert node.core.stats.rounds_completed == 0

    def test_mode_history_recorded(self, system):
        system.start()
        system.sim.run(until=2.2 * system.params.round_length)
        node = first_node(system, 0)
        rounds = [r for r, _gamma in node.stats.mode_by_round]
        assert rounds[:3] == [1, 2, 3]


class TestMaxEstimateWiring:
    def test_max_pulses_flow_between_clusters(self):
        params = Parameters.practical(rho=1e-4, d=1.0, u=0.1, f=1)
        config = SystemConfig(policy="max_rule",
                              enable_max_estimate=True,
                              max_estimate_unit=params.cap_e)
        system = FtgcsSystem.build(ClusterGraph.line(2), params, seed=2,
                                   config=config)
        system.start()
        system.sim.run(until=3 * params.round_length)
        node = first_node(system, 0)
        assert node.max_estimate is not None
        assert node.max_estimate.pulses_sent > 0
        assert node.max_estimate.pulses_received > 0
