"""First-contact estimator bring-up: node wiring, warm-up rule, and
the mid-run link-activation convergence property.

The custom :class:`LinkUpSchedule` below is the minimal dynamic
topology for these tests: one edge is down from time zero and appears
once at a fixed time — the cleanest "truly appearing cluster" setup
(the built-in schedules flap edges rather than introducing them).
"""

import pytest

from repro.core.protocol import SystemBuilder
from repro.errors import ConfigError
from repro.harness.experiments import fast_dynamics_params
from repro.topology.cluster_graph import ClusterGraph
from repro.topology.schedule import TopologySchedule


class LinkUpSchedule(TopologySchedule):
    """One edge, down from time zero, activating once at ``up_at``."""

    name = "test_link_up"

    def __init__(self, graph, edge, up_at):
        super().__init__(graph)
        self.edge = (min(edge), max(edge))
        self.up_at = float(up_at)

    def initial_down(self, seed):
        return [self.edge]

    def events(self, horizon, seed):
        if self.up_at <= horizon:
            return [(self.up_at, self.edge, True)]
        return []


@pytest.fixture
def params():
    return fast_dynamics_params(f=1)


def build(params, *, schedule=None, first_contact=False, rounds=6,
          offsets=None, seed=3, **config):
    builder = (SystemBuilder("ftgcs")
               .topology(schedule if schedule is not None
                         else ClusterGraph.line(2))
               .params(params).rounds(rounds).seed(seed))
    if first_contact:
        builder.first_contact()
    if offsets is not None:
        config["cluster_offsets"] = list(offsets)
    if config:
        builder.configure(**config)
    return builder.build()


class TestDormantEstimators:
    def test_initially_down_link_leaves_estimators_dormant(self, params):
        schedule = LinkUpSchedule(ClusterGraph.line(2), (0, 1),
                                  up_at=1e9)  # never within horizon
        system = build(params, schedule=schedule, first_contact=True)
        system.start()
        for node in system.protocol.system.nodes.values():
            estimator = node.estimators[1 - node.cluster_id]
            assert not estimator.running
            # Dormant estimates are excluded from the aggregation.
            assert node._estimate_snapshot() == {}

    def test_legacy_mode_starts_all_estimators(self, params):
        schedule = LinkUpSchedule(ClusterGraph.line(2), (0, 1),
                                  up_at=1e9)
        system = build(params, schedule=schedule, first_contact=False)
        system.start()
        for node in system.protocol.system.nodes.values():
            estimator = node.estimators[1 - node.cluster_id]
            assert estimator.running  # frozen build-time behavior
            assert node._estimate_snapshot()

    def test_static_run_unaffected_by_flag(self, params):
        plain = build(params, first_contact=False).run()
        dynamic = build(params, first_contact=True).run()
        # On a static, fully-connected graph the only difference the
        # flag makes is the warm-up round; both stay in bounds and
        # nothing is ever brought up from dormant.
        assert dynamic.detail.estimator_bring_ups == 0
        assert plain.detail.estimator_bring_ups == 0


class TestBringUp:
    def test_link_activation_triggers_bring_up(self, params):
        up_at = 2.0 * params.round_length
        schedule = LinkUpSchedule(ClusterGraph.line(2), (0, 1), up_at)
        system = build(params, schedule=schedule, first_contact=True)
        result = system.run()
        detail = result.detail
        # Every honest node brought its estimator up exactly once.
        assert detail.estimator_bring_ups == len(
            system.protocol.system.nodes)
        for node in system.protocol.system.nodes.values():
            estimator = node.estimators[1 - node.cluster_id]
            assert estimator.running
            assert estimator.ready  # exchanges completed after bring-up
            # Brought up at the round the owner's clock implied, so
            # pulse attribution stayed aligned (no permanent staleness).
            assert estimator.current_round > 1

    def test_bring_up_round_alignment_keeps_pulses_fresh(self, params):
        up_at = 3.0 * params.round_length
        schedule = LinkUpSchedule(ClusterGraph.line(2), (0, 1), up_at)
        system = build(params, schedule=schedule, first_contact=True,
                       rounds=8)
        system.run()
        for node in system.protocol.system.nodes.values():
            estimator = node.estimators[1 - node.cluster_id]
            # A mis-aligned bring-up would mark *every* pulse stale;
            # aligned attribution keeps staleness to the one-round
            # boundary fuzz at most.
            assert estimator.stats.pulses_received > 0
            assert (estimator.stats.stale_pulses
                    < estimator.stats.pulses_received / 2)

    def test_first_pulse_also_brings_up(self, params):
        """A pulse arriving at a dormant estimator is first-contact
        evidence even without a link notification (direct network
        manipulation, custom protocols)."""
        schedule = LinkUpSchedule(ClusterGraph.line(2), (0, 1),
                                  up_at=1e9)
        system = build(params, schedule=schedule, first_contact=True)
        system.start()
        ftgcs = system.protocol.system
        node = ftgcs.nodes[0]
        assert not node.estimators[1].running
        from repro.net.message import Pulse, PulseKind

        node.on_message(Pulse(sender=4, kind=PulseKind.SYNC),
                        ftgcs.sim.now)
        assert node.estimators[1].running
        assert node.stats.estimator_bring_ups == 1


class TestMaxEstimateBringUp:
    def test_link_up_resets_and_reannounces(self, params):
        up_at = 3.0 * params.round_length
        schedule = LinkUpSchedule(ClusterGraph.line(2), (0, 1), up_at)
        system = build(params, schedule=schedule, first_contact=True,
                       rounds=8, enable_max_estimate=True,
                       policy="max_rule")
        system.run()
        nodes = system.protocol.system.nodes.values()
        # Receiver half: every node reset the decode for the newly
        # reachable neighbors.
        assert all(node.max_estimate.sender_resets > 0 for node in nodes)
        # Sender half: by activation time levels were announced, so
        # re-announcement pulses went out over the fresh links.
        assert any(node.stats.max_reannounce_pulses > 0
                   for node in nodes)


class TestConvergenceAfterActivation:
    def test_joining_edge_converges_to_always_connected_steady_state(
            self, params):
        """Satellite regression: a two-cluster line whose joining edge
        activates mid-run converges to the same steady-state local
        skew as the always-connected run, within a kappa-scale
        tolerance (the trigger ladder's level width)."""
        rounds = 30
        offsets = [0.0, 2.2 * params.kappa]
        up_at = 6.0 * params.round_length

        static = build(params, first_contact=True, rounds=rounds,
                       offsets=offsets).run()
        schedule = LinkUpSchedule(ClusterGraph.line(2), (0, 1), up_at)
        dynamic = build(params, schedule=schedule, first_contact=True,
                        rounds=rounds, offsets=offsets).run()

        assert dynamic.detail.estimator_bring_ups > 0

        def steady_local(result):
            series = result.detail.series
            tail = series[int(len(series) * 0.75):]
            return max(s.max_local_cluster for s in tail)

        static_steady = steady_local(static)
        dynamic_steady = steady_local(dynamic)
        initial = dynamic.detail.series[0].max_local_cluster
        # Both runs are contracting the initial gradient (full closure
        # takes ~1/mu rounds at these parameters — t01 measures the
        # same regime), and the late joiner lands in the same steady
        # band as the always-connected run, within one trigger level
        # (kappa).  Disconnected clusters free-run without triggers,
        # so without bring-up the dynamic run could not contract at
        # all.
        assert static_steady < initial
        assert dynamic_steady < initial
        assert abs(dynamic_steady - static_steady) <= params.kappa

    def test_dynamic_first_contact_run_deterministic(self, params):
        def run():
            schedule = LinkUpSchedule(ClusterGraph.line(2), (0, 1),
                                      2.5 * params.round_length)
            return build(params, schedule=schedule, first_contact=True,
                         rounds=8).run()

        a, b = run(), run()
        assert a.series == b.series
        assert a.detail.estimator_bring_ups == b.detail.estimator_bring_ups


class TestCapabilityFlag:
    def test_unsupported_protocol_rejected(self, params):
        with pytest.raises(ConfigError):
            (SystemBuilder("master_slave")
             .topology(ClusterGraph.line(2)).params(params)
             .first_contact().build())

    def test_lynch_welch_rejected(self, params):
        with pytest.raises(ConfigError):
            (SystemBuilder("lynch_welch").params(params)
             .first_contact().build())
