"""Unit tests for delay models and the network."""

import random

import pytest

from repro.errors import NetworkError
from repro.net import (
    BiasedDelay,
    ExtremalDelay,
    FixedDelay,
    Network,
    PolicyDelay,
    Pulse,
    PulseKind,
    UniformDelay,
)
from repro.sim import Simulator


def make_net(d=1.0, u=0.2, model=None):
    sim = Simulator()
    net = Network(sim, d=d, u=u, default_delay_model=model or FixedDelay(d))
    return sim, net


class TestDelayModels:
    def test_fixed(self):
        assert FixedDelay(0.7).draw(0, 1, 0.0) == pytest.approx(0.7)

    def test_uniform_within_envelope(self):
        rng = random.Random(0)
        model = UniformDelay(1.0, 0.3, rng)
        draws = [model.draw(0, 1, 0.0) for _ in range(200)]
        assert all(0.7 <= x <= 1.0 for x in draws)
        assert max(draws) - min(draws) > 0.1  # actually random

    def test_extremal(self):
        assert ExtremalDelay(1.0, 0.3, "max").draw(0, 1, 0.0) == 1.0
        assert ExtremalDelay(1.0, 0.3, "min").draw(0, 1, 0.0) == 0.7
        with pytest.raises(NetworkError):
            ExtremalDelay(1.0, 0.3, "mid")

    def test_biased_by_direction(self):
        model = BiasedDelay(forward=1.0, backward=0.7)
        assert model.draw(0, 1, 0.0) == 1.0
        assert model.draw(1, 0, 0.0) == 0.7

    def test_policy(self):
        model = PolicyDelay(lambda s, r, now: 0.8 if s == 0 else 0.9)
        assert model.draw(0, 5, 0.0) == 0.8
        assert model.draw(5, 0, 0.0) == 0.9

    def test_validation(self):
        rng = random.Random(0)
        with pytest.raises(NetworkError):
            UniformDelay(0.0, 0.0, rng)
        with pytest.raises(NetworkError):
            UniformDelay(1.0, 1.5, rng)
        with pytest.raises(NetworkError):
            FixedDelay(-1.0)


class TestTopologyConstruction:
    def test_add_nodes_and_links(self):
        _, net = make_net()
        for i in range(3):
            net.add_node(i)
        net.add_link(0, 1)
        net.add_link(1, 2)
        assert net.neighbors(1) == (0, 2)
        assert net.has_link(0, 1)
        assert not net.has_link(0, 2)

    def test_duplicate_node_rejected(self):
        _, net = make_net()
        net.add_node(0)
        with pytest.raises(NetworkError):
            net.add_node(0)

    def test_self_link_rejected(self):
        _, net = make_net()
        net.add_node(0)
        with pytest.raises(NetworkError):
            net.add_link(0, 0)

    def test_duplicate_link_rejected(self):
        _, net = make_net()
        net.add_node(0)
        net.add_node(1)
        net.add_link(0, 1)
        with pytest.raises(NetworkError):
            net.add_link(1, 0)

    def test_unknown_node_rejected(self):
        _, net = make_net()
        net.add_node(0)
        with pytest.raises(NetworkError):
            net.add_link(0, 99)
        with pytest.raises(NetworkError):
            net.neighbors(99)


class TestMessaging:
    def test_unicast_delivery(self):
        sim, net = make_net(d=1.0, u=0.0)
        received = []
        net.add_node(0)
        net.add_node(1, lambda msg, t: received.append((msg, t)))
        net.add_link(0, 1)
        net.send(0, 1, "hello")
        sim.run(until=2.0)
        assert received == [("hello", pytest.approx(1.0))]

    def test_broadcast_reaches_all_neighbors(self):
        sim, net = make_net(d=0.5, u=0.0, model=FixedDelay(0.5))
        inboxes = {i: [] for i in range(4)}
        for i in range(4):
            net.add_node(i, lambda msg, t, i=i: inboxes[i].append(msg))
        net.add_link(0, 1)
        net.add_link(0, 2)
        net.add_link(0, 3)
        count = net.broadcast(0, Pulse(sender=0))
        sim.run(until=1.0)
        assert count == 3
        for i in (1, 2, 3):
            assert len(inboxes[i]) == 1
            assert inboxes[i][0].sender == 0
            assert inboxes[i][0].kind is PulseKind.SYNC
        assert inboxes[0] == []

    def test_send_to_non_neighbor_rejected(self):
        _, net = make_net()
        net.add_node(0)
        net.add_node(1)
        with pytest.raises(NetworkError):
            net.send(0, 1, "x")

    def test_send_with_delay_envelope_enforced(self):
        sim, net = make_net(d=1.0, u=0.2)
        net.add_node(0)
        net.add_node(1, lambda m, t: None)
        net.add_link(0, 1)
        net.send_with_delay(0, 1, "ok", 0.8)
        with pytest.raises(NetworkError):
            net.send_with_delay(0, 1, "early", 0.5)
        with pytest.raises(NetworkError):
            net.send_with_delay(0, 1, "late", 1.5)

    def test_delay_model_violating_envelope_rejected(self):
        sim, net = make_net(d=1.0, u=0.1, model=FixedDelay(0.2))
        net.add_node(0)
        net.add_node(1, lambda m, t: None)
        net.add_link(0, 1)
        with pytest.raises(NetworkError):
            net.send(0, 1, "x")

    def test_per_link_model_override(self):
        sim, net = make_net(d=1.0, u=0.5, model=FixedDelay(1.0))
        times = []
        net.add_node(0)
        net.add_node(1, lambda m, t: times.append(t))
        net.add_link(0, 1)
        net.set_link_delay_model(0, 1, FixedDelay(0.5), direction="ab")
        net.send(0, 1, "fast")
        sim.run(until=2.0)
        assert times == [pytest.approx(0.5)]

    def test_directional_override_leaves_reverse(self):
        sim, net = make_net(d=1.0, u=0.5, model=FixedDelay(1.0))
        times = []
        net.add_node(0, lambda m, t: times.append(("to0", t)))
        net.add_node(1, lambda m, t: times.append(("to1", t)))
        net.add_link(0, 1)
        net.set_link_delay_model(0, 1, FixedDelay(0.5), direction="ab")
        net.send(1, 0, "slow")
        sim.run(until=2.0)
        assert times == [("to0", pytest.approx(1.0))]

    def test_message_counters(self):
        sim, net = make_net(d=1.0, u=0.0)
        net.add_node(0)
        net.add_node(1, lambda m, t: None)
        net.add_link(0, 1)
        net.send(0, 1, "x")
        assert net.messages_sent == 1
        sim.run(until=2.0)
        assert net.messages_delivered == 1

    def test_missing_handler_is_dropped_silently(self):
        sim, net = make_net(d=1.0, u=0.0)
        net.add_node(0)
        net.add_node(1)  # no handler: models a crashed receiver
        net.add_link(0, 1)
        net.send(0, 1, "x")
        sim.run(until=2.0)
        assert net.messages_delivered == 1
