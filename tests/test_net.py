"""Unit tests for delay models and the network."""

import random

import pytest

from repro.errors import NetworkError, SimulationError
from repro.net import (
    BiasedDelay,
    ExtremalDelay,
    FixedDelay,
    Network,
    PolicyDelay,
    Pulse,
    PulseKind,
    UniformDelay,
)
from repro.sim import Simulator


def make_net(d=1.0, u=0.2, model=None):
    sim = Simulator()
    net = Network(sim, d=d, u=u, default_delay_model=model or FixedDelay(d))
    return sim, net


class TestDelayModels:
    def test_fixed(self):
        assert FixedDelay(0.7).draw(0, 1, 0.0) == pytest.approx(0.7)

    def test_uniform_within_envelope(self):
        rng = random.Random(0)
        model = UniformDelay(1.0, 0.3, rng)
        draws = [model.draw(0, 1, 0.0) for _ in range(200)]
        assert all(0.7 <= x <= 1.0 for x in draws)
        assert max(draws) - min(draws) > 0.1  # actually random

    def test_extremal(self):
        assert ExtremalDelay(1.0, 0.3, "max").draw(0, 1, 0.0) == 1.0
        assert ExtremalDelay(1.0, 0.3, "min").draw(0, 1, 0.0) == 0.7
        with pytest.raises(NetworkError):
            ExtremalDelay(1.0, 0.3, "mid")

    def test_biased_by_direction(self):
        model = BiasedDelay(forward=1.0, backward=0.7)
        assert model.draw(0, 1, 0.0) == 1.0
        assert model.draw(1, 0, 0.0) == 0.7

    def test_policy(self):
        model = PolicyDelay(lambda s, r, now: 0.8 if s == 0 else 0.9)
        assert model.draw(0, 5, 0.0) == 0.8
        assert model.draw(5, 0, 0.0) == 0.9

    def test_validation(self):
        rng = random.Random(0)
        with pytest.raises(NetworkError):
            UniformDelay(0.0, 0.0, rng)
        with pytest.raises(NetworkError):
            UniformDelay(1.0, 1.5, rng)
        with pytest.raises(NetworkError):
            FixedDelay(-1.0)


class TestTopologyConstruction:
    def test_add_nodes_and_links(self):
        _, net = make_net()
        for i in range(3):
            net.add_node(i)
        net.add_link(0, 1)
        net.add_link(1, 2)
        assert net.neighbors(1) == (0, 2)
        assert net.has_link(0, 1)
        assert not net.has_link(0, 2)

    def test_duplicate_node_rejected(self):
        _, net = make_net()
        net.add_node(0)
        with pytest.raises(NetworkError):
            net.add_node(0)

    def test_self_link_rejected(self):
        _, net = make_net()
        net.add_node(0)
        with pytest.raises(NetworkError):
            net.add_link(0, 0)

    def test_duplicate_link_rejected(self):
        _, net = make_net()
        net.add_node(0)
        net.add_node(1)
        net.add_link(0, 1)
        with pytest.raises(NetworkError):
            net.add_link(1, 0)

    def test_unknown_node_rejected(self):
        _, net = make_net()
        net.add_node(0)
        with pytest.raises(NetworkError):
            net.add_link(0, 99)
        with pytest.raises(NetworkError):
            net.neighbors(99)


class TestMessaging:
    def test_unicast_delivery(self):
        sim, net = make_net(d=1.0, u=0.0)
        received = []
        net.add_node(0)
        net.add_node(1, lambda msg, t: received.append((msg, t)))
        net.add_link(0, 1)
        net.send(0, 1, "hello")
        sim.run(until=2.0)
        assert received == [("hello", pytest.approx(1.0))]

    def test_broadcast_reaches_all_neighbors(self):
        sim, net = make_net(d=0.5, u=0.0, model=FixedDelay(0.5))
        inboxes = {i: [] for i in range(4)}
        for i in range(4):
            net.add_node(i, lambda msg, t, i=i: inboxes[i].append(msg))
        net.add_link(0, 1)
        net.add_link(0, 2)
        net.add_link(0, 3)
        count = net.broadcast(0, Pulse(sender=0))
        sim.run(until=1.0)
        assert count == 3
        for i in (1, 2, 3):
            assert len(inboxes[i]) == 1
            assert inboxes[i][0].sender == 0
            assert inboxes[i][0].kind is PulseKind.SYNC
        assert inboxes[0] == []

    def test_send_to_non_neighbor_rejected(self):
        _, net = make_net()
        net.add_node(0)
        net.add_node(1)
        with pytest.raises(NetworkError):
            net.send(0, 1, "x")

    def test_send_with_delay_envelope_enforced(self):
        sim, net = make_net(d=1.0, u=0.2)
        net.add_node(0)
        net.add_node(1, lambda m, t: None)
        net.add_link(0, 1)
        net.send_with_delay(0, 1, "ok", 0.8)
        with pytest.raises(NetworkError):
            net.send_with_delay(0, 1, "early", 0.5)
        with pytest.raises(NetworkError):
            net.send_with_delay(0, 1, "late", 1.5)

    def test_delay_model_violating_envelope_rejected(self):
        sim, net = make_net(d=1.0, u=0.1, model=FixedDelay(0.2))
        net.add_node(0)
        net.add_node(1, lambda m, t: None)
        net.add_link(0, 1)
        with pytest.raises(NetworkError):
            net.send(0, 1, "x")

    def test_per_link_model_override(self):
        sim, net = make_net(d=1.0, u=0.5, model=FixedDelay(1.0))
        times = []
        net.add_node(0)
        net.add_node(1, lambda m, t: times.append(t))
        net.add_link(0, 1)
        net.set_link_delay_model(0, 1, FixedDelay(0.5), direction="ab")
        net.send(0, 1, "fast")
        sim.run(until=2.0)
        assert times == [pytest.approx(0.5)]

    def test_directional_override_leaves_reverse(self):
        sim, net = make_net(d=1.0, u=0.5, model=FixedDelay(1.0))
        times = []
        net.add_node(0, lambda m, t: times.append(("to0", t)))
        net.add_node(1, lambda m, t: times.append(("to1", t)))
        net.add_link(0, 1)
        net.set_link_delay_model(0, 1, FixedDelay(0.5), direction="ab")
        net.send(1, 0, "slow")
        sim.run(until=2.0)
        assert times == [("to0", pytest.approx(1.0))]

    def test_message_counters(self):
        sim, net = make_net(d=1.0, u=0.0)
        net.add_node(0)
        net.add_node(1, lambda m, t: None)
        net.add_link(0, 1)
        net.send(0, 1, "x")
        assert net.messages_sent == 1
        sim.run(until=2.0)
        assert net.messages_delivered == 1

    def test_missing_handler_is_dropped_silently(self):
        sim, net = make_net(d=1.0, u=0.0)
        net.add_node(0)
        net.add_node(1)  # no handler: models a crashed receiver
        net.add_link(0, 1)
        net.send(0, 1, "x")
        sim.run(until=2.0)
        assert net.messages_delivered == 1


class TestBatchedDelivery:
    """The batched fast path must be observationally identical to the
    legacy one-kernel-event-per-message stream."""

    def build_flood(self, batched, n=8, seed=3):
        sim = Simulator()
        rng = random.Random(seed)
        net = Network(sim, d=1.0, u=0.5,
                      default_delay_model=UniformDelay(1.0, 0.5, rng),
                      batched=batched)
        log = []
        for i in range(n):
            def handler(msg, t, i=i):
                log.append(("recv", i, msg[0], t))
                if msg[1] > 0:
                    net.broadcast(i, (i, msg[1] - 1))
            net.add_node(i, handler)
        for i in range(n - 1):
            net.add_link(i, i + 1)
        return sim, net, log

    def test_flood_matches_legacy_stream(self):
        # Identical seeds + identical alarm interleavings: the full
        # (receiver, sender, time) delivery log must match exactly.
        logs = {}
        for batched in (True, False):
            sim, net, log = self.build_flood(batched)
            for t in (0.5, 1.25, 2.0, 3.75):
                sim.call_at(t, log.append, ("alarm", t))
            for i in range(8):
                net.broadcast(i, (i, 4))
            sim.run_until_idle()
            logs[batched] = log
        assert logs[True] == logs[False]
        assert logs[True]  # non-trivial

    def test_same_time_ties_keep_send_order(self):
        # FixedDelay makes every delivery time coincide exactly; the
        # batched path must deliver in send (seq) order, interleaved
        # correctly with kernel events at the same timestamp.
        logs = {}
        for batched in (True, False):
            sim, net = make_net(d=1.0, u=0.0, model=FixedDelay(1.0))
            net.batched = batched
            log = []
            for i in range(4):
                net.add_node(i, lambda m, t, i=i: log.append((i, m, t)))
            for i in range(3):
                net.add_link(i, i + 1)
            net.send(0, 1, "a")
            sim.call_at(1.0, log.append, "tied alarm")
            net.send(1, 2, "b")
            net.send(2, 3, "c")
            sim.run(until=2.0)
            logs[batched] = log
        assert logs[True] == logs[False]
        # The alarm was scheduled between the sends and lands between
        # their deliveries at the shared timestamp.
        assert logs[True][1] == "tied alarm"

    def test_run_horizon_defers_pending(self):
        sim, net = make_net(d=1.0, u=0.0)
        received = []
        net.add_node(0)
        net.add_node(1, lambda m, t: received.append((m, t)))
        net.add_link(0, 1)
        net.send(0, 1, "later")
        assert net.pending_deliveries == 1
        sim.run(until=0.5)
        assert received == []
        assert net.pending_deliveries == 1
        sim.run(until=2.0)
        assert received == [("later", pytest.approx(1.0))]
        assert net.pending_deliveries == 0

    def test_inflight_survives_link_down(self):
        sim, net = make_net(d=1.0, u=0.0)
        received = []
        net.add_node(0)
        net.add_node(1, lambda m, t: received.append(m))
        net.add_link(0, 1)
        net.send(0, 1, "in flight")
        net.set_link_active(0, 1, False)
        sim.run(until=2.0)
        assert received == ["in flight"]
        net.send(0, 1, "dropped")
        assert net.messages_dropped == 1
        sim.run(until=4.0)
        assert received == ["in flight"]

    def test_legacy_mode_never_queues(self):
        sim, net = make_net(d=1.0, u=0.0)
        net.batched = False
        net.add_node(0)
        net.add_node(1, lambda m, t: None)
        net.add_link(0, 1)
        net.send(0, 1, "x")
        assert net.pending_deliveries == 0
        assert sim.pending_events == 1

    def test_fewer_kernel_events_per_message(self):
        sim, net, _log = self.build_flood(True)
        for i in range(8):
            net.broadcast(i, (i, 4))
        sim.run_until_idle()
        assert net.messages_delivered > 0
        assert sim.events_processed < net.messages_delivered

    def test_runaway_send_loop_hits_max_events(self):
        # A send-on-delivery cascade must trip run_until_idle's
        # runaway guard in batched mode too (deliveries count as work
        # units), not spin forever inside one flush drain.
        sim, net = make_net(d=1.0, u=0.0)
        net.add_node(0, lambda m, t: net.send(0, 1, m))
        net.add_node(1, lambda m, t: net.send(1, 0, m))
        net.add_link(0, 1)
        net.send(0, 1, "ping")
        with pytest.raises(SimulationError):
            sim.run_until_idle(max_events=500)
        assert net.messages_delivered <= 500

    def test_nested_run_until_idle_drains_past_outer_horizon(self):
        # A callback inside run(until=1.0) sends a message due later
        # and then calls run_until_idle(): the nested call must drain
        # it (legacy semantics) instead of spinning on a wake-up that
        # can never deliver under the outer horizon.
        sim, net = make_net(d=1.0, u=0.0)
        received = []
        net.add_node(0)
        net.add_node(1, lambda m, t: received.append((m, t)))
        net.add_link(0, 1)

        def send_then_drain():
            net.send(0, 1, "late")
            sim.run_until_idle(max_events=100)

        sim.call_at(0.5, send_then_drain)
        sim.run(until=1.0)
        assert received == [("late", pytest.approx(1.5))]

    def test_step_delivers_one_message_per_call(self):
        # step()'s single-event contract survives batching: each call
        # hands over exactly one pending delivery.
        logs = {}
        for batched in (True, False):
            sim, net = make_net(d=1.0, u=0.5, model=None)
            net.batched = batched
            log = []
            for i in range(4):
                net.add_node(i, lambda m, t, i=i: log.append((i, m, t)))
            for i in range(3):
                net.add_link(i, i + 1)
            net.set_link_delay_model(0, 1, FixedDelay(0.6))
            net.set_link_delay_model(1, 2, FixedDelay(0.8))
            net.set_link_delay_model(2, 3, FixedDelay(1.0))
            net.send(0, 1, "a")
            net.send(1, 2, "b")
            net.send(2, 3, "c")
            assert sim.step() is True
            logs[batched] = (list(log), sim.now)
            sim.run_until_idle()
            assert len(log) == 3
        assert logs[True] == logs[False]
        assert logs[True][1] == pytest.approx(0.6)  # one delivery only

    def test_counter_visible_to_handlers_mid_batch(self):
        # Handlers reading messages_delivered mid-run must see the
        # same values under both delivery paths.
        seen = {}
        for batched in (True, False):
            sim, net = make_net(d=1.0, u=0.0)
            net.batched = batched
            observed = []
            net.add_node(0)
            net.add_node(1, lambda m, t: observed.append(
                net.messages_delivered))
            net.add_link(0, 1)
            net.send(0, 1, "x")
            net.send(0, 1, "y")
            sim.run_until_idle()
            seen[batched] = observed
        assert seen[True] == seen[False] == [1, 2]
