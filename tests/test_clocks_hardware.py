"""Unit tests for hardware clocks and rate models."""

import random

import pytest

from repro.clocks import (
    ConstantRate,
    FlipRate,
    HardwareClock,
    JitterRate,
    RandomWalkRate,
    ScheduleRate,
)
from repro.errors import ClockError
from repro.sim import Simulator


class TestConstantRate:
    def test_value_advances_linearly(self):
        sim = Simulator()
        clock = HardwareClock(sim, ConstantRate(1.0), rho=0.0)
        sim.run(until=4.0)
        assert clock.value() == pytest.approx(4.0)

    def test_max_drift_rate(self):
        sim = Simulator()
        clock = HardwareClock(sim, ConstantRate(1.001), rho=0.001)
        sim.run(until=1000.0)
        assert clock.value() == pytest.approx(1001.0)

    def test_rate_outside_envelope_rejected(self):
        sim = Simulator()
        with pytest.raises(ClockError):
            HardwareClock(sim, ConstantRate(1.5), rho=0.1)
        with pytest.raises(ClockError):
            HardwareClock(sim, ConstantRate(0.9), rho=0.1)

    def test_unenforced_clock_allows_any_positive_rate(self):
        sim = Simulator()
        clock = HardwareClock(sim, ConstantRate(3.0), rho=0.1,
                              enforce_bounds=False)
        sim.run(until=2.0)
        assert clock.value() == pytest.approx(6.0)

    def test_nonpositive_rate_always_rejected(self):
        with pytest.raises(ClockError):
            ConstantRate(0.0)


class TestScheduleRate:
    def test_piecewise_integration_is_exact(self):
        sim = Simulator()
        model = ScheduleRate(1.0, [(10.0, 1.1), (20.0, 1.05)])
        clock = HardwareClock(sim, model, rho=0.1)
        sim.run(until=30.0)
        expected = 10 * 1.0 + 10 * 1.1 + 10 * 1.05
        assert clock.value() == pytest.approx(expected, rel=1e-12)

    def test_non_monotone_schedule_rejected(self):
        with pytest.raises(ClockError):
            ScheduleRate(1.0, [(5.0, 1.1), (5.0, 1.2)])

    def test_listener_called_on_change(self):
        sim = Simulator()
        model = ScheduleRate(1.0, [(1.0, 1.1)])
        clock = HardwareClock(sim, model, rho=0.2)
        seen = []
        clock.add_listener(lambda: seen.append(clock.rate))
        sim.run(until=2.0)
        assert seen == [pytest.approx(1.1)]


class TestFlipRate:
    def test_alternation(self):
        sim = Simulator()
        model = FlipRate(low=1.0, high=1.1, period=10.0)
        clock = HardwareClock(sim, model, rho=0.1)
        sim.run(until=25.0)
        # 10 slow + 10 fast + 5 slow
        expected = 10 * 1.0 + 10 * 1.1 + 5 * 1.0
        assert clock.value() == pytest.approx(expected, rel=1e-12)

    def test_start_high(self):
        model = FlipRate(low=1.0, high=1.1, period=5.0, start_high=True)
        assert model.initial_rate() == pytest.approx(1.1)
        t, rate = model.next_change(0.0)
        assert t == pytest.approx(5.0)
        assert rate == pytest.approx(1.0)

    def test_phase_shift_first_flip_at_phase(self):
        model = FlipRate(low=1.0, high=1.1, period=10.0, phase=3.0)
        t, rate = model.next_change(0.0)
        assert t == pytest.approx(3.0)
        assert rate == pytest.approx(1.1)
        t2, rate2 = model.next_change(3.0)
        assert t2 == pytest.approx(13.0)
        assert rate2 == pytest.approx(1.0)

    def test_invalid_args(self):
        with pytest.raises(ClockError):
            FlipRate(low=1.2, high=1.1, period=1.0)
        with pytest.raises(ClockError):
            FlipRate(low=1.0, high=1.1, period=0.0)


class TestStochasticModels:
    def test_random_walk_stays_in_bounds(self):
        rng = random.Random(1)
        model = RandomWalkRate(low=1.0, high=1.01, step=0.002,
                               interval=1.0, rng=rng)
        sim = Simulator()
        clock = HardwareClock(sim, model, rho=0.01)
        sim.run(until=200.0)
        assert 1.0 <= clock.rate <= 1.01

    def test_random_walk_replays(self):
        def run(seed):
            rng = random.Random(seed)
            model = RandomWalkRate(1.0, 1.01, 0.001, 1.0, rng)
            sim = Simulator()
            clock = HardwareClock(sim, model, rho=0.01)
            sim.run(until=50.0)
            return clock.value()

        assert run(3) == run(3)

    def test_jitter_rate_in_bounds(self):
        rng = random.Random(2)
        model = JitterRate(low=1.0, high=1.05, interval=2.0, rng=rng)
        sim = Simulator()
        clock = HardwareClock(sim, model, rho=0.05)
        sim.run(until=100.0)
        assert 1.0 <= clock.rate <= 1.05

    def test_invalid_interval(self):
        with pytest.raises(ClockError):
            JitterRate(1.0, 1.1, 0.0, random.Random(0))
        with pytest.raises(ClockError):
            RandomWalkRate(1.0, 1.1, 0.01, -1.0, random.Random(0))


class TestHardwareClockReads:
    def test_value_at_explicit_time(self):
        sim = Simulator()
        clock = HardwareClock(sim, ConstantRate(1.0), rho=0.0)
        sim.run(until=5.0)
        assert clock.value(5.0) == pytest.approx(5.0)

    def test_read_before_segment_raises(self):
        sim = Simulator()
        model = ScheduleRate(1.0, [(5.0, 1.1)])
        clock = HardwareClock(sim, model, rho=0.2)
        sim.run(until=6.0)
        with pytest.raises(ClockError):
            clock.value(4.0)

    def test_rho_negative_rejected(self):
        sim = Simulator()
        with pytest.raises(ClockError):
            HardwareClock(sim, ConstantRate(1.0), rho=-0.1)
