"""The cross-engine equivalence harness
(`repro.engine_vec.equivalence`).

The quick matrix — every (protocol, topology, seed) cell that both
engines support — must pass: bit-equal skews on *exact* cells,
documented per-cell tolerances elsewhere, analytic envelopes for the
ftgcs round skeleton.  This is the tentpole acceptance gate of the
vectorized engine, so the matrix runs in full here (about a second).
"""

import pytest

pytest.importorskip("numpy")

from repro.engine_vec.equivalence import (
    MODES,
    quick_cells,
    run_cell,
    run_equivalence,
)


class TestQuickMatrix:
    def test_full_matrix_passes(self):
        report = run_equivalence()
        assert report.passed, report.summary()

    def test_matrix_covers_all_supported_protocols(self):
        protocols = {cell.protocol for cell in quick_cells()}
        assert protocols == {"gcs_single", "srikanth_toueg",
                             "lynch_welch", "ftgcs"}

    def test_matrix_exercises_every_mode(self):
        modes = {cell.mode for cell in quick_cells()}
        assert modes == set(MODES)

    def test_exact_cells_are_bit_equal(self):
        for cell in quick_cells():
            if cell.mode != "exact":
                continue
            result = run_cell(cell)
            assert result.passed, result.failures
            assert result.vec_local == result.event_local
            assert result.vec_global == result.event_global

    def test_cells_carry_multiple_seeds(self):
        # Seed diversity: one lucky draw must not carry the gate.
        by_name = {}
        for cell in quick_cells():
            base = cell.name.rsplit("-s", 1)[0]
            by_name.setdefault(base, set()).add(cell.seed)
        assert any(len(seeds) > 1 for seeds in by_name.values())


class TestHarness:
    def test_unknown_mode_fails_the_cell(self):
        from dataclasses import replace
        cell = replace(quick_cells()[0], mode="vibes")
        result = run_cell(cell)
        assert not result.passed
        assert any("unknown mode" in msg for msg in result.failures)

    def test_failing_tolerance_is_reported(self):
        # Shrink a passing tolerance cell's bound to force a failure:
        # the report must carry the cell, not raise.
        cells = [cell for cell in quick_cells()
                 if cell.mode == "tolerance"]
        from dataclasses import replace
        broken = replace(cells[0], tolerance=0.0)
        result = run_cell(broken)
        assert not result.passed
        assert result.failures
        report = run_equivalence([broken])
        assert not report.passed
        assert broken.name in report.summary()
