"""Property-based tests (Hypothesis) on core invariants."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.bounds import (
    cluster_failure_bound_3ep,
    cluster_failure_bound_binomial,
    cluster_failure_probability,
)
from repro.analysis.metrics import compute_snapshot
from repro.clocks import ConstantRate, HardwareClock, LogicalClock
from repro.core.params import Parameters
from repro.core.rounds import RoundSchedule
from repro.sim import Simulator

PARAMS = Parameters.practical(rho=1e-4, d=1.0, u=0.1, f=1)


class TestLogicalClockProperties:
    @given(
        hw_rate=st.floats(1.0, 1.0001),
        steps=st.lists(
            st.tuples(st.floats(0.01, 50.0),      # dwell time
                      st.floats(0.0, 2.0),        # delta
                      st.integers(0, 1)),         # gamma
            min_size=1, max_size=12),
    )
    @settings(max_examples=100, deadline=None)
    def test_monotone_and_rate_bounded(self, hw_rate, steps):
        """Under arbitrary control sequences the clock never runs
        backwards and its average rate stays within the model envelope
        [1, theta_max']."""
        sim = Simulator()
        hw = HardwareClock(sim, ConstantRate(hw_rate), rho=1e-4)
        clock = LogicalClock(sim, hw, phi=0.01, mu=0.005)
        previous_value = 0.0
        previous_time = 0.0
        max_mult = (1 + 0.01 * 2.0) * (1 + 0.005) * hw_rate
        for dwell, delta, gamma in steps:
            clock.set_delta(delta)
            clock.set_gamma(gamma)
            sim.run(until=previous_time + dwell)
            value = clock.value()
            elapsed = sim.now - previous_time
            gained = value - previous_value
            assert gained >= elapsed * 1.0 - 1e-9  # rate >= 1*1*1
            assert gained <= elapsed * max_mult + 1e-9
            previous_value = value
            previous_time = sim.now

    @given(targets=st.lists(st.floats(0.1, 1000.0), min_size=1,
                            max_size=10, unique=True))
    @settings(max_examples=60, deadline=None)
    def test_alarms_fire_in_target_order(self, targets):
        sim = Simulator()
        hw = HardwareClock(sim, ConstantRate(1.0), rho=0.0)
        clock = LogicalClock(sim, hw, phi=0.1, mu=0.0)
        fired = []
        for target in targets:
            clock.at_value(target, fired.append, target)
        sim.run(until=2000.0)
        assert fired == sorted(targets)


class TestTrimmedMidpointProperties:
    """Validity of the approximate-agreement step: with at most f
    arbitrary samples among n >= 3f+1, the trimmed midpoint stays
    within the range of the honest samples."""

    @given(
        honest=st.lists(st.floats(-100.0, 100.0), min_size=3,
                        max_size=9),
        byzantine=st.lists(st.floats(-1e6, 1e6), min_size=0,
                           max_size=3),
    )
    @settings(max_examples=300)
    def test_midpoint_within_honest_range(self, honest, byzantine):
        f = len(byzantine)
        if len(honest) + f < 3 * f + 1:
            honest = honest + [0.0] * (3 * f + 1 - len(honest) - f)
        samples = sorted(honest + byzantine)
        n = len(samples)
        midpoint = 0.5 * (samples[f] + samples[n - 1 - f])
        assert min(honest) - 1e-9 <= midpoint <= max(honest) + 1e-9


class TestSnapshotProperties:
    @given(
        data=st.dictionaries(
            keys=st.integers(0, 5),
            values=st.dictionaries(st.integers(0, 50),
                                   st.floats(-1e4, 1e4),
                                   min_size=1, max_size=5),
            min_size=1, max_size=6),
    )
    @settings(max_examples=200)
    def test_metric_ordering(self, data):
        clusters = sorted(data)
        edges = [(a, b) for i, a in enumerate(clusters)
                 for b in clusters[i + 1:]]
        snap = compute_snapshot(0.0, data, edges, include_edges=True)
        # Global dominates everything measured between correct nodes.
        assert snap.global_skew >= snap.max_intra_cluster - 1e-9
        assert snap.global_skew >= snap.max_local_node - 1e-9
        # Node-level local skew dominates cluster-clock skew per edge.
        assert snap.max_local_node >= snap.max_local_cluster - 1e-9
        # Edge map is consistent with the maximum.
        if snap.edge_skews:
            assert max(snap.edge_skews.values()) == pytest.approx(
                snap.max_local_cluster)


class TestScheduleProperties:
    @given(factor=st.floats(1.0, 50.0))
    @settings(max_examples=50, deadline=None)
    def test_error_envelope_monotone(self, factor):
        schedule = RoundSchedule(PARAMS, e1=factor * PARAMS.cap_e)
        previous = schedule.e(1)
        for r in range(2, 30):
            current = schedule.e(r)
            assert PARAMS.cap_e - 1e-12 <= current <= previous + 1e-12
            previous = current

    @given(factor=st.floats(1.0, 50.0))
    @settings(max_examples=50, deadline=None)
    def test_round_starts_strictly_increase(self, factor):
        schedule = RoundSchedule(PARAMS, e1=factor * PARAMS.cap_e)
        previous = schedule.round_start(1)
        for r in range(2, 20):
            current = schedule.round_start(r)
            assert current > previous
            previous = current


class TestFailureBoundProperties:
    @given(f=st.integers(0, 5), p=st.floats(0.0, 0.2))
    @settings(max_examples=200)
    def test_inequality_1_chain(self, f, p):
        exact = cluster_failure_probability(f, p)
        binom = cluster_failure_bound_binomial(f, p)
        top = cluster_failure_bound_3ep(f, p)
        assert 0.0 <= exact <= 1.0
        assert exact <= binom + 1e-12
        assert binom <= top + 1e-12

    @given(f=st.integers(0, 4),
           p1=st.floats(0.0, 0.5), p2=st.floats(0.0, 0.5))
    @settings(max_examples=100)
    def test_monotone_in_p(self, f, p1, p2):
        lo, hi = min(p1, p2), max(p1, p2)
        assert (cluster_failure_probability(f, lo)
                <= cluster_failure_probability(f, hi) + 1e-12)
