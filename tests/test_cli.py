"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, list_experiments, main


class TestParser:
    def test_list_flag(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "t01" in out and "t12" in out

    def test_listing_mentions_all_experiments(self):
        text = list_experiments()
        for i in range(1, 13):
            assert f"t{i:02d}" in text

    def test_unknown_experiment_rejected(self, capsys):
        assert main(["t99"]) == 2
        err = capsys.readouterr().err
        assert "unknown experiment" in err

    def test_no_arguments_is_usage_error(self, capsys):
        assert main([]) == 2

    def test_parser_accepts_full_flag(self):
        args = build_parser().parse_args(["t01", "--full"])
        assert args.full is True
        assert args.experiments == ["t01"]

    def test_parser_accepts_processes_flag(self):
        args = build_parser().parse_args(["t09", "--processes", "4"])
        assert args.processes == 4

    def test_bench_quick_cannot_mix_with_experiments(self, capsys):
        assert main(["bench-quick", "t01"]) == 2
        err = capsys.readouterr().err
        assert "cannot be combined" in err

    def test_bench_quick_cannot_mix_with_all_flag(self, capsys):
        assert main(["bench-quick", "--all"]) == 2
        err = capsys.readouterr().err
        assert "cannot be combined" in err

    def test_bench_quick_listed(self):
        assert "bench-quick" in list_experiments()


class TestExecution:
    def test_runs_single_experiment(self, capsys):
        assert main(["t08"]) == 0
        out = capsys.readouterr().out
        assert "T8" in out
        assert "finished in" in out

    def test_case_insensitive_names(self, capsys):
        assert main(["T08"]) == 0
        assert "T8" in capsys.readouterr().out
