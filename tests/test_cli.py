"""Tests for the command-line interface (registry subcommands)."""

import json

import pytest

from repro.cli import build_parser, list_experiments, main


class TestList:
    def test_list_subcommand(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "t01" in out and "t16" in out

    def test_legacy_list_flag(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "t01" in out and "t16" in out

    def test_listing_mentions_all_experiments(self):
        text = list_experiments()
        for i in range(1, 19):
            assert f"t{i:02d}" in text

    def test_bench_quick_listed(self):
        assert "bench-quick" in list_experiments()

    def test_list_json(self, capsys):
        assert main(["list", "--format", "json"]) == 0
        entries = json.loads(capsys.readouterr().out)
        assert [e["id"] for e in entries] == [f"t{i:02d}"
                                              for i in range(1, 19)]
        assert all(e["claim"] for e in entries)


class TestShow:
    def test_show_metadata(self, capsys):
        assert main(["show", "t05"]) == 0
        out = capsys.readouterr().out
        assert "t05" in out
        assert "claim:" in out
        assert "cells quick" in out
        assert "default seed: 5" in out

    def test_show_unknown_id(self, capsys):
        assert main(["show", "t99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_show_case_insensitive(self, capsys):
        assert main(["show", "T05"]) == 0


class TestParser:
    def test_unknown_experiment_rejected(self, capsys):
        assert main(["run", "t99"]) == 2
        err = capsys.readouterr().err
        assert "unknown experiment" in err

    def test_legacy_unknown_experiment_rejected(self, capsys):
        assert main(["t99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_no_arguments_is_usage_error(self, capsys):
        assert main([]) == 2

    def test_run_without_ids_is_usage_error(self, capsys):
        assert main(["run"]) == 2

    def test_parser_accepts_full_flag(self):
        args = build_parser().parse_args(["run", "t01", "--full"])
        assert args.full is True
        assert args.ids == ["t01"]

    def test_parser_accepts_quick_flag(self):
        args = build_parser().parse_args(["run", "t01", "--quick"])
        assert args.full is False

    def test_parser_accepts_processes_flag(self):
        args = build_parser().parse_args(
            ["run", "t09", "--processes", "4"])
        assert args.processes == 4

    def test_parser_accepts_seed_flag(self):
        args = build_parser().parse_args(["run", "t05", "--seed", "99"])
        assert args.seed == 99

    def test_bench_quick_rejects_positionals(self, capsys):
        assert main(["bench-quick", "t01"]) == 2


class TestExecution:
    def test_runs_single_experiment(self, capsys):
        assert main(["run", "t08"]) == 0
        out = capsys.readouterr().out
        assert "T8" in out
        assert "finished in" in out

    def test_legacy_positional_form(self, capsys):
        assert main(["t08"]) == 0
        assert "T8" in capsys.readouterr().out

    def test_case_insensitive_names(self, capsys):
        assert main(["T08"]) == 0
        assert "T8" in capsys.readouterr().out

    def test_json_format_is_pure_stdout(self, capsys):
        assert main(["run", "t08", "--format", "json"]) == 0
        captured = capsys.readouterr()
        tables = json.loads(captured.out)
        assert len(tables) == 1
        assert tables[0]["title"].startswith("T8")
        assert tables[0]["rows"]
        assert "finished in" in captured.err

    def test_json_format_is_strict_with_nan_rows(self, capsys):
        # T3's GCS row contains NaN; strict parsers must still accept
        # the output (non-finite floats become string spellings).
        assert main(["run", "t03", "--format", "json"]) == 0
        tables = json.loads(capsys.readouterr().out,
                            parse_constant=lambda token: pytest.fail(
                                f"bare {token} token in JSON output"))
        gcs_rows = [row for row in tables[0]["rows"]
                    if row[0] == "GCS (no FT)"]
        assert gcs_rows and gcs_rows[0][2] == "NaN"

    def test_csv_format(self, capsys):
        assert main(["run", "t08", "--format", "csv"]) == 0
        out = capsys.readouterr().out
        header = out.splitlines()[0]
        assert header.startswith("graph,f,k,")

    def test_legacy_id_with_help_shows_run_help(self, capsys):
        assert main(["t07", "--help"]) == 0
        assert "--processes" in capsys.readouterr().out

    def test_csv_multi_table_has_no_blank_records(self, capsys):
        import csv as csv_module
        import io

        assert main(["run", "t08", "t08", "--format", "csv"]) == 0
        out = capsys.readouterr().out
        rows = list(csv_module.reader(io.StringIO(out)))
        assert all(rows)  # no empty records between tables
        assert sum(1 for row in rows if row[0] == "graph") == 2

    def test_seed_flag_changes_output(self, capsys):
        assert main(["run", "t05", "--seed", "99",
                     "--format", "csv"]) == 0
        reseeded = capsys.readouterr().out
        assert main(["run", "t05", "--format", "csv"]) == 0
        default = capsys.readouterr().out
        assert reseeded != default

    def test_processes_flag_accepted_everywhere(self, capsys):
        # t08 is a non-simulation experiment; --processes still works.
        assert main(["run", "t08", "--processes", "2"]) == 0


class TestBaselineCheck:
    def results(self, rate):
        return [{"name": "event_throughput", "events": 1,
                 "seconds": 1.0, "events_per_second": rate}]

    def test_within_tolerance_passes(self, monkeypatch, capsys):
        import repro.cli as cli

        monkeypatch.setattr(cli, "_baseline_event_throughput",
                            lambda: 1_000_000.0)
        assert cli._check_baseline(self.results(950_000.0),
                                   strict=True) == 0
        assert "ok" in capsys.readouterr().err

    def test_regression_warns_but_passes_without_strict(
            self, monkeypatch, capsys):
        import repro.cli as cli

        monkeypatch.setattr(cli, "_baseline_event_throughput",
                            lambda: 1_000_000.0)
        assert cli._check_baseline(self.results(500_000.0),
                                   strict=False) == 0
        assert "warning" in capsys.readouterr().err

    def test_regression_fails_with_strict(self, monkeypatch, capsys):
        import repro.cli as cli

        monkeypatch.setattr(cli, "_baseline_event_throughput",
                            lambda: 1_000_000.0)
        assert cli._check_baseline(self.results(500_000.0),
                                   strict=True) == 1
        assert "warning" in capsys.readouterr().err

    def test_missing_baseline_skips(self, monkeypatch, capsys):
        import repro.cli as cli

        monkeypatch.setattr(cli, "_baseline_event_throughput",
                            lambda: None)
        assert cli._check_baseline(self.results(1.0), strict=True) == 0
        assert "skipping" in capsys.readouterr().err

    def test_baseline_reader_parses_bench_file(self):
        from repro.cli import _baseline_event_throughput

        # The repo ships BENCH_kernel.json; the reader must find it
        # relative to the package and return the latest entry's rate.
        rate = _baseline_event_throughput()
        assert rate is not None and rate > 0

    def test_parser_accepts_check_flag(self):
        parser = build_parser()
        args = parser.parse_args(["bench-quick", "--check"])
        assert args.check is True


class TestSave:
    def test_save_json(self, capsys, tmp_path):
        target = tmp_path / "out.json"
        assert main(["run", "t08", "--save", str(target)]) == 0
        assert f"[saved 1 table(s) to {target}]" \
            in capsys.readouterr().out
        tables = json.loads(target.read_text())
        assert len(tables) == 1
        assert tables[0]["title"].startswith("T8")
        assert tables[0]["rows"]

    def test_save_csv_multi_table(self, capsys, tmp_path):
        target = tmp_path / "out.csv"
        assert main(["run", "t08", "t08", "--save", str(target)]) == 0
        text = target.read_text()
        assert sum(1 for line in text.splitlines()
                   if line.startswith("graph,")) == 2
        assert "" not in text.splitlines()  # no blank records

    def test_save_matches_stdout_json(self, capsys, tmp_path):
        target = tmp_path / "out.json"
        assert main(["run", "t08", "--format", "json",
                     "--save", str(target)]) == 0
        stdout_tables = json.loads(capsys.readouterr().out)
        assert json.loads(target.read_text()) == stdout_tables

    def test_unknown_extension_fails_before_running(self, capsys,
                                                    tmp_path):
        target = tmp_path / "out.txt"
        assert main(["run", "t08", "--save", str(target)]) == 2
        captured = capsys.readouterr()
        assert "--save needs a .json or .csv extension" in captured.err
        assert "finished in" not in captured.out  # nothing ran
        assert not target.exists()


class TestCacheCli:
    def test_stats_empty(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        assert main(["cache", "stats"]) == 0
        out = capsys.readouterr().out
        assert "entries:    0" in out
        assert str(tmp_path / "cache") in out

    def test_clear_reports_removed(self, capsys, tmp_path,
                                   monkeypatch):
        from repro.core.params import Parameters
        from repro.harness.scenario import Scenario
        from repro.harness.sweep import run_cell
        from repro.service import ResultStore

        cache = tmp_path / "cache"
        monkeypatch.setenv("REPRO_CACHE_DIR", str(cache))
        params = Parameters.practical(rho=1e-4, d=1.0, u=0.1, f=1)
        spec = (Scenario.line(3).params(params).rounds(2).seed(1)
                .build())
        ResultStore(cache).put(spec, run_cell(spec))
        assert main(["cache", "stats"]) == 0
        assert "entries:    1" in capsys.readouterr().out
        assert main(["cache", "clear"]) == 0
        assert "removed 1 cached result(s)" in capsys.readouterr().out
        assert main(["cache", "stats"]) == 0
        assert "entries:    0" in capsys.readouterr().out

    def test_cache_dir_flag_overrides_env(self, capsys, tmp_path,
                                          monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env"))
        explicit = tmp_path / "explicit"
        assert main(["cache", "stats", "--cache-dir",
                     str(explicit)]) == 0
        assert str(explicit) in capsys.readouterr().out
