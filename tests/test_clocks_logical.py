"""Unit tests for logical clocks (Eq. (2)) and scaled clocks."""

import pytest

from repro.clocks import (
    ConstantRate,
    HardwareClock,
    LogicalClock,
    ScaledClock,
    ScheduleRate,
)
from repro.errors import ClockError
from repro.sim import Simulator


def make_clock(sim, hw_rate=1.0, rho=0.1, phi=0.1, mu=0.01,
               delta=1.0, gamma=0):
    hw = HardwareClock(sim, ConstantRate(hw_rate), rho=rho)
    return LogicalClock(sim, hw, phi=phi, mu=mu, delta=delta, gamma=gamma)


class TestLogicalRate:
    def test_rate_composition(self):
        sim = Simulator()
        clock = make_clock(sim, hw_rate=1.05, phi=0.1, mu=0.02,
                           delta=1.0, gamma=1)
        expected = (1 + 0.1 * 1.0) * (1 + 0.02) * 1.05
        assert clock.rate == pytest.approx(expected, rel=1e-12)

    def test_integration_matches_eq2(self):
        sim = Simulator()
        clock = make_clock(sim, hw_rate=1.0, phi=0.5, mu=0.0, delta=1.0)
        sim.run(until=10.0)
        assert clock.value() == pytest.approx(15.0)

    def test_delta_change_integrates_piecewise(self):
        sim = Simulator()
        clock = make_clock(sim, phi=0.5, mu=0.0, delta=1.0)
        sim.run(until=10.0)  # slope 1.5 -> 15
        clock.set_delta(0.0)
        sim.run(until=20.0)  # slope 1.0 -> +10
        assert clock.value() == pytest.approx(25.0)

    def test_gamma_change(self):
        sim = Simulator()
        clock = make_clock(sim, phi=0.0, mu=0.1, delta=0.0, gamma=0)
        sim.run(until=10.0)  # slope 1
        clock.set_gamma(1)
        sim.run(until=20.0)  # slope 1.1
        assert clock.value() == pytest.approx(10.0 + 11.0)

    def test_hardware_rate_change_propagates(self):
        sim = Simulator()
        hw = HardwareClock(sim, ScheduleRate(1.0, [(5.0, 1.1)]), rho=0.2)
        clock = LogicalClock(sim, hw, phi=0.0, mu=0.0, delta=0.0)
        sim.run(until=10.0)
        assert clock.value() == pytest.approx(5 * 1.0 + 5 * 1.1)
        assert clock.rate == pytest.approx(1.1)

    def test_validation(self):
        sim = Simulator()
        hw = HardwareClock(sim, ConstantRate(1.0), rho=0.1)
        with pytest.raises(ClockError):
            LogicalClock(sim, hw, phi=1.0, mu=0.0)
        with pytest.raises(ClockError):
            LogicalClock(sim, hw, phi=0.1, mu=-0.1)
        with pytest.raises(ClockError):
            LogicalClock(sim, hw, phi=0.1, mu=0.1, delta=-1.0)
        with pytest.raises(ClockError):
            LogicalClock(sim, hw, phi=0.1, mu=0.1, gamma=2)
        clock = LogicalClock(sim, hw, phi=0.1, mu=0.1)
        with pytest.raises(ClockError):
            clock.set_delta(-0.5)
        with pytest.raises(ClockError):
            clock.set_gamma(3)


class TestAlarms:
    def test_alarm_fires_at_exact_logical_time(self):
        sim = Simulator()
        clock = make_clock(sim, phi=0.5, mu=0.0, delta=1.0)  # slope 1.5
        fired = []
        clock.at_value(15.0, lambda: fired.append(sim.now))
        sim.run(until=20.0)
        assert fired == [pytest.approx(10.0)]

    def test_alarm_reschedules_on_rate_change(self):
        sim = Simulator()
        clock = make_clock(sim, phi=0.5, mu=0.0, delta=1.0)  # slope 1.5
        fired = []
        clock.at_value(30.0, lambda: fired.append(sim.now))
        sim.run(until=10.0)  # L = 15
        clock.set_delta(0.0)  # slope 1.0; 15 more logical units -> t=25
        sim.run(until=30.0)
        assert fired == [pytest.approx(25.0)]

    def test_multiple_alarms_fire_in_order(self):
        sim = Simulator()
        clock = make_clock(sim, phi=0.0, mu=0.0, delta=0.0)
        order = []
        clock.at_value(3.0, order.append, "c")
        clock.at_value(1.0, order.append, "a")
        clock.at_value(2.0, order.append, "b")
        sim.run(until=5.0)
        assert order == ["a", "b", "c"]

    def test_cancel_alarm(self):
        sim = Simulator()
        clock = make_clock(sim)
        fired = []
        alarm = clock.at_value(5.0, fired.append, "x")
        clock.cancel_alarm(alarm)
        sim.run(until=20.0)
        assert fired == []

    def test_past_target_fires_immediately(self):
        sim = Simulator()
        clock = make_clock(sim, phi=0.0, mu=0.0, delta=0.0)
        sim.run(until=10.0)
        fired = []
        clock.at_value(5.0, lambda: fired.append(sim.now))
        sim.run(until=10.0)
        assert fired == [pytest.approx(10.0)]

    def test_target_now_fires_immediately(self):
        sim = Simulator()
        clock = make_clock(sim, phi=0.0, mu=0.0, delta=0.0)
        sim.run(until=10.0)
        fired = []
        clock.at_value(10.0, lambda: fired.append(sim.now))
        sim.run(until=10.0)
        assert fired == [pytest.approx(10.0)]

    def test_alarm_callback_can_register_next_alarm(self):
        sim = Simulator()
        clock = make_clock(sim, phi=0.0, mu=0.0, delta=0.0)
        times = []

        def tick(target):
            times.append(sim.now)
            if target < 3.0:
                clock.at_value(target + 1.0, tick, target + 1.0)

        clock.at_value(1.0, tick, 1.0)
        sim.run(until=10.0)
        assert times == [pytest.approx(1.0), pytest.approx(2.0),
                         pytest.approx(3.0)]

    def test_hardware_change_reschedules_alarm(self):
        sim = Simulator()
        hw = HardwareClock(sim, ScheduleRate(1.0, [(5.0, 1.25)]), rho=0.25)
        clock = LogicalClock(sim, hw, phi=0.0, mu=0.0, delta=0.0)
        fired = []
        clock.at_value(10.0, lambda: fired.append(sim.now))
        # 5 units at rate 1 -> L=5; remaining 5 at rate 1.25 -> 4 units.
        sim.run(until=20.0)
        assert fired == [pytest.approx(9.0)]


class TestScaledClock:
    def test_scale(self):
        sim = Simulator()
        hw = HardwareClock(sim, ConstantRate(1.1), rho=0.1)
        m = ScaledClock(sim, hw, scale=1 / 1.1)
        sim.run(until=11.0)
        assert m.value() == pytest.approx(11.0)

    def test_jump_forward(self):
        sim = Simulator()
        hw = HardwareClock(sim, ConstantRate(1.0), rho=0.0)
        m = ScaledClock(sim, hw, scale=1.0)
        sim.run(until=2.0)
        assert m.jump_to(10.0) is True
        assert m.value() == pytest.approx(10.0)
        sim.run(until=3.0)
        assert m.value() == pytest.approx(11.0)

    def test_jump_backward_ignored(self):
        sim = Simulator()
        hw = HardwareClock(sim, ConstantRate(1.0), rho=0.0)
        m = ScaledClock(sim, hw, scale=1.0)
        sim.run(until=5.0)
        assert m.jump_to(1.0) is False
        assert m.value() == pytest.approx(5.0)

    def test_jump_triggers_alarm_reschedule(self):
        sim = Simulator()
        hw = HardwareClock(sim, ConstantRate(1.0), rho=0.0)
        m = ScaledClock(sim, hw, scale=1.0)
        fired = []
        m.at_value(10.0, lambda: fired.append(sim.now))
        sim.run(until=2.0)
        m.jump_to(10.0)
        sim.run(until=2.0)
        assert fired == [pytest.approx(2.0)]

    def test_invalid_scale(self):
        sim = Simulator()
        hw = HardwareClock(sim, ConstantRate(1.0), rho=0.0)
        with pytest.raises(ClockError):
            ScaledClock(sim, hw, scale=0.0)
