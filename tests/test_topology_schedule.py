"""Tests for topology schedules and dynamic-network runs."""

import pytest

from repro.errors import ConfigError, TopologyError
from repro.net.network import Network
from repro.sim.kernel import Simulator
from repro.topology.cluster_graph import ClusterGraph
from repro.topology.schedule import (
    SCHEDULES,
    EdgeChurnSchedule,
    RewireSchedule,
    TopologySchedule,
    build_schedule,
    register_schedule,
)


class TestStatic:
    def test_trivial_schedule(self):
        schedule = TopologySchedule(ClusterGraph.line(3))
        assert schedule.is_static
        assert schedule.events(100.0, 1) == []
        assert schedule.initial_down(1) == []


class TestChurn:
    def make(self, churn=0.5, interval=10.0, **kwargs):
        return EdgeChurnSchedule(ClusterGraph.ring(5), interval, churn,
                                 **kwargs)

    def test_deterministic_across_instances(self):
        assert self.make().events(200.0, 7) == self.make().events(200.0, 7)

    def test_seed_moves_events(self):
        assert self.make().events(200.0, 7) != self.make().events(200.0, 8)

    def test_events_sorted_and_within_horizon(self):
        events = self.make().events(95.0, 3)
        times = [t for t, _, _ in events]
        assert times == sorted(times)
        assert all(0 < t <= 95.0 for t in times)

    def test_zero_churn_produces_no_down_events(self):
        events = self.make(churn=0.0).events(200.0, 3)
        assert all(active for _, _, active in events) and events == []

    def test_protected_edges_never_flap(self):
        protected = (0, 1)
        events = self.make(churn=1.0, protect=[protected]).events(50.0, 3)
        assert events  # churn=1 downs every unprotected edge
        assert all(edge != protected for _, edge, _ in events)

    def test_unknown_protected_edge_rejected(self):
        with pytest.raises(TopologyError):
            self.make(protect=[(0, 3)])

    def test_validation(self):
        with pytest.raises(ConfigError):
            self.make(interval=0.0)
        with pytest.raises(ConfigError):
            self.make(churn=1.5)

    def test_not_static(self):
        assert not self.make().is_static


class TestRewire:
    def make(self, active_extras=1, interval=10.0):
        return RewireSchedule(ClusterGraph.complete(4), interval,
                              active_extras)

    def test_core_defaults_to_spanning_prefix(self):
        schedule = self.make()
        assert len(schedule.core) == 3
        assert len(schedule.chords) == 3

    def test_initial_down_matches_event_replay(self):
        schedule = self.make()
        down = set(schedule.initial_down(5))
        assert len(down) == 2  # 3 chords, 1 active
        # The first event tick only toggles chords relative to the
        # same initial draw.
        events = schedule.events(10.0, 5)
        activated = {edge for _, edge, active in events if active}
        assert activated <= down | set(schedule.chords)

    def test_active_count_invariant(self):
        schedule = self.make(active_extras=2)
        active = {e for e in schedule.chords
                  if e not in set(schedule.initial_down(1))}
        assert len(active) == 2
        for _t, edge, is_active in schedule.events(100.0, 1):
            if is_active:
                active.add(edge)
            else:
                active.discard(edge)
        assert len(active) == 2

    def test_validation(self):
        with pytest.raises(ConfigError):
            self.make(active_extras=9)
        with pytest.raises(ConfigError):
            self.make(interval=-1.0)


class TestScheduleRegistry:
    def test_builtins(self):
        for name in ("static", "churn", "rewire"):
            assert name in SCHEDULES

    def test_build_by_name(self):
        schedule = build_schedule("churn", ClusterGraph.line(3),
                                  interval=5.0, churn=0.2)
        assert isinstance(schedule, EdgeChurnSchedule)

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigError) as err:
            build_schedule("teleport", ClusterGraph.line(3))
        assert "churn" in str(err.value)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigError):
            register_schedule("churn", EdgeChurnSchedule)

    def test_custom_registration(self):
        class Flaky(TopologySchedule):
            name = "test_flaky"

        register_schedule("test_flaky", Flaky)
        try:
            assert isinstance(
                build_schedule("test_flaky", ClusterGraph.line(2)), Flaky)
        finally:
            del SCHEDULES["test_flaky"]


class TestNetworkLinkActivation:
    def make_net(self):
        import random

        from repro.net.delays import UniformDelay

        sim = Simulator()
        net = Network(sim, d=1.0, u=0.0,
                      default_delay_model=UniformDelay(
                          1.0, 0.0, random.Random(0)))
        for node in (0, 1, 2):
            net.add_node(node)
        net.add_link(0, 1)
        net.add_link(1, 2)
        return sim, net

    def test_down_link_drops_sends(self):
        sim, net = self.make_net()
        received = []
        net.set_handler(1, lambda m, t: received.append(m))
        net.set_link_active(0, 1, False)
        net.send(0, 1, "lost")
        assert net.messages_dropped == 1
        net.set_link_active(0, 1, True)
        net.send(0, 1, "kept")
        sim.run(until=2.0)
        assert received == ["kept"]
        assert net.messages_sent == 1

    def test_broadcast_skips_down_links(self):
        sim, net = self.make_net()
        got = {0: [], 2: []}
        net.set_handler(0, lambda m, t: got[0].append(m))
        net.set_handler(2, lambda m, t: got[2].append(m))
        net.set_link_active(1, 2, False)
        assert net.broadcast(1, "hello") == 1
        sim.run(until=2.0)
        assert got[0] == ["hello"] and got[2] == []

    def test_in_flight_messages_still_deliver(self):
        sim, net = self.make_net()
        received = []
        net.set_handler(1, lambda m, t: received.append(m))
        net.send(0, 1, "in-flight")
        net.set_link_active(0, 1, False)
        sim.run(until=2.0)
        assert received == ["in-flight"]

    def test_link_active_queries(self):
        _sim, net = self.make_net()
        assert net.link_active(0, 1)
        net.set_link_active(0, 1, False)
        assert not net.link_active(0, 1)
        assert not net.link_active(1, 0)
        assert net.link_active(1, 2)

    def test_unknown_link_rejected(self):
        _sim, net = self.make_net()
        with pytest.raises(Exception):
            net.set_link_active(0, 2, False)
        with pytest.raises(Exception):
            net.link_active(0, 2)


class TestDynamicRuns:
    def test_ftgcs_under_churn_differs_from_static(self):
        from repro.core.protocol import SystemBuilder
        from repro.harness.runner import default_params

        params = default_params(f=1)
        schedule = EdgeChurnSchedule(
            ClusterGraph.line(3), interval=params.round_length,
            churn=0.5)
        dynamic = (SystemBuilder("ftgcs").topology(schedule)
                   .params(params).rounds(4).seed(2).build())
        dyn_result = dynamic.run()
        static = (SystemBuilder("ftgcs").topology(ClusterGraph.line(3))
                  .params(params).rounds(4).seed(2).build().run())
        assert dynamic.protocol.network.messages_dropped > 0
        assert dyn_result.series != static.series

    def test_run_past_start_horizon_extends_schedule(self):
        # Extending a run past the horizon applied at start() must
        # enqueue the schedule's event suffix, not freeze the topology.
        from repro.core.protocol import SystemBuilder
        from repro.baselines.gcs_single import GcsParams

        schedule = EdgeChurnSchedule(ClusterGraph.ring(4),
                                     interval=25.0, churn=0.6)
        system = (SystemBuilder("gcs_single").topology(schedule)
                  .payload(params=GcsParams.default(), until=100.0)
                  .seed(3).build())
        system.run(until=100.0)
        dropped_first = system.protocol.network.messages_dropped
        events_late = [t for t, _, _ in schedule.events(400.0, 3)
                       if t > 100.0]
        assert events_late  # churn=0.6 keeps flapping after t=100
        system.run(until=400.0)
        assert system.protocol.network.messages_dropped > dropped_first

    def test_dynamic_run_deterministic(self):
        from repro.core.protocol import SystemBuilder
        from repro.harness.runner import default_params

        params = default_params(f=1)

        def run():
            schedule = EdgeChurnSchedule(
                ClusterGraph.line(3),
                interval=params.round_length, churn=0.5)
            return (SystemBuilder("ftgcs").topology(schedule)
                    .params(params).rounds(4).seed(2).build().run())

        assert run().series == run().series
