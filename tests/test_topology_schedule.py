"""Tests for topology schedules and dynamic-network runs."""

import pytest

from repro.errors import ConfigError, TopologyError
from repro.net.network import Network
from repro.sim.kernel import Simulator
from repro.topology.cluster_graph import ClusterGraph
from repro.topology.schedule import (
    SCHEDULES,
    AdversarialSweepSchedule,
    EdgeChurnSchedule,
    RewireSchedule,
    TIntervalSchedule,
    TopologySchedule,
    build_schedule,
    register_schedule,
    tick_count,
)


class TestStatic:
    def test_trivial_schedule(self):
        schedule = TopologySchedule(ClusterGraph.line(3))
        assert schedule.is_static
        assert schedule.events(100.0, 1) == []
        assert schedule.initial_down(1) == []


class TestChurn:
    def make(self, churn=0.5, interval=10.0, **kwargs):
        return EdgeChurnSchedule(ClusterGraph.ring(5), interval, churn,
                                 **kwargs)

    def test_deterministic_across_instances(self):
        assert self.make().events(200.0, 7) == self.make().events(200.0, 7)

    def test_seed_moves_events(self):
        assert self.make().events(200.0, 7) != self.make().events(200.0, 8)

    def test_events_sorted_and_within_horizon(self):
        events = self.make().events(95.0, 3)
        times = [t for t, _, _ in events]
        assert times == sorted(times)
        assert all(0 < t <= 95.0 for t in times)

    def test_zero_churn_produces_no_down_events(self):
        events = self.make(churn=0.0).events(200.0, 3)
        assert all(active for _, _, active in events) and events == []

    def test_protected_edges_never_flap(self):
        protected = (0, 1)
        events = self.make(churn=1.0, protect=[protected]).events(50.0, 3)
        assert events  # churn=1 downs every unprotected edge
        assert all(edge != protected for _, edge, _ in events)

    def test_unknown_protected_edge_rejected(self):
        with pytest.raises(TopologyError):
            self.make(protect=[(0, 3)])

    def test_validation(self):
        with pytest.raises(ConfigError):
            self.make(interval=0.0)
        with pytest.raises(ConfigError):
            self.make(churn=1.5)

    def test_not_static(self):
        assert not self.make().is_static


class TestRewire:
    def make(self, active_extras=1, interval=10.0):
        return RewireSchedule(ClusterGraph.complete(4), interval,
                              active_extras)

    def test_core_defaults_to_spanning_prefix(self):
        schedule = self.make()
        assert len(schedule.core) == 3
        assert len(schedule.chords) == 3

    def test_initial_down_matches_event_replay(self):
        schedule = self.make()
        down = set(schedule.initial_down(5))
        assert len(down) == 2  # 3 chords, 1 active
        # The first event tick only toggles chords relative to the
        # same initial draw.
        events = schedule.events(10.0, 5)
        activated = {edge for _, edge, active in events if active}
        assert activated <= down | set(schedule.chords)

    def test_active_count_invariant(self):
        schedule = self.make(active_extras=2)
        active = {e for e in schedule.chords
                  if e not in set(schedule.initial_down(1))}
        assert len(active) == 2
        for _t, edge, is_active in schedule.events(100.0, 1):
            if is_active:
                active.add(edge)
            else:
                active.discard(edge)
        assert len(active) == 2

    def test_validation(self):
        with pytest.raises(ConfigError):
            self.make(active_extras=9)
        with pytest.raises(ConfigError):
            self.make(interval=-1.0)


class TestHorizonBoundary:
    """The one rule: a tick nominally at ``t == horizon`` fires."""

    def test_tick_count_inclusive_at_exact_multiple(self):
        assert tick_count(10.0, 30.0) == 3
        assert tick_count(10.0, 29.999) == 2
        assert tick_count(10.0, 9.999) == 0

    def test_tick_count_survives_float_drift(self):
        # 3 * 0.1 accumulates to 0.30000000000000004 > 0.3; the naive
        # `accumulated <= horizon` loop drops the nominally-final
        # tick.  Division-based counting keeps it.
        assert 0.1 + 0.1 + 0.1 > 0.3
        assert tick_count(0.1, 0.3) == 3

    def test_churn_fires_tick_at_exact_horizon(self):
        # Seed 1's third draw flips edges (probed), and 10+10+10 is
        # float-exact, so the boundary tick is directly observable.
        schedule = EdgeChurnSchedule(ClusterGraph.ring(4),
                                     interval=10.0, churn=0.5)
        events = schedule.events(30.0, 1)
        assert max(t for t, _, _ in events) == 30.0

    def test_churn_final_tick_not_lost_to_float_drift(self):
        # Regression: horizon 0.3 with interval 0.1 must include the
        # third tick even though the running sum overshoots 0.3.
        schedule = EdgeChurnSchedule(ClusterGraph.ring(4),
                                     interval=0.1, churn=0.5)
        at_boundary = schedule.events(0.3, 1)
        assert any(round(t / 0.1) == 3 for t, _, _ in at_boundary)
        # The boundary tick's *timestamp* is clamped to the horizon —
        # an accumulated 0.30000000000000004 would be enqueued past
        # the kernel's run window and never execute.
        assert all(t <= 0.3 for t, _, _ in at_boundary)
        assert max(t for t, _, _ in at_boundary) == 0.3

    def test_single_tick_tolerance(self):
        # The k=1 case goes through the same tolerance as every other
        # tick: a float-computed interval nominally equal to the
        # horizon still fires.
        assert tick_count(0.1 + 0.1 + 0.1, 0.3) == 1
        assert tick_count(10.0, -5.0) == 0

    def test_rewire_final_tick_not_lost_to_float_drift(self):
        schedule = RewireSchedule(ClusterGraph.complete(4),
                                  interval=0.1, active_extras=1)
        assert schedule.events(0.3, 3) == schedule.events(0.35, 3)


class TestTInterval:
    def make(self, graph=None, interval=10.0, T=2):
        return TIntervalSchedule(graph or ClusterGraph.grid(3, 3),
                                 interval, T)

    def test_validation(self):
        with pytest.raises(ConfigError):
            self.make(interval=0.0)
        with pytest.raises(ConfigError):
            self.make(T=0)
        with pytest.raises(TopologyError):
            self.make(graph=ClusterGraph(4, [(0, 1), (2, 3)]))

    def test_not_static(self):
        assert not self.make().is_static

    def test_deterministic(self):
        assert self.make().events(500.0, 9) == self.make().events(500.0, 9)
        assert self.make().initial_down(9) == self.make().initial_down(9)
        assert self.make().events(500.0, 9) != self.make().events(500.0, 10)

    def test_initial_down_leaves_spanning_tree(self):
        schedule = self.make()
        graph = schedule.graph
        down = set(schedule.initial_down(4))
        up = [e for e in graph.edges if e not in down]
        assert len(up) == graph.num_clusters - 1  # a spanning tree
        from repro.topology.graphs import adjacency_from_edges, is_connected

        assert is_connected(
            adjacency_from_edges(graph.num_clusters, sorted(up)))

    def _active_per_interval(self, schedule, seed, intervals):
        """Replay initial_down + events into per-interval edge sets."""
        graph = schedule.graph
        active = set(graph.edges) - set(schedule.initial_down(seed))
        events = schedule.events(intervals * schedule.interval, seed)
        per_interval = []
        index = 0
        for i in range(intervals):
            t_end = (i + 1) * schedule.interval
            per_interval.append(frozenset(active))
            while index < len(events) and events[index][0] <= t_end:
                _, edge, is_active = events[index]
                if is_active:
                    active.add(edge)
                else:
                    active.discard(edge)
                index += 1
        return per_interval

    @pytest.mark.parametrize("T", [1, 2, 3])
    def test_t_interval_connectivity_holds(self, T):
        """Every sliding window of T intervals shares a stable
        connected spanning subgraph — the defining property."""
        from repro.topology.graphs import adjacency_from_edges, is_connected

        schedule = self.make(T=T)
        n = schedule.graph.num_clusters
        per_interval = self._active_per_interval(schedule, 6, 6 * T)
        for start in range(len(per_interval) - T + 1):
            stable = frozenset.intersection(
                *per_interval[start:start + T])
            assert is_connected(
                adjacency_from_edges(n, sorted(stable))), \
                f"window [{start}, {start + T}) has no stable " \
                f"connected spanning subgraph"

    def test_backbone_rotates(self):
        # The adversary actually changes the surviving subgraph:
        # some epoch transition toggles edges.
        schedule = self.make(T=1)
        assert schedule.events(200.0, 6)

    def test_registered(self):
        built = build_schedule("t_interval", ClusterGraph.ring(5),
                               interval=5.0, T=3)
        assert isinstance(built, TIntervalSchedule)


class TestAdversarialSweep:
    def make(self, graph=None, interval=10.0):
        return AdversarialSweepSchedule(graph or ClusterGraph.line(5),
                                        interval)

    def test_validation(self):
        with pytest.raises(ConfigError):
            self.make(interval=-1.0)
        with pytest.raises(TopologyError):
            self.make(graph=ClusterGraph.line(1))
        # Two clusters have one cut position: the walk would never
        # move and the only edge would stay down forever.
        with pytest.raises(TopologyError):
            self.make(graph=ClusterGraph.line(2))

    def test_seed_independent_and_deterministic(self):
        # The sweep is the same deterministic cut walk for every seed,
        # so stabilization measurements are comparable across seeds.
        assert self.make().events(200.0, 1) == self.make().events(200.0, 2)

    def test_walks_every_cut_position(self):
        schedule = self.make()
        down = set(schedule.initial_down(0))
        assert down == {(0, 1)}  # cut position 0 on a line
        seen_down = [frozenset(down)]
        for _, edge, active in schedule.events(100.0, 0):
            if active:
                down.discard(edge)
            else:
                down.add(edge)
            seen_down.append(frozenset(down))
        # On a line every interior edge is the cut exactly once per
        # sweep; the union of down sets covers all edges.
        assert frozenset.union(*seen_down) == set(schedule.graph.edges)

    def test_exactly_one_cut_down_at_a_time_on_a_line(self):
        schedule = self.make()
        down = set(schedule.initial_down(0))
        events = schedule.events(200.0, 0)
        boundaries = sorted({t for t, _, _ in events})
        index = 0
        for t in boundaries:
            while index < len(events) and events[index][0] <= t:
                _, edge, active = events[index]
                (down.discard if active else down.add)(edge)
                index += 1
            assert len(down) == 1  # a line cut is a single edge

    def test_registered(self):
        built = build_schedule("adversarial_sweep", ClusterGraph.ring(4),
                               interval=2.0)
        assert isinstance(built, AdversarialSweepSchedule)


class TestRewireConnectivity:
    #: 4 clusters; core (0,1) does not span, so random chord draws can
    #: disconnect the active graph.
    EDGES = [(0, 1), (1, 2), (2, 3), (0, 3), (0, 2), (1, 3)]

    def make(self, require_connected, active_extras=2):
        graph = ClusterGraph(4, list(self.EDGES))
        return RewireSchedule(graph, interval=10.0,
                              active_extras=active_extras,
                              core=[(0, 1)],
                              require_connected=require_connected)

    def _disconnected_draws(self, schedule, seed, horizon=2000.0):
        """Count *intervals* (per-tick end states) whose core+active
        graph is disconnected."""
        from repro.topology.graphs import adjacency_from_edges, is_connected

        active = {e for e in schedule.chords
                  if e not in set(schedule.initial_down(seed))}
        by_tick: dict[float, list] = {}
        for t, edge, is_active in schedule.events(horizon, seed):
            by_tick.setdefault(t, []).append((edge, is_active))
        states = [frozenset(active)]
        for t in sorted(by_tick):
            for edge, is_active in by_tick[t]:
                (active.add if is_active else active.discard)(edge)
            states.append(frozenset(active))
        bad = 0
        for state in states:
            edges = sorted(schedule.core | state)
            if not is_connected(adjacency_from_edges(4, edges)):
                bad += 1
        return bad

    def test_unconstrained_draws_can_disconnect(self):
        # Documents the behavior the flag exists for: without it, some
        # draw leaves the active graph disconnected.
        assert self._disconnected_draws(self.make(False), seed=1) > 0

    def test_require_connected_never_disconnects(self):
        assert self._disconnected_draws(self.make(True), seed=1) == 0

    def test_require_connected_is_deterministic(self):
        a = self.make(True).events(500.0, 3)
        b = self.make(True).events(500.0, 3)
        assert a == b
        assert a != self.make(True).events(500.0, 4)

    def test_default_off_preserves_legacy_stream(self):
        # The flag must not perturb existing schedules: default-off
        # draws are byte-identical to the pre-flag implementation
        # (one sample() per tick, no connectivity filtering).
        import random

        from repro.sim.rng import derive_seed

        schedule = self.make(False)
        rng = random.Random(derive_seed(7, "topology/rewire"))
        expected_initial = set(schedule.chords) - set(
            rng.sample(schedule.chords, schedule.active_extras))
        assert set(schedule.initial_down(7)) == expected_initial

    def test_impossible_requirement_rejected(self):
        graph = ClusterGraph(4, [(0, 1), (2, 3)])
        with pytest.raises(TopologyError):
            RewireSchedule(graph, interval=1.0, active_extras=1,
                           core=[(0, 1)], require_connected=True)


class TestScheduleRegistry:
    def test_builtins(self):
        for name in ("static", "churn", "rewire", "t_interval",
                     "adversarial_sweep"):
            assert name in SCHEDULES

    def test_build_by_name(self):
        schedule = build_schedule("churn", ClusterGraph.line(3),
                                  interval=5.0, churn=0.2)
        assert isinstance(schedule, EdgeChurnSchedule)

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigError) as err:
            build_schedule("teleport", ClusterGraph.line(3))
        assert "churn" in str(err.value)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigError):
            register_schedule("churn", EdgeChurnSchedule)

    def test_custom_registration(self):
        class Flaky(TopologySchedule):
            name = "test_flaky"

        register_schedule("test_flaky", Flaky)
        try:
            assert isinstance(
                build_schedule("test_flaky", ClusterGraph.line(2)), Flaky)
        finally:
            del SCHEDULES["test_flaky"]


class TestNetworkLinkActivation:
    def make_net(self):
        import random

        from repro.net.delays import UniformDelay

        sim = Simulator()
        net = Network(sim, d=1.0, u=0.0,
                      default_delay_model=UniformDelay(
                          1.0, 0.0, random.Random(0)))
        for node in (0, 1, 2):
            net.add_node(node)
        net.add_link(0, 1)
        net.add_link(1, 2)
        return sim, net

    def test_down_link_drops_sends(self):
        sim, net = self.make_net()
        received = []
        net.set_handler(1, lambda m, t: received.append(m))
        net.set_link_active(0, 1, False)
        net.send(0, 1, "lost")
        assert net.messages_dropped == 1
        net.set_link_active(0, 1, True)
        net.send(0, 1, "kept")
        sim.run(until=2.0)
        assert received == ["kept"]
        assert net.messages_sent == 1

    def test_broadcast_skips_down_links(self):
        sim, net = self.make_net()
        got = {0: [], 2: []}
        net.set_handler(0, lambda m, t: got[0].append(m))
        net.set_handler(2, lambda m, t: got[2].append(m))
        net.set_link_active(1, 2, False)
        assert net.broadcast(1, "hello") == 1
        sim.run(until=2.0)
        assert got[0] == ["hello"] and got[2] == []

    def test_in_flight_messages_still_deliver(self):
        sim, net = self.make_net()
        received = []
        net.set_handler(1, lambda m, t: received.append(m))
        net.send(0, 1, "in-flight")
        net.set_link_active(0, 1, False)
        sim.run(until=2.0)
        assert received == ["in-flight"]

    def test_link_active_queries(self):
        _sim, net = self.make_net()
        assert net.link_active(0, 1)
        net.set_link_active(0, 1, False)
        assert not net.link_active(0, 1)
        assert not net.link_active(1, 0)
        assert net.link_active(1, 2)

    def test_unknown_link_rejected(self):
        _sim, net = self.make_net()
        with pytest.raises(Exception):
            net.set_link_active(0, 2, False)
        with pytest.raises(Exception):
            net.link_active(0, 2)


class TestDynamicRuns:
    def test_ftgcs_under_churn_differs_from_static(self):
        from repro.core.protocol import SystemBuilder
        from repro.harness.runner import default_params

        params = default_params(f=1)
        schedule = EdgeChurnSchedule(
            ClusterGraph.line(3), interval=params.round_length,
            churn=0.5)
        dynamic = (SystemBuilder("ftgcs").topology(schedule)
                   .params(params).rounds(4).seed(2).build())
        dyn_result = dynamic.run()
        static = (SystemBuilder("ftgcs").topology(ClusterGraph.line(3))
                  .params(params).rounds(4).seed(2).build().run())
        assert dynamic.protocol.network.messages_dropped > 0
        assert dyn_result.series != static.series

    def test_run_past_start_horizon_extends_schedule(self):
        # Extending a run past the horizon applied at start() must
        # enqueue the schedule's event suffix, not freeze the topology.
        from repro.core.protocol import SystemBuilder
        from repro.baselines.gcs_single import GcsParams

        schedule = EdgeChurnSchedule(ClusterGraph.ring(4),
                                     interval=25.0, churn=0.6)
        system = (SystemBuilder("gcs_single").topology(schedule)
                  .payload(params=GcsParams.default(), until=100.0)
                  .seed(3).build())
        system.run(until=100.0)
        dropped_first = system.protocol.network.messages_dropped
        events_late = [t for t, _, _ in schedule.events(400.0, 3)
                       if t > 100.0]
        assert events_late  # churn=0.6 keeps flapping after t=100
        system.run(until=400.0)
        assert system.protocol.network.messages_dropped > dropped_first

    def test_dynamic_run_deterministic(self):
        from repro.core.protocol import SystemBuilder
        from repro.harness.runner import default_params

        params = default_params(f=1)

        def run():
            schedule = EdgeChurnSchedule(
                ClusterGraph.line(3),
                interval=params.round_length, churn=0.5)
            return (SystemBuilder("ftgcs").topology(schedule)
                    .params(params).rounds(4).seed(2).build().run())

        assert run().series == run().series


class TestScheduleExtension:
    def test_extending_run_does_not_replay_boundary_event(self):
        """Review regression: a horizon-boundary event (timestamp
        clamped to the first horizon) must not be re-enqueued when the
        run is extended — the applied prefix is skipped by index."""
        from repro.core.protocol import SyncProtocol, System, BuildContext

        class Recorder(SyncProtocol):
            name = "test_recorder"
            supports_dynamic_topology = True
            needs_graph = True
            needs_params = False

            def build_nodes(self, ctx):
                from repro.net.network import Network
                from repro.sim.kernel import Simulator

                self.sim = Simulator()
                self.network = Network(self.sim, d=1.0, u=0.0)
                for c in range(ctx.graph.num_clusters):
                    self.network.add_node(c)
                for a, b in ctx.graph.edges:
                    self.network.add_link(a, b)
                self.applied = []

            def apply_edge_event(self, edge, active):
                super().apply_edge_event(edge, active)
                self.applied.append((self.sim.now, edge, active))

            def start(self):
                pass

            def horizon(self):
                return 0.3

            def collect(self):
                return None

        graph = ClusterGraph.ring(4)
        schedule = EdgeChurnSchedule(graph, interval=0.1, churn=0.5)
        protocol = Recorder()
        system = System(protocol, BuildContext(graph=graph,
                                               schedule=schedule,
                                               seed=1))
        system.start(0.3)
        protocol.sim.run(0.3)
        first = list(protocol.applied)
        # The boundary tick executed (clamped to the horizon).
        assert any(t == 0.3 for t, _, _ in first)
        system._apply_schedule(0.5)
        protocol.sim.run(0.5)
        # No event of the first horizon was applied twice.
        assert protocol.applied[:len(first)] == first
        replayed = [e for e in protocol.applied[len(first):]
                    if e[0] <= 0.3 + 1e-9]
        assert replayed == []
