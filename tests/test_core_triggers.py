"""Unit and property tests for FT/ST triggers (Defs 4.1-4.4)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.triggers import evaluate
from repro.errors import ParameterError

KAPPA = 3.0
SLACK = 1.0  # = kappa/3, the Lemma 4.8 choice


def decide(own, neighbors, kappa=KAPPA, slack=SLACK):
    return evaluate(own, dict(enumerate(neighbors)), kappa, slack)


class TestFastTrigger:
    def test_far_ahead_neighbor_fires_fast(self):
        # up = 10 >= 2*1*3 - 1; down = -10 <= 2*1*3 + 1.
        d = decide(0.0, [10.0])
        assert d.fast and not d.slow

    def test_no_neighbors_no_triggers(self):
        d = decide(0.0, [])
        assert not d.fast and not d.slow

    def test_balanced_clocks_no_trigger(self):
        d = decide(0.0, [0.5, -0.5])
        assert not d.fast and not d.slow

    def test_fast_blocked_by_lagging_neighbor(self):
        # One neighbor at +2k, but another so far behind that FT-2
        # fails at every level covered by FT-1.
        d = decide(0.0, [2 * KAPPA, -50 * KAPPA])
        assert not d.fast

    def test_fast_at_higher_level(self):
        # up = 4k (s=2 rung), down = 3.9k <= 4k + slack: fires at s=2.
        d = decide(0.0, [4 * KAPPA, -3.9 * KAPPA])
        assert d.fast

    def test_slack_relaxes_threshold(self):
        # up slightly below 2k fires only thanks to the slack.
        up = 2 * KAPPA - 0.5 * SLACK
        assert decide(0.0, [up]).fast
        assert not decide(0.0, [up], slack=0.0).fast


class TestSlowTrigger:
    def test_far_behind_neighbor_fires_slow(self):
        d = decide(0.0, [-10.0])
        assert d.slow and not d.fast

    def test_slow_blocked_by_leading_neighbor(self):
        d = decide(0.0, [-KAPPA, 50 * KAPPA])
        assert not d.slow

    def test_slow_at_odd_rung(self):
        # down = 3k (m=3 rung), up = 2.9k <= 3k + slack.
        d = decide(0.0, [-3 * KAPPA, 2.9 * KAPPA])
        assert d.slow

    def test_below_first_rung_does_not_fire_slow(self):
        # down = 0.5*kappa is under the first odd rung (kappa - slack).
        d = decide(0.0, [-0.5 * KAPPA], slack=0.01)
        assert not d.slow

    def test_even_multiple_still_fires_slow_via_lower_rung(self):
        # down = 2*kappa satisfies ST at s=1 (down >= kappa - slack and
        # up <= kappa + slack): being ahead by two rungs still means
        # "slow down".
        d = decide(0.0, [-2 * KAPPA], slack=0.01)
        assert d.slow


class TestValidation:
    def test_bad_kappa(self):
        with pytest.raises(ParameterError):
            evaluate(0.0, {1: 1.0}, 0.0, 0.1)

    def test_bad_slack(self):
        with pytest.raises(ParameterError):
            evaluate(0.0, {1: 1.0}, 1.0, -0.1)

    def test_up_down_reported(self):
        d = decide(1.0, [4.0, -2.0])
        assert d.up == pytest.approx(3.0)
        assert d.down == pytest.approx(3.0)


class TestMutualExclusion:
    """Lemma 4.5: FT and ST are mutually exclusive for slack < 2k."""

    @given(
        own=st.floats(-1e4, 1e4),
        neighbors=st.lists(st.floats(-1e4, 1e4), min_size=1, max_size=6),
        kappa=st.floats(0.1, 100.0),
        slack_frac=st.floats(0.0, 0.62),
    )
    @settings(max_examples=400)
    def test_never_both(self, own, neighbors, kappa, slack_frac):
        # Lemma 4.8 uses slack = kappa/3; we test well beyond, up to
        # 0.62*kappa (the algebra holds for slack < 2/3*kappa given the
        # integer-rung structure; the paper's claim is for the values
        # it uses).
        slack = slack_frac * kappa
        d = evaluate(own, dict(enumerate(neighbors)), kappa, slack)
        assert not (d.fast and d.slow)

    @given(
        own=st.floats(-1e3, 1e3),
        neighbors=st.lists(st.floats(-1e3, 1e3), min_size=1, max_size=5),
        kappa=st.floats(0.5, 50.0),
    )
    @settings(max_examples=200)
    def test_conditions_imply_triggers(self, own, neighbors, kappa):
        """FC => FT and SC => ST when evaluated on the same values
        (the slack only widens the satisfied region)."""
        values = dict(enumerate(neighbors))
        cond = evaluate(own, values, kappa, 0.0)
        trig = evaluate(own, values, kappa, kappa / 3.0)
        if cond.fast:
            assert trig.fast
        if cond.slow:
            assert trig.slow

    @given(
        shift=st.integers(-1000, 1000),
        own=st.integers(-1000, 1000),
        neighbors=st.lists(st.integers(-1000, 1000), min_size=1,
                           max_size=5),
    )
    @settings(max_examples=200)
    def test_translation_invariance(self, shift, own, neighbors):
        """Triggers depend only on clock *differences*.

        Integer-valued clocks keep the float arithmetic exact, so the
        invariance is not confounded by rounding at rung boundaries
        (real clock values are never exactly on a boundary).
        """
        values = {k: float(v) for k, v in enumerate(neighbors)}
        shifted = {k: float(v + shift) for k, v in values.items()}
        d1 = evaluate(float(own), values, KAPPA, SLACK)
        d2 = evaluate(float(own + shift), shifted, KAPPA, SLACK)
        assert d1.fast == d2.fast
        assert d1.slow == d2.slow
