"""Tests for :mod:`repro.lint` — the determinism & contract linter.

Three layers:

* AST-rule fixtures: for each rule, one snippet that must fire and a
  minimally different snippet that must stay quiet (the quiet twin
  guards against over-triggering, which would train people to
  pragma-spam).
* Pragma round trip: a pragma with a reason suppresses; a reasonless
  pragma still suppresses but is itself flagged ``bare-pragma``.
* Contract fixtures: deliberately broken dataclasses/protocol classes
  produce exactly one finding each, and the live tree produces none.
"""

import dataclasses
import json
from collections import namedtuple

from repro.harness import serialize
from repro.lint import format_json, repo_root, run_lint
from repro.lint.astpass import cross_module_findings, lint_module
from repro.lint.contracts import (PINNED_DEFAULT_SPEC_HASH,
                                  check_capabilities,
                                  check_equivalence_coverage,
                                  check_registry_coverage,
                                  check_spec_codec)
from repro.lint.pragmas import apply_suppressions, parse_pragmas
from repro.lint.report import report_dict


def _rules(findings):
    return [finding.rule for finding in findings]


def _lint(text, relpath="src/repro/example.py"):
    findings, _ = lint_module(text, relpath)
    return findings


class TestRawRng:
    def test_unseeded_random_fires(self):
        findings = _lint(
            "import random\n"
            "rng = random.Random(42)\n")
        assert _rules(findings) == ["raw-rng"]
        assert findings[0].line == 2

    def test_alias_resolution_fires(self):
        findings = _lint(
            "from random import Random\n"
            "rng = Random()\n")
        assert _rules(findings) == ["raw-rng"]

    def test_numpy_default_rng_fires(self):
        findings = _lint(
            "import numpy as np\n"
            "gen = np.random.default_rng(7)\n")
        assert _rules(findings) == ["raw-rng"]

    def test_derive_seed_argument_is_quiet(self):
        findings = _lint(
            "import random\n"
            "from repro.sim.rng import derive_seed\n"
            "rng = random.Random(derive_seed(0, 'net/loss'))\n")
        assert findings == []

    def test_derived_name_is_quiet(self):
        findings = _lint(
            "import random\n"
            "from repro.sim.rng import derive_seed\n"
            "def build(seed):\n"
            "    sub = derive_seed(seed, 'fault/arrival')\n"
            "    return random.Random(sub)\n")
        assert findings == []

    def test_rng_home_module_is_exempt(self):
        findings = _lint(
            "import random\n"
            "rng = random.Random(42)\n",
            relpath="src/repro/sim/rng.py")
        assert findings == []


class TestWallClock:
    def test_time_time_fires(self):
        findings = _lint(
            "import time\n"
            "stamp = time.time()\n")
        assert _rules(findings) == ["wall-clock"]

    def test_perf_counter_fires(self):
        findings = _lint(
            "import time\n"
            "started = time.perf_counter()\n")
        assert _rules(findings) == ["wall-clock"]

    def test_datetime_now_fires(self):
        findings = _lint(
            "import datetime\n"
            "now = datetime.datetime.now()\n")
        assert _rules(findings) == ["wall-clock"]

    def test_microbench_is_allowlisted(self):
        findings = _lint(
            "import time\n"
            "started = time.perf_counter()\n",
            relpath="src/repro/harness/microbench.py")
        assert findings == []

    def test_simulated_clock_attribute_is_quiet(self):
        # `self.scheduler.time()` is the simulated clock, not the
        # wall clock — the resolver must not match bare `.time()`.
        findings = _lint(
            "def now(self):\n"
            "    return self.scheduler.time()\n")
        assert findings == []


class TestUnorderedIter:
    SENSITIVE_SET_LOOP = (
        "def fire(scheduler, nodes):\n"
        "    for node in {1, 2, 3}:\n"
        "        scheduler.call_at(node, 0.0)\n")

    def test_set_literal_with_scheduling_fires(self):
        findings = _lint(self.SENSITIVE_SET_LOOP)
        assert _rules(findings) == ["unordered-iter"]

    def test_sorted_wrapper_is_quiet(self):
        findings = _lint(self.SENSITIVE_SET_LOOP.replace(
            "{1, 2, 3}", "sorted({1, 2, 3})"))
        assert findings == []

    def test_list_wrapper_does_not_launder(self):
        # list() preserves the unordered set order; only sorted()
        # resolves the finding.
        findings = _lint(self.SENSITIVE_SET_LOOP.replace(
            "{1, 2, 3}", "list({1, 2, 3})"))
        assert _rules(findings) == ["unordered-iter"]

    def test_keys_with_draw_fires(self):
        findings = _lint(
            "def jitter(rng, delays):\n"
            "    for key in delays.keys():\n"
            "        delays[key] += rng.random()\n")
        assert _rules(findings) == ["unordered-iter"]

    def test_set_typed_name_with_edge_append_fires(self):
        findings = _lint(
            "def build(n):\n"
            "    active = {0, 1}\n"
            "    edges = []\n"
            "    for node in active:\n"
            "        edges.append((node, node + 1))\n")
        assert _rules(findings) == ["unordered-iter"]

    def test_order_insensitive_body_is_quiet(self):
        findings = _lint(
            "def total(values):\n"
            "    acc = 0\n"
            "    for value in {1, 2, 3}:\n"
            "        acc += value\n"
            "    return acc\n")
        assert findings == []

    def test_comprehension_over_set_with_draw_fires(self):
        findings = _lint(
            "def noise(rng):\n"
            "    return [rng.random() for _ in {1, 2}]\n")
        assert _rules(findings) == ["unordered-iter"]


class TestStreamLabel:
    def test_vec_module_without_prefix_fires(self):
        findings, labels = lint_module(
            "from repro.sim.rng import derive_seed\n"
            "def streams(seed):\n"
            "    return derive_seed(seed, 'cell/delay')\n",
            "src/repro/engine_vec/streams.py")
        assert _rules(findings) == ["stream-label"]
        assert [label.template for label in labels] == ["cell/delay"]

    def test_vec_module_with_prefix_is_quiet(self):
        findings, labels = lint_module(
            "from repro.sim.rng import derive_seed\n"
            "def streams(seed):\n"
            "    return derive_seed(seed, f'vec/cell/{seed}')\n",
            "src/repro/engine_vec/streams.py")
        assert findings == []
        # F-string labels normalize to {} templates.
        assert [label.template for label in labels] == ["vec/cell/{}"]

    def test_cross_module_collision_flags_every_site(self):
        _, labels_a = lint_module(
            "from repro.sim.rng import derive_seed\n"
            "x = derive_seed(0, 'fault/arrival')\n",
            "src/repro/a.py")
        _, labels_b = lint_module(
            "from repro.sim.rng import derive_seed\n"
            "y = derive_seed(0, 'fault/arrival')\n",
            "src/repro/b.py")
        findings = cross_module_findings(labels_a + labels_b)
        assert _rules(findings) == ["stream-label", "stream-label"]
        assert {finding.path for finding in findings} == {
            "src/repro/a.py", "src/repro/b.py"}

    def test_same_module_reuse_is_not_a_collision(self):
        _, labels = lint_module(
            "from repro.sim.rng import derive_seed\n"
            "x = derive_seed(0, 'fault/arrival')\n"
            "y = derive_seed(1, 'fault/arrival')\n",
            "src/repro/a.py")
        assert cross_module_findings(labels) == []


class TestPragmas:
    def test_trailing_pragma_suppresses(self):
        text = ("import random\n"
                "rng = random.Random(42)  "
                "# repro: allow[raw-rng] -- fixture stream\n")
        findings = _lint(text)
        index = parse_pragmas(text, "src/repro/example.py")
        assert index.findings == []
        assert apply_suppressions(findings, index) == []

    def test_standalone_pragma_covers_next_line(self):
        text = ("import random\n"
                "# repro: allow[raw-rng] -- fixture stream\n"
                "rng = random.Random(42)\n")
        findings = _lint(text)
        index = parse_pragmas(text, "src/repro/example.py")
        assert apply_suppressions(findings, index) == []

    def test_pragma_does_not_leak_past_its_line(self):
        text = ("import random\n"
                "# repro: allow[raw-rng] -- fixture stream\n"
                "rng = random.Random(42)\n"
                "other = random.Random(43)\n")
        findings = _lint(text)
        index = parse_pragmas(text, "src/repro/example.py")
        kept = apply_suppressions(findings, index)
        assert _rules(kept) == ["raw-rng"]
        assert kept[0].line == 4

    def test_reasonless_pragma_round_trip(self):
        # Still suppresses, but the pragma itself becomes a finding —
        # and that finding survives suppression attempts.
        text = ("import random\n"
                "rng = random.Random(42)  # repro: allow[raw-rng]\n")
        findings = _lint(text)
        index = parse_pragmas(text, "src/repro/example.py")
        kept = apply_suppressions(findings + index.findings, index)
        assert _rules(kept) == ["bare-pragma"]
        assert "no reason" in kept[0].message

    def test_unknown_rule_pragma_is_flagged(self):
        text = "x = 1  # repro: allow[no-such-rule] -- typo\n"
        index = parse_pragmas(text, "src/repro/example.py")
        assert _rules(index.findings) == ["bare-pragma"]
        assert "no-such-rule" in index.findings[0].message


def _register(monkeypatch, cls):
    """Install a fixture dataclass in the codec registry by name."""
    monkeypatch.setitem(serialize._SERIALIZABLE, cls.__name__, cls)


class TestSpecCodecContract:
    def _v1(self):
        @dataclasses.dataclass(frozen=True)
        class GhostSpec:
            seed: int = 0
            rounds: int = 8
        return GhostSpec

    def test_live_spec_matches_pinned_hash(self):
        from repro.harness.sweep import ScenarioSpec

        assert (serialize.content_hash(ScenarioSpec(seed=0))
                == PINNED_DEFAULT_SPEC_HASH)

    def test_clean_fixture_spec_passes(self, monkeypatch):
        v1 = self._v1()
        _register(monkeypatch, v1)
        pinned = serialize.content_hash(v1(seed=0))
        assert check_spec_codec(v1, pinned_hash=pinned) == []

    def test_ghost_field_rekeys_cache_exactly_one_finding(
            self, monkeypatch):
        # Simulate the PR-9 near-miss: a later revision of the same
        # class adds a field without _SERIALIZE_OMIT_EMPTY, silently
        # changing every historical cache key.
        v1 = self._v1()
        _register(monkeypatch, v1)
        pinned = serialize.content_hash(v1(seed=0))

        @dataclasses.dataclass(frozen=True)
        class GhostSpec:
            seed: int = 0
            rounds: int = 8
            extra: tuple = ()
        _register(monkeypatch, GhostSpec)
        findings = check_spec_codec(GhostSpec, pinned_hash=pinned)
        assert _rules(findings) == ["spec-codec"]
        assert "pinned" in findings[0].message

    def test_omit_empty_ghost_field_is_quiet(self, monkeypatch):
        # The sanctioned way to add a field: falsy default + an
        # _SERIALIZE_OMIT_EMPTY entry keeps historical keys intact.
        v1 = self._v1()
        _register(monkeypatch, v1)
        pinned = serialize.content_hash(v1(seed=0))

        @dataclasses.dataclass(frozen=True)
        class GhostSpec:
            _SERIALIZE_OMIT_EMPTY = ("extra",)
            seed: int = 0
            rounds: int = 8
            extra: tuple = ()
        _register(monkeypatch, GhostSpec)
        assert check_spec_codec(GhostSpec, pinned_hash=pinned) == []

    def test_truthy_default_in_omit_list_fires(self, monkeypatch):
        @dataclasses.dataclass(frozen=True)
        class GhostSpec:
            _SERIALIZE_OMIT_EMPTY = ("rounds",)
            seed: int = 0
            rounds: int = 8
        _register(monkeypatch, GhostSpec)
        pinned = serialize.content_hash(GhostSpec(seed=0))
        findings = check_spec_codec(GhostSpec, pinned_hash=pinned)
        assert _rules(findings) == ["spec-codec"]
        assert "truthy default" in findings[0].message

    def test_omit_entry_for_missing_field_fires(self, monkeypatch):
        @dataclasses.dataclass(frozen=True)
        class GhostSpec:
            _SERIALIZE_OMIT_EMPTY = ("no_such_field",)
            seed: int = 0
        _register(monkeypatch, GhostSpec)
        pinned = serialize.content_hash(GhostSpec(seed=0))
        findings = check_spec_codec(GhostSpec, pinned_hash=pinned)
        assert _rules(findings) == ["spec-codec"]
        assert "not a spec field" in findings[0].message


class _ProtoBase:
    """Fixture protocol base declaring the full capability set."""

    supports_faults = False
    supports_dynamic_topology = False
    supports_node_churn = False
    supports_first_contact = False
    supports_vectorized = False


class TestCapabilityContract:
    def test_full_declaration_passes(self):
        assert check_capabilities({"dummy": _ProtoBase}) == []

    def test_missing_flag_exactly_one_finding(self):
        class Partial:
            supports_faults = True
            supports_dynamic_topology = False
            supports_node_churn = False
            supports_first_contact = False
            # supports_vectorized deliberately not declared

        findings = check_capabilities({"partial": Partial})
        assert _rules(findings) == ["capability"]
        assert "supports_vectorized" in findings[0].message

    def test_inherited_declaration_counts(self):
        # A subclass refining one flag inherits the rest from a base
        # that declares them — that is an explicit declaration.
        class Child(_ProtoBase):
            supports_vectorized = True

        cell = namedtuple("Cell", "protocol")
        assert check_capabilities({"child": Child}) == []
        assert check_equivalence_coverage(
            {"child": Child}, cells=[cell(protocol="child")]) == []

    def test_vectorized_without_equivalence_cell_fires(self):
        class Child(_ProtoBase):
            supports_vectorized = True

        findings = check_equivalence_coverage({"child": Child},
                                              cells=[])
        assert _rules(findings) == ["capability"]
        assert "equivalence" in findings[0].message

    def test_live_protocols_declare_everything(self):
        assert check_capabilities() == []


class TestRegistryCoverageContract:
    def test_live_registry_is_fully_covered(self):
        assert check_registry_coverage(root=repo_root()) == []

    def test_t17_has_bench_coverage(self):
        assert check_registry_coverage(["t17"], root=repo_root()) == []

    def test_ghost_experiment_fires_both_checks(self):
        # Build the id at runtime so this very file's text cannot
        # satisfy the tests-reference check.
        ghost = "t" + str(73)
        findings = check_registry_coverage([ghost], root=repo_root())
        assert _rules(findings) == ["registry-coverage",
                                    "registry-coverage"]
        messages = " / ".join(finding.message for finding in findings)
        assert "script" in messages and "test" in messages


class TestFullTree:
    def test_merged_tree_is_clean(self):
        report = run_lint()
        assert report.ok, "\n".join(
            finding.location() + " " + finding.message
            for finding in report.findings)
        assert report.files_scanned > 50

    def test_json_report_shape(self):
        report = run_lint(paths=["src/repro/lint"], contracts=False)
        payload = json.loads(format_json(report))
        assert payload["ok"] is True
        assert payload["total"] == 0
        assert payload["findings"] == []
        assert payload == report_dict(report)

    def test_cli_lint_exits_zero(self, capsys):
        from repro.cli import main

        assert main(["lint", "--no-contracts",
                     "src/repro/lint"]) == 0
        out = capsys.readouterr().out
        assert "0 findings" in out

    def test_cli_lint_json_parses(self, capsys):
        from repro.cli import main

        assert main(["lint", "--format", "json", "--no-contracts",
                     "src/repro/lint"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
