"""Unit tests for fault strategies and placement policies."""

import random

import pytest

from repro.core.params import Parameters
from repro.errors import ConfigError
from repro.faults import (
    CrashStrategy,
    EquivocatorStrategy,
    FastClockStrategy,
    RandomPulseStrategy,
    SilentStrategy,
    count_by_cluster,
    place_everywhere,
    place_in_clusters,
    place_random_iid,
)
from repro.topology import ClusterGraph


@pytest.fixture
def augmented():
    return ClusterGraph.line(4).augment(4)


class TestPlacement:
    def test_place_in_clusters_first(self, augmented):
        faults = place_in_clusters(augmented, [1, 3], 2,
                                   lambda n: SilentStrategy())
        assert set(faults) == {4, 5, 12, 13}

    def test_place_in_clusters_random(self, augmented):
        rng = random.Random(0)
        faults = place_in_clusters(augmented, [0], 2,
                                   lambda n: SilentStrategy(),
                                   rng=rng, pick="random")
        assert len(faults) == 2
        assert all(augmented.cluster_of(n) == 0 for n in faults)

    def test_place_everywhere(self, augmented):
        faults = place_everywhere(augmented, 1,
                                  lambda n: SilentStrategy())
        counts = count_by_cluster(augmented, faults)
        assert counts == {0: 1, 1: 1, 2: 1, 3: 1}

    def test_place_random_iid_capped(self, augmented):
        rng = random.Random(3)
        faults = place_random_iid(augmented, p=0.9,
                                  factory=lambda n: SilentStrategy(),
                                  rng=rng, cap_per_cluster=1)
        counts = count_by_cluster(augmented, faults)
        assert all(count <= 1 for count in counts.values())

    def test_place_random_iid_uncapped_measures_overflow(self, augmented):
        rng = random.Random(4)
        faults = place_random_iid(augmented, p=0.9,
                                  factory=lambda n: SilentStrategy(),
                                  rng=rng)
        counts = count_by_cluster(augmented, faults)
        # With p=0.9 and k=4, some cluster exceeds 1 fault w.h.p.
        assert max(counts.values()) > 1

    def test_validation(self, augmented):
        with pytest.raises(ConfigError):
            place_in_clusters(augmented, [0], 5,
                              lambda n: SilentStrategy())
        with pytest.raises(ConfigError):
            place_in_clusters(augmented, [0], 1,
                              lambda n: SilentStrategy(),
                              pick="random")  # rng missing
        with pytest.raises(ConfigError):
            place_random_iid(augmented, p=1.5,
                             factory=lambda n: SilentStrategy(),
                             rng=random.Random(0))

    def test_factory_receives_node_id(self, augmented):
        seen = []

        def factory(node_id):
            seen.append(node_id)
            return SilentStrategy()

        place_in_clusters(augmented, [2], 2, factory)
        assert seen == [8, 9]


class TestStrategyValidation:
    def test_crash_time_must_be_nonnegative(self):
        with pytest.raises(ConfigError):
            CrashStrategy(-1.0)

    def test_random_pulse_rate_positive(self):
        with pytest.raises(ConfigError):
            RandomPulseStrategy(pulses_per_round=0.0)

    def test_fast_clock_factor_positive(self):
        with pytest.raises(ConfigError):
            FastClockStrategy(0.0)

    def test_describe(self):
        assert "Crash" in CrashStrategy(1.0).describe()
        assert "x1.5" in FastClockStrategy(1.5).describe()
        assert "Silent" in SilentStrategy().describe()

    def test_fast_clock_hardware_spec(self):
        params = Parameters.practical(rho=1e-4, d=1.0, u=0.1, f=1)
        fast = FastClockStrategy(2.0)
        model, enforce = fast.hardware_spec(params, random.Random(0))
        assert not enforce
        assert model.initial_rate() == pytest.approx(
            (1 + params.rho) * 2.0)
        slow = FastClockStrategy(0.5)
        model, _ = slow.hardware_spec(params, random.Random(0))
        assert model.initial_rate() == pytest.approx(0.5)

    def test_silent_hardware_spec_default(self):
        params = Parameters.practical(rho=1e-4, d=1.0, u=0.1, f=1)
        assert SilentStrategy().hardware_spec(
            params, random.Random(0)) is None


class TestEquivocatorGrouping:
    def test_split_targets_partitions_neighbors(self):
        from repro.faults.strategies import StrategyContext

        graph = ClusterGraph.line(3)
        aug = graph.augment(4)
        node_id = 4  # in middle cluster 1
        ctx = StrategyContext(
            node_id=node_id, cluster_id=1, sim=None, network=None,
            params=None, schedule=None, hardware=None, base=0.0,
            cluster_members=aug.members(1),
            adjacent_members=aug.inter_neighbors(node_id),
            rng=random.Random(0))
        early, late = EquivocatorStrategy._split_targets(ctx)
        # Every neighbor is in exactly one group.
        all_targets = set(early) | set(late)
        assert set(ctx.all_neighbors()) == all_targets
        assert not set(early) & set(late)
        # Whole adjacent clusters land on one side.
        assert set(aug.members(0)) <= set(early)
        assert set(aug.members(2)) <= set(late)
