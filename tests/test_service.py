"""The simulation service: result store, job manager, scenario
library, and the REST layer.

The acceptance criteria of the serving layer are tested end-to-end
here through ``app.test_client()`` (no sockets):

- served ``format=json`` results are **byte-identical** to direct
  ``run_experiment`` output for t01, t14 (quick), and t16 (quick);
- resubmitting an identical job completes from the content-addressed
  cache with ``executed_cells == 0``.
"""

import json
import logging
import textwrap

import pytest

from repro.core.params import Parameters
from repro.errors import ConfigError
from repro.harness.registry import run_experiment
from repro.harness.scenario import Scenario
from repro.harness.sweep import (
    ScenarioSpec,
    resolve_cell_seeds,
    run_cell,
    spec_hash,
)
from repro.service import JobManager, ResultStore, ScenarioLibrary
from repro.service.app import create_app
from repro.service.library import LibraryScenario

PARAMS = Parameters.practical(rho=1e-4, d=1.0, u=0.1, f=1)


def small_spec(seed=5, rounds=3):
    return (Scenario.line(3).params(PARAMS).rounds(rounds).seed(seed)
            .build())


@pytest.fixture
def store(tmp_path):
    return ResultStore(tmp_path / "cache")


@pytest.fixture
def manager(store):
    mgr = JobManager(store=store, processes=1)
    yield mgr
    mgr.shutdown()


@pytest.fixture
def idle_manager(store):
    """A manager whose workers are already gone: submitted jobs stay
    ``queued`` forever — deterministic not-done states for tests."""
    mgr = JobManager(store=store, processes=1)
    mgr.shutdown()
    return mgr


@pytest.fixture
def scenario_dir(tmp_path):
    root = tmp_path / "scenarios"
    root.mkdir()
    return root


@pytest.fixture
def client(manager, scenario_dir):
    app = create_app(manager=manager,
                     library=ScenarioLibrary(scenario_dir))
    app.config["TESTING"] = True
    return app.test_client()


def finish(client, job_id, timeout=120.0):
    manager = client.application.config["REPRO_MANAGER"]
    manager.wait(job_id, timeout=timeout)
    return client.get(f"/jobs/{job_id}").get_json()


class TestResultStore:
    def test_put_get_roundtrip_is_bit_identical(self, store):
        spec = small_spec()
        cell = run_cell(spec)
        store.put(spec, cell)
        cached = store.get(spec)
        assert cached is not None
        assert cached.key == cell.key
        assert cached.seed == cell.seed
        assert cached.result.max_global_skew \
            == cell.result.max_global_skew
        assert store.hits == 1

    def test_absent_entry_is_a_miss(self, store):
        assert store.get(small_spec()) is None
        assert store.misses == 1 and store.corrupt == 0

    def test_truncated_entry_is_a_miss_with_warning(self, store,
                                                    caplog):
        spec = small_spec()
        path = store.put(spec, run_cell(spec))
        path.write_text(path.read_text()[: 40])  # simulate torn write
        with caplog.at_level(logging.WARNING, "repro.service.store"):
            assert store.get(spec) is None
        assert store.corrupt == 1
        assert "corrupt cache entry" in caplog.text
        # Recompute + put overwrites the bad entry; hits work again.
        store.put(spec, run_cell(spec))
        assert store.get(spec) is not None

    def test_wrong_hash_entry_is_a_miss(self, store):
        spec = small_spec()
        path = store.put(spec, run_cell(spec))
        entry = json.loads(path.read_text())
        entry["spec_hash"] = "0" * 40
        path.write_text(json.dumps(entry))
        assert store.get(spec) is None
        assert store.corrupt == 1

    def test_non_cell_payload_is_a_miss(self, store):
        spec = small_spec()
        path = store.put(spec, run_cell(spec))
        entry = json.loads(path.read_text())
        entry["cell"] = {"not": "a cell"}
        path.write_text(json.dumps(entry))
        assert store.get(spec) is None

    def test_stats_and_clear(self, store):
        assert store.stats()["entries"] == 0
        for seed in (1, 2):
            spec = small_spec(seed=seed)
            store.put(spec, run_cell(spec))
        stats = store.stats()
        assert stats["entries"] == 2 and stats["bytes"] > 0
        assert store.clear() == 2
        assert store.stats()["entries"] == 0

    def test_entries_shard_by_hash_prefix(self, store):
        spec = small_spec()
        path = store.put(spec, run_cell(spec))
        key = spec_hash(spec)
        assert path.parent.name == key[:2]
        assert path.name == f"{key}.json"


class TestJobManager:
    def test_experiment_job_runs_to_done(self, manager):
        job = manager.submit_experiment("t01", quick=True)
        assert job.state in ("queued", "running", "done")
        manager.wait(job.id, timeout=120)
        assert job.state == "done"
        assert job.table is not None
        assert job.executed_cells == job.total_cells > 0
        assert job.cached_cells == 0
        assert job.table.to_json() \
            == run_experiment("t01", quick=True).to_json()

    def test_resubmission_is_all_cache_hits(self, manager):
        first = manager.submit_experiment("t01", quick=True)
        manager.wait(first.id, timeout=120)
        again = manager.submit_experiment("t01", quick=True)
        manager.wait(again.id, timeout=120)
        assert again.state == "done"
        assert again.executed_cells == 0
        assert again.cached_cells == again.total_cells > 0
        assert again.table.to_json() == first.table.to_json()

    def test_unknown_experiment_fails_eagerly(self, manager):
        with pytest.raises(ConfigError, match="unknown experiment"):
            manager.submit_experiment("t99")

    def test_grid_job(self, manager):
        specs = [small_spec(seed=None, rounds=r) for r in (2, 3)]
        job = manager.submit_grid(specs, base_seed=7)
        manager.wait(job.id, timeout=120)
        assert job.state == "done"
        assert job.total_cells == 2
        # The grid rode SweepRunner's seed derivation.
        resolved = resolve_cell_seeds(specs, 7)
        assert [cell.seed for cell in job.cells] \
            == [spec.seed for spec in resolved]
        assert job.table.columns[0] == "cell"

    def test_grid_rejects_empty_and_non_specs(self, manager):
        with pytest.raises(ConfigError, match="at least one"):
            manager.submit_grid([])
        with pytest.raises(ConfigError, match="ScenarioSpec"):
            manager.submit_grid([{"graph": "line"}])

    def test_broken_cell_marks_job_failed(self, manager):
        bad = ScenarioSpec.from_dict({"graph": "line"})  # missing n
        job = manager.submit_grid([bad])
        manager.wait(job.id, timeout=120)
        assert job.state == "failed"
        assert "TypeError" in job.error
        assert job.table is None

    def test_cancel_and_shutdown(self, idle_manager):
        job = idle_manager.submit_experiment("t01")
        assert job.state == "queued"
        assert idle_manager.cancel(job.id) is True
        idle_manager.shutdown()  # sweeps queued jobs to cancelled
        assert job.state == "cancelled"
        assert idle_manager.cancel(job.id) is False

    def test_wait_timeout(self, idle_manager):
        job = idle_manager.submit_experiment("t01")
        with pytest.raises(TimeoutError):
            idle_manager.wait(job.id, timeout=0.05)

    def test_unknown_job_id(self, manager):
        with pytest.raises(ConfigError, match="unknown job"):
            manager.get("job-9999")

    def test_workers_must_be_positive(self, store):
        with pytest.raises(ConfigError, match="workers"):
            JobManager(store=store, workers=0)

    def test_jobs_listed_in_submission_order(self, idle_manager):
        a = idle_manager.submit_experiment("t01")
        b = idle_manager.submit_experiment("t02")
        assert [job.id for job in idle_manager.jobs()] == [a.id, b.id]


@pytest.mark.slow
class TestServedByteIdentity:
    """The acceptance criteria, per experiment."""

    @pytest.mark.parametrize("experiment_id", ["t01", "t14", "t16"])
    def test_served_result_matches_direct_run(self, client,
                                              experiment_id):
        direct = run_experiment(experiment_id, quick=True).to_json()

        cold = client.post("/jobs",
                           json={"experiment": experiment_id,
                                 "quick": True})
        assert cold.status_code == 202
        snapshot = finish(client, cold.get_json()["id"])
        assert snapshot["state"] == "done"
        progress = snapshot["progress"]
        assert progress["executed_cells"] == progress["total_cells"] > 0
        assert progress["cached_cells"] == 0
        served = client.get(
            f"/jobs/{snapshot['id']}/result?format=json")
        assert served.status_code == 200
        assert served.data == direct.encode("utf-8")

        # Identical resubmission: zero simulator cells executed.
        warm = client.post("/jobs",
                           json={"experiment": experiment_id,
                                 "quick": True})
        snapshot = finish(client, warm.get_json()["id"])
        assert snapshot["state"] == "done"
        progress = snapshot["progress"]
        assert progress["executed_cells"] == 0
        assert progress["cached_cells"] == progress["total_cells"] > 0
        served = client.get(
            f"/jobs/{snapshot['id']}/result?format=json")
        assert served.data == direct.encode("utf-8")


class TestRestApi:
    def test_health(self, client):
        body = client.get("/health").get_json()
        assert body["status"] == "ok"
        assert body["experiments"] == 18

    def test_experiments_listing(self, client):
        body = client.get("/experiments").get_json()
        ids = [entry["id"] for entry in body["experiments"]]
        assert ids == [f"t{i:02d}" for i in range(1, 19)]
        assert all(entry["claim"] for entry in body["experiments"])

    def test_result_formats(self, client):
        job = client.post("/jobs", json={"experiment": "t01"})
        job_id = job.get_json()["id"]
        finish(client, job_id)
        table = client.get(f"/jobs/{job_id}/result")
        assert table.mimetype == "text/plain"
        assert table.get_data(as_text=True).endswith("\n")
        csv = client.get(f"/jobs/{job_id}/result?format=csv")
        assert csv.mimetype == "text/csv"
        assert "," in csv.get_data(as_text=True)
        bad = client.get(f"/jobs/{job_id}/result?format=xml")
        assert bad.status_code == 400
        assert "unknown format" in bad.get_json()["error"]

    def test_cells_endpoint_roundtrips(self, client):
        from repro.harness import serialize
        from repro.harness.sweep import SweepCellResult

        job = client.post("/jobs", json={"experiment": "t01"})
        job_id = job.get_json()["id"]
        finish(client, job_id)
        body = client.get(f"/jobs/{job_id}/cells").get_json()
        cells = [serialize.decode(cell) for cell in body["cells"]]
        assert cells and all(isinstance(cell, SweepCellResult)
                             for cell in cells)

    def test_grid_submission_via_cells_body(self, client):
        cells = [small_spec(seed=None).to_dict() for _ in range(2)]
        job = client.post("/jobs", json={"cells": cells,
                                         "base_seed": 3,
                                         "label": "adhoc"})
        assert job.status_code == 202
        assert job.get_json()["label"] == "adhoc"
        snapshot = finish(client, job.get_json()["id"])
        assert snapshot["state"] == "done"
        assert snapshot["progress"]["total_cells"] == 2

    def test_bad_submissions_are_400(self, client):
        no_source = client.post("/jobs", json={"quick": True})
        assert no_source.status_code == 400
        assert "exactly one" in no_source.get_json()["error"]
        two_sources = client.post(
            "/jobs", json={"experiment": "t01", "cells": []})
        assert two_sources.status_code == 400
        not_a_dict = client.post("/jobs", json=[1, 2])
        assert not_a_dict.status_code == 400
        unknown = client.post("/jobs", json={"experiment": "t99"})
        assert unknown.status_code == 400
        assert "unknown experiment" in unknown.get_json()["error"]
        bad_cells = client.post("/jobs", json={"cells": "nope"})
        assert bad_cells.status_code == 400

    def test_unknown_job_is_404(self, client):
        assert client.get("/jobs/job-9999").status_code == 404
        assert client.get("/jobs/job-9999/result").status_code == 404
        assert client.delete("/jobs/job-9999").status_code == 404

    def test_result_before_done_is_409(self, scenario_dir,
                                       idle_manager):
        app = create_app(manager=idle_manager)
        stuck = app.test_client()
        job = stuck.post("/jobs", json={"experiment": "t01"})
        job_id = job.get_json()["id"]
        result = stuck.get(f"/jobs/{job_id}/result")
        assert result.status_code == 409
        assert result.get_json()["state"] == "queued"
        assert stuck.get(f"/jobs/{job_id}/cells").status_code == 409
        cancel = stuck.delete(f"/jobs/{job_id}")
        assert cancel.get_json()["cancelled"] is True

    def test_failed_job_result_is_500(self, client):
        bad_cell = {"graph": "line"}  # missing the node count
        job = client.post("/jobs", json={"cells": [bad_cell]})
        snapshot = finish(client, job.get_json()["id"])
        assert snapshot["state"] == "failed"
        result = client.get(f"/jobs/{snapshot['id']}/result")
        assert result.status_code == 500
        assert "TypeError" in result.get_json()["error"]

    def test_jobs_listing(self, client):
        client.post("/jobs", json={"experiment": "t01"})
        body = client.get("/jobs").get_json()
        assert len(body["jobs"]) == 1
        assert body["jobs"][0]["kind"] == "experiment"

    def test_cache_endpoints(self, client):
        job = client.post("/jobs", json={"experiment": "t01"})
        finish(client, job.get_json()["id"])
        stats = client.get("/cache/stats").get_json()
        assert stats["entries"] > 0
        cleared = client.post("/cache/clear").get_json()
        assert cleared["removed"] == stats["entries"]
        assert client.get("/cache/stats").get_json()["entries"] == 0


class TestScenarioLibrary:
    def write(self, root, name, text):
        (root / name).write_text(textwrap.dedent(text))

    def test_experiment_scenario_yaml(self, scenario_dir):
        self.write(scenario_dir, "t01_quick.yaml", """\
            title: T1 quick
            experiment: t01
            quick: true
            seed: 3
        """)
        library = ScenarioLibrary(scenario_dir)
        assert library.names() == ["t01_quick"]
        entry = library.load("t01_quick")
        assert isinstance(entry, LibraryScenario)
        assert entry.experiment == "t01"
        assert entry.quick is True and entry.seed == 3
        assert entry.describe()["experiment"] == "t01"

    def test_grid_scenario_with_preset_shorthand(self, scenario_dir):
        self.write(scenario_dir, "grid.yaml", """\
            title: small grid
            base_seed: 7
            cells:
              - graph: line
                graph_args: [3]
                rounds: 3
                params: {preset: practical, rho: 1.0e-4, d: 1.0,
                         u: 0.1, f: 1}
                key: [D, 2]
        """)
        entry = ScenarioLibrary(scenario_dir).load("grid")
        assert entry.base_seed == 7
        assert len(entry.specs) == 1
        spec = entry.specs[0]
        assert spec.params == PARAMS
        assert spec.key == ("D", 2)
        assert entry.describe()["cells"] == 1

    def test_json_scenario(self, scenario_dir):
        (scenario_dir / "direct.json").write_text(json.dumps(
            {"experiment": "t02", "quick": True}))
        entry = ScenarioLibrary(scenario_dir).load("direct")
        assert entry.experiment == "t02"
        assert entry.title == "direct"  # defaults to the name

    def test_unknown_scenario_name(self, scenario_dir):
        with pytest.raises(ConfigError, match="unknown scenario"):
            ScenarioLibrary(scenario_dir).load("nope")

    def test_both_sources_rejected(self, scenario_dir):
        self.write(scenario_dir, "both.yaml", """\
            experiment: t01
            cells: []
        """)
        with pytest.raises(ConfigError, match="exactly one"):
            ScenarioLibrary(scenario_dir).load("both")

    def test_unknown_keys_rejected(self, scenario_dir):
        self.write(scenario_dir, "extra.yaml", """\
            experiment: t01
            sneed: 3
        """)
        with pytest.raises(ConfigError, match="unknown key"):
            ScenarioLibrary(scenario_dir).load("extra")

    def test_bad_cell_names_file_and_index(self, scenario_dir):
        self.write(scenario_dir, "typo.yaml", """\
            cells:
              - graph: line
                graph_args: [3]
                wat: true
        """)
        with pytest.raises(ConfigError,
                           match=r"typo\.yaml: cell 0"):
            ScenarioLibrary(scenario_dir).load("typo")

    def test_unknown_preset_rejected(self, scenario_dir):
        self.write(scenario_dir, "preset.yaml", """\
            cells:
              - graph: line
                graph_args: [3]
                params: {preset: warp}
        """)
        with pytest.raises(ConfigError, match="unknown params preset"):
            ScenarioLibrary(scenario_dir).load("preset")

    def test_describe_all_survives_broken_files(self, scenario_dir):
        self.write(scenario_dir, "good.yaml", "experiment: t01\n")
        self.write(scenario_dir, "broken.yaml", "cells: 3\n")
        entries = ScenarioLibrary(scenario_dir).describe_all()
        by_name = {entry["name"]: entry for entry in entries}
        assert "error" in by_name["broken"]
        assert by_name["good"]["experiment"] == "t01"

    def test_missing_directory_is_empty(self, tmp_path):
        library = ScenarioLibrary(tmp_path / "nope")
        assert library.names() == []
        assert library.describe_all() == []

    def test_scenarios_endpoint_and_submission(self, client,
                                               scenario_dir):
        self.write(scenario_dir, "t01_quick.yaml", """\
            title: T1 quick
            experiment: t01
        """)
        listing = client.get("/scenarios").get_json()
        assert [s["name"] for s in listing["scenarios"]] \
            == ["t01_quick"]
        job = client.post("/jobs", json={"scenario": "t01_quick"})
        assert job.status_code == 202
        assert job.get_json()["label"] == "T1 quick"
        snapshot = finish(client, job.get_json()["id"])
        assert snapshot["state"] == "done"

    def test_unknown_scenario_submission_is_400(self, client):
        response = client.post("/jobs", json={"scenario": "nope"})
        assert response.status_code == 400

    def test_no_library_submission_is_400(self, idle_manager):
        app = create_app(manager=idle_manager)
        response = app.test_client().post(
            "/jobs", json={"scenario": "x"})
        assert response.status_code == 400
        assert "no scenario library" \
            in response.get_json()["error"]


class TestOpenApi:
    """GET /openapi.json describes the whole live routing table."""

    def test_document_served(self, client):
        response = client.get("/openapi.json")
        assert response.status_code == 200
        doc = response.get_json()
        assert doc["openapi"].startswith("3.")
        assert doc["info"]["title"] == "repro simulation service"

    def test_every_route_documented(self, client):
        """Each (path, method) Flask serves appears in the document,
        and vice versa — adding a route without describing it (or
        describing a route that does not exist) fails here."""
        doc = client.get("/openapi.json").get_json()
        documented = {
            (path, method.upper())
            for path, item in doc["paths"].items()
            for method in item
            if method in ("get", "post", "put", "delete", "patch")}
        served = set()
        for rule in client.application.url_map.iter_rules():
            if rule.endpoint == "static":
                continue
            # Flask's <job_id> converters are OpenAPI's {job_id}.
            path = rule.rule.replace("<", "{").replace(">", "}")
            for method in rule.methods - {"HEAD", "OPTIONS"}:
                served.add((path, method))
        assert documented == served

    def test_spec_schema_mentions_engine_cache_keying(self, client):
        """The ScenarioSpec schema documents that 'engine' is part of
        the content hash (the result cache keys engines separately)."""
        doc = client.get("/openapi.json").get_json()
        spec = doc["components"]["schemas"]["ScenarioSpec"]
        assert spec["properties"]["engine"]["enum"] \
            == ["event", "vectorized"]
        assert "separately" in spec["description"]
