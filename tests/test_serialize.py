"""Serialization round-trips and canonical hashing.

The simulation service's cache correctness rests on two properties
checked here:

1. Every spec the registry can produce survives ``to_dict →
   json.dumps → json.loads → from_dict`` with its canonical form (and
   hence its BLAKE2b content hash) unchanged — including loss specs,
   schedule args, fault strategies, and baseline parameter payloads.
2. The hash is stable *across processes*: a fresh interpreter hashing
   the same spec produces the same hex digest.
"""

import dataclasses
import json
import math
import subprocess
import sys
from pathlib import Path

import pytest

from repro.core.params import Parameters
from repro.errors import ConfigError
from repro.harness import serialize
from repro.harness.registry import REGISTRY
from repro.harness.scenario import Scenario
from repro.harness.sweep import (
    ScenarioSpec,
    SweepRunner,
    resolve_cell_seeds,
    spec_hash,
)

SRC = str(Path(__file__).resolve().parent.parent / "src")


def roundtrip(value):
    return serialize.decode(
        json.loads(json.dumps(serialize.encode(value), allow_nan=False)))


class TestCodec:
    def test_json_natives_pass_through(self):
        value = {"a": 1, "b": [1.5, None, True, "x"]}
        assert roundtrip(value) == value

    def test_tuples_stay_tuples(self):
        value = {"key": (1, "D", 2.5), "nested": [(1, 2), (3, 4)]}
        back = roundtrip(value)
        assert back == value
        assert isinstance(back["key"], tuple)
        assert all(isinstance(item, tuple) for item in back["nested"])

    def test_nonfinite_floats(self):
        back = roundtrip([math.inf, -math.inf, math.nan])
        assert back[0] == math.inf
        assert back[1] == -math.inf
        assert math.isnan(back[2])

    def test_tuple_keyed_dict(self):
        value = {(0, 1): 0.25, (1, 2): 0.5}
        back = roundtrip(value)
        assert back == value
        assert list(back) == list(value)  # insertion order preserved

    def test_tag_colliding_str_keys(self):
        value = {"__tuple__": "not a tuple", "x": 1}
        assert roundtrip(value) == value

    def test_float_bit_exactness(self):
        values = [0.1, 1e-308, 1.7976931348623157e308, -0.0,
                  2.220446049250313e-16]
        back = roundtrip(values)
        assert [v.hex() for v in back] == [v.hex() for v in values]

    def test_registered_dataclass(self):
        params = Parameters.practical(rho=1e-4, d=1.0, u=0.1, f=1)
        back = roundtrip(params)
        assert isinstance(back, Parameters)
        assert serialize.canonical_json(back) \
            == serialize.canonical_json(params)

    def test_unregistered_dataclass_rejected(self):
        @dataclasses.dataclass
        class Unknown:
            x: int = 1

        with pytest.raises(ConfigError, match="unregistered"):
            serialize.encode(Unknown())

    def test_unknown_tag_rejected(self):
        with pytest.raises(ConfigError, match="unknown serializable"):
            serialize.decode({"__dc__": "NoSuchClass", "fields": {}})

    def test_bad_float_token_rejected(self):
        with pytest.raises(ConfigError, match="token"):
            serialize.decode({"__float__": "fast"})

    def test_register_name_collision_rejected(self):
        @dataclasses.dataclass
        class Parameters2:
            x: int = 1

        with pytest.raises(ConfigError, match="already taken"):
            serialize.register_serializable(Parameters2, "Parameters")

    def test_register_requires_dataclass(self):
        with pytest.raises(ConfigError, match="dataclass"):
            serialize.register_serializable(int)

    def test_unencodable_value_rejected(self):
        with pytest.raises(ConfigError, match="cannot serialize"):
            serialize.encode({1, 2, 3})

    def test_canonical_json_is_key_sorted(self):
        a = serialize.canonical_json({"b": 1, "a": 2})
        b = serialize.canonical_json({"a": 2, "b": 1})
        assert a == b


class TestSpecRoundTrip:
    def test_every_registry_spec_roundtrips_and_hashes_stably(self):
        """The satellite guarantee: all quick (and seed) specs of
        every registered experiment survive the JSON round trip with
        canonical form and hash unchanged."""
        checked = 0
        for experiment in REGISTRY:
            plan = experiment.plan(quick=True,
                                   seed=experiment.default_seed)
            for spec in resolve_cell_seeds(plan.specs,
                                           experiment.default_seed):
                data = json.loads(json.dumps(spec.to_dict(),
                                             allow_nan=False))
                back = ScenarioSpec.from_dict(data)
                assert serialize.canonical_json(back) \
                    == serialize.canonical_json(spec), experiment.id
                assert spec_hash(back) == spec_hash(spec)
                checked += 1
        assert checked > 50  # the registry really was swept

    def test_loss_schedule_strategy_fields_roundtrip(self):
        spec = (Scenario.ring(4)
                .params(Parameters.practical(rho=1e-4, d=1.0, u=0.1,
                                             f=1))
                .rounds(6).seed(3)
                .attack("equivocate")
                .lossy(kind="burst", p_g2b=0.02, p_b2g=0.3, p_bad=0.9)
                .dynamic("churn", interval=40.0, churn=0.25)
                .tag("T", 2).build())
        back = ScenarioSpec.from_dict(
            json.loads(json.dumps(spec.to_dict(), allow_nan=False)))
        assert back.loss == spec.loss
        assert back.schedule_args == spec.schedule_args
        assert back.strategy == spec.strategy
        assert spec_hash(back) == spec_hash(spec)

    def test_hash_stable_across_processes(self):
        experiment = REGISTRY.get("t01")
        plan = experiment.plan(quick=True, seed=experiment.default_seed)
        specs = resolve_cell_seeds(plan.specs, experiment.default_seed)
        payload = json.dumps([spec.to_dict() for spec in specs],
                             allow_nan=False)
        script = (
            "import json, sys\n"
            "from repro.harness.sweep import ScenarioSpec, spec_hash\n"
            "specs = [ScenarioSpec.from_dict(d)"
            " for d in json.loads(sys.stdin.read())]\n"
            "print('\\n'.join(spec_hash(s) for s in specs))\n")
        completed = subprocess.run(
            [sys.executable, "-c", script], input=payload,
            capture_output=True, text=True, timeout=120,
            env={"PYTHONPATH": SRC, "PATH": "/usr/bin:/bin"})
        assert completed.returncode == 0, completed.stderr
        assert completed.stdout.split() \
            == [spec_hash(spec) for spec in specs]

    def test_hash_differs_on_any_field_change(self):
        base = Scenario.line(3).rounds(5).seed(1).build()
        variants = [
            Scenario.line(4).rounds(5).seed(1).build(),
            Scenario.line(3).rounds(6).seed(1).build(),
            Scenario.line(3).rounds(5).seed(2).build(),
            Scenario.line(3).rounds(5).seed(1).tag("D", 2).build(),
        ]
        hashes = {spec_hash(spec) for spec in [base] + variants}
        assert len(hashes) == len(variants) + 1

    def test_hash_requires_resolved_seed(self):
        with pytest.raises(ConfigError, match="resolved seed"):
            spec_hash(Scenario.line(3).build())

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ConfigError, match="unknown ScenarioSpec"):
            ScenarioSpec.from_dict({"graph": "line", "bogus": 1})

    def test_from_dict_rejects_non_dict(self):
        with pytest.raises(ConfigError, match="needs a dict"):
            ScenarioSpec.from_dict([1, 2])

    def test_from_dict_coerces_handwritten_lists(self):
        spec = ScenarioSpec.from_dict(
            {"graph": "line", "graph_args": [3], "key": ["D", 2],
             "collect": ["unanimity"]})
        assert spec.graph_args == (3,)
        assert spec.key == ("D", 2)
        assert spec.collect == ("unanimity",)

    def test_from_dict_rejects_non_parameters_params(self):
        with pytest.raises(ConfigError, match="Parameters"):
            ScenarioSpec.from_dict({"graph": "line",
                                    "params": {"rho": 1e-4}})


class TestScenarioRoundTrip:
    def test_builder_roundtrip_builds_identical_spec(self):
        scenario = (Scenario.line(3).rounds(12).seed(9)
                    .attack("equivocate").configure(init_jitter=0.05)
                    .tag("D", 2))
        back = Scenario.from_dict(
            json.loads(json.dumps(scenario.to_dict())))
        assert back.build() == scenario.build()

    def test_to_dict_only_holds_set_fields(self):
        data = Scenario.line(3).to_dict()
        assert sorted(data) == ["graph", "graph_args"]

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ConfigError, match="unknown ScenarioSpec"):
            Scenario.from_dict({"rounds": 3, "wat": 1})


class TestResolveCellSeeds:
    def test_matches_sweep_runner_derivation(self):
        specs = [Scenario.line(3).rounds(2).build() for _ in range(3)]
        params = Parameters.practical(rho=1e-4, d=1.0, u=0.1, f=1)
        specs = [spec for spec in specs]
        resolved = resolve_cell_seeds(specs, base_seed=11)
        ran = SweepRunner().run(
            [Scenario.line(2).params(params).rounds(1).build()
             for _ in range(3)], base_seed=11)
        assert [spec.seed for spec in resolved] \
            == [cell.seed for cell in ran]

    def test_explicit_seeds_untouched(self):
        spec = Scenario.line(3).seed(42).build()
        assert resolve_cell_seeds([spec], 0)[0].seed == 42
