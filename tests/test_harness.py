"""Tests for the harness: tables, runners, and experiment smoke runs.

Experiment functions run here in further-scaled-down form where the
quick mode is already small, asserting structural properties of the
returned tables (the benchmarks exercise the full quick mode).
"""

import pytest

from repro.analysis.bounds import (
    cluster_failure_bound_3ep,
    cluster_failure_bound_binomial,
    cluster_failure_probability,
    system_failure_probability,
)
from repro.errors import ConfigError, ParameterError
from repro.harness.runner import (
    default_params,
    gradient_offsets,
    run_scenario,
    step_offsets,
)
from repro.harness.tables import Table
from repro.topology import ClusterGraph


class TestTable:
    def test_format_alignment(self):
        table = Table("Demo", ["a", "long-column"], [])
        table.add_row(1, 2.5)
        table.add_row(100, True)
        text = table.format()
        assert "Demo" in text
        assert "long-column" in text
        assert "yes" in text

    def test_row_length_checked(self):
        table = Table("Demo", ["a", "b"])
        with pytest.raises(ConfigError):
            table.add_row(1)

    def test_column_accessor(self):
        table = Table("Demo", ["a", "b"])
        table.add_row(1, "x")
        table.add_row(2, "y")
        assert table.column("a") == [1, 2]
        with pytest.raises(ConfigError):
            table.column("zzz")

    def test_float_formatting(self):
        table = Table("Demo", ["v"])
        table.add_row(0.000123456)
        table.add_row(123456.789)
        table.add_row(0.0)
        text = table.format()
        assert "1.235e-04" in text
        assert "1.235e+05" in text

    def test_notes_rendered(self):
        table = Table("Demo", ["a"])
        table.add_note("hello note")
        assert "note: hello note" in table.format()


class TestRunnerHelpers:
    def test_gradient_offsets(self):
        assert gradient_offsets(4, 2.0) == [0.0, 2.0, 4.0, 6.0]

    def test_step_offsets(self):
        assert step_offsets(4, 2, 5.0) == [0.0, 0.0, 5.0, 5.0]

    def test_run_scenario_records_series(self):
        params = default_params()
        scenario = run_scenario(ClusterGraph.line(2), params, rounds=4,
                                seed=1)
        assert scenario.result.series
        steady = scenario.steady_state_skews()
        assert set(steady) == {"global", "intra", "local_cluster",
                               "local_node"}

    def test_run_scenario_with_faults(self):
        from repro.faults import SilentStrategy

        params = default_params()
        scenario = run_scenario(
            ClusterGraph.line(2), params, rounds=4, seed=1,
            strategy_factory=lambda n: SilentStrategy())
        assert scenario.result.missing_pulses > 0

    def test_run_scenario_leaves_caller_config_unchanged(self):
        # Regression: run_scenario used to set measurement defaults and
        # fault placement on the caller's object, so a reused config
        # silently accumulated state.
        from repro.core.system import SystemConfig
        from repro.faults import SilentStrategy

        params = default_params()
        config = SystemConfig(cluster_offsets=[0.0, 1.0])
        run_scenario(ClusterGraph.line(2), params, rounds=3, seed=1,
                     strategy_factory=lambda n: SilentStrategy(),
                     config=config)
        assert config.sample_interval is None
        assert config.record_series is False
        assert config.track_edges is False
        assert config.byzantine == {}
        assert config.cluster_offsets == [0.0, 1.0]

    def test_run_scenario_config_reusable_across_runs(self):
        from repro.core.system import SystemConfig

        params = default_params()
        config = SystemConfig(init_jitter=0.05)
        first = run_scenario(ClusterGraph.line(2), params, rounds=3,
                             seed=1, config=config)
        second = run_scenario(ClusterGraph.line(2), params, rounds=3,
                              seed=1, config=config)
        assert first.result.series == second.result.series


class TestBoundsFunctions:
    def test_exact_tail_matches_direct_sum(self):
        # f=1, k=4, p=0.5: P[X>1] = 1 - P[0] - P[1]
        # = 1 - 0.0625 - 4*0.0625 = 0.6875.
        assert cluster_failure_probability(1, 0.5) == pytest.approx(0.6875)

    def test_bound_ordering(self):
        for f in (1, 2, 3):
            for p in (0.001, 0.01, 0.05):
                exact = cluster_failure_probability(f, p)
                mid = cluster_failure_bound_binomial(f, p)
                top = cluster_failure_bound_3ep(f, p)
                assert exact <= mid * (1 + 1e-9) or exact < 1e-12
                assert mid <= top * (1 + 1e-9)

    def test_edge_cases(self):
        assert cluster_failure_probability(1, 0.0) == 0.0
        assert cluster_failure_probability(1, 1.0) == pytest.approx(1.0)
        assert cluster_failure_probability(0, 0.3,
                                           cluster_size=1) == \
            pytest.approx(0.3)

    def test_system_probability_union(self):
        single = cluster_failure_probability(1, 0.05)
        combined = system_failure_probability(10, 1, 0.05)
        assert single < combined < 10 * single

    def test_validation(self):
        with pytest.raises(ParameterError):
            cluster_failure_probability(-1, 0.1)
        with pytest.raises(ParameterError):
            cluster_failure_probability(1, 1.5)


class TestExperimentsSmoke:
    """Cheap structural checks; heavy lifting lives in benchmarks/."""

    def test_t05_rows_and_ordering(self):
        from repro.harness.experiments import t05_failure_probability

        table = t05_failure_probability(quick=True)
        assert len(table.rows) == 9
        assert all(table.column("ordered"))

    def test_t08_overheads_factors(self):
        from repro.harness.experiments import t08_overheads

        table = t08_overheads(quick=True)
        # Node factor is exactly k = 3f+1.
        for row in table.rows:
            f, k, factor = row[1], row[2], row[4]
            assert k == 3 * f + 1
            assert factor == pytest.approx(k)

    def test_t10_no_violations(self):
        from repro.harness.experiments import t10_trigger_exclusion

        table = t10_trigger_exclusion(quick=True)
        assert all(v == 0 for v in table.column("violations"))

    def test_t12_convergence_within_envelope(self):
        from repro.harness.experiments import t12_convergence

        table = t12_convergence(quick=True)
        assert all(table.column("within"))

    def test_run_all_registry(self):
        from repro.harness.experiments import ALL_EXPERIMENTS

        assert len(ALL_EXPERIMENTS) == 18
        assert sorted(ALL_EXPERIMENTS) == [f"t{i:02d}"
                                           for i in range(1, 19)]
