"""Tests for the unified SyncProtocol / SystemBuilder surface."""

import pytest

from repro.baselines.gcs_single import GcsParams
from repro.baselines.lynch_welch import LynchWelchSystem
from repro.baselines.srikanth_toueg import StParams
from repro.core.protocol import (
    PROTOCOLS,
    ProtocolRunResult,
    SyncProtocol,
    SystemBuilder,
    get_protocol,
    protocol_names,
    register_protocol,
)
from repro.core.system import RunResult
from repro.errors import ConfigError
from repro.harness.runner import default_params, run_scenario
from repro.topology.cluster_graph import ClusterGraph
from repro.topology.schedule import EdgeChurnSchedule


class TestRegistry:
    def test_builtins_registered(self):
        # Subset check: examples/tests may register extra protocols
        # in-process.
        assert {"ftgcs", "gcs_single", "lynch_welch", "master_slave",
                "srikanth_toueg"} <= set(protocol_names())

    def test_unknown_name_rejected_with_known_list(self):
        with pytest.raises(ConfigError) as err:
            get_protocol("paxos")
        assert "ftgcs" in str(err.value)

    def test_duplicate_registration_rejected(self):
        get_protocol("ftgcs")  # force builtin load

        with pytest.raises(ConfigError):
            register_protocol(PROTOCOLS["ftgcs"])

    def test_non_protocol_rejected(self):
        with pytest.raises(ConfigError):
            register_protocol(int)

    def test_unnamed_protocol_rejected(self):
        class Nameless(SyncProtocol):
            pass

        with pytest.raises(ConfigError):
            register_protocol(Nameless)


class TestBuilderValidation:
    def test_unknown_protocol_name(self):
        with pytest.raises(ConfigError):
            SystemBuilder("quantum")

    def test_garbage_protocol_rejected(self):
        with pytest.raises(ConfigError):
            SystemBuilder(42)

    def test_missing_graph_rejected(self):
        with pytest.raises(ConfigError):
            SystemBuilder("ftgcs").params(default_params()).build()

    def test_missing_params_rejected(self):
        with pytest.raises(ConfigError):
            (SystemBuilder("ftgcs").topology(ClusterGraph.line(2))
             .build())

    def test_faults_need_capability(self):
        params = default_params(f=0)
        with pytest.raises(ConfigError):
            (SystemBuilder("master_slave")
             .topology(ClusterGraph.line(2)).params(params)
             .faults("equivocate").build())

    def test_dynamic_needs_capability(self):
        params = default_params(f=0)
        schedule = EdgeChurnSchedule(ClusterGraph.line(2),
                                     interval=10.0, churn=0.5)
        with pytest.raises(ConfigError):
            (SystemBuilder("master_slave").topology(schedule)
             .params(params).build())

    def test_bad_topology_rejected(self):
        with pytest.raises(ConfigError):
            SystemBuilder("ftgcs").topology("line")


class TestFtgcsEquivalence:
    def test_matches_legacy_run_scenario(self):
        """The unified path reproduces run_scenario bit-for-bit."""
        params = default_params(f=1)
        graph = ClusterGraph.line(3)
        result = (SystemBuilder("ftgcs").topology(graph).params(params)
                  .rounds(3).faults("equivocate").seed(7).build().run())

        from repro.faults.strategies import EquivocatorStrategy

        legacy = run_scenario(
            graph, params, rounds=3, seed=7,
            strategy_factory=lambda _n: EquivocatorStrategy())
        assert isinstance(result, ProtocolRunResult)
        assert isinstance(result.detail, RunResult)
        assert result.max_global_skew == legacy.result.max_global_skew
        assert result.messages_sent == legacy.result.messages_sent
        assert result.events_processed == legacy.result.events_processed
        assert result.series == legacy.result.series

    def test_rounds_validated(self):
        system = (SystemBuilder("ftgcs").topology(ClusterGraph.line(1))
                  .params(default_params()).rounds(0).build())
        with pytest.raises(ConfigError):
            system.run()

    def test_system_not_restartable(self):
        system = (SystemBuilder("ftgcs").topology(ClusterGraph.line(1))
                  .params(default_params()).rounds(1).build())
        system.run()
        with pytest.raises(ConfigError):
            system.start()


class TestLynchWelch:
    def test_graph_free_build(self):
        result = (SystemBuilder("lynch_welch")
                  .params(default_params(f=1)).rounds(3).seed(2)
                  .build().run())
        assert result.protocol == "lynch_welch"
        assert result.detail.diameter == 0

    def test_system_class_rejects_multi_cluster(self):
        with pytest.raises(ConfigError):
            LynchWelchSystem(default_params(), cluster_graph=
                             ClusterGraph.line(2))

    def test_matches_single_cluster_ftgcs(self):
        """LW is the single-cluster FTGCS system, event for event."""
        params = default_params(f=1)
        lw = (SystemBuilder("lynch_welch").params(params).rounds(3)
              .seed(5).build().run())
        ft = (SystemBuilder("ftgcs").topology(ClusterGraph.line(1))
              .params(params).rounds(3).seed(5).build().run())
        assert lw.series == ft.series
        assert lw.messages_sent == ft.messages_sent


class TestBaselineProtocols:
    def test_master_slave(self):
        params = default_params(f=0)
        result = (SystemBuilder("master_slave")
                  .topology(ClusterGraph.line(3)).params(params)
                  .rounds(3).seed(4).payload(jump=True).build().run())
        assert result.protocol == "master_slave"
        assert result.max_global_skew >= 0.0
        assert result.detail.samples > 0  # SkewMaxima

    def test_gcs_single(self):
        result = (SystemBuilder("gcs_single")
                  .topology(ClusterGraph.ring(4))
                  .payload(params=GcsParams.default(), until=100.0)
                  .seed(3).build().run())
        assert result.protocol == "gcs_single"
        assert result.series  # (t, local, global) samples
        assert result.detail == result.series

    def test_gcs_single_missing_payload(self):
        builder = (SystemBuilder("gcs_single")
                   .topology(ClusterGraph.ring(4)))
        with pytest.raises(ConfigError):
            builder.build().run()

    def test_srikanth_toueg(self):
        params = StParams(n=4, f=1, rho=1e-4, d=1.0, u=0.1, period=10.0)
        result = (SystemBuilder("srikanth_toueg")
                  .payload(params=params, rounds=3).seed(6)
                  .build().run())
        assert result.protocol == "srikanth_toueg"
        assert result.max_global_skew == result.detail

    def test_srikanth_toueg_honors_until(self):
        # run(until=X) must bound the measurement window, not the
        # rounds-derived horizon.
        params = StParams(n=4, f=1, rho=1e-2, d=1.0, u=0.1, period=10.0)

        def skew_at(until):
            return (SystemBuilder("srikanth_toueg")
                    .payload(params=params, rounds=50).seed(6)
                    .build().run(until=until).detail)

        assert skew_at(20.0) != skew_at(510.0)

    def test_srikanth_toueg_missing_params(self):
        with pytest.raises(ConfigError):
            SystemBuilder("srikanth_toueg").build().run()


class TestCustomProtocol:
    def test_register_build_run(self):
        class CountdownProtocol(SyncProtocol):
            name = "test_countdown"
            needs_graph = False
            needs_params = False

            def build_nodes(self, ctx):
                from repro.sim.kernel import Simulator

                self.sim = Simulator()
                self.fired = []
                for i in range(ctx.payload.get("events", 3)):
                    self.sim.call_at(float(i + 1), self.fired.append, i)

            def start(self):
                pass

            def horizon(self):
                return 10.0

            def collect(self):
                return ProtocolRunResult(
                    protocol=self.name, seed=self.ctx.seed,
                    events_processed=self.sim.events_processed,
                    detail=list(self.fired))

        register_protocol(CountdownProtocol)
        try:
            result = (SystemBuilder("test_countdown")
                      .payload(events=4).seed(1).build().run())
            assert result.detail == [0, 1, 2, 3]
            assert result.events_processed == 4
        finally:
            del PROTOCOLS["test_countdown"]


class TestMessagesDropped:
    """Satellite regression: Network.messages_dropped is plumbed into
    ProtocolRunResult uniformly across all five adapters."""

    def test_static_runs_report_zero_for_every_adapter(self):
        params = default_params(f=1)
        runs = [
            (SystemBuilder("ftgcs").topology(ClusterGraph.line(2))
             .params(params).rounds(2).seed(1).build()),
            (SystemBuilder("lynch_welch").params(params).rounds(2)
             .seed(1).build()),
            (SystemBuilder("master_slave")
             .topology(ClusterGraph.line(3))
             .params(default_params(f=0)).rounds(2).seed(1)
             .payload(jump=True).build()),
            (SystemBuilder("gcs_single").topology(ClusterGraph.ring(4))
             .payload(params=GcsParams.default(), until=50.0).seed(1)
             .build()),
            (SystemBuilder("srikanth_toueg")
             .payload(params=StParams(n=4, f=1, rho=1e-4, d=1.0, u=0.1,
                                      period=10.0), rounds=2)
             .seed(1).build()),
        ]
        for system in runs:
            result = system.run()
            assert result.messages_dropped == 0
            # The field mirrors the live network counter exactly.
            assert (result.messages_dropped
                    == system.protocol.network.messages_dropped)

    def test_dynamic_runs_report_drops(self):
        params = default_params(f=1)
        for name, build in (
            ("ftgcs", lambda s: (SystemBuilder("ftgcs").topology(s)
                                 .params(params).rounds(4).seed(2)
                                 .build())),
            ("gcs_single", lambda s: (SystemBuilder("gcs_single")
                                      .topology(s)
                                      .payload(params=GcsParams.default(),
                                               until=300.0)
                                      .seed(2).build())),
        ):
            schedule = EdgeChurnSchedule(
                ClusterGraph.line(3),
                interval=(params.round_length if name == "ftgcs"
                          else 25.0),
                churn=0.5)
            system = build(schedule)
            result = system.run()
            assert result.messages_dropped > 0
            assert (result.messages_dropped
                    == system.protocol.network.messages_dropped)

    def test_link_down_split_matches_legacy_sum(self):
        """messages_dropped = dropped_link_down + dropped_loss +
        dropped_in_flight; edge churn alone populates only the
        link-down bucket."""
        params = default_params(f=1)
        schedule = EdgeChurnSchedule(ClusterGraph.line(3),
                                     interval=params.round_length,
                                     churn=0.5)
        system = (SystemBuilder("ftgcs").topology(schedule)
                  .params(params).rounds(4).seed(2).build())
        result = system.run()
        net = system.protocol.network
        assert result.dropped_link_down > 0
        assert result.messages_lost == 0
        assert (net.messages_dropped == net.dropped_link_down
                + net.dropped_loss + net.dropped_in_flight)
        assert result.dropped_link_down == net.dropped_link_down

    def test_seeded_lossy_run_loses_messages(self):
        """Satellite regression: a seeded lossy run reports a nonzero
        messages_lost through the uniform result surface."""
        params = default_params(f=1)
        system = (SystemBuilder("ftgcs")
                  .topology(ClusterGraph.line(2)).params(params)
                  .rounds(3).seed(5)
                  .lossy(kind="bernoulli", rate=0.1).build())
        result = system.run()
        assert result.messages_lost > 0
        assert result.messages_lost == \
            system.protocol.network.dropped_loss
        # Loss participates in the legacy aggregate too.
        assert result.messages_dropped >= result.messages_lost


class TestFirstContactCapability:
    def test_flags(self):
        assert get_protocol("ftgcs").supports_first_contact
        for name in ("lynch_welch", "master_slave", "gcs_single",
                     "srikanth_toueg"):
            assert not get_protocol(name).supports_first_contact

    def test_builder_validates_eagerly(self):
        with pytest.raises(ConfigError) as err:
            (SystemBuilder("gcs_single").topology(ClusterGraph.ring(4))
             .payload(params=GcsParams.default(), until=10.0)
             .first_contact().build())
        assert "first-contact" in str(err.value)

    def test_first_contact_reaches_system_config(self):
        params = default_params(f=1)
        system = (SystemBuilder("ftgcs").topology(ClusterGraph.line(2))
                  .params(params).rounds(1).seed(1).first_contact()
                  .build())
        assert system.protocol.system.config.dynamic_estimators


class TestReannounceCapSurface:
    def test_capped_protocol_run_reports_hits(self):
        from repro.topology.schedule import build_schedule

        params = default_params(rho=1e-4, d=1.0, u=0.05, f=1)
        graph = ClusterGraph.line(4)
        schedule = build_schedule("adversarial_sweep", graph,
                                  interval=2 * params.round_length)
        system = (SystemBuilder("ftgcs").topology(schedule)
                  .params(params).rounds(14).seed(7).first_contact()
                  .configure(enable_max_estimate=True,
                             max_estimate_unit=params.kappa / 4.0,
                             max_reannounce_levels=1)
                  .build())
        result = system.run()
        # The cut sweep keeps re-upping edges after the announced
        # level has grown past the cap of 1, so every bring-up is a
        # capped (undercount-sound) re-announcement.
        assert result.reannounce_cap_hits > 0
        assert result.reannounce_cap_hits == \
            result.detail.reannounce_cap_hits

    def test_static_runs_report_zero(self):
        params = default_params(rho=1e-4, d=1.0, u=0.05, f=1)
        system = (SystemBuilder("ftgcs")
                  .topology(ClusterGraph.line(2)).params(params)
                  .rounds(3).seed(7).build())
        result = system.run()
        assert result.reannounce_cap_hits == 0
