"""Tests for the analysis layer: metrics, sampling, traces."""

import pytest

from repro.analysis.metrics import (
    cluster_extrema,
    compute_snapshot,
    pulse_diameters,
    unanimity_by_round,
)
from repro.analysis.sampling import SkewSampler
from repro.analysis.traces import ClockTraceRecorder, difference_series
from repro.errors import ConfigError
from repro.sim import Simulator


class TestClusterExtrema:
    def test_cluster_clock_is_midpoint(self):
        ext = cluster_extrema({1: 2.0, 2: 6.0, 3: 4.0})
        assert ext.cluster_clock == pytest.approx(4.0)
        assert ext.spread == pytest.approx(4.0)

    def test_single_member(self):
        ext = cluster_extrema({1: 3.0})
        assert ext.cluster_clock == 3.0
        assert ext.spread == 0.0


class TestComputeSnapshot:
    def test_known_values(self):
        values = {0: {0: 0.0, 1: 1.0}, 1: {2: 4.0, 3: 5.0}}
        snap = compute_snapshot(7.0, values, [(0, 1)],
                                include_edges=True)
        assert snap.time == 7.0
        assert snap.global_skew == pytest.approx(5.0)
        assert snap.max_intra_cluster == pytest.approx(1.0)
        # Cluster clocks: 0.5 and 4.5.
        assert snap.max_local_cluster == pytest.approx(4.0)
        # Node-level: max(1-4, 5-0) = 5.
        assert snap.max_local_node == pytest.approx(5.0)
        assert snap.edge_skews[(0, 1)] == pytest.approx(4.0)

    def test_empty_input(self):
        snap = compute_snapshot(0.0, {}, [])
        assert snap.global_skew == 0.0

    def test_edges_with_missing_cluster_skipped(self):
        values = {0: {0: 0.0}}
        snap = compute_snapshot(0.0, values, [(0, 1)])
        assert snap.max_local_cluster == 0.0


class TestPulseDiameters:
    def test_diameters(self):
        log = {(0, 1): [(0, 1.0), (1, 1.4), (2, 1.2)],
               (0, 2): [(0, 5.0)]}
        table = pulse_diameters(log)
        assert table[(0, 1)] == pytest.approx(0.4)
        assert table[(0, 2)] == 0.0

    def test_empty(self):
        assert pulse_diameters({}) == {}


class TestUnanimity:
    def test_unanimous_round(self):
        logs = {0: [(1, 0), (2, 1)], 1: [(1, 0), (2, 1)]}
        result = unanimity_by_round(logs)
        assert result[1] == (True, 0)
        assert result[2] == (True, 1)

    def test_split_round(self):
        logs = {0: [(1, 0)], 1: [(1, 1)]}
        assert unanimity_by_round(logs)[1] == (False, -1)

    def test_incomplete_round_omitted(self):
        logs = {0: [(1, 0), (2, 0)], 1: [(1, 0)]}
        result = unanimity_by_round(logs)
        assert 1 in result
        assert 2 not in result


class TestSkewSampler:
    def make_sampler(self, values, interval=1.0, **kwargs):
        sim = Simulator()
        sampler = SkewSampler(sim, interval, lambda: values, [(0, 1)],
                              **kwargs)
        return sim, sampler

    def test_running_maxima(self):
        values = {0: {0: 0.0}, 1: {1: 3.0}}
        sim, sampler = self.make_sampler(values)
        sampler.start()
        sim.run(until=5.0)
        assert sampler.maxima.samples == 6  # t=0..5
        assert sampler.maxima.global_skew == pytest.approx(3.0)

    def test_series_recording(self):
        values = {0: {0: 0.0}}
        sim, sampler = self.make_sampler(values, record_series=True)
        sampler.start()
        sim.run(until=3.0)
        assert len(sampler.series) == 4

    def test_edge_tracking(self):
        values = {0: {0: 0.0}, 1: {1: 2.0}}
        sim, sampler = self.make_sampler(values, track_edges=True)
        sampler.start()
        sim.run(until=1.0)
        assert sampler.maxima.edge_maxima[(0, 1)] == pytest.approx(2.0)

    def test_stop(self):
        values = {0: {0: 0.0}}
        sim, sampler = self.make_sampler(values)
        sampler.start()
        sim.run(until=1.0)
        sampler.stop()
        sim.run(until=10.0)
        assert sampler.maxima.samples == 2

    def test_bad_interval(self):
        with pytest.raises(ConfigError):
            self.make_sampler({}, interval=0.0)

    def test_double_start(self):
        sim, sampler = self.make_sampler({0: {0: 0.0}})
        sampler.start()
        with pytest.raises(ConfigError):
            sampler.start()


class TestTraces:
    def test_recorder_samples_on_cadence(self):
        sim = Simulator()
        recorder = ClockTraceRecorder(sim, interval=1.0)
        recorder.watch("wall", lambda: sim.now)
        recorder.start()
        sim.run(until=3.0)
        assert recorder.trace("wall").values() == [0.0, 1.0, 2.0, 3.0]

    def test_offsets_from_time(self):
        sim = Simulator()
        recorder = ClockTraceRecorder(sim, interval=1.0)
        recorder.watch("shifted", lambda: sim.now + 2.0)
        recorder.start()
        sim.run(until=2.0)
        offsets = recorder.trace("shifted").offsets_from_time()
        assert all(v == pytest.approx(2.0) for _, v in offsets)

    def test_difference_and_skew_series(self):
        sim = Simulator()
        recorder = ClockTraceRecorder(sim, interval=1.0)
        recorder.watch("a", lambda: sim.now * 2.0)
        recorder.watch("b", lambda: sim.now)
        recorder.start()
        sim.run(until=2.0)
        diff = difference_series(recorder.trace("a"),
                                 recorder.trace("b"))
        assert diff == [(0.0, 0.0), (1.0, 1.0), (2.0, 2.0)]
        skew = recorder.skew_series("b", "a")
        assert skew[-1] == (2.0, pytest.approx(2.0))

    def test_mismatched_traces_rejected(self):
        from repro.analysis.traces import Trace

        a = Trace("a", [(0.0, 1.0)])
        b = Trace("b", [(0.0, 1.0), (1.0, 2.0)])
        with pytest.raises(ConfigError):
            difference_series(a, b)

    def test_duplicate_name_rejected(self):
        sim = Simulator()
        recorder = ClockTraceRecorder(sim, interval=1.0)
        recorder.watch("x", lambda: 0.0)
        with pytest.raises(ConfigError):
            recorder.watch("x", lambda: 0.0)

    def test_watch_system_nodes(self):
        from repro.core.params import Parameters
        from repro.core.system import FtgcsSystem
        from repro.topology import ClusterGraph

        params = Parameters.practical(rho=1e-4, d=1.0, u=0.1, f=1)
        system = FtgcsSystem.build(ClusterGraph.line(2), params, seed=1)
        recorder = ClockTraceRecorder(system.sim,
                                      interval=params.round_length / 2)
        recorder.watch_system_nodes(system)
        recorder.start()
        system.run_rounds(2)
        assert len(recorder.names()) == 8
        for name in recorder.names():
            assert len(recorder.trace(name).samples) >= 3

    def test_to_csv(self, tmp_path):
        sim = Simulator()
        recorder = ClockTraceRecorder(sim, interval=1.0)
        recorder.watch("wall", lambda: sim.now)
        recorder.start()
        sim.run(until=2.0)
        path = tmp_path / "traces.csv"
        recorder.to_csv(str(path))
        content = path.read_text()
        assert content.splitlines()[0] == "time,wall"
        assert len(content.splitlines()) == 4

    def test_empty_trace_max_raises(self):
        from repro.analysis.traces import Trace

        with pytest.raises(ConfigError):
            Trace("empty").max_value()
