"""Tests for the analysis layer: metrics, sampling, traces."""

import pytest

from repro.analysis.metrics import (
    cluster_extrema,
    compute_snapshot,
    pulse_diameters,
    unanimity_by_round,
)
from repro.analysis.sampling import SkewSampler
from repro.analysis.traces import ClockTraceRecorder, difference_series
from repro.errors import ConfigError
from repro.sim import Simulator


class TestClusterExtrema:
    def test_cluster_clock_is_midpoint(self):
        ext = cluster_extrema({1: 2.0, 2: 6.0, 3: 4.0})
        assert ext.cluster_clock == pytest.approx(4.0)
        assert ext.spread == pytest.approx(4.0)

    def test_single_member(self):
        ext = cluster_extrema({1: 3.0})
        assert ext.cluster_clock == 3.0
        assert ext.spread == 0.0


class TestComputeSnapshot:
    def test_known_values(self):
        values = {0: {0: 0.0, 1: 1.0}, 1: {2: 4.0, 3: 5.0}}
        snap = compute_snapshot(7.0, values, [(0, 1)],
                                include_edges=True)
        assert snap.time == 7.0
        assert snap.global_skew == pytest.approx(5.0)
        assert snap.max_intra_cluster == pytest.approx(1.0)
        # Cluster clocks: 0.5 and 4.5.
        assert snap.max_local_cluster == pytest.approx(4.0)
        # Node-level: max(1-4, 5-0) = 5.
        assert snap.max_local_node == pytest.approx(5.0)
        assert snap.edge_skews[(0, 1)] == pytest.approx(4.0)

    def test_empty_input(self):
        snap = compute_snapshot(0.0, {}, [])
        assert snap.global_skew == 0.0

    def test_edges_with_missing_cluster_skipped(self):
        values = {0: {0: 0.0}}
        snap = compute_snapshot(0.0, values, [(0, 1)])
        assert snap.max_local_cluster == 0.0


class TestPulseDiameters:
    def test_diameters(self):
        log = {(0, 1): [(0, 1.0), (1, 1.4), (2, 1.2)],
               (0, 2): [(0, 5.0)]}
        table = pulse_diameters(log)
        assert table[(0, 1)] == pytest.approx(0.4)
        assert table[(0, 2)] == 0.0

    def test_empty(self):
        assert pulse_diameters({}) == {}


class TestUnanimity:
    def test_unanimous_round(self):
        logs = {0: [(1, 0), (2, 1)], 1: [(1, 0), (2, 1)]}
        result = unanimity_by_round(logs)
        assert result[1] == (True, 0)
        assert result[2] == (True, 1)

    def test_split_round(self):
        logs = {0: [(1, 0)], 1: [(1, 1)]}
        assert unanimity_by_round(logs)[1] == (False, -1)

    def test_incomplete_round_omitted(self):
        logs = {0: [(1, 0), (2, 0)], 1: [(1, 0)]}
        result = unanimity_by_round(logs)
        assert 1 in result
        assert 2 not in result


class TestSkewSampler:
    def make_sampler(self, values, interval=1.0, **kwargs):
        sim = Simulator()
        sampler = SkewSampler(sim, interval, lambda: values, [(0, 1)],
                              **kwargs)
        return sim, sampler

    def test_running_maxima(self):
        values = {0: {0: 0.0}, 1: {1: 3.0}}
        sim, sampler = self.make_sampler(values)
        sampler.start()
        sim.run(until=5.0)
        assert sampler.maxima.samples == 6  # t=0..5
        assert sampler.maxima.global_skew == pytest.approx(3.0)

    def test_series_recording(self):
        values = {0: {0: 0.0}}
        sim, sampler = self.make_sampler(values, record_series=True)
        sampler.start()
        sim.run(until=3.0)
        assert len(sampler.series) == 4

    def test_edge_tracking(self):
        values = {0: {0: 0.0}, 1: {1: 2.0}}
        sim, sampler = self.make_sampler(values, track_edges=True)
        sampler.start()
        sim.run(until=1.0)
        assert sampler.maxima.edge_maxima[(0, 1)] == pytest.approx(2.0)

    def test_stop(self):
        values = {0: {0: 0.0}}
        sim, sampler = self.make_sampler(values)
        sampler.start()
        sim.run(until=1.0)
        sampler.stop()
        sim.run(until=10.0)
        assert sampler.maxima.samples == 2

    def test_bad_interval(self):
        with pytest.raises(ConfigError):
            self.make_sampler({}, interval=0.0)

    def test_double_start(self):
        sim, sampler = self.make_sampler({0: {0: 0.0}})
        sampler.start()
        with pytest.raises(ConfigError):
            sampler.start()


class TestTraces:
    def test_recorder_samples_on_cadence(self):
        sim = Simulator()
        recorder = ClockTraceRecorder(sim, interval=1.0)
        recorder.watch("wall", lambda: sim.now)
        recorder.start()
        sim.run(until=3.0)
        assert recorder.trace("wall").values() == [0.0, 1.0, 2.0, 3.0]

    def test_offsets_from_time(self):
        sim = Simulator()
        recorder = ClockTraceRecorder(sim, interval=1.0)
        recorder.watch("shifted", lambda: sim.now + 2.0)
        recorder.start()
        sim.run(until=2.0)
        offsets = recorder.trace("shifted").offsets_from_time()
        assert all(v == pytest.approx(2.0) for _, v in offsets)

    def test_difference_and_skew_series(self):
        sim = Simulator()
        recorder = ClockTraceRecorder(sim, interval=1.0)
        recorder.watch("a", lambda: sim.now * 2.0)
        recorder.watch("b", lambda: sim.now)
        recorder.start()
        sim.run(until=2.0)
        diff = difference_series(recorder.trace("a"),
                                 recorder.trace("b"))
        assert diff == [(0.0, 0.0), (1.0, 1.0), (2.0, 2.0)]
        skew = recorder.skew_series("b", "a")
        assert skew[-1] == (2.0, pytest.approx(2.0))

    def test_mismatched_traces_rejected(self):
        from repro.analysis.traces import Trace

        a = Trace("a", [(0.0, 1.0)])
        b = Trace("b", [(0.0, 1.0), (1.0, 2.0)])
        with pytest.raises(ConfigError):
            difference_series(a, b)

    def test_duplicate_name_rejected(self):
        sim = Simulator()
        recorder = ClockTraceRecorder(sim, interval=1.0)
        recorder.watch("x", lambda: 0.0)
        with pytest.raises(ConfigError):
            recorder.watch("x", lambda: 0.0)

    def test_watch_system_nodes(self):
        from repro.core.params import Parameters
        from repro.core.system import FtgcsSystem
        from repro.topology import ClusterGraph

        params = Parameters.practical(rho=1e-4, d=1.0, u=0.1, f=1)
        system = FtgcsSystem.build(ClusterGraph.line(2), params, seed=1)
        recorder = ClockTraceRecorder(system.sim,
                                      interval=params.round_length / 2)
        recorder.watch_system_nodes(system)
        recorder.start()
        system.run_rounds(2)
        assert len(recorder.names()) == 8
        for name in recorder.names():
            assert len(recorder.trace(name).samples) >= 3

    def test_to_csv(self, tmp_path):
        sim = Simulator()
        recorder = ClockTraceRecorder(sim, interval=1.0)
        recorder.watch("wall", lambda: sim.now)
        recorder.start()
        sim.run(until=2.0)
        path = tmp_path / "traces.csv"
        recorder.to_csv(str(path))
        content = path.read_text()
        assert content.splitlines()[0] == "time,wall"
        assert len(content.splitlines()) == 4

    def test_empty_trace_max_raises(self):
        from repro.analysis.traces import Trace

        with pytest.raises(ConfigError):
            Trace("empty").max_value()


class TestSampleBuffer:
    def test_append_and_read_back(self):
        from repro.analysis.sampling import SAMPLE_COLUMNS, SampleBuffer

        buffer = SampleBuffer(capacity=2)
        for i in range(5):  # forces growth past the initial capacity
            buffer.append(float(i), 1.0 + i, 2.0 + i, 3.0 + i, 4.0 + i)
        assert len(buffer) == 5
        assert buffer.row(3) == (3.0, 4.0, 5.0, 6.0, 7.0)
        assert buffer.column("time") == [0.0, 1.0, 2.0, 3.0, 4.0]
        assert tuple(SAMPLE_COLUMNS)[0] == "time"

    def test_validation(self):
        from repro.analysis.sampling import SampleBuffer

        with pytest.raises(ConfigError):
            SampleBuffer(capacity=0)
        buffer = SampleBuffer()
        with pytest.raises(ConfigError):
            buffer.column("nope")
        with pytest.raises(IndexError):
            buffer.row(0)

    def test_array_fallback_matches_numpy_path(self, monkeypatch):
        import repro.analysis.sampling as sampling

        rows = [(0.0, 1.0, 2.0, 3.0, 4.0), (1.5, 0.5, 0.25, 0.125, 0.0)]
        buffers = []
        for use_numpy in (True, False):
            if not use_numpy:
                monkeypatch.setattr(sampling, "_np", None)
            buffer = sampling.SampleBuffer(capacity=1)
            for row in rows:
                buffer.append(*row)
            buffers.append([buffer.row(i) for i in range(len(buffer))])
        assert buffers[0] == buffers[1] == rows


class TestSamplerHorizonBoundary:
    """A tick nominally at t == horizon fires (tick_count/clamp_tick)."""

    def make_sampler(self, interval, **kwargs):
        sim = Simulator()
        sampler = SkewSampler(sim, interval,
                              lambda: {0: {0: 0.0}, 1: {1: 1.0}},
                              [(0, 1)], **kwargs)
        return sim, sampler

    def test_exact_intervals_yield_n_plus_one_samples(self):
        # 0.1 accumulated 3 times drifts to 0.30000000000000004 > 0.3,
        # so the open-ended repeating form drops the final tick; the
        # horizon-bounded form clamps it onto the boundary.
        sim, sampler = self.make_sampler(0.1)
        sampler.start(horizon=0.3)
        sim.run(until=0.3)
        assert sampler.maxima.samples == 4  # N + 1

    def test_legacy_form_exhibits_the_drift_drop(self):
        # Documents the behavior the horizon parameter exists to fix
        # (kept for byte-identity of open-ended system runs).
        sim, sampler = self.make_sampler(0.1)
        sampler.start()
        sim.run(until=0.3)
        assert sampler.maxima.samples == 3  # final tick drifted past

    def test_bounded_ticks_stop_at_horizon(self):
        sim, sampler = self.make_sampler(0.25, record_series=True)
        sampler.start(horizon=1.0)
        sim.run(until=5.0)
        assert sampler.maxima.samples == 5
        assert [s.time for s in sampler.series] == \
            pytest.approx([0.0, 0.25, 0.5, 0.75, 1.0])

    def test_horizon_before_now_rejected(self):
        sim, sampler = self.make_sampler(0.5)
        sim.run(until=2.0)
        with pytest.raises(ConfigError):
            sampler.start(horizon=1.0)

    def test_exhausted_bounded_sampler_rejects_restart(self):
        # The bounded form clears its event after the final tick; the
        # sampler must still refuse a second start() instead of
        # corrupting the series with a fresh tick train.
        sim, sampler = self.make_sampler(0.1)
        sampler.start(horizon=0.3)
        sim.run(until=0.3)
        with pytest.raises(ConfigError):
            sampler.start()
        assert sampler.maxima.samples == 4
        # Explicit stop() still allows a deliberate restart.
        sampler.stop()
        sampler.start()
        assert sampler.maxima.samples == 5

    def test_stop_cancels_bounded_ticks(self):
        sim, sampler = self.make_sampler(0.25)
        sampler.start(horizon=10.0)
        sim.run(until=0.5)
        sampler.stop()
        sim.run(until=10.0)
        assert sampler.maxima.samples == 3


class TestBufferedSeries:
    def test_series_matches_eager_snapshots(self):
        values = {0: {0: 0.0, 1: 1.0}, 1: {2: 4.0}}
        sim = Simulator()
        sampler = SkewSampler(sim, 1.0, lambda: values, [(0, 1)],
                              record_series=True, track_edges=True)
        sampler.start()
        sim.run(until=3.0)
        expected = compute_snapshot(0.0, values, [(0, 1)],
                                    include_edges=True)
        assert len(sampler.series) == 4
        for i, snap in enumerate(sampler.series):
            assert snap.time == pytest.approx(float(i))
            assert snap.global_skew == expected.global_skew
            assert snap.max_intra_cluster == expected.max_intra_cluster
            assert snap.max_local_cluster == expected.max_local_cluster
            assert snap.max_local_node == expected.max_local_node
            assert snap.edge_skews == expected.edge_skews

    def test_accumulate_grouped_matches_snapshot(self):
        from repro.analysis.metrics import accumulate_grouped

        groups = [(0, [0.0, 2.0]), (1, [5.0]), (2, [])]
        edges = [(0, 1), (1, 2)]
        edge_out = {}
        maxima = {}
        metrics = accumulate_grouped(groups, edges, edge_maxima=maxima,
                                     edge_out=edge_out)
        snap = compute_snapshot(
            0.0, {0: {0: 0.0, 1: 2.0}, 1: {2: 5.0}}, edges,
            include_edges=True)
        assert metrics == (snap.global_skew, snap.max_intra_cluster,
                           snap.max_local_cluster, snap.max_local_node)
        assert edge_out == snap.edge_skews
        assert maxima == snap.edge_skews


class TestLogLogFit:
    def test_hand_computed_exact_power_law(self):
        import math

        from repro.analysis.metrics import log_log_fit

        # y = 3x exactly: slope 1, intercept ln 3, zero residual.
        slope, intercept, residual = log_log_fit([1.0, 2.0, 4.0],
                                                 [3.0, 6.0, 12.0])
        assert slope == pytest.approx(1.0)
        assert intercept == pytest.approx(math.log(3.0))
        assert residual == pytest.approx(0.0, abs=1e-12)

    def test_hand_computed_two_points(self):
        import math

        from repro.analysis.metrics import log_log_fit

        # Two points define the line exactly: slope = ln(8/2)/ln(4/1).
        slope, intercept, residual = log_log_fit([1.0, 4.0], [2.0, 8.0])
        assert slope == pytest.approx(math.log(4.0) / math.log(4.0))
        assert intercept == pytest.approx(math.log(2.0))
        assert residual == pytest.approx(0.0, abs=1e-12)

    def test_known_residual(self):
        import math

        from repro.analysis.metrics import log_log_fit

        # Symmetric deviation in log space: ln y = (0, ln 4, 0) at
        # ln x = (ln 1, ln 2, ln 4)... computed by hand: with
        # y = (1, 4, 1), x = (1, 2, 4) the best fit has slope 0 and
        # intercept mean(ln y) = ln(4)/3.
        slope, intercept, residual = log_log_fit([1.0, 2.0, 4.0],
                                                 [1.0, 4.0, 1.0])
        assert slope == pytest.approx(0.0, abs=1e-12)
        assert intercept == pytest.approx(math.log(4.0) / 3.0)
        expected_rms = math.sqrt(
            (2 * (math.log(4.0) / 3.0) ** 2
             + (2.0 * math.log(4.0) / 3.0) ** 2) / 3.0)
        assert residual == pytest.approx(expected_rms)

    def test_validation(self):
        from repro.analysis.metrics import log_log_fit

        with pytest.raises(ValueError):
            log_log_fit([1.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            log_log_fit([1.0, -1.0], [1.0, 2.0])
        slope, intercept, residual = log_log_fit([2.0, 2.0], [1.0, 3.0])
        import math

        assert math.isnan(slope) and math.isnan(residual)
