PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test bench-quick bench bench-record

test:
	$(PYTHON) -m pytest -x -q

# Pre-merge smoke check: kernel/substrate microbenchmarks, < 60 s.
bench-quick:
	$(PYTHON) -m repro bench-quick

# Full pytest-benchmark suite (tables T1-T12 + kernel microbenches).
bench:
	$(PYTHON) -m pytest benchmarks/bench_*.py -q --benchmark-only

# Append current substrate throughput to BENCH_kernel.json.
bench-record:
	$(PYTHON) benchmarks/record_baseline.py
