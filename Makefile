PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test verify lint list run serve smoke-t16 smoke-serve smoke-vec smoke-adversary bench-quick bench-quick-ci bench bench-record

test:
	$(PYTHON) -m pytest -x -q

# What CI runs (.github/workflows/ci.yml): the determinism/contract
# lint + tier-1 tests + the pre-merge smoke check in its non-strict
# form (the throughput comparison against BENCH_kernel.json is
# hardware-sensitive, so only the explicit `make bench-quick` gate
# hard-fails on it) + the cross-engine equivalence matrix + the
# adversary-layer smoke.
verify: lint test bench-quick-ci smoke-vec smoke-adversary

# Determinism & contract static analysis (src/repro/lint): AST rules
# (raw-rng, wall-clock, unordered-iter, stream-label) plus the
# import-and-introspect contract pass (spec codec, capability flags,
# equivalence coverage, registry coverage).  Exit 1 on any finding.
# ruff runs too when installed (CI pins it; local devs without ruff
# still get the repro pass).
lint:
	$(PYTHON) -m repro lint
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src; \
	else \
		echo "[lint] ruff not installed; skipping ruff check"; \
	fi

# List every registered experiment (the T1-T18 registry).
list:
	$(PYTHON) -m repro list

# Run one experiment: make run T=t05 [ARGS="--full --processes 4"]
# Fault-injection smoke: make run T=t16 (the loss x churn robustness
# grid; quick mode, < 5 s).
run:
	@test -n "$(T)" || { echo "usage: make run T=<id> [ARGS=...]"; exit 2; }
	$(PYTHON) -m repro run $(T) $(ARGS)

# The t16 smoke line by name, for muscle memory.
smoke-t16:
	$(PYTHON) -m repro run t16

# The simulation service: make serve [ARGS="--port 9000 --scenarios examples/scenarios"]
serve:
	$(PYTHON) -m repro serve $(ARGS)

# End-to-end serving-layer check (CI runs this): boot a real server,
# submit t01 quick over HTTP, assert the served bytes match direct
# run_experiment output, then resubmit and assert zero executed cells
# (everything from the content-addressed cache).
smoke-serve:
	$(PYTHON) benchmarks/smoke_serve.py

# Cross-engine equivalence matrix (CI runs this): every vectorized
# protocol cell on both engines — bit-equal where the math permits,
# documented tolerance otherwise.  About a second.
smoke-vec:
	$(PYTHON) benchmarks/smoke_vec.py

# Adversary-layer smoke (CI runs this): the quick T18 resilience sweep
# (static + adaptive adversaries, both engines, absorption-envelope
# column) plus the adversary cells of the equivalence matrix.  About a
# second.
smoke-adversary:
	$(PYTHON) benchmarks/smoke_adversary.py

# Pre-merge smoke check: kernel/substrate microbenchmarks, < 60 s.
# --check asserts event throughput within 10% of BENCH_kernel.json;
# use it on hardware comparable to the recorded baseline.  CI (and
# `make verify`) run the plain form, where a regression is a
# non-fatal warning.
bench-quick:
	$(PYTHON) -m repro bench-quick --check

bench-quick-ci:
	$(PYTHON) -m repro bench-quick

# Full pytest-benchmark suite (tables T1-T18 + kernel microbenches).
bench:
	$(PYTHON) -m pytest benchmarks/bench_*.py -q --benchmark-only

# Append current substrate throughput to BENCH_kernel.json.  Entries
# are stamped with cpu_count; recording on a 1-CPU container prints a
# non-fatal warning (pool speedups are meaningless there), and is
# refused outright (unless FORCE=1) when it would bury a multi-core
# baseline — prefer re-recording on multi-core hardware.
bench-record:
	$(PYTHON) benchmarks/record_baseline.py $(if $(FORCE),--force)
