"""Setuptools shim.

The environment has no network access and no ``wheel`` package, so PEP
517 editable installs (which build a wheel) fail.  Keeping a classic
``setup.py`` lets ``pip install -e . --no-build-isolation`` fall back to
the legacy ``setup.py develop`` path.  All metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
