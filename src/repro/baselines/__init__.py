"""Baseline algorithms the paper compares against or builds upon."""

from repro.baselines.gcs_single import (
    GcsLiarNode,
    GcsParams,
    GcsSingleNode,
    GcsSingleSystem,
)
from repro.baselines.lynch_welch import (
    LynchWelchSystem,
    build_clique_system,
    run_lynch_welch,
)
from repro.baselines.master_slave import (
    MasterSlaveNode,
    MasterSlaveSystem,
    bfs_tree,
)
from repro.baselines.srikanth_toueg import (
    SrikanthTouegNode,
    SrikanthTouegSystem,
    StParams,
    StStats,
)

__all__ = [
    "GcsLiarNode",
    "GcsParams",
    "GcsSingleNode",
    "GcsSingleSystem",
    "LynchWelchSystem",
    "build_clique_system",
    "run_lynch_welch",
    "MasterSlaveNode",
    "MasterSlaveSystem",
    "bfs_tree",
    "SrikanthTouegNode",
    "SrikanthTouegSystem",
    "StParams",
    "StStats",
]
