"""Baseline: the plain (amortized) Lynch–Welch algorithm on a clique.

Running the full system on a single-cluster graph *is* the Lynch–Welch
algorithm of Section 3 — there are no intercluster edges, the triggers
never fire, and ``gamma`` stays 0.  This module packages that
configuration for experiments comparing clique synchronization quality
(e.g. against Srikanth–Toueg, or across cluster sizes/fault counts).
"""

from __future__ import annotations

from repro.core.params import Parameters
from repro.core.system import FtgcsSystem, RunResult, SystemConfig
from repro.faults.strategies import ByzantineStrategy
from repro.topology.cluster_graph import ClusterGraph


def build_clique_system(params: Parameters, seed: int = 0,
                        byzantine: dict[int, ByzantineStrategy]
                        | None = None,
                        config: SystemConfig | None = None
                        ) -> FtgcsSystem:
    """A single fully connected cluster of ``params.cluster_size``
    nodes running Lynch–Welch."""
    if config is None:
        config = SystemConfig()
    if byzantine:
        config.byzantine = dict(byzantine)
    return FtgcsSystem.build(ClusterGraph.line(1), params, seed=seed,
                             config=config)


def run_lynch_welch(params: Parameters, rounds: int, seed: int = 0,
                    byzantine: dict[int, ByzantineStrategy]
                    | None = None,
                    config: SystemConfig | None = None) -> RunResult:
    """Run the clique for ``rounds`` rounds and return the result.

    The relevant output is ``max_intra_cluster_skew`` (here the global
    skew as well, since ``D = 1``), to be compared against
    ``params.intra_skew_bound()``.
    """
    system = build_clique_system(params, seed=seed, byzantine=byzantine,
                                 config=config)
    return system.run_rounds(rounds)
