"""Baseline: the plain (amortized) Lynch–Welch algorithm on a clique.

Running the full system on a single-cluster graph *is* the Lynch–Welch
algorithm of Section 3 — there are no intercluster edges, the triggers
never fire, and ``gamma`` stays 0.  This module packages that
configuration for experiments comparing clique synchronization quality
(e.g. against Srikanth–Toueg, or across cluster sizes/fault counts).
"""

from __future__ import annotations

from repro.core.params import Parameters
from repro.core.system import FtgcsSystem, RunResult, SystemConfig
from repro.errors import ConfigError
from repro.faults.strategies import ByzantineStrategy
from repro.topology.cluster_graph import ClusterGraph


class LynchWelchSystem(FtgcsSystem):
    """The amortized Lynch–Welch algorithm as a standalone system.

    Exactly the FTGCS machinery restricted to one fully connected
    cluster: there are no intercluster edges, the triggers never fire,
    ``gamma`` stays 0, and what remains *is* the Section 3 algorithm.
    Sharing the engine keeps the two byte-identical by construction —
    a single-cluster ``FtgcsSystem`` and a ``LynchWelchSystem`` with
    the same seed produce the same execution, event for event.
    """

    def __init__(self, params: Parameters,
                 config: SystemConfig | None = None,
                 seed: int = 0,
                 cluster_graph: ClusterGraph | None = None) -> None:
        if cluster_graph is None:
            cluster_graph = ClusterGraph.line(1)
        if cluster_graph.num_clusters != 1:
            raise ConfigError(
                f"Lynch–Welch is a single-cluster algorithm; got "
                f"{cluster_graph.num_clusters} clusters (use the "
                f"'ftgcs' protocol for multi-cluster graphs)")
        super().__init__(cluster_graph, params,
                         config or SystemConfig(), seed)

    @classmethod
    def build(cls, cluster_graph: ClusterGraph, params: Parameters,
              seed: int = 0,
              config: SystemConfig | None = None) -> "LynchWelchSystem":
        """Parent-compatible constructor (graph must be one cluster)."""
        return cls(params, config=config, seed=seed,
                   cluster_graph=cluster_graph)


def build_clique_system(params: Parameters, seed: int = 0,
                        byzantine: dict[int, ByzantineStrategy]
                        | None = None,
                        config: SystemConfig | None = None
                        ) -> LynchWelchSystem:
    """A single fully connected cluster of ``params.cluster_size``
    nodes running Lynch–Welch."""
    if config is None:
        config = SystemConfig()
    if byzantine:
        config.byzantine = dict(byzantine)
    return LynchWelchSystem(params, config=config, seed=seed)


def run_lynch_welch(params: Parameters, rounds: int, seed: int = 0,
                    byzantine: dict[int, ByzantineStrategy]
                    | None = None,
                    config: SystemConfig | None = None) -> RunResult:
    """Run the clique for ``rounds`` rounds and return the result.

    The relevant output is ``max_intra_cluster_skew`` (here the global
    skew as well, since ``D = 1``), to be compared against
    ``params.intra_skew_bound()``.
    """
    system = build_clique_system(params, seed=seed, byzantine=byzantine,
                                 config=config)
    return system.run_rounds(rounds)
