"""Baseline: master–slave tree synchronization over clusters.

The introduction's "simplistic approach": pick a root cluster, slave
every other cluster to its tree parent, and let each cluster stay
internally synchronized with Lynch–Welch.  Global skew then grows only
linearly in the tree depth — but the *local* skew admits no non-trivial
bound: a clock wave propagating down a line "compresses" the full
global skew onto a single edge (cf. Locher–Wattenhofer).  Experiment T4
measures exactly that failure against the FTGCS algorithm.

Implementation: each node runs the same
:class:`~repro.core.cluster_sync.ClusterSyncCore` engine inside its
cluster and one passive :class:`~repro.core.estimates.ClusterEstimator`
of its *parent* cluster only.  At each round start a non-root node
chases its parent: ``gamma = 1`` iff the parent estimate is more than
``chase_threshold`` ahead.  No attention is paid to children — that
obliviousness is precisely what breaks the local skew.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.analysis.sampling import SkewSampler
from repro.clocks.hardware import HardwareClock
from repro.clocks.logical import LogicalClock
from repro.clocks.rate_models import ConstantRate, FlipRate, RateModel
from repro.core.cluster_sync import ClusterSyncCore
from repro.core.estimates import ClusterEstimator
from repro.core.params import Parameters
from repro.core.rounds import RoundSchedule
from repro.errors import ConfigError
from repro.net.delays import UniformDelay
from repro.net.message import Pulse, PulseKind
from repro.net.network import Network
from repro.sim.kernel import Simulator
from repro.sim.rng import RngRegistry
from repro.topology.cluster_graph import ClusterGraph


def bfs_tree(graph: ClusterGraph, root: int = 0) -> dict[int, int]:
    """Parent map of a BFS tree (root maps to itself)."""
    parents = {root: root}
    queue = deque([root])
    while queue:
        v = queue.popleft()
        for w in graph.neighbors(v):
            if w not in parents:
                parents[w] = v
                queue.append(w)
    if len(parents) != graph.num_clusters:
        raise ConfigError("graph is disconnected; no spanning tree")
    return parents


class MasterSlaveNode:
    """One node of the tree-slaved construction."""

    def __init__(self, node_id: int, cluster_id: int, parent_cluster: int,
                 *, sim: Simulator, network: Network, params: Parameters,
                 schedule: RoundSchedule, hardware: HardwareClock,
                 cluster_members: tuple[int, ...],
                 parent_members: tuple[int, ...],
                 chase_threshold: float, rng,
                 base: float = 0.0, parent_base: float = 0.0,
                 jump: bool = False) -> None:
        self.node_id = node_id
        self.cluster_id = cluster_id
        self.parent_cluster = parent_cluster
        self._network = network
        self._params = params
        self._threshold = chase_threshold
        self._is_root = parent_cluster == cluster_id
        self._jump = jump
        d, u = params.d, params.u
        self_delay = lambda: d - u * rng.random()

        self.logical = LogicalClock(
            sim, hardware, phi=params.phi, mu=params.mu, delta=1.0,
            gamma=0, initial_value=base, name=f"ms-L[{node_id}]")
        peers = tuple(m for m in cluster_members if m != node_id)
        self.core = ClusterSyncCore(
            self.logical, schedule, base, peers, params.f,
            self_delay=self_delay, broadcast=self._broadcast,
            on_round_start=self._on_round_start,
            name=f"ms-core[{node_id}]")
        self.parent_estimator: ClusterEstimator | None = None
        if not self._is_root:
            self.parent_estimator = ClusterEstimator(
                sim, hardware, params, schedule, parent_cluster,
                parent_members, parent_base, parent_base,
                self_delay=self_delay, name=f"ms-est[{node_id}]")
        self._parent_member_set = frozenset(parent_members)
        self._cluster_member_set = frozenset(cluster_members)

    def start(self) -> None:
        if self.parent_estimator is not None:
            self.parent_estimator.start()
        self.core.start()

    def _broadcast(self) -> None:
        self._network.broadcast(self.node_id, Pulse(
            sender=self.node_id, kind=PulseKind.SYNC,
            debug_round=self.core.current_round))

    def on_message(self, message, receive_time: float) -> None:
        if not isinstance(message, Pulse):
            return
        if message.kind is not PulseKind.SYNC:
            return
        sender = message.sender
        if sender in self._cluster_member_set and sender != self.node_id:
            self.core.on_pulse(sender, receive_time)
        elif (self.parent_estimator is not None
              and sender in self._parent_member_set):
            self.parent_estimator.on_pulse(sender, receive_time)

    def _on_round_start(self, _round_index: int) -> None:
        if self._is_root or self.parent_estimator is None:
            return
        gap = self.parent_estimator.value() - self.logical.value()
        if self._jump:
            # Classic echo-style master-slave: snap to the parent.
            # This is the variant whose local skew the paper's
            # introduction criticizes — the snap propagates the full
            # global skew down the tree one edge at a time.
            if gap > self._threshold:
                self.logical.jump_to(self.parent_estimator.value())
            return
        gamma = 1 if gap > self._threshold else 0
        self.logical.set_gamma(gamma)
        self.parent_estimator.set_gamma(gamma)


class MasterSlaveSystem:
    """Tree-slaved synchronization on a cluster graph (fault-free).

    ``rate_model``: ``"uniform"``, ``"extremes"``, ``"flip"`` (the
    drift pump that exposes the local-skew failure) or a callable
    ``(node_id, rng, params) -> RateModel``.
    """

    def __init__(self, graph: ClusterGraph, params: Parameters,
                 seed: int = 0, root: int = 0,
                 chase_threshold: float | None = None,
                 rate_model="uniform",
                 flip_period_rounds: float = 8.0,
                 cluster_offsets: list[float] | None = None,
                 jump: bool = False,
                 record_series: bool = False,
                 track_edges: bool = False) -> None:
        self.graph = graph
        self.params = params
        self.parents = bfs_tree(graph, root)
        if cluster_offsets is None:
            cluster_offsets = [0.0] * graph.num_clusters
        if len(cluster_offsets) != graph.num_clusters:
            raise ConfigError(
                f"cluster_offsets has {len(cluster_offsets)} entries "
                f"for {graph.num_clusters} clusters")
        self._bases = list(cluster_offsets)
        if jump and params.cluster_size > 1:
            raise ConfigError(
                "jump-based master-slave is a single-node-per-cluster "
                "baseline (cluster_size must be 1, i.e. f = 0)")
        self.sim = Simulator()
        self.rng = RngRegistry(seed)
        self.schedule = RoundSchedule(params)
        if chase_threshold is None:
            # Estimate error is at most E (Cor. 3.5 applied to the
            # parent estimator); chase only genuine gaps.
            chase_threshold = 2.0 * params.cap_e
        self._rate_model = rate_model
        self._flip_period = flip_period_rounds * params.round_length

        aug = graph.augment(params.cluster_size)
        self.aug = aug
        self.network = Network(
            self.sim, d=params.d, u=params.u,
            default_delay_model=UniformDelay(
                params.d, params.u, self.rng.stream("delays")))
        for node_id in range(aug.num_nodes):
            self.network.add_node(node_id)
        # Physical links: intra-cluster cliques + child-parent bipartite.
        for a, b in aug.node_edges():
            ca, cb = aug.cluster_of(a), aug.cluster_of(b)
            if ca == cb or self.parents.get(ca) == cb \
                    or self.parents.get(cb) == ca:
                self.network.add_link(a, b)

        self.nodes: dict[int, MasterSlaveNode] = {}
        for node_id in range(aug.num_nodes):
            cluster = aug.cluster_of(node_id)
            parent = self.parents[cluster]
            rng = self.rng.stream(f"node/{node_id}")
            hardware = HardwareClock(
                self.sim, self._make_rate_model(node_id, cluster, rng),
                params.rho, name=f"ms-H[{node_id}]")
            node = MasterSlaveNode(
                node_id, cluster, parent, sim=self.sim,
                network=self.network, params=params,
                schedule=self.schedule, hardware=hardware,
                cluster_members=aug.members(cluster),
                parent_members=aug.members(parent),
                chase_threshold=chase_threshold, rng=rng,
                base=self._bases[cluster],
                parent_base=self._bases[parent], jump=jump)
            self.nodes[node_id] = node
            self.network.set_handler(node_id, node.on_message)

        self.sampler = SkewSampler(
            self.sim, self.schedule.round_length(1) / 4.0,
            self._collect_values, graph.edges,
            record_series=record_series, track_edges=track_edges)
        self._started = False

    def _make_rate_model(self, node_id: int, cluster: int,
                         rng) -> RateModel:
        spec = self._rate_model
        p = self.params
        if callable(spec):
            return spec(node_id, rng, p)
        if spec == "uniform":
            return ConstantRate(1.0 + p.rho * rng.random())
        if spec == "extremes":
            return ConstantRate(1.0 + p.rho * (node_id % 2))
        if spec == "flip":
            # The drift pump: whole clusters alternate fast/slow, with
            # the phase progressing along the cluster index so a skew
            # wave travels down the tree.
            quarter = self._flip_period / 4.0
            phase = quarter * (cluster % 4) + 1.0
            return FlipRate(1.0, 1.0 + p.rho, self._flip_period,
                            phase=phase, start_high=cluster % 2 == 0)
        raise ConfigError(f"unknown rate_model spec: {spec!r}")

    def _collect_values(self):
        values: dict[int, dict[int, float]] = {}
        for node in self.nodes.values():
            values.setdefault(node.cluster_id, {})[node.node_id] = \
                node.logical.value()
        return values

    def start(self) -> None:
        """Arm every node and the sampler (idempotent)."""
        if self._started:
            return
        self._started = True
        for node in self.nodes.values():
            node.start()
        self.sampler.start()

    def run_horizon(self, rounds: int) -> float:
        """Absolute kernel time by which ``rounds`` rounds complete."""
        return self.schedule.round_start(rounds + 1) + 1.0

    def run_rounds(self, rounds: int):
        """Run ``rounds`` rounds; returns the sampler maxima."""
        self.start()
        self.sim.run(until=self.run_horizon(rounds))
        self.sampler.sample_now()
        return self.sampler.maxima
