"""Baseline: the fault-INtolerant GCS algorithm, one node per vertex.

This is the Lenzen–Locher–Wattenhofer gradient algorithm the paper
builds on, run directly on ``G`` without clusters: nodes periodically
broadcast their logical clock *value*, keep per-neighbor estimates, and
set their mode from the same FT/ST triggers (re-using
:mod:`repro.core.triggers`).  In fault-free networks it achieves the
``O(kappa log D)`` local skew; its purpose here is the motivating
negative result of the paper's introduction:

    "The GCS algorithm utterly fails in face of non-benign faults."

:class:`GcsLiarNode` implements the attack: a Byzantine node feeds each
neighbor a *fabricated* clock value anchored to that neighbor's own
clock — one neighbor sees a phantom that is always ``bias + ramp * t``
ahead, the other a phantom equally far behind.  The ahead-phantom drags
its victim (and, transitively, the victim's side of the network) fast
through ever-higher trigger levels, while the behind-phantom pins the
other side slow; the skew across the *correct* edges in between grows
linearly with time, unboundedly.  Experiment T3 contrasts this with the
full FTGCS construction under equivalent attacks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.clocks.hardware import HardwareClock
from repro.clocks.logical import LogicalClock
from repro.clocks.rate_models import ConstantRate
from repro.core import triggers
from repro.errors import ConfigError
from repro.net.delays import UniformDelay
from repro.net.message import ValueMessage
from repro.net.network import Network
from repro.sim.kernel import Simulator
from repro.sim.rng import RngRegistry
from repro.topology.cluster_graph import ClusterGraph


@dataclass
class GcsParams:
    """Parameters of the single-node GCS baseline.

    ``kappa`` must dominate the estimation error ``U + (mu + 2 rho) *
    period``; the :meth:`default` constructor picks it that way.
    """

    rho: float
    d: float
    u: float
    mu: float
    period: float
    kappa: float
    slack: float

    @classmethod
    def default(cls, rho: float = 1e-4, d: float = 1.0, u: float = 0.1,
                mu: float | None = None,
                period: float | None = None) -> "GcsParams":
        if mu is None:
            mu = 100.0 * rho
        if period is None:
            period = 10.0 * d
        error = u + (mu + 2.0 * rho) * period + rho * d
        kappa = 8.0 * error
        return cls(rho=rho, d=d, u=u, mu=mu, period=period,
                   kappa=kappa, slack=kappa / 3.0)


@dataclass
class GcsNodeStats:
    fast_periods: int = 0
    slow_periods: int = 0


class GcsSingleNode:
    """One correct node of the plain GCS algorithm."""

    def __init__(self, node_id: int, sim: Simulator, network: Network,
                 params: GcsParams, hardware: HardwareClock) -> None:
        self.node_id = node_id
        self._sim = sim
        self._network = network
        self._params = params
        self._hardware = hardware
        self.logical = LogicalClock(
            sim, hardware, phi=0.0, mu=params.mu, delta=0.0, gamma=0,
            name=f"gcs-L[{node_id}]")
        #: neighbor -> (anchor_value, hardware_at_receipt)
        self._estimates: dict[int, tuple[float, float]] = {}
        self._period_index = 1
        self._crashed = False
        #: Whether the periodic alarm chain is live (it dies when an
        #: alarm fires on a crashed node, and rejoin re-arms it).
        self._armed = False
        self.stats = GcsNodeStats()

    def start(self) -> None:
        self._arm()

    @property
    def crashed(self) -> bool:
        return self._crashed

    def crash(self) -> None:
        """Go dark: drop incoming messages and let the period alarm
        chain die at its next firing."""
        self._crashed = True

    def rejoin(self) -> None:
        """Come back *with amnesia*: neighbor estimates and mode are
        gone; the period cadence re-anchors to the (coasted) logical
        clock and the next broadcast re-seeds the neighbors."""
        if not self._crashed:
            return
        self._crashed = False
        self._estimates.clear()
        self.logical.set_gamma(0)
        if not self._armed:
            # Re-enter the cadence at the next period boundary the
            # coasted clock has not yet crossed.
            self._period_index = int(
                self.logical.value() / self._params.period) + 1
            self._arm()

    def _arm(self) -> None:
        self._armed = True
        target = self._period_index * self._params.period
        self.logical.at_value(target, self._on_period, self._period_index)

    def estimate(self, neighbor: int) -> float | None:
        """Current estimate of a neighbor's clock (midpoint-delay
        compensated, extrapolated at own hardware rate)."""
        anchored = self._estimates.get(neighbor)
        if anchored is None:
            return None
        value, hw_at_receipt = anchored
        return value + (self._hardware.value() - hw_at_receipt)

    def on_message(self, message, _receive_time: float) -> None:
        if self._crashed:
            return
        if isinstance(message, ValueMessage):
            compensated = message.value + self._params.d - self._params.u / 2
            self._estimates[message.sender] = (compensated,
                                               self._hardware.value())

    def _on_period(self, index: int) -> None:
        if self._crashed:
            self._armed = False
            return
        self._network.broadcast(self.node_id, ValueMessage(
            sender=self.node_id, value=self.logical.value()))
        estimates = {}
        for neighbor in self._network.neighbors(self.node_id):
            est = self.estimate(neighbor)
            if est is not None:
                estimates[neighbor] = est
        decision = triggers.evaluate(
            self.logical.value(), estimates,
            self._params.kappa, self._params.slack)
        gamma = 1 if decision.fast else 0
        self.logical.set_gamma(gamma)
        if gamma:
            self.stats.fast_periods += 1
        else:
            self.stats.slow_periods += 1
        self._period_index = index + 1
        self._arm()


class GcsLiarNode:
    """The Byzantine value-fabricator (see module docstring).

    ``directions`` maps each neighbor to ``+1`` (feed it a phantom
    *ahead*: drag it fast) or ``-1`` (phantom *behind*: pin it slow).
    The phantom is anchored to the victim's own last reported value, so
    it remains maximally credible forever.
    """

    def __init__(self, node_id: int, sim: Simulator, network: Network,
                 params: GcsParams, directions: dict[int, int],
                 bias: float | None = None,
                 ramp: float | None = None) -> None:
        self.node_id = node_id
        self._sim = sim
        self._network = network
        self._params = params
        self._directions = dict(directions)
        self._bias = bias if bias is not None else 4.0 * params.kappa
        # Default ramp: half the speed advantage fast mode grants, so
        # victims can physically follow the phantom forever.
        self._ramp = ramp if ramp is not None else params.mu / 2.0
        self._last_values: dict[int, float] = {}

    def start(self) -> None:
        self._arm()

    def _arm(self) -> None:
        self._sim.call_in(self._params.period, self._tick)

    def on_message(self, message, _receive_time: float) -> None:
        if isinstance(message, ValueMessage):
            self._last_values[message.sender] = message.value

    def _tick(self) -> None:
        now = self._sim.now
        for neighbor, direction in self._directions.items():
            anchor = self._last_values.get(neighbor, now)
            phantom = anchor + direction * (self._bias + self._ramp * now)
            self._network.send(self.node_id, neighbor, ValueMessage(
                sender=self.node_id, value=phantom))
        self._arm()


class GcsSingleSystem:
    """Plain GCS on a cluster graph (one node per vertex)."""

    def __init__(self, graph: ClusterGraph, params: GcsParams,
                 seed: int = 0,
                 liars: dict[int, dict[int, int]] | None = None,
                 rate_spread: bool = True,
                 batched_delivery: bool = True,
                 liar_bias: float | None = None,
                 liar_ramp: float | None = None) -> None:
        """``liars`` maps a node id to its per-neighbor phantom
        directions (see :class:`GcsLiarNode`); ``liar_bias``/
        ``liar_ramp`` override every liar's phantom shape (``None``
        keeps the :class:`GcsLiarNode` defaults).  ``batched_delivery``
        selects the network's delivery path (measurements are
        bit-identical either way; ``False`` is the legacy per-message
        event stream for A/B benchmarks)."""
        self.graph = graph
        self.params = params
        self.sim = Simulator()
        self.rng = RngRegistry(seed)
        self.network = Network(
            self.sim, d=params.d, u=params.u,
            default_delay_model=UniformDelay(
                params.d, params.u, self.rng.stream("delays")),
            batched=batched_delivery)
        n = graph.num_clusters
        for node_id in range(n):
            self.network.add_node(node_id)
        for a, b in graph.edges:
            self.network.add_link(a, b)

        liars = liars or {}
        self.faulty_ids = frozenset(liars)
        self.nodes: dict[int, GcsSingleNode] = {}
        self.liars: dict[int, GcsLiarNode] = {}
        self._started = False
        self.samples: list[tuple[float, float, float]] = []
        self._next_sample: float | None = None
        for node_id in range(n):
            if node_id in liars:
                directions = liars[node_id]
                for neighbor in directions:
                    if not self.network.has_link(node_id, neighbor):
                        raise ConfigError(
                            f"liar {node_id} given non-neighbor "
                            f"{neighbor}")
                liar = GcsLiarNode(node_id, self.sim, self.network,
                                   params, directions,
                                   bias=liar_bias, ramp=liar_ramp)
                self.liars[node_id] = liar
                self.network.set_handler(node_id, liar.on_message)
                continue
            if rate_spread:
                rate = 1.0 + params.rho * (node_id % 2)
            else:
                rate = 1.0
            hardware = HardwareClock(self.sim, ConstantRate(rate),
                                     rho=params.rho)
            node = GcsSingleNode(node_id, self.sim, self.network,
                                 params, hardware)
            self.nodes[node_id] = node
            self.network.set_handler(node_id, node.on_message)

    def start(self) -> None:
        """Arm every node and liar (idempotent)."""
        if self._started:
            return
        self._started = True
        for node in self.nodes.values():
            node.start()
        for liar in self.liars.values():
            liar.start()

    def correct_edges(self) -> list[tuple[int, int]]:
        """Edges between correct nodes that currently carry messages.

        On static topologies every link is active, so this is exactly
        the historical correct-edge set; under a topology schedule,
        down edges are excluded from the local-skew measurement (the
        dynamic-networks convention: gradients are only promised
        across present edges).
        """
        return [(a, b) for a, b in self.graph.edges
                if a not in self.faulty_ids and b not in self.faulty_ids
                and self.network.link_active(a, b)]

    def crash_node(self, node_id: int) -> None:
        """Crash one correct node (drops messages, kills its cadence).

        Link deactivation is the caller's job — the protocol adapter
        owns link state so node and link views cannot disagree.  Liar
        ids are rejected: the fault model here is churn of *correct*
        nodes.
        """
        if node_id in self.faulty_ids:
            raise ConfigError(f"cannot crash Byzantine node {node_id}")
        self.nodes[node_id].crash()

    def rejoin_node(self, node_id: int) -> None:
        """Rejoin a crashed node with protocol-state amnesia."""
        if node_id in self.faulty_ids:
            raise ConfigError(f"cannot rejoin Byzantine node {node_id}")
        self.nodes[node_id].rejoin()

    def max_local_skew(self) -> float:
        """Max |L_a - L_b| over edges between correct nodes, now."""
        worst = 0.0
        for a, b in self.correct_edges():
            if self.nodes[a].crashed or self.nodes[b].crashed:
                continue
            skew = abs(self.nodes[a].logical.value()
                       - self.nodes[b].logical.value())
            worst = max(worst, skew)
        return worst

    def global_skew(self) -> float:
        values = [n.logical.value() for n in self.nodes.values()
                  if not n.crashed]
        return max(values) - min(values) if values else 0.0

    def run(self, until: float, sample_interval: float | None = None
            ) -> list[tuple[float, float, float]]:
        """Run to ``until``; returns ``(t, local_skew, global_skew)``
        samples.

        Resumable: a second call with a later ``until`` continues the
        sampling cadence from where the first stopped and returns the
        cumulative sample list.
        """
        self.start()
        interval = sample_interval or self.params.period
        samples = self.samples
        t = interval if self._next_sample is None else self._next_sample
        while t <= until:
            self.sim.run(until=t)
            samples.append((t, self.max_local_skew(), self.global_skew()))
            t += interval
        self._next_sample = t
        return samples
