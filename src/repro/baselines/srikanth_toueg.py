"""Baseline: Srikanth–Toueg propose-and-pull clock synchronization.

Appendix A describes the classic alternative to Lynch–Welch on a
clique: nodes *propose* to resynchronize when a local timeout expires;
``f + 1`` propose messages force even "late proposers" to join (at
least one must be correct); ``n - f`` propose messages let a node
*accept* and resynchronize its clock to the round boundary.  The
achieved skew is ``O(d)`` — asymptotically optimal *without* a lower
bound on message delay, but worse than Lynch–Welch's ``O(U +
(theta-1)d)`` when delays are known to be at least ``d - U``.

The comparison between the two clique algorithms is experiment T11.

Implementation notes
--------------------
* Logical clocks here are ``L_v(t) = H_v(t) + offset_v`` with an offset
  adjusted (both directions) at each accept — the classic formulation
  with clock jumps.  Timeouts are alarms on the hardware clock at
  ``H = target - offset``.
* PROPOSE pulses are contentless; receivers attribute the i-th pulse
  from a sender to round i, as everywhere else in this library.
* On accept for round ``r`` the clock is set to ``r * period + d``:
  the proposers sent at logical ``r * period`` and at least ``d - U``
  (at most ``d``) has passed, so the skew between acceptors is
  ``O(d)``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.clocks.hardware import HardwareClock
from repro.clocks.rate_models import ConstantRate
from repro.errors import ConfigError
from repro.net.message import Pulse, PulseKind
from repro.net.network import Network
from repro.net.delays import UniformDelay
from repro.sim.kernel import Simulator
from repro.sim.rng import RngRegistry


@dataclass
class StParams:
    """Parameters of the Srikanth–Toueg baseline."""

    n: int
    f: int
    rho: float
    d: float
    u: float
    period: float

    def __post_init__(self) -> None:
        if self.n < 3 * self.f + 1:
            raise ConfigError(
                f"Srikanth–Toueg needs n >= 3f+1: n={self.n}, f={self.f}")
        if self.period <= 2 * self.d:
            raise ConfigError(
                f"period {self.period!r} too short for d={self.d!r}")


@dataclass
class StStats:
    proposals_sent: int = 0
    accepts: int = 0
    relay_proposals: int = 0
    history: list[tuple[int, float]] = field(default_factory=list)


class SrikanthTouegNode:
    """One correct node of the propose-and-pull protocol."""

    def __init__(self, node_id: int, sim: Simulator, network: Network,
                 params: StParams, hardware: HardwareClock) -> None:
        self.node_id = node_id
        self._sim = sim
        self._network = network
        self._params = params
        self._hardware = hardware
        self._offset = 0.0
        self._round = 1
        self._proposed: set[int] = set()
        self._accepted: set[int] = set()
        self._propose_counts: dict[int, int] = {}
        self._proposers: dict[int, set[int]] = {}
        self._alarm = None
        self.stats = StStats()

    # -- logical clock --------------------------------------------------

    def logical_value(self, t: float | None = None) -> float:
        return self._hardware.value(t) + self._offset

    def _set_logical(self, value: float) -> None:
        self._offset = value - self._hardware.value()
        self._arm_timeout()

    # -- protocol ---------------------------------------------------------

    def start(self) -> None:
        self._arm_timeout()

    def _arm_timeout(self) -> None:
        if self._alarm is not None:
            self._hardware.cancel_alarm(self._alarm)
            self._alarm = None
        target_logical = self._round * self._params.period
        target_hw = target_logical - self._offset
        if target_hw <= self._hardware.value():
            # Already past the boundary (can happen right after an
            # accept): propose immediately.
            self._on_timeout(self._round)
            return
        self._alarm = self._hardware.at_value(
            target_hw, self._on_timeout, self._round)

    def _on_timeout(self, round_index: int) -> None:
        if round_index != self._round:
            return  # stale alarm after a resync
        self._propose(round_index)

    def _propose(self, round_index: int) -> None:
        if round_index in self._proposed:
            return
        self._proposed.add(round_index)
        self.stats.proposals_sent += 1
        self._network.broadcast(self.node_id, Pulse(
            sender=self.node_id, kind=PulseKind.PROPOSE,
            debug_round=round_index))
        # A node's own proposal counts toward its quorums (it does not
        # receive its own broadcast over the network).
        self._proposers.setdefault(round_index, set()).add(self.node_id)
        self._maybe_advance(round_index)

    def on_message(self, message, _receive_time: float) -> None:
        if not isinstance(message, Pulse):
            return
        if message.kind is not PulseKind.PROPOSE:
            return
        sender = message.sender
        count = self._propose_counts.get(sender, 0) + 1
        self._propose_counts[sender] = count
        proposers = self._proposers.setdefault(count, set())
        proposers.add(sender)
        self._maybe_advance(count)

    def _maybe_advance(self, round_index: int) -> None:
        if round_index < self._round or round_index in self._accepted:
            return
        proposers = self._proposers.get(round_index, ())
        p = self._params
        # Pull rule: f+1 proposals force a (relayed) proposal.
        if (len(proposers) >= p.f + 1
                and round_index not in self._proposed):
            self.stats.relay_proposals += 1
            self._propose(round_index)
        # Accept rule: n-f proposals resynchronize the clock.
        if len(proposers) >= p.n - p.f:
            self._accept(round_index)

    def _accept(self, round_index: int) -> None:
        self._accepted.add(round_index)
        self.stats.accepts += 1
        self.stats.history.append((round_index, self._sim.now))
        self._round = round_index + 1
        self._set_logical(round_index * self._params.period
                          + self._params.d)


class SrikanthTouegSystem:
    """A clique running Srikanth–Toueg, with optional silent faults."""

    def __init__(self, params: StParams, seed: int = 0,
                 silent_faults: int = 0,
                 rate_spread: bool = True) -> None:
        if silent_faults > params.f:
            raise ConfigError(
                f"{silent_faults} silent faults exceed f={params.f}")
        self.params = params
        self.sim = Simulator()
        self.rng = RngRegistry(seed)
        self.network = Network(
            self.sim, d=params.d, u=params.u,
            default_delay_model=UniformDelay(
                params.d, params.u, self.rng.stream("delays")))
        self.nodes: dict[int, SrikanthTouegNode] = {}
        self.faulty_ids = frozenset(range(silent_faults))
        self._started = False
        self._next_sample: float | None = None
        self._max_skew = 0.0
        for node_id in range(params.n):
            self.network.add_node(node_id)
        for a in range(params.n):
            for b in range(a + 1, params.n):
                self.network.add_link(a, b)
        for node_id in range(params.n):
            if node_id in self.faulty_ids:
                self.network.set_handler(node_id, lambda m, t: None)
                continue
            if rate_spread:
                # Deterministic worst-ish spread across [1, 1+rho].
                frac = (node_id / max(params.n - 1, 1))
                rate = 1.0 + params.rho * frac
            else:
                rate = 1.0
            hardware = HardwareClock(
                self.sim, ConstantRate(rate), rho=params.rho,
                name=f"H[{node_id}]")
            node = SrikanthTouegNode(node_id, self.sim, self.network,
                                     params, hardware)
            self.nodes[node_id] = node
            self.network.set_handler(node_id, node.on_message)

    def correct_nodes(self) -> list[SrikanthTouegNode]:
        return [n for i, n in self.nodes.items()
                if i not in self.faulty_ids]

    def start(self) -> None:
        """Arm every node's first timeout (idempotent)."""
        if self._started:
            return
        self._started = True
        for node in self.nodes.values():
            node.start()

    def run_until(self, horizon: float,
                  sample_interval: float | None = None) -> float:
        """Run to absolute time ``horizon``; return the max observed
        skew, sampled at ``sample_interval`` (default ``period/8``).

        Resumable: a later call continues the sampling cadence and
        returns the running maximum over both runs.
        """
        self.start()
        interval = sample_interval or self.params.period / 8.0
        t = interval if self._next_sample is None else self._next_sample
        max_skew = self._max_skew
        while t <= horizon:
            self.sim.run(until=t)
            values = [n.logical_value() for n in self.correct_nodes()]
            max_skew = max(max_skew, max(values) - min(values))
            t += interval
        self._next_sample = t
        self._max_skew = max_skew
        return max_skew

    def run(self, rounds: int, sample_interval: float | None = None
            ) -> float:
        """Run ``rounds`` resync periods; return the max observed skew.

        Skew is sampled at ``sample_interval`` (default: ``period/8``).
        """
        return self.run_until((rounds + 1) * self.params.period,
                              sample_interval)
