"""Content-addressed, on-disk cache of executed sweep cells.

Every cell of every sweep is a pure function of its (seed-resolved)
:class:`~repro.harness.sweep.ScenarioSpec` — the whole repository is
built around that determinism.  The :class:`ResultStore` turns it into
a serving-layer asset: the canonical BLAKE2b hash of the spec
(:func:`~repro.harness.sweep.spec_hash`) addresses a JSON file holding
the encoded :class:`~repro.harness.sweep.SweepCellResult`, so
resubmitting an identical cell — same grid, same seed, same params —
is a disk read that never touches the simulation kernel, and the
decoded result is *bit-identical* to what the kernel would have
produced (see :mod:`repro.harness.serialize`).

Robustness contract: a cache entry is advisory, never authoritative.
Anything wrong with a file — truncated write, corrupted JSON, an
unknown encoding tag from a different code revision, a hash mismatch —
is treated as a **miss**: the cell is recomputed and the entry
overwritten, with one warning logged, never an exception.  Writes are
atomic (temp file + ``os.replace``) so a crashed writer can at worst
leave a stale temp file, not a half-entry under the final name.
"""

from __future__ import annotations

import json
import logging
import os
import tempfile
from pathlib import Path

from repro.harness import serialize
from repro.harness.sweep import ScenarioSpec, SweepCellResult, spec_hash

logger = logging.getLogger(__name__)

#: Environment override for every default cache location (CLI, serve).
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: On-disk entry schema version; bump on incompatible layout changes
#: (old entries then read as misses and are overwritten on recompute).
STORE_FORMAT = 1


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` or ``~/.cache/repro/results``."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env).expanduser()
    return Path("~/.cache/repro/results").expanduser()


class ResultStore:
    """Spec-hash → persisted :class:`SweepCellResult`, as JSON files.

    Entries live two directory levels deep (``ab/ab12….json``, sharded
    by hash prefix) under ``root``; the directory is created lazily on
    the first write.  Instances also keep session counters (``hits``,
    ``misses``, ``corrupt``) that the service surfaces in job progress
    and ``GET /cache/stats``.
    """

    def __init__(self, root: str | Path | None = None) -> None:
        self.root = Path(root).expanduser() if root is not None \
            else default_cache_dir()
        self.hits = 0
        self.misses = 0
        self.corrupt = 0

    # ------------------------------------------------------------------
    # Addressing
    # ------------------------------------------------------------------

    def path_for(self, key: str) -> Path:
        """The entry file for one spec hash."""
        return self.root / key[:2] / f"{key}.json"

    # ------------------------------------------------------------------
    # Read / write
    # ------------------------------------------------------------------

    def get(self, spec: ScenarioSpec) -> SweepCellResult | None:
        """The cached result for ``spec``, or ``None`` on a miss.

        ``spec.seed`` must be resolved (``spec_hash`` enforces it).
        Every defect in the entry file demotes it to a miss with a
        logged warning — the caller recomputes and :meth:`put`
        overwrites the bad entry.
        """
        key = spec_hash(spec)
        path = self.path_for(key)
        try:
            raw = path.read_text(encoding="utf-8")
        except FileNotFoundError:
            self.misses += 1
            return None
        except OSError as error:
            logger.warning("cache entry %s unreadable (%s); treating "
                           "as a miss", path, error)
            self.corrupt += 1
            self.misses += 1
            return None
        try:
            entry = json.loads(raw)
            if entry.get("spec_hash") != key:
                raise ValueError(
                    f"entry names spec_hash {entry.get('spec_hash')!r}")
            cell = serialize.decode(entry["cell"])
            if not isinstance(cell, SweepCellResult):
                raise ValueError(
                    f"entry decodes to {type(cell).__name__}")
        except Exception as error:  # corrupt entry: miss, never a crash
            logger.warning("corrupt cache entry %s (%s: %s); treating "
                           "as a miss, will overwrite on recompute",
                           path, type(error).__name__, error)
            self.corrupt += 1
            self.misses += 1
            return None
        self.hits += 1
        return cell

    def put(self, spec: ScenarioSpec, cell: SweepCellResult) -> Path:
        """Persist one executed cell under its spec hash (atomic)."""
        key = spec_hash(spec)
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {
            "format": STORE_FORMAT,
            "spec_hash": key,
            "spec": spec.to_dict(),
            "cell": serialize.encode(cell),
        }
        payload = json.dumps(entry, allow_nan=False)
        fd, tmp_name = tempfile.mkstemp(
            prefix=f".{key[:8]}-", suffix=".tmp", dir=path.parent)
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(payload)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return path

    # ------------------------------------------------------------------
    # Maintenance (the `repro cache` mini-CLI)
    # ------------------------------------------------------------------

    def _entries(self) -> list[Path]:
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob("??/*.json"))

    def stats(self) -> dict:
        """Entry count and total bytes on disk, plus session counters."""
        entries = self._entries()
        return {
            "root": str(self.root),
            "entries": len(entries),
            "bytes": sum(path.stat().st_size for path in entries),
            "session": {"hits": self.hits, "misses": self.misses,
                        "corrupt": self.corrupt},
        }

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for path in self._entries():
            try:
                path.unlink()
                removed += 1
            except OSError as error:  # pragma: no cover - racing clear
                logger.warning("could not remove %s: %s", path, error)
        return removed


__all__ = ["CACHE_DIR_ENV", "ResultStore", "default_cache_dir"]
