"""The scenario library: named, file-backed job definitions.

A library is a directory of ``.yaml``/``.yml``/``.json`` files, one
scenario per file, addressed by filename stem (``t01_quick.yaml`` →
``t01_quick``).  ``GET /scenarios`` lists them; ``POST /jobs`` with
``{"scenario": "<name>"}`` submits one without the client having to
know any spec detail — the curated-workload entry point for the
serving layer.

Two file shapes:

**Experiment reference** — point at a registry experiment::

    title: T1 quick, published seed
    experiment: t01
    quick: true        # optional (default true)
    seed: 3            # optional (default: the registered seed)

**Ad-hoc grid** — explicit cells, the
:meth:`~repro.harness.sweep.ScenarioSpec.from_dict` plain-data form::

    title: FTGCS line, three diameters
    base_seed: 7       # optional (default 0)
    cells:
      - graph: line
        graph_args: [3]
        rounds: 12
        params: {preset: practical, rho: 1.0e-4, d: 1.0, u: 0.1, f: 1}
        key: [D, 2]

``params`` in a cell may be the full encoded ``Parameters`` dataclass
(as produced by ``to_dict``) *or* the human-writable preset shorthand
shown above: ``preset`` names a :class:`~repro.core.params.Parameters`
classmethod constructor (``practical``, ``paper``, ``custom``) and the
remaining keys are its arguments.  Loading validates every cell
eagerly — a typo fails at ``GET /scenarios``/submit time with a
:class:`~repro.errors.ConfigError` naming the file, never inside a
worker.

YAML needs PyYAML; without it, ``.json`` files still load and ``.yaml``
files raise a clear error naming the missing dependency.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.core.params import Parameters
from repro.errors import ConfigError
from repro.harness.sweep import ScenarioSpec

try:
    import yaml
except ImportError:  # pragma: no cover - PyYAML is in the image
    yaml = None

#: Recognized library file suffixes, in listing order.
SUFFIXES = (".yaml", ".yml", ".json")

#: ``params: {preset: ...}`` shorthand → Parameters constructor.
PARAM_PRESETS = ("practical", "paper", "custom")


@dataclass(frozen=True)
class LibraryScenario:
    """One loaded library entry, ready for the job manager."""

    name: str
    title: str
    path: str
    #: Registry experiment reference (exclusive with ``specs``).
    experiment: str | None = None
    quick: bool = True
    seed: int | None = None
    #: Ad-hoc grid (exclusive with ``experiment``).
    specs: tuple[ScenarioSpec, ...] = ()
    base_seed: int = 0

    def describe(self) -> dict:
        """The ``GET /scenarios`` listing entry."""
        entry = {"name": self.name, "title": self.title}
        if self.experiment is not None:
            entry["experiment"] = self.experiment
            entry["quick"] = self.quick
            if self.seed is not None:
                entry["seed"] = self.seed
        else:
            entry["cells"] = len(self.specs)
            entry["base_seed"] = self.base_seed
        return entry


def _resolve_params_shorthand(cell: dict, path: Path) -> dict:
    """Expand ``params: {preset: ..., ...}`` into encoded Parameters."""
    params = cell.get("params")
    if not (isinstance(params, dict) and "preset" in params):
        return cell
    kwargs = dict(params)
    preset = kwargs.pop("preset")
    if preset not in PARAM_PRESETS:
        raise ConfigError(
            f"{path.name}: unknown params preset {preset!r}; known: "
            f"{list(PARAM_PRESETS)}")
    try:
        built = getattr(Parameters, preset)(**kwargs)
    except TypeError as error:
        raise ConfigError(
            f"{path.name}: bad params arguments for preset "
            f"{preset!r}: {error}") from None
    cell = dict(cell)
    # Route through the spec codec so from_dict sees its native form.
    cell["params"] = ScenarioSpec(params=built).to_dict()["params"]
    return cell


def _load_file(path: Path) -> dict:
    text = path.read_text(encoding="utf-8")
    if path.suffix == ".json":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise ConfigError(f"{path.name}: invalid JSON: {error}")
    else:
        if yaml is None:
            raise ConfigError(
                f"{path.name}: loading YAML scenarios needs PyYAML "
                f"(install pyyaml, or use .json files)")
        try:
            data = yaml.safe_load(text)
        except yaml.YAMLError as error:
            raise ConfigError(f"{path.name}: invalid YAML: {error}")
    if not isinstance(data, dict):
        raise ConfigError(
            f"{path.name}: a scenario file must hold one mapping, "
            f"got {type(data).__name__}")
    return data


def _parse(name: str, path: Path, data: dict) -> LibraryScenario:
    title = data.get("title", name)
    has_experiment = "experiment" in data
    has_cells = "cells" in data
    if has_experiment == has_cells:
        raise ConfigError(
            f"{path.name}: give exactly one of 'experiment' or "
            f"'cells'")
    if has_experiment:
        extra = sorted(set(data) - {"title", "experiment", "quick",
                                    "seed"})
        if extra:
            raise ConfigError(
                f"{path.name}: unknown key(s) {extra} for an "
                f"experiment scenario")
        return LibraryScenario(
            name=name, title=str(title), path=str(path),
            experiment=str(data["experiment"]),
            quick=bool(data.get("quick", True)),
            seed=data.get("seed"))
    extra = sorted(set(data) - {"title", "cells", "base_seed"})
    if extra:
        raise ConfigError(
            f"{path.name}: unknown key(s) {extra} for a grid scenario")
    cells = data["cells"]
    if not isinstance(cells, list) or not cells:
        raise ConfigError(
            f"{path.name}: 'cells' must be a non-empty list")
    specs = []
    for index, cell in enumerate(cells):
        if not isinstance(cell, dict):
            raise ConfigError(
                f"{path.name}: cell {index} must be a mapping")
        try:
            specs.append(ScenarioSpec.from_dict(
                _resolve_params_shorthand(cell, path)))
        except ConfigError as error:
            raise ConfigError(
                f"{path.name}: cell {index}: {error}") from None
    return LibraryScenario(
        name=name, title=str(title), path=str(path),
        specs=tuple(specs),
        base_seed=int(data.get("base_seed", 0)))


class ScenarioLibrary:
    """Name-addressable scenarios from one directory.

    Files are re-read on every access, so editing the directory while
    the server runs is immediately visible — the library is small and
    the parse cost is trivial next to any simulation.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root).expanduser()

    def _files(self) -> dict[str, Path]:
        if not self.root.is_dir():
            return {}
        files: dict[str, Path] = {}
        for suffix in SUFFIXES:
            for path in sorted(self.root.glob(f"*{suffix}")):
                files.setdefault(path.stem, path)
        return files

    def names(self) -> list[str]:
        return sorted(self._files())

    def load(self, name: str) -> LibraryScenario:
        files = self._files()
        path = files.get(name)
        if path is None:
            raise ConfigError(
                f"unknown scenario {name!r}; known: {sorted(files)}")
        return _parse(name, path, _load_file(path))

    def describe_all(self) -> list[dict]:
        """Every scenario's listing entry (used by ``GET /scenarios``);
        a broken file becomes an ``error`` entry instead of sinking
        the whole listing."""
        entries = []
        for name in self.names():
            try:
                entries.append(self.load(name).describe())
            except ConfigError as error:
                entries.append({"name": name, "error": str(error)})
        return entries


__all__ = ["LibraryScenario", "PARAM_PRESETS", "ScenarioLibrary"]
