"""The service's OpenAPI 3 description, served at ``GET /openapi.json``.

Hand-maintained rather than generated: the surface is ten routes and
the schemas matter more than automation — the document spells out the
job-submission body (exactly one of ``experiment`` / ``scenario`` /
``cells``), the job-snapshot state machine, and the result formats.
``tests/test_service.py`` cross-checks it against ``app.url_map`` so a
route added without a matching path entry fails CI.
"""

from __future__ import annotations

OPENAPI_VERSION = "3.0.3"

_JOB_SNAPSHOT = {
    "type": "object",
    "description": "One job's observable state; poll GET /jobs/{id}.",
    "properties": {
        "id": {"type": "string"},
        "label": {"type": "string", "nullable": True},
        "state": {
            "type": "string",
            "enum": ["queued", "running", "done", "failed",
                     "cancelled"],
        },
        "submitted_at": {"type": "number"},
        "started_at": {"type": "number", "nullable": True},
        "finished_at": {"type": "number", "nullable": True},
        "total_cells": {"type": "integer"},
        "executed_cells": {
            "type": "integer",
            "description": "Cells actually simulated; cache hits do "
                           "not count, so resubmitting an identical "
                           "job reports 0.",
        },
        "cached_cells": {"type": "integer"},
        "error": {"type": "string", "nullable": True},
    },
}

_JOB_REQUEST = {
    "type": "object",
    "description": "Exactly one of 'experiment', 'scenario', or "
                   "'cells' selects the job source.",
    "properties": {
        "experiment": {
            "type": "string",
            "description": "Registry id (t01..t18).",
        },
        "scenario": {
            "type": "string",
            "description": "Name from the scenario library "
                           "(GET /scenarios).",
        },
        "cells": {
            "type": "array",
            "items": {"$ref": "#/components/schemas/ScenarioSpec"},
            "description": "Ad-hoc grid of spec dicts.",
        },
        "quick": {"type": "boolean", "default": True},
        "seed": {"type": "integer", "nullable": True},
        "base_seed": {"type": "integer", "default": 0},
        "label": {"type": "string", "nullable": True},
    },
}

_SCENARIO_SPEC = {
    "type": "object",
    "description": "Plain-data ScenarioSpec "
                   "(repro.harness.sweep.ScenarioSpec.to_dict). "
                   "Notable fields: 'engine' selects the execution "
                   "backend ('event' or 'vectorized') and is part of "
                   "the content hash, so the result cache keys the "
                   "two engines' results separately; 'timing' opts "
                   "into wall-clock measurement.",
    "properties": {
        "kind": {"type": "string"},
        "graph": {"type": "string"},
        "graph_args": {"type": "array"},
        "engine": {
            "type": "string",
            "enum": ["event", "vectorized"],
            "default": "event",
        },
        "timing": {"type": "boolean", "default": False},
        "seed": {"type": "integer", "nullable": True},
        "rounds": {"type": "integer", "nullable": True},
        "payload": {"type": "object"},
        "config": {"type": "object"},
        "key": {"type": "array"},
    },
    "additionalProperties": True,
}

_ERROR = {
    "type": "object",
    "properties": {"error": {"type": "string"}},
    "required": ["error"],
}

_JOB_ID_PARAM = {
    "name": "job_id",
    "in": "path",
    "required": True,
    "schema": {"type": "string"},
}


def _json_response(description: str, schema: dict | None = None,
                   status: str = "200") -> dict:
    content = {"application/json": {}}
    if schema is not None:
        content["application/json"]["schema"] = schema
    return {status: {"description": description, "content": content}}


def openapi_document() -> dict:
    """The complete OpenAPI document as plain JSON-ready data."""
    return {
        "openapi": OPENAPI_VERSION,
        "info": {
            "title": "repro simulation service",
            "description": (
                "Async sweep jobs with a content-addressed result "
                "cache over the FTGCS reproduction's experiment "
                "registry.  A job's format=json result bytes are "
                "bit-identical to `repro run <id> --format json` for "
                "the same (experiment, quick, seed)."),
            "version": "1.0.0",
        },
        "paths": {
            "/openapi.json": {
                "get": {
                    "summary": "This document.",
                    "responses": _json_response("The OpenAPI 3 "
                                                "description."),
                },
            },
            "/health": {
                "get": {
                    "summary": "Liveness plus cache/queue summary.",
                    "responses": _json_response(
                        "Service status.",
                        {"type": "object", "properties": {
                            "status": {"type": "string"},
                            "experiments": {"type": "integer"},
                            "jobs": {"type": "integer"},
                            "cache": {"type": "object"},
                        }}),
                },
            },
            "/experiments": {
                "get": {
                    "summary": "Registry metadata for every "
                               "experiment (t01..t18).",
                    "responses": _json_response(
                        "id, title, claim, columns, default seed, "
                        "tags per experiment."),
                },
            },
            "/scenarios": {
                "get": {
                    "summary": "The scenario-library listing "
                               "(empty without --scenarios).",
                    "responses": _json_response("Scenario listing."),
                },
            },
            "/jobs": {
                "get": {
                    "summary": "All job snapshots.",
                    "responses": _json_response(
                        "Snapshot list.",
                        {"type": "object", "properties": {
                            "jobs": {"type": "array", "items": {
                                "$ref": "#/components/schemas/"
                                        "JobSnapshot"}}}}),
                },
                "post": {
                    "summary": "Submit a job (experiment, library "
                               "scenario, or ad-hoc cell grid).",
                    "requestBody": {
                        "required": True,
                        "content": {"application/json": {"schema": {
                            "$ref": "#/components/schemas/"
                                    "JobRequest"}}},
                    },
                    "responses": {
                        **_json_response(
                            "Accepted; poll GET /jobs/{job_id}.",
                            {"$ref": "#/components/schemas/"
                                     "JobSnapshot"},
                            status="202"),
                        **_json_response(
                            "Malformed body (not exactly one "
                            "source, unknown experiment, bad spec).",
                            {"$ref": "#/components/schemas/Error"},
                            status="400"),
                    },
                },
            },
            "/jobs/{job_id}": {
                "get": {
                    "summary": "One job snapshot (poll this).",
                    "parameters": [_JOB_ID_PARAM],
                    "responses": {
                        **_json_response(
                            "Snapshot.",
                            {"$ref": "#/components/schemas/"
                                     "JobSnapshot"}),
                        **_json_response(
                            "Unknown job id.",
                            {"$ref": "#/components/schemas/Error"},
                            status="404"),
                    },
                },
                "delete": {
                    "summary": "Request cancellation.",
                    "parameters": [_JOB_ID_PARAM],
                    "responses": _json_response(
                        "id, state, and whether cancellation was "
                        "applied."),
                },
            },
            "/jobs/{job_id}/result": {
                "get": {
                    "summary": "The finished table.",
                    "parameters": [
                        _JOB_ID_PARAM,
                        {
                            "name": "format",
                            "in": "query",
                            "schema": {
                                "type": "string",
                                "enum": ["table", "json", "csv"],
                                "default": "table",
                            },
                        },
                    ],
                    "responses": {
                        "200": {"description":
                                "text/plain (table), "
                                "application/json, or text/csv."},
                        **_json_response(
                            "Result not ready (job still queued or "
                            "running).",
                            {"$ref": "#/components/schemas/Error"},
                            status="409"),
                        **_json_response(
                            "Job failed; body carries the error.",
                            {"$ref": "#/components/schemas/Error"},
                            status="500"),
                    },
                },
            },
            "/jobs/{job_id}/cells": {
                "get": {
                    "summary": "Executed cells in the canonical "
                               "tagged encoding "
                               "(repro.harness.serialize).",
                    "parameters": [_JOB_ID_PARAM],
                    "responses": {
                        **_json_response("Encoded cell list."),
                        **_json_response(
                            "Cells not ready.",
                            {"$ref": "#/components/schemas/Error"},
                            status="409"),
                    },
                },
            },
            "/cache/stats": {
                "get": {
                    "summary": "Result-store entry count and bytes.",
                    "responses": _json_response("Store statistics."),
                },
            },
            "/cache/clear": {
                "post": {
                    "summary": "Drop every cached result.",
                    "responses": _json_response(
                        "Number of entries removed."),
                },
            },
        },
        "components": {
            "schemas": {
                "JobSnapshot": _JOB_SNAPSHOT,
                "JobRequest": _JOB_REQUEST,
                "ScenarioSpec": _SCENARIO_SPEC,
                "Error": _ERROR,
            },
        },
    }


__all__ = ["OPENAPI_VERSION", "openapi_document"]
