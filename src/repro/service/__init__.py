"""Simulation service: jobs, caching, and HTTP serving for the sweep
engine.

The library half works without Flask:

>>> from repro.service import JobManager, ResultStore
>>> manager = JobManager(store=ResultStore("/tmp/repro-cache"))
>>> job = manager.submit_experiment("t01", quick=True)
>>> manager.wait(job.id).table.format()            # doctest: +SKIP

The HTTP half (:func:`create_app` / ``python -m repro serve``) wraps
the same manager behind REST endpoints; see
:mod:`repro.service.app` for the route table and the determinism
guarantee (served results are byte-identical to direct
``run_experiment`` output, and identical resubmissions complete from
the content-addressed cache with zero executed cells).
"""

from repro.service.jobs import JOB_STATES, Job, JobManager
from repro.service.library import LibraryScenario, ScenarioLibrary
from repro.service.store import ResultStore, default_cache_dir

__all__ = [
    "JOB_STATES",
    "Job",
    "JobManager",
    "LibraryScenario",
    "ResultStore",
    "ScenarioLibrary",
    "create_app",
    "default_cache_dir",
    "serve",
]


def __getattr__(name):
    # Flask-dependent pieces load lazily so `repro.service` imports
    # cleanly on Flask-less installs.
    if name in ("create_app", "serve"):
        from repro.service import app

        return getattr(app, name)
    raise AttributeError(name)
