"""REST layer: the sweep engine behind HTTP endpoints.

Routes (all JSON unless noted):

====================================  =================================
``GET  /openapi.json``                the OpenAPI 3 description of
                                      this surface
                                      (:mod:`repro.service.openapi`)
``GET  /health``                      liveness + cache/queue summary
``GET  /experiments``                 registry metadata (id, title,
                                      claim, columns, default seed)
``GET  /scenarios``                   the scenario-library listing
``POST /jobs``                        submit; body is one of
                                      ``{"experiment": "t01", "quick":
                                      true, "seed": 3}``,
                                      ``{"scenario": "<name>"}``, or
                                      ``{"cells": [...], "base_seed":
                                      0}`` (spec plain-data form) →
                                      202 + job snapshot
``GET  /jobs``                        all job snapshots
``GET  /jobs/<id>``                   one job snapshot (poll this)
``DELETE /jobs/<id>``                 request cancellation
``GET  /jobs/<id>/result``            the finished table;
                                      ``?format=table|json|csv``
                                      (text, ``Table.to_json`` bytes,
                                      ``Table.to_csv`` text)
``GET  /jobs/<id>/cells``             the executed cells, encoded with
                                      the canonical tagged codec
``GET  /cache/stats``                 result-store entry count/bytes
``POST /cache/clear``                 drop every cached result
====================================  =================================

Determinism guarantee: a job's ``format=json`` result bytes are
identical to ``repro run <id> --format json`` for the same
(experiment, quick, seed) — cells ride the same seed derivation and
the same worker routine, and cache hits decode bit-identically
(:mod:`repro.harness.serialize`).  Submitting the same job twice
therefore completes the second time with ``executed_cells == 0``.

The app factory keeps everything injectable (store, manager, library)
so tests drive it through ``app.test_client()`` with temp dirs and no
sockets; ``python -m repro serve`` wraps :func:`serve`.
"""

from __future__ import annotations

import sys

from repro.errors import ConfigError
from repro.harness import serialize
from repro.harness.registry import REGISTRY
from repro.harness.sweep import ScenarioSpec
from repro.service.jobs import JobManager
from repro.service.library import ScenarioLibrary
from repro.service.store import ResultStore

try:
    import flask
except ImportError:  # pragma: no cover - flask is in the image
    flask = None

#: Accepted ``?format=`` values for the result endpoint.
RESULT_FORMATS = ("table", "json", "csv")


def _require_flask():
    if flask is None:  # pragma: no cover - flask is in the image
        raise ConfigError(
            "the simulation service needs Flask (install flask, or "
            "use the library API: repro.service.JobManager)")
    return flask


def create_app(cache_dir=None, scenario_dir=None, processes=None,
               workers: int = 1, store: ResultStore | None = None,
               manager: JobManager | None = None,
               library: ScenarioLibrary | None = None):
    """Build the Flask app (everything injectable for tests).

    ``manager`` wins over (``store``, ``processes``, ``workers``);
    ``library`` wins over ``scenario_dir``; no scenario source means
    ``GET /scenarios`` serves an empty listing.
    """
    fl = _require_flask()
    if manager is None:
        if store is None:
            store = ResultStore(cache_dir)
        manager = JobManager(store=store, processes=processes,
                             workers=workers)
    if library is None and scenario_dir is not None:
        library = ScenarioLibrary(scenario_dir)

    app = fl.Flask("repro.service")
    # Test handles: reach the live manager/store from app fixtures.
    app.config["REPRO_MANAGER"] = manager
    app.config["REPRO_LIBRARY"] = library

    @app.errorhandler(ConfigError)
    def _bad_request(error):
        return {"error": str(error)}, 400

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @app.get("/openapi.json")
    def openapi():
        from repro.service.openapi import openapi_document
        return openapi_document()

    @app.get("/health")
    def health():
        return {
            "status": "ok",
            "experiments": len(REGISTRY),
            "jobs": len(manager.jobs()),
            "cache": manager.store.stats(),
        }

    @app.get("/experiments")
    def experiments():
        return {"experiments": [
            {"id": e.id, "title": e.title, "claim": e.claim,
             "columns": list(e.columns),
             "default_seed": e.default_seed, "tags": list(e.tags)}
            for e in REGISTRY]}

    @app.get("/scenarios")
    def scenarios():
        if library is None:
            return {"scenarios": [], "root": None}
        return {"scenarios": library.describe_all(),
                "root": str(library.root)}

    # ------------------------------------------------------------------
    # Jobs
    # ------------------------------------------------------------------

    def _submit(body: dict):
        sources = [key for key in ("experiment", "scenario", "cells")
                   if key in body]
        if len(sources) != 1:
            raise ConfigError(
                "POST /jobs needs exactly one of 'experiment', "
                "'scenario', or 'cells'")
        label = body.get("label")
        if "experiment" in body:
            return manager.submit_experiment(
                body["experiment"], quick=bool(body.get("quick", True)),
                seed=body.get("seed"), label=label)
        if "scenario" in body:
            if library is None:
                raise ConfigError(
                    "no scenario library configured (serve with "
                    "--scenarios DIR)")
            entry = library.load(body["scenario"])
            if entry.experiment is not None:
                return manager.submit_experiment(
                    entry.experiment, quick=entry.quick,
                    seed=entry.seed, label=label or entry.title)
            return manager.submit_grid(
                list(entry.specs), base_seed=entry.base_seed,
                label=label or entry.title)
        cells = body["cells"]
        if not isinstance(cells, list):
            raise ConfigError("'cells' must be a list of spec dicts")
        specs = [ScenarioSpec.from_dict(cell) for cell in cells]
        return manager.submit_grid(
            specs, base_seed=int(body.get("base_seed", 0)),
            label=label)

    @app.post("/jobs")
    def submit_job():
        body = fl.request.get_json(force=True, silent=True)
        if not isinstance(body, dict):
            raise ConfigError("POST /jobs needs a JSON object body")
        job = _submit(body)
        return job.snapshot(), 202

    @app.get("/jobs")
    def list_jobs():
        return {"jobs": [job.snapshot() for job in manager.jobs()]}

    def _job_or_404(job_id: str):
        try:
            return manager.get(job_id)
        except ConfigError as error:
            fl.abort(fl.Response(
                fl.json.dumps({"error": str(error)}), status=404,
                mimetype="application/json"))

    @app.get("/jobs/<job_id>")
    def job_status(job_id):
        return _job_or_404(job_id).snapshot()

    @app.delete("/jobs/<job_id>")
    def cancel_job(job_id):
        job = _job_or_404(job_id)
        cancelled = manager.cancel(job.id)
        return {"id": job.id, "state": job.state,
                "cancelled": cancelled}

    @app.get("/jobs/<job_id>/result")
    def job_result(job_id):
        job = _job_or_404(job_id)
        if job.state == "failed":
            return {"id": job.id, "state": job.state,
                    "error": job.error}, 500
        if job.state != "done" or job.table is None:
            return {"id": job.id, "state": job.state,
                    "error": "result not ready"}, 409
        fmt = fl.request.args.get("format", "table")
        if fmt not in RESULT_FORMATS:
            raise ConfigError(
                f"unknown format {fmt!r}; known: {list(RESULT_FORMATS)}")
        if fmt == "json":
            return fl.Response(job.table.to_json(),
                               mimetype="application/json")
        if fmt == "csv":
            return fl.Response(job.table.to_csv(), mimetype="text/csv")
        return fl.Response(job.table.format() + "\n",
                           mimetype="text/plain")

    @app.get("/jobs/<job_id>/cells")
    def job_cells(job_id):
        job = _job_or_404(job_id)
        if job.state != "done" or job.cells is None:
            return {"id": job.id, "state": job.state,
                    "error": "cells not ready"}, 409
        return {"id": job.id,
                "cells": [serialize.encode(cell)
                          for cell in job.cells]}

    # ------------------------------------------------------------------
    # Cache maintenance
    # ------------------------------------------------------------------

    @app.get("/cache/stats")
    def cache_stats():
        return manager.store.stats()

    @app.post("/cache/clear")
    def cache_clear():
        return {"removed": manager.store.clear()}

    return app


def serve(host: str = "127.0.0.1", port: int = 8765,
          cache_dir=None, scenario_dir=None, processes=None,
          workers: int = 1) -> None:  # pragma: no cover - blocking
    """Run the development server (``python -m repro serve``)."""
    app = create_app(cache_dir=cache_dir, scenario_dir=scenario_dir,
                     processes=processes, workers=workers)
    store = app.config["REPRO_MANAGER"].store
    print(f"[repro serve] listening on http://{host}:{port} "
          f"(cache: {store.root}"
          + (f", scenarios: {scenario_dir}" if scenario_dir else "")
          + ")", file=sys.stderr)
    app.run(host=host, port=port, threaded=True, use_reloader=False)


__all__ = ["RESULT_FORMATS", "create_app", "serve"]
