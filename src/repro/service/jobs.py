"""Async job manager: queued sweep jobs over one warm worker pool.

A *job* is one table-sized unit of work — a registry experiment
(``t01`` … ``t18``) or an ad-hoc grid of
:class:`~repro.harness.sweep.ScenarioSpec` cells.  Submission returns
immediately with a :class:`Job` handle; background worker threads
drain the queue, so many users (or one impatient one) can stack
submissions while earlier tables are still computing.

Execution path, per job:

1. Compile the cell grid and resolve per-cell seeds through
   :func:`~repro.harness.sweep.resolve_cell_seeds` — *exactly* the
   derivation ``SweepRunner.run`` applies, so a served job is
   cell-for-cell bit-identical to ``repro run``.
2. Partition the grid against the content-addressed
   :class:`~repro.service.store.ResultStore`: hits are decoded from
   disk and never touch the kernel (the per-job ``executed_cells``
   counter stays at 0 for a fully cached resubmission).
3. Execute the misses — serially in-process, or mapped over **one
   warm ``multiprocessing`` pool** shared by every job the manager
   ever runs (created once, reused; no per-job pool startup) — and
   persist each result before merging it back at its grid index.
4. Finish the table (the experiment's registered ``finish`` step, or
   a generic per-cell summary for ad-hoc grids).

Job states: ``queued → running → done | failed | cancelled``.
Cancellation is honored between batches (a queued job cancels
immediately; an executing one stops at the next batch boundary,
keeping already-persisted cells in the cache).
"""

from __future__ import annotations

import itertools
import multiprocessing
import queue
import threading
import time

from repro.core.protocol import ProtocolRunResult
from repro.errors import ConfigError
from repro.harness.registry import REGISTRY
from repro.harness.sweep import (
    ScenarioSpec,
    SweepCellResult,
    default_processes,
    resolve_cell_seeds,
    run_cell,
)
from repro.harness.tables import Table
from repro.service.store import ResultStore

#: Legal :attr:`Job.state` values, in lifecycle order.
JOB_STATES = ("queued", "running", "done", "failed", "cancelled")


class Job:
    """One submitted unit of work and its observable progress.

    All mutable fields are single assignments of immutable values
    (ints, strs, floats), so readers on other threads — the REST
    layer polling progress — see consistent snapshots without locks.
    """

    def __init__(self, id: str, kind: str, request: dict,
                 label: str) -> None:
        self.id = id
        self.kind = kind  # "experiment" | "grid"
        self.request = request
        self.label = label
        self.state = "queued"
        self.error: str | None = None
        self.total_cells = 0
        self.completed_cells = 0
        self.cached_cells = 0
        self.executed_cells = 0
        # repro: allow[wall-clock] -- job-lifecycle timestamp shown
        # in the REST status body; results stay deterministic.
        self.created = time.time()
        self.started: float | None = None
        self.finished: float | None = None
        self.table: Table | None = None
        self.cells: list[SweepCellResult] | None = None
        self.cancel_event = threading.Event()
        self.finished_event = threading.Event()

    @property
    def done(self) -> bool:
        """True once the job reached a terminal state."""
        return self.state in ("done", "failed", "cancelled")

    def snapshot(self) -> dict:
        """JSON-safe progress summary (the ``GET /jobs/<id>`` body)."""
        return {
            "id": self.id,
            "kind": self.kind,
            "label": self.label,
            "request": self.request,
            "state": self.state,
            "error": self.error,
            "progress": {
                "total_cells": self.total_cells,
                "completed_cells": self.completed_cells,
                "cached_cells": self.cached_cells,
                "executed_cells": self.executed_cells,
            },
            "created": self.created,
            "started": self.started,
            "finished": self.finished,
        }


def grid_summary_table(cells: list[SweepCellResult],
                       title: str) -> Table:
    """The generic per-cell table for ad-hoc grid jobs.

    Protocol cells report their uniform headline skews; other kinds
    (Monte Carlo probabilities, fuzz violation counts, …) report their
    scalar result in ``value``.
    """
    table = Table(title=title,
                  columns=["cell", "key", "seed", "max global skew",
                           "max local skew", "value"])
    for index, cell in enumerate(cells):
        result = cell.result
        if isinstance(result, ProtocolRunResult):
            table.add_row(index, repr(cell.key), cell.seed,
                          result.max_global_skew, result.max_local_skew,
                          None)
        else:
            value = result if isinstance(result, (int, float, str)) \
                else repr(result)
            table.add_row(index, repr(cell.key), cell.seed, None, None,
                          value)
    return table


class JobManager:
    """Background executor multiplexing sweep jobs over one warm pool.

    Parameters
    ----------
    store:
        The content-addressed result cache (default: a
        :class:`ResultStore` at the default cache dir).
    processes:
        Per-batch worker processes, resolved through
        :func:`~repro.harness.sweep.default_processes`.  ``1`` (the
        stock default) executes misses serially in the worker thread;
        larger values create one long-lived ``multiprocessing`` pool
        on first use and reuse it for every subsequent job.
    workers:
        Job-consumer threads.  One (the default) serializes jobs —
        deterministic end-to-end ordering and no pool contention;
        more overlap jobs whose cells are mostly cache hits.
    """

    def __init__(self, store: ResultStore | None = None,
                 processes: int | None = None,
                 workers: int = 1) -> None:
        if workers < 1:
            raise ConfigError(f"workers must be >= 1: {workers!r}")
        self.store = store if store is not None else ResultStore()
        self.processes = default_processes(processes)
        self._queue: queue.Queue = queue.Queue()
        self._jobs: dict[str, Job] = {}
        self._order: list[str] = []
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self._pool = None
        self._pool_lock = threading.Lock()
        self._threads = [
            threading.Thread(target=self._worker_loop,
                             name=f"repro-job-worker-{i}", daemon=True)
            for i in range(workers)]
        for thread in self._threads:
            thread.start()

    # ------------------------------------------------------------------
    # Submission / lookup
    # ------------------------------------------------------------------

    def _register(self, kind: str, request: dict, label: str) -> Job:
        with self._lock:
            job = Job(id=f"job-{next(self._ids):04d}", kind=kind,
                      request=request, label=label)
            self._jobs[job.id] = job
            self._order.append(job.id)
        self._queue.put(job.id)
        return job

    def submit_experiment(self, experiment_id: str, *,
                          quick: bool = True,
                          seed: int | None = None,
                          label: str | None = None) -> Job:
        """Queue one registry experiment; unknown ids fail eagerly."""
        experiment = REGISTRY.get(experiment_id)  # raises ConfigError
        resolved_seed = seed if seed is not None \
            else experiment.default_seed
        request = {"experiment": experiment.id, "quick": bool(quick),
                   "seed": resolved_seed}
        return self._register(
            "experiment", request,
            label or f"{experiment.id} "
                     f"({'quick' if quick else 'full'}, "
                     f"seed {resolved_seed})")

    def submit_grid(self, specs: list[ScenarioSpec], *,
                    base_seed: int = 0,
                    label: str | None = None) -> Job:
        """Queue an ad-hoc grid of already-built specs."""
        if not specs:
            raise ConfigError("submit_grid needs at least one spec")
        for spec in specs:
            if not isinstance(spec, ScenarioSpec):
                raise ConfigError(
                    f"submit_grid needs ScenarioSpec cells, got "
                    f"{type(spec).__name__}")
        request = {"cells": len(specs), "base_seed": base_seed}
        job = self._register(
            "grid", request, label or f"grid ({len(specs)} cells)")
        job._grid = (list(specs), base_seed)  # worker-side payload
        return job

    def get(self, job_id: str) -> Job:
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise ConfigError(f"unknown job {job_id!r}")
        return job

    def jobs(self) -> list[Job]:
        """All jobs, in submission order."""
        with self._lock:
            return [self._jobs[id] for id in self._order]

    # ------------------------------------------------------------------
    # Control
    # ------------------------------------------------------------------

    def cancel(self, job_id: str) -> bool:
        """Request cancellation; returns False for finished jobs."""
        job = self.get(job_id)
        if job.done:
            return False
        job.cancel_event.set()
        return True

    def wait(self, job_id: str, timeout: float | None = None) -> Job:
        """Block until the job reaches a terminal state."""
        job = self.get(job_id)
        if not job.finished_event.wait(timeout):
            raise TimeoutError(
                f"job {job_id} still {job.state} after {timeout}s")
        return job

    def shutdown(self) -> None:
        """Stop the worker threads and release the warm pool.

        Queued jobs that never started are marked cancelled.
        """
        for _ in self._threads:
            self._queue.put(None)
        for thread in self._threads:
            thread.join(timeout=5.0)
        for job in self.jobs():
            if job.state == "queued":
                job.state = "cancelled"
                # repro: allow[wall-clock] -- lifecycle timestamp.
                job.finished = time.time()
                job.finished_event.set()
        with self._pool_lock:
            if self._pool is not None:
                self._pool.terminate()
                self._pool.join()
                self._pool = None

    # ------------------------------------------------------------------
    # Execution (worker threads)
    # ------------------------------------------------------------------

    def _warm_pool(self):
        """The shared long-lived pool (created on first use)."""
        if self._pool is None:
            methods = multiprocessing.get_all_start_methods()
            method = "fork" if "fork" in methods else None
            ctx = multiprocessing.get_context(method)
            self._pool = ctx.Pool(processes=self.processes)
        return self._pool

    def _execute_batch(self,
                       specs: list[ScenarioSpec]
                       ) -> list[SweepCellResult]:
        """Run one batch of cache misses (the only kernel-touching
        path in the whole service)."""
        if self.processes <= 1 or len(specs) <= 1:
            return [run_cell(spec) for spec in specs]
        with self._pool_lock:
            return self._warm_pool().map(run_cell, specs)

    def _compile(self, job: Job):
        """Resolve the job to (resolved specs, finish step, table)."""
        if job.kind == "experiment":
            request = job.request
            experiment = REGISTRY.get(request["experiment"])
            seed = request["seed"]
            plan = experiment.plan(quick=request["quick"], seed=seed)
            specs = resolve_cell_seeds(plan.specs, seed)
            return specs, plan.finish, experiment.make_table()
        specs, base_seed = job._grid
        resolved = resolve_cell_seeds(specs, base_seed)

        def finish(cells, table):  # table arrives pre-built (None here)
            return grid_summary_table(list(cells), title=job.label)

        return resolved, finish, None

    def _run_job(self, job: Job) -> None:
        specs, finish, table = self._compile(job)
        job.total_cells = len(specs)
        results: list[SweepCellResult | None] = [None] * len(specs)
        misses: list[tuple[int, ScenarioSpec]] = []
        for index, spec in enumerate(specs):
            cached = self.store.get(spec)
            if cached is not None:
                results[index] = cached
                job.cached_cells += 1
                job.completed_cells += 1
            else:
                misses.append((index, spec))
        # Serial execution goes cell-by-cell (finest progress /
        # cancellation granularity); the pool path batches one pool
        # width at a time so progress still ticks during long grids.
        batch_size = 1 if self.processes <= 1 else self.processes
        for start in range(0, len(misses), batch_size):
            if job.cancel_event.is_set():
                job.state = "cancelled"
                return
            batch = misses[start:start + batch_size]
            cells = self._execute_batch([spec for _, spec in batch])
            for (index, spec), cell in zip(batch, cells):
                self.store.put(spec, cell)
                results[index] = cell
                job.executed_cells += 1
                job.completed_cells += 1
        if job.cancel_event.is_set():
            job.state = "cancelled"
            return
        job.cells = [cell for cell in results if cell is not None]
        job.table = finish(job.cells, table)
        job.state = "done"

    def _worker_loop(self) -> None:
        while True:
            job_id = self._queue.get()
            if job_id is None:
                return
            with self._lock:
                job = self._jobs.get(job_id)
            if job is None:  # pragma: no cover - defensive
                continue
            if job.cancel_event.is_set():
                job.state = "cancelled"
                # repro: allow[wall-clock] -- lifecycle timestamp.
                job.finished = time.time()
                job.finished_event.set()
                continue
            job.state = "running"
            # repro: allow[wall-clock] -- lifecycle timestamp.
            job.started = time.time()
            try:
                self._run_job(job)
            except Exception as error:
                job.state = "failed"
                job.error = f"{type(error).__name__}: {error}"
            finally:
                # repro: allow[wall-clock] -- lifecycle timestamp.
                job.finished = time.time()
                job.finished_event.set()


__all__ = ["JOB_STATES", "Job", "JobManager", "grid_summary_table"]
