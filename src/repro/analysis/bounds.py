"""Theoretical bound calculators for every claim we reproduce.

Includes the combinatorial reliability bound of Inequality (1) and a
:class:`BoundsReport` that packages, for one run, every bound the
measured skews are compared against in EXPERIMENTS.md.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.params import Parameters
from repro.errors import ParameterError


# ----------------------------------------------------------------------
# Inequality (1): probability a cluster exceeds its fault budget
# ----------------------------------------------------------------------

def cluster_failure_probability(f: int, p: float,
                                cluster_size: int | None = None) -> float:
    """Exact ``P[more than f of k nodes fail]`` with i.i.d. failures.

    ``cluster_size`` defaults to ``3f + 1`` as in Inequality (1).
    """
    if f < 0:
        raise ParameterError(f"f must be non-negative: {f!r}")
    if not 0.0 <= p <= 1.0:
        raise ParameterError(f"p must be a probability: {p!r}")
    k = 3 * f + 1 if cluster_size is None else cluster_size
    if k < f:
        raise ParameterError(f"cluster_size {k!r} smaller than f={f!r}")
    # P[X > f] = 1 - P[X <= f]; the head sum has f+1 <= k+1 terms.
    head = 0.0
    for i in range(f + 1):
        head += math.comb(k, i) * p ** i * (1.0 - p) ** (k - i)
    return max(0.0, 1.0 - head)


def cluster_failure_bound_binomial(f: int, p: float) -> float:
    """The middle bound of Inequality (1): ``C(3f+1, f+1) p^(f+1)``."""
    return math.comb(3 * f + 1, f + 1) * p ** (f + 1)


def cluster_failure_bound_3ep(f: int, p: float) -> float:
    """The closed-form bound of Inequality (1): ``(3 e p)^(f+1)``."""
    return (3.0 * math.e * p) ** (f + 1)


def system_failure_probability(num_clusters: int, f: int, p: float,
                               cluster_size: int | None = None) -> float:
    """``P[any cluster exceeds its budget]`` under independence."""
    q = cluster_failure_probability(f, p, cluster_size)
    return 1.0 - (1.0 - q) ** num_clusters


# ----------------------------------------------------------------------
# Adversarial resilience: the absorption envelope (t18)
# ----------------------------------------------------------------------

def resilience_bound(amplitude: float, *, kappa: float, slack: float,
                     correction: float) -> float:
    """Envelope on the *extra* steady-state skew an amplitude-capped
    adversary can sustain against a trigger-governed correction loop.

    Adapted from the absorption arguments of the self-stabilizing
    pulse-sync line (Tan & Jiang, arXiv:1809.03165; Lenzen & Rybicki
    peer-review framing in arXiv:2006.15832), restated for the
    deadband triggers used here: a per-round injection of magnitude at
    most ``amplitude`` into estimates that feed ``FT``/``ST`` triggers
    with level width ``2 * kappa`` and hysteresis ``slack``

    - is absorbed outright below the deadband ``2 * kappa - slack``
      (no trigger decision changes, so honest clocks are untouched);
    - above it converts into real displacement at most one correction
      quantum ``correction`` per round (``mu * period`` for the GCS
      family: the speed advantage a flipped trigger grants between
      re-evaluations) while honest neighbors' own triggers push back
      as soon as the displacement itself crosses a level.

    The sustainable excess is therefore at most the supra-deadband
    part of the lie plus one in-flight correction quantum::

        max(0, amplitude - max(0, 2 * kappa - slack)) + correction

    Clique protocols without a deadband (Srikanth–Toueg) instantiate
    ``kappa = slack = 0`` and ``correction = u``: an accept time is
    bracketed by honest proposals once fewer than ``n - 2f`` faulty
    arrivals can enter a quorum, so displacement is capped by the lie
    itself plus the jitter width.  This is an *envelope*, not a tight
    bound — t18 plots measured skew against it.
    """
    if amplitude < 0:
        raise ParameterError(
            f"amplitude must be >= 0: {amplitude!r}")
    if kappa < 0 or slack < 0 or correction < 0:
        raise ParameterError(
            f"kappa/slack/correction must be >= 0: "
            f"{kappa!r}, {slack!r}, {correction!r}")
    deadband = max(0.0, 2.0 * kappa - slack)
    return max(0.0, amplitude - deadband) + correction


# ----------------------------------------------------------------------
# Per-run bound report
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class BoundsReport:
    """Every bound a run's measurements are checked against.

    ``local_skew_bound`` and ``node_local_skew_bound`` depend on the
    global skew ``S``; they are instantiated with the *theoretical*
    global bound, which dominates any measured value in a correct run.
    """

    cap_e: float
    intra_cluster_bound: float
    intra_cluster_bound_paper: float
    estimate_error_bound: float
    global_skew_bound: float
    local_skew_bound: float
    node_local_skew_bound: float
    kappa: float
    delta_trigger: float
    diameter: int

    @classmethod
    def for_run(cls, params: Parameters, diameter: int,
                global_skew: float | None = None) -> "BoundsReport":
        """Build the report for a topology of the given diameter.

        ``global_skew`` overrides the Theorem C.3 bound as the ``S``
        fed to the local-skew level count — pass the *measured* global
        skew to get the sharpest comparable local bound.
        """
        s_bound = params.global_skew_bound(diameter)
        s_for_local = s_bound if global_skew is None else max(
            global_skew, params.kappa)
        return cls(
            cap_e=params.cap_e,
            intra_cluster_bound=params.intra_skew_bound(),
            intra_cluster_bound_paper=params.intra_skew_bound_paper(),
            estimate_error_bound=params.estimate_error_bound(),
            global_skew_bound=s_bound,
            local_skew_bound=params.local_skew_bound(s_for_local),
            node_local_skew_bound=params.node_local_skew_bound(s_for_local),
            kappa=params.kappa,
            delta_trigger=params.delta_trigger,
            diameter=diameter,
        )
