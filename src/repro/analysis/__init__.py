"""Measurement and bound-checking utilities."""

from repro.analysis.bounds import (
    BoundsReport,
    cluster_failure_bound_3ep,
    cluster_failure_bound_binomial,
    cluster_failure_probability,
    system_failure_probability,
)
from repro.analysis.metrics import (
    ClusterExtrema,
    SkewSnapshot,
    accumulate_grouped,
    cluster_extrema,
    compute_snapshot,
    compute_snapshot_grouped,
    log_log_fit,
    pulse_diameters,
    unanimity_by_round,
)
from repro.analysis.sampling import SampleBuffer, SkewMaxima, SkewSampler
from repro.analysis.traces import (
    ClockTraceRecorder,
    Trace,
    difference_series,
)

__all__ = [
    "ClockTraceRecorder",
    "Trace",
    "difference_series",
    "BoundsReport",
    "cluster_failure_bound_3ep",
    "cluster_failure_bound_binomial",
    "cluster_failure_probability",
    "system_failure_probability",
    "ClusterExtrema",
    "SkewSnapshot",
    "accumulate_grouped",
    "cluster_extrema",
    "compute_snapshot",
    "compute_snapshot_grouped",
    "log_log_fit",
    "pulse_diameters",
    "unanimity_by_round",
    "SampleBuffer",
    "SkewMaxima",
    "SkewSampler",
]
