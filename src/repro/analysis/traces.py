"""Clock-trajectory recording for figures and offline analysis.

A :class:`ClockTraceRecorder` samples a set of named clocks on a fixed
cadence, producing per-clock time series plus derived difference
series (e.g. a node's logical clock minus the reference ``t``, which
is what the paper's figures would plot).  The experiment harness uses
skew *maxima* (cheap); this module is for the long-form traces a user
exporting plots wants.

Series are plain ``list[tuple[float, float]]`` so downstream tooling
(numpy, CSV writers, matplotlib) can consume them without adapters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.errors import ConfigError
from repro.sim.kernel import Simulator

#: A named readable: ``reader() -> float`` (usually ``clock.value``).
Reader = Callable[[], float]


@dataclass
class Trace:
    """One recorded time series."""

    name: str
    samples: list[tuple[float, float]] = field(default_factory=list)

    def times(self) -> list[float]:
        return [t for t, _ in self.samples]

    def values(self) -> list[float]:
        return [v for _, v in self.samples]

    def offsets_from_time(self) -> list[tuple[float, float]]:
        """``value - t`` per sample: the drift-relative trajectory.

        Logical clocks advance at ~1, so plotting the raw value is a
        featureless diagonal; the offset view is what shows dynamics.
        """
        return [(t, v - t) for t, v in self.samples]

    def max_value(self) -> float:
        if not self.samples:
            raise ConfigError(f"trace {self.name!r} is empty")
        return max(v for _, v in self.samples)


def difference_series(a: Trace, b: Trace) -> list[tuple[float, float]]:
    """Pointwise ``a - b`` for traces recorded on the same cadence."""
    if len(a.samples) != len(b.samples):
        raise ConfigError(
            f"traces {a.name!r} and {b.name!r} have different lengths "
            f"({len(a.samples)} vs {len(b.samples)})")
    result = []
    for (ta, va), (tb, vb) in zip(a.samples, b.samples):
        if ta != tb:
            raise ConfigError(
                f"traces {a.name!r} and {b.name!r} sampled at "
                f"different times ({ta} vs {tb})")
        result.append((ta, va - vb))
    return result


class ClockTraceRecorder:
    """Periodic sampler for a set of named clock readers.

    Example
    -------
    >>> from repro.sim import Simulator
    >>> sim = Simulator()
    >>> rec = ClockTraceRecorder(sim, interval=1.0)
    >>> rec.watch("wall", lambda: sim.now)
    >>> rec.start()
    >>> sim.run(until=3.0)
    >>> rec.trace("wall").values()
    [0.0, 1.0, 2.0, 3.0]
    """

    def __init__(self, sim: Simulator, interval: float) -> None:
        if interval <= 0:
            raise ConfigError(f"interval must be positive: {interval!r}")
        self._sim = sim
        self._interval = interval
        self._readers: dict[str, Reader] = {}
        self._traces: dict[str, Trace] = {}
        self._running = False

    def watch(self, name: str, reader: Reader) -> None:
        """Register a clock to record (before or after :meth:`start`)."""
        if name in self._readers:
            raise ConfigError(f"duplicate trace name: {name!r}")
        self._readers[name] = reader
        self._traces[name] = Trace(name=name)

    def watch_system_nodes(self, system, which: str = "logical") -> None:
        """Convenience: watch every honest node of an
        :class:`~repro.core.system.FtgcsSystem`.

        ``which`` is ``"logical"`` or ``"max_estimate"``.
        """
        for node in system.honest_nodes():
            if which == "logical":
                self.watch(f"L[{node.node_id}]", node.logical.value)
            elif which == "max_estimate":
                if node.max_estimate is not None:
                    self.watch(f"M[{node.node_id}]",
                               node.max_estimate.value)
            else:
                raise ConfigError(f"unknown watch target: {which!r}")

    def start(self) -> None:
        if self._running:
            raise ConfigError("recorder already started")
        self._running = True
        self._tick()

    def stop(self) -> None:
        self._running = False

    def _tick(self) -> None:
        if not self._running:
            return
        now = self._sim.now
        for name, reader in self._readers.items():
            self._traces[name].samples.append((now, reader()))
        self._sim.call_in(self._interval, self._tick)

    def trace(self, name: str) -> Trace:
        try:
            return self._traces[name]
        except KeyError:
            raise ConfigError(f"no trace named {name!r}") from None

    def names(self) -> list[str]:
        return list(self._traces)

    def skew_series(self, name_a: str,
                    name_b: str) -> list[tuple[float, float]]:
        """``|a - b|`` over time — a per-edge skew trajectory."""
        diff = difference_series(self.trace(name_a), self.trace(name_b))
        return [(t, abs(v)) for t, v in diff]

    def to_csv(self, path: str) -> None:
        """Write all traces as a wide CSV (time + one column each)."""
        names = self.names()
        if not names:
            raise ConfigError("no traces to write")
        rows = zip(*(self._traces[name].samples for name in names))
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("time," + ",".join(names) + "\n")
            for row in rows:
                time = row[0][0]
                values = ",".join(f"{v!r}" for _, v in row)
                handle.write(f"{time!r},{values}\n")
