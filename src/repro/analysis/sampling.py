"""Periodic skew sampling during a simulation run.

A :class:`SkewSampler` is a self-rescheduling kernel event that
snapshots all correct logical clocks every ``interval`` time units,
maintains running maxima of every skew metric, and (optionally) a full
time series plus per-edge maxima for gradient-profile plots.

Sampling is an *observation* device: it reads clocks without touching
algorithm state, so its cadence affects only measurement resolution,
never the execution.  Skews between samples can exceed the recorded
maxima by at most ``(theta_max - 1) * interval``, which is negligible
for the default cadence of a quarter round.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.analysis.metrics import SkewSnapshot, compute_snapshot
from repro.errors import ConfigError
from repro.sim.kernel import Simulator

#: ``collector() -> {cluster: {node: value}}`` for correct nodes only.
Collector = Callable[[], dict[int, dict[int, float]]]


@dataclass
class SkewMaxima:
    """Running maxima over all samples taken so far."""

    global_skew: float = 0.0
    intra_cluster: float = 0.0
    local_cluster: float = 0.0
    local_node: float = 0.0
    samples: int = 0
    edge_maxima: dict[tuple[int, int], float] = field(default_factory=dict)

    def update(self, snap: SkewSnapshot) -> None:
        self.global_skew = max(self.global_skew, snap.global_skew)
        self.intra_cluster = max(self.intra_cluster, snap.max_intra_cluster)
        self.local_cluster = max(self.local_cluster, snap.max_local_cluster)
        self.local_node = max(self.local_node, snap.max_local_node)
        self.samples += 1
        for edge, skew in snap.edge_skews.items():
            if skew > self.edge_maxima.get(edge, 0.0):
                self.edge_maxima[edge] = skew


class SkewSampler:
    """Self-rescheduling skew probe.

    Parameters
    ----------
    sim:
        The simulation kernel.
    interval:
        Sampling period (Newtonian time).
    collector:
        Returns the current correct clock values, grouped by cluster.
    cluster_edges:
        Edge list of the cluster graph ``G``.
    record_series:
        Keep every :class:`~repro.analysis.metrics.SkewSnapshot`.
    track_edges:
        Maintain per-edge cluster-skew maxima (needed for profiles).
    """

    def __init__(self, sim: Simulator, interval: float,
                 collector: Collector,
                 cluster_edges: list[tuple[int, int]],
                 record_series: bool = False,
                 track_edges: bool = False) -> None:
        if interval <= 0:
            raise ConfigError(f"interval must be positive: {interval!r}")
        self._sim = sim
        self._interval = interval
        self._collector = collector
        self._cluster_edges = list(cluster_edges)
        self._record_series = record_series
        self._track_edges = track_edges
        self.maxima = SkewMaxima()
        self.series: list[SkewSnapshot] = []
        self._running = False

    def start(self) -> None:
        """Take a first sample now and re-arm every ``interval``."""
        if self._running:
            raise ConfigError("sampler already started")
        self._running = True
        self._tick()

    def stop(self) -> None:
        self._running = False

    def sample_now(self) -> SkewSnapshot:
        """Take one sample immediately (also updates maxima)."""
        snap = compute_snapshot(
            self._sim.now, self._collector(), self._cluster_edges,
            include_edges=self._track_edges)
        self.maxima.update(snap)
        if self._record_series:
            self.series.append(snap)
        return snap

    def _tick(self) -> None:
        if not self._running:
            return
        self.sample_now()
        self._sim.call_in(self._interval, self._tick)
