"""Periodic skew sampling during a simulation run.

A :class:`SkewSampler` is a periodic kernel event that snapshots all
correct logical clocks every ``interval`` time units, maintains running
maxima of every skew metric, and (optionally) a full time series plus
per-edge maxima for gradient-profile plots.

Sampling is an *observation* device: it reads clocks without touching
algorithm state, so its cadence affects only measurement resolution,
never the execution.  Skews between samples can exceed the recorded
maxima by at most ``(theta_max - 1) * interval``, which is negligible
for the default cadence of a quarter round.

Sampling is also the measurement hot path — for every event the
algorithm fires, the sampler reads every correct clock several times
per round.  The sampler therefore (a) re-arms one repeating kernel
event (:meth:`~repro.sim.kernel.Simulator.call_repeating`) instead of
allocating a fresh event per tick, and (b) accepts *grouped* collectors
that fill preallocated flat per-cluster buffers
(:func:`~repro.analysis.metrics.compute_snapshot_grouped`) instead of
rebuilding nested dicts each sample.  Collectors returning the legacy
``{cluster: {node: value}}`` form keep working.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Union

from repro.analysis.metrics import (
    SkewSnapshot,
    compute_snapshot_grouped,
)
from repro.errors import ConfigError
from repro.sim.kernel import Simulator

#: ``collector()`` returning correct clock values either grouped as
#: ``[(cluster, values), ...]`` (fast path, buffers may be reused) or
#: as the legacy nested ``{cluster: {node: value}}`` dict.
Collector = Callable[[], Union[
    "list[tuple[int, list[float]]]",
    "dict[int, dict[int, float]]"]]


@dataclass
class SkewMaxima:
    """Running maxima over all samples taken so far."""

    global_skew: float = 0.0
    intra_cluster: float = 0.0
    local_cluster: float = 0.0
    local_node: float = 0.0
    samples: int = 0
    edge_maxima: dict[tuple[int, int], float] = field(default_factory=dict)

    def update(self, snap: SkewSnapshot) -> None:
        self.global_skew = max(self.global_skew, snap.global_skew)
        self.intra_cluster = max(self.intra_cluster, snap.max_intra_cluster)
        self.local_cluster = max(self.local_cluster, snap.max_local_cluster)
        self.local_node = max(self.local_node, snap.max_local_node)
        self.samples += 1
        for edge, skew in snap.edge_skews.items():
            if skew > self.edge_maxima.get(edge, 0.0):
                self.edge_maxima[edge] = skew


class SkewSampler:
    """Periodic skew probe driven by one repeating kernel event.

    Parameters
    ----------
    sim:
        The simulation kernel.
    interval:
        Sampling period (Newtonian time).
    collector:
        Returns the current correct clock values (see
        :data:`Collector`).
    cluster_edges:
        Edge list of the cluster graph ``G``.
    record_series:
        Keep every :class:`~repro.analysis.metrics.SkewSnapshot`.
    track_edges:
        Maintain per-edge cluster-skew maxima (needed for profiles).
    """

    def __init__(self, sim: Simulator, interval: float,
                 collector: Collector,
                 cluster_edges: list[tuple[int, int]],
                 record_series: bool = False,
                 track_edges: bool = False) -> None:
        if interval <= 0:
            raise ConfigError(f"interval must be positive: {interval!r}")
        self._sim = sim
        self._interval = interval
        self._collector = collector
        self._cluster_edges = list(cluster_edges)
        self._record_series = record_series
        self._track_edges = track_edges
        self.maxima = SkewMaxima()
        self.series: list[SkewSnapshot] = []
        self._event = None

    def start(self) -> None:
        """Take a first sample now and re-arm every ``interval``."""
        if self._event is not None:
            raise ConfigError("sampler already started")
        self.sample_now()
        self._event = self._sim.call_repeating(self._interval,
                                               self.sample_now)

    def stop(self) -> None:
        if self._event is not None:
            self._sim.cancel(self._event)
            self._event = None

    def sample_now(self) -> SkewSnapshot:
        """Take one sample immediately (also updates maxima)."""
        values = self._collector()
        if isinstance(values, dict):
            values = [(c, list(vals.values()))
                      for c, vals in values.items()]
        snap = compute_snapshot_grouped(
            self._sim.now, values, self._cluster_edges,
            include_edges=self._track_edges)
        self.maxima.update(snap)
        if self._record_series:
            self.series.append(snap)
        return snap
