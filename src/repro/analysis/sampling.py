"""Periodic skew sampling during a simulation run.

A :class:`SkewSampler` is a periodic kernel event that snapshots all
correct logical clocks every ``interval`` time units, maintains running
maxima of every skew metric, and (optionally) a full time series plus
per-edge maxima for gradient-profile plots.

Sampling is an *observation* device: it reads clocks without touching
algorithm state, so its cadence affects only measurement resolution,
never the execution.  Skews between samples can exceed the recorded
maxima by at most ``(theta_max - 1) * interval``, which is negligible
for the default cadence of a quarter round.

Sampling is also the measurement hot path — for every event the
algorithm fires, the sampler reads every correct clock several times
per round.  The sampler therefore (a) re-arms one repeating kernel
event (:meth:`~repro.sim.kernel.Simulator.call_repeating`) instead of
allocating a fresh event per tick, (b) accepts *grouped* collectors
that fill preallocated flat per-cluster buffers
(:func:`~repro.analysis.metrics.compute_snapshot_grouped`) instead of
rebuilding nested dicts each sample, and (c) when a series is
recorded, appends each tick's metrics into a preallocated
:class:`SampleBuffer` (numpy-backed where available, :mod:`array`
fallback) through the allocation-free
:func:`~repro.analysis.metrics.accumulate_grouped` kernel — no
:class:`~repro.analysis.metrics.SkewSnapshot` object is built per
tick; the snapshot list materializes lazily on access and is
bit-identical to the historical eager form.  Collectors returning the
legacy ``{cluster: {node: value}}`` form keep working.

Horizon boundary rule
---------------------
A tick landing nominally at ``t == horizon`` **fires** — the same rule
periodic topology schedules pinned down
(:func:`~repro.topology.schedule.tick_count` /
:func:`~repro.topology.schedule.clamp_tick`).  The repeating-event
form accumulates ``t += interval`` and is therefore exposed to the
same float drift that can push the final tick a few ulps past the
horizon, where ``Simulator.run(until=horizon)`` never fires it.  Pass
``horizon=`` to :meth:`SkewSampler.start` when the run's end is known:
the sampler then derives the tick count by division and clamps the
final tick's timestamp to the horizon, so a run of exactly ``N``
intervals always yields ``N + 1`` samples (the start sample plus one
per tick).  Without a horizon (the open-ended system path, where runs
may be extended) the legacy repeating event is used unchanged.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass, field
from typing import Callable, Union

from repro.analysis.metrics import (
    SkewSnapshot,
    accumulate_grouped,
    compute_snapshot_grouped,
)
from repro.errors import ConfigError
from repro.sim.kernel import Simulator
from repro.topology.schedule import clamp_tick, tick_count

try:  # pragma: no cover - exercised via whichever backend exists
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

#: ``collector()`` returning correct clock values either grouped as
#: ``[(cluster, values), ...]`` (fast path, buffers may be reused) or
#: as the legacy nested ``{cluster: {node: value}}`` dict.
Collector = Callable[[], Union[
    "list[tuple[int, list[float]]]",
    "dict[int, dict[int, float]]"]]

#: Per-sample metric columns held by :class:`SampleBuffer`, in order.
SAMPLE_COLUMNS = ("time", "global_skew", "max_intra_cluster",
                  "max_local_cluster", "max_local_node")


class SampleBuffer:
    """Flat preallocated per-metric columns for skew samples.

    One growable float column per entry of :data:`SAMPLE_COLUMNS`.
    With numpy available the columns are preallocated ``float64``
    arrays grown by doubling; otherwise :class:`array.array` columns
    (C doubles, amortized append) are used.  Either way, recording a
    sample costs five scalar stores — no dict, tuple, or dataclass is
    allocated per tick.
    """

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ConfigError(f"capacity must be >= 1: {capacity!r}")
        self._length = 0
        if _np is not None:
            self._numpy = True
            self._columns = [_np.empty(capacity) for _ in SAMPLE_COLUMNS]
        else:
            self._numpy = False
            self._columns = [array("d") for _ in SAMPLE_COLUMNS]

    def __len__(self) -> int:
        return self._length

    def append(self, time: float, global_skew: float, intra: float,
               local_cluster: float, local_node: float) -> None:
        """Record one sample (five scalar stores on the hot path)."""
        i = self._length
        columns = self._columns
        if self._numpy:
            if i == len(columns[0]):
                self._columns = columns = [
                    _np.concatenate([col, _np.empty(len(col))])
                    for col in columns]
            columns[0][i] = time
            columns[1][i] = global_skew
            columns[2][i] = intra
            columns[3][i] = local_cluster
            columns[4][i] = local_node
        else:
            columns[0].append(time)
            columns[1].append(global_skew)
            columns[2].append(intra)
            columns[3].append(local_cluster)
            columns[4].append(local_node)
        self._length = i + 1

    def column(self, name: str) -> list[float]:
        """One metric column as a plain float list (length == len(self))."""
        try:
            index = SAMPLE_COLUMNS.index(name)
        except ValueError:
            raise ConfigError(f"unknown sample column {name!r}; known: "
                              f"{SAMPLE_COLUMNS}") from None
        return [float(v) for v in self._columns[index][:self._length]]

    def row(self, index: int) -> tuple[float, float, float, float, float]:
        """One sample's ``(time, global, intra, local_cluster,
        local_node)``."""
        if not 0 <= index < self._length:
            raise IndexError(index)
        return tuple(float(col[index]) for col in self._columns)


@dataclass
class SkewMaxima:
    """Running maxima over all samples taken so far."""

    global_skew: float = 0.0
    intra_cluster: float = 0.0
    local_cluster: float = 0.0
    local_node: float = 0.0
    samples: int = 0
    edge_maxima: dict[tuple[int, int], float] = field(default_factory=dict)

    def update(self, snap: SkewSnapshot) -> None:
        self.global_skew = max(self.global_skew, snap.global_skew)
        self.intra_cluster = max(self.intra_cluster, snap.max_intra_cluster)
        self.local_cluster = max(self.local_cluster, snap.max_local_cluster)
        self.local_node = max(self.local_node, snap.max_local_node)
        self.samples += 1
        for edge, skew in snap.edge_skews.items():
            if skew > self.edge_maxima.get(edge, 0.0):
                self.edge_maxima[edge] = skew


class SkewSampler:
    """Periodic skew probe driven by one repeating kernel event.

    Parameters
    ----------
    sim:
        The simulation kernel.
    interval:
        Sampling period (Newtonian time).
    collector:
        Returns the current correct clock values (see
        :data:`Collector`).
    cluster_edges:
        Edge list of the cluster graph ``G``.
    record_series:
        Keep the full metric series (buffered; ``series`` materializes
        :class:`~repro.analysis.metrics.SkewSnapshot` objects lazily).
    track_edges:
        Maintain per-edge cluster-skew maxima (needed for profiles).
    """

    def __init__(self, sim: Simulator, interval: float,
                 collector: Collector,
                 cluster_edges: list[tuple[int, int]],
                 record_series: bool = False,
                 track_edges: bool = False) -> None:
        if interval <= 0:
            raise ConfigError(f"interval must be positive: {interval!r}")
        self._sim = sim
        self._interval = interval
        self._collector = collector
        self._cluster_edges = list(cluster_edges)
        self._record_series = record_series
        self._track_edges = track_edges
        self.maxima = SkewMaxima()
        self._buffer = SampleBuffer() if record_series else None
        #: Per-sample edge-skew dicts (parallel to the buffer); only
        #: kept when both the series and edges are recorded.
        self._edge_series: list[dict[tuple[int, int], float]] = []
        self._event = None
        #: Guards double-start; distinct from ``_event`` because the
        #: horizon-bounded form clears its event once the tick budget
        #: is exhausted while remaining logically started (``stop()``
        #: resets it, so stop-then-restart keeps working).
        self._started = False
        #: One-shot scheduling state for the horizon-bounded form.
        self._ticks_remaining = 0
        self._next_tick = 0.0
        self._horizon: float | None = None

    @property
    def series(self) -> list[SkewSnapshot]:
        """The recorded series as :class:`SkewSnapshot` objects.

        Materialized from the flat buffer on access (the buffer itself
        never allocates per tick); values are bit-identical to the
        historical eagerly-built list.
        """
        buffer = self._buffer
        if buffer is None:
            return []
        edge_series = self._edge_series
        if edge_series:
            return [SkewSnapshot(*buffer.row(i), edge_skews=edge_series[i])
                    for i in range(len(buffer))]
        return [SkewSnapshot(*buffer.row(i)) for i in range(len(buffer))]

    def start(self, horizon: float | None = None) -> None:
        """Take a first sample now and re-arm every ``interval``.

        ``horizon`` opts into the horizon boundary rule (module
        docstring): exactly ``tick_count(interval, horizon - now)``
        further ticks fire, the final one clamped to ``horizon`` so
        float drift in the accumulated tick time can never drop it
        past a ``run(until=horizon)`` window.  Without it the sampler
        rides one open-ended repeating event (the historical
        behavior, bit-identical for existing callers).
        """
        if self._started:
            raise ConfigError("sampler already started")
        self._started = True
        now = self._sim.now
        if horizon is not None:
            if horizon < now:
                raise ConfigError(
                    f"horizon {horizon!r} precedes now {now!r}")
            self.sample_now()
            self._horizon = horizon
            self._ticks_remaining = tick_count(self._interval,
                                               horizon - now)
            self._next_tick = now
            self._arm_next()
            return
        self.sample_now()
        self._event = self._sim.call_repeating(self._interval,
                                               self._sample_tick)

    def _arm_next(self) -> None:
        if self._ticks_remaining <= 0:
            self._event = None
            return
        self._ticks_remaining -= 1
        t = self._next_tick + self._interval
        self._next_tick = t
        self._event = self._sim.call_at(
            clamp_tick(t, self._horizon), self._bounded_tick)

    def _bounded_tick(self) -> None:
        self._sample_tick()
        self._arm_next()

    def stop(self) -> None:
        if self._event is not None:
            self._sim.cancel(self._event)
            self._event = None
        self._ticks_remaining = 0
        self._started = False

    def _sample_tick(self) -> None:
        """Take one sample without allocating a snapshot (hot path)."""
        values = self._collector()
        if isinstance(values, dict):
            values = [(c, list(vals.values()))
                      for c, vals in values.items()]
        maxima = self.maxima
        record = self._record_series
        edge_out = None
        if self._track_edges:
            if record:
                edge_out = {}
                self._edge_series.append(edge_out)
            global_skew, intra, local_cluster, local_node = (
                accumulate_grouped(values, self._cluster_edges,
                                   edge_maxima=maxima.edge_maxima,
                                   edge_out=edge_out))
        else:
            global_skew, intra, local_cluster, local_node = (
                accumulate_grouped(values, self._cluster_edges))
        if global_skew > maxima.global_skew:
            maxima.global_skew = global_skew
        if intra > maxima.intra_cluster:
            maxima.intra_cluster = intra
        if local_cluster > maxima.local_cluster:
            maxima.local_cluster = local_cluster
        if local_node > maxima.local_node:
            maxima.local_node = local_node
        maxima.samples += 1
        if record:
            self._buffer.append(self._sim.now, global_skew, intra,
                                local_cluster, local_node)

    def sample_now(self) -> SkewSnapshot:
        """Take one sample immediately (also updates maxima)."""
        values = self._collector()
        if isinstance(values, dict):
            values = [(c, list(vals.values()))
                      for c, vals in values.items()]
        snap = compute_snapshot_grouped(
            self._sim.now, values, self._cluster_edges,
            include_edges=self._track_edges)
        self.maxima.update(snap)
        if self._record_series:
            self._buffer.append(snap.time, snap.global_skew,
                                snap.max_intra_cluster,
                                snap.max_local_cluster,
                                snap.max_local_node)
            if self._track_edges:
                self._edge_series.append(snap.edge_skews)
        return snap
