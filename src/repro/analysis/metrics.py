"""Skew metrics over snapshots of logical clock values.

The quantities the paper bounds:

* **intra-cluster skew** — ``max - min`` of correct logical clocks in
  one cluster (Corollary 3.2 bounds it by ``2 theta_g E``);
* **cluster clock** — ``L_C = (L^+_C + L^-_C) / 2`` (Definition 3.3);
* **cluster-level local skew** — ``|L_B - L_C|`` over ``(B, C) in E``
  (Theorem 4.10 / Theorem 1.1 bound it by ``O(kappa log D)``);
* **node-level local skew** — ``|L_v - L_w|`` over node edges of the
  augmented graph (Theorem 1.1's statement);
* **global skew** — ``max - min`` over all correct nodes (Theorem C.3).

Because intercluster links form *complete* bipartite graphs, the
node-level local skew across a cluster edge ``(B, C)`` equals
``max(maxB - minC, maxC - minB)``; everything here is therefore
computed from per-cluster extrema in ``O(|C| + |E|)`` per snapshot.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field


@dataclass(frozen=True)
class ClusterExtrema:
    """Min/max/derived values of one cluster's correct clocks."""

    low: float
    high: float

    @property
    def cluster_clock(self) -> float:
        """Definition 3.3: ``(L^+ + L^-) / 2``."""
        return 0.5 * (self.low + self.high)

    @property
    def spread(self) -> float:
        """Intra-cluster skew ``L^+ - L^-``."""
        return self.high - self.low


def cluster_extrema(values: dict[int, float]) -> ClusterExtrema:
    """Extrema of one cluster's correct clock values (non-empty)."""
    low = min(values.values())
    high = max(values.values())
    return ClusterExtrema(low=low, high=high)


@dataclass
class SkewSnapshot:
    """All skew metrics at one instant."""

    time: float
    global_skew: float
    max_intra_cluster: float
    max_local_cluster: float
    max_local_node: float
    #: cluster-level skew per edge of ``G`` (for gradient profiles).
    edge_skews: dict[tuple[int, int], float] = field(default_factory=dict)


def compute_snapshot_grouped(time: float,
                             groups: list[tuple[int, list[float]]],
                             cluster_edges: list[tuple[int, int]],
                             include_edges: bool = False) -> SkewSnapshot:
    """Compute every skew metric from grouped correct clock values.

    This is the sampling hot path: node identities are irrelevant for
    every metric (only per-cluster extrema matter), so values arrive as
    flat per-cluster sequences in a stable order and the per-cluster
    extrema are held as plain floats in two dicts — no intermediate
    objects are allocated per sample beyond the returned snapshot.

    Parameters
    ----------
    groups:
        ``(cluster, values)`` pairs for *correct* nodes; clusters whose
        correct membership is empty may appear with an empty sequence
        (they are skipped).
    cluster_edges:
        Edge list of ``G``; edges touching skipped clusters are skipped.
    include_edges:
        Also record the per-edge cluster-skew map (costlier to store).
    """
    edge_skews: dict[tuple[int, int], float] | None = (
        {} if include_edges else None)
    global_skew, max_intra, max_local_cluster, max_local_node = (
        accumulate_grouped(groups, cluster_edges, edge_out=edge_skews))
    return SkewSnapshot(
        time=time, global_skew=global_skew,
        max_intra_cluster=max_intra,
        max_local_cluster=max_local_cluster, max_local_node=max_local_node,
        edge_skews=edge_skews if edge_skews is not None else {})


def accumulate_grouped(groups: list[tuple[int, list[float]]],
                       cluster_edges: list[tuple[int, int]],
                       edge_maxima: dict[tuple[int, int], float]
                       | None = None,
                       edge_out: dict[tuple[int, int], float]
                       | None = None) -> tuple[float, float, float, float]:
    """The allocation-free core of :func:`compute_snapshot_grouped`.

    Computes ``(global_skew, max_intra_cluster, max_local_cluster,
    max_local_node)`` as plain floats — no :class:`SkewSnapshot` is
    built, which is what lets a buffered sampler take thousands of
    samples without allocating one object per tick.  ``edge_maxima``
    (running per-edge maxima) is updated in place when given;
    ``edge_out`` (this sample's per-edge skews) is filled when given.
    Both see exactly the values :func:`compute_snapshot_grouped` would
    have produced.
    """
    lows: dict[int, float] = {}
    highs: dict[int, float] = {}
    global_low = global_high = 0.0
    max_intra = 0.0
    first = True
    for cluster, vals in groups:
        if not vals:
            continue
        low = min(vals)
        high = max(vals)
        lows[cluster] = low
        highs[cluster] = high
        if first:
            global_low, global_high = low, high
            first = False
        else:
            if low < global_low:
                global_low = low
            if high > global_high:
                global_high = high
        spread = high - low
        if spread > max_intra:
            max_intra = spread
    if first:
        return (0.0, 0.0, 0.0, 0.0)

    max_local_cluster = 0.0
    max_local_node = max_intra  # clique edges are node edges too
    track = edge_maxima is not None or edge_out is not None
    for edge in cluster_edges:
        a, b = edge
        la = lows.get(a)
        lb = lows.get(b)
        if la is None or lb is None:
            continue
        ha = highs[a]
        hb = highs[b]
        cluster_skew = 0.5 * abs((la + ha) - (lb + hb))
        if cluster_skew > max_local_cluster:
            max_local_cluster = cluster_skew
        node_skew = max(ha - lb, hb - la)
        if node_skew > max_local_node:
            max_local_node = node_skew
        if track:
            if edge_out is not None:
                edge_out[edge] = cluster_skew
            if edge_maxima is not None \
                    and cluster_skew > edge_maxima.get(edge, 0.0):
                edge_maxima[edge] = cluster_skew
    return (global_high - global_low, max_intra, max_local_cluster,
            max_local_node)


def compute_snapshot(time: float,
                     values_by_cluster: dict[int, dict[int, float]],
                     cluster_edges: list[tuple[int, int]],
                     include_edges: bool = False) -> SkewSnapshot:
    """Compute every skew metric from per-cluster correct clock values.

    Convenience wrapper over :func:`compute_snapshot_grouped` for
    callers holding the nested-dict form.

    Parameters
    ----------
    values_by_cluster:
        ``{cluster: {node: L_v(t)}}`` restricted to *correct* nodes;
        clusters whose correct membership is empty must be omitted.
    cluster_edges:
        Edge list of ``G``; edges touching omitted clusters are skipped.
    include_edges:
        Also record the per-edge cluster-skew map (costlier to store).
    """
    groups = [(c, list(vals.values()))
              for c, vals in values_by_cluster.items()]
    return compute_snapshot_grouped(time, groups, cluster_edges,
                                    include_edges=include_edges)


def stabilization_time(samples: "list[tuple[float, float]]",
                       band: float = 1.2,
                       tail_fraction: float = 0.3) -> float:
    """Time by which ``(t, local)`` samples settle into the steady band.

    The steady level is the max local skew over the final
    ``tail_fraction`` of samples; the stabilization time is the time of
    the *last* sample exceeding ``band`` times that level (the first
    sample time when nothing ever exceeds the band — instant
    stability).  Quantifies recovery after topology events, node
    crashes, and message loss; ``nan`` on an empty series.

    Pure float arithmetic in input order, so sweep finish steps using
    it stay bit-identical between serial and pooled runs.
    """
    if not samples:
        return float("nan")
    tail = samples[int(len(samples) * (1.0 - tail_fraction)):]
    steady = max(local for _, local in tail)
    threshold = band * steady
    settle = samples[0][0]
    for t, local in samples:
        if local > threshold:
            settle = t
    return settle


def log_log_fit(xs: "list[float]", ys: "list[float]"
                ) -> tuple[float, float, float]:
    """Least-squares power-law fit ``ln y = intercept + slope * ln x``.

    Returns ``(slope, intercept, rms_residual)`` where the residual is
    the root-mean-square error of the fit in log space.  This is the
    Gradient-TRIX-style regression: fitting measured local skew
    against the trigger unit ``kappa`` (or against the diameter)
    should give slope ~ 1 with a small residual when the skew tracks
    kappa proportionally.  With fewer than two distinct ``x`` values
    the slope is undefined and ``(nan, nan, nan)`` is returned;
    inputs must be positive.

    Pure float arithmetic in input order — no randomness, no
    environment dependence — so finish steps using it stay
    bit-identical between serial and pooled sweeps.
    """
    if len(xs) != len(ys):
        raise ValueError(
            f"log_log_fit needs matched inputs: {len(xs)} vs {len(ys)}")
    if any(x <= 0 for x in xs) or any(y <= 0 for y in ys):
        raise ValueError("log_log_fit needs positive inputs")
    n = len(xs)
    if n < 2 or len(set(xs)) < 2:
        nan = float("nan")
        return (nan, nan, nan)
    lx = [math.log(x) for x in xs]
    ly = [math.log(y) for y in ys]
    mean_x = sum(lx) / n
    mean_y = sum(ly) / n
    sxx = sum((x - mean_x) ** 2 for x in lx)
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(lx, ly))
    slope = sxy / sxx
    intercept = mean_y - slope * mean_x
    sse = sum((y - (intercept + slope * x)) ** 2
              for x, y in zip(lx, ly))
    return (slope, intercept, math.sqrt(sse / n))


def pulse_diameters(pulse_log: dict[tuple[int, int], list[tuple[int, float]]]
                    ) -> dict[tuple[int, int], float]:
    """Per-(cluster, round) pulse diameters ``‖p_C(r)‖`` (Def. B.7).

    ``pulse_log`` maps ``(cluster, round)`` to ``(node, pulse_time)``
    entries of correct members.
    """
    result: dict[tuple[int, int], float] = {}
    for key, entries in pulse_log.items():
        if len(entries) >= 2:
            times = [t for _, t in entries]
            result[key] = max(times) - min(times)
        elif entries:
            result[key] = 0.0
    return result


def unanimity_by_round(mode_logs: dict[int, list[tuple[int, int]]]
                       ) -> dict[int, tuple[bool, int]]:
    """Which rounds a cluster was unanimous in, and in which mode.

    Parameters
    ----------
    mode_logs:
        ``{node: [(round, gamma), ...]}`` for the cluster's correct
        members.

    Returns
    -------
    dict
        ``{round: (unanimous, gamma)}`` where ``gamma`` is meaningful
        only when ``unanimous`` is true.  Rounds not yet reached by all
        members are omitted.
    """
    per_round: dict[int, set[int]] = {}
    for node, entries in mode_logs.items():
        for round_index, gamma in entries:
            per_round.setdefault(round_index, set()).add(gamma)
    expected = len(mode_logs)
    result: dict[int, tuple[bool, int]] = {}
    counts: dict[int, int] = {}
    for node, entries in mode_logs.items():
        for round_index, _ in entries:
            counts[round_index] = counts.get(round_index, 0) + 1
    for round_index, gammas in per_round.items():
        if counts.get(round_index, 0) != expected:
            continue
        if len(gammas) == 1:
            result[round_index] = (True, next(iter(gammas)))
        else:
            result[round_index] = (False, -1)
    return result
