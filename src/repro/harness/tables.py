"""Plain-text result tables for the experiment harness.

Every experiment returns a :class:`Table`; benchmarks print it, and
EXPERIMENTS.md records the rows.  Keeping this dependency-free (no
pandas/rich) matches the offline environment.
"""

from __future__ import annotations

import csv
import io
import json
import math
from dataclasses import dataclass, field
from typing import Any

from repro.errors import ConfigError


def _json_value(value: Any) -> Any:
    """Strict-JSON-safe cell: non-finite floats become the JavaScript
    spelling (``"NaN"``, ``"Infinity"``, ``"-Infinity"``) — strict
    parsers reject the bare tokens ``json.dumps`` would emit."""
    if isinstance(value, float) and not math.isfinite(value):
        if math.isnan(value):
            return "NaN"
        return "Infinity" if value > 0 else "-Infinity"
    return value


def _fmt(value: Any) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1e5 or magnitude < 1e-3:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


@dataclass
class Table:
    """A titled, column-aligned result table."""

    title: str
    columns: list[str]
    rows: list[tuple] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, *values: Any) -> None:
        if len(values) != len(self.columns):
            raise ConfigError(
                f"row has {len(values)} cells for {len(self.columns)} "
                f"columns")
        self.rows.append(tuple(values))

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def column(self, name: str) -> list[Any]:
        """All values of one column (for assertions in tests)."""
        try:
            index = self.columns.index(name)
        except ValueError:
            raise ConfigError(f"no column {name!r} in {self.columns}")
        return [row[index] for row in self.rows]

    def format(self) -> str:
        cells = [[_fmt(v) for v in row] for row in self.rows]
        widths = [len(c) for c in self.columns]
        for row in cells:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = [self.title, "=" * len(self.title)]
        header = "  ".join(c.ljust(widths[i])
                           for i, c in enumerate(self.columns))
        lines.append(header)
        lines.append("-" * len(header))
        for row in cells:
            lines.append("  ".join(cell.ljust(widths[i])
                                   for i, cell in enumerate(row)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def to_dict(self, json_safe: bool = False) -> dict:
        """Plain-data form (title, columns, rows, notes).

        ``json_safe=True`` replaces non-finite floats with their
        string spelling so the result survives strict JSON encoders.
        """
        rows = [list(row) for row in self.rows]
        if json_safe:
            rows = [[_json_value(value) for value in row]
                    for row in rows]
        return {
            "title": self.title,
            "columns": list(self.columns),
            "rows": rows,
            "notes": list(self.notes),
        }

    def to_json(self, indent: int | None = None) -> str:
        """Strict JSON form of :meth:`to_dict` (non-finite floats as
        ``"NaN"``/``"Infinity"`` strings, never bare tokens)."""
        return json.dumps(self.to_dict(json_safe=True), indent=indent,
                          allow_nan=False)

    def to_csv(self) -> str:
        """CSV form: one header row of column names, then raw values
        (no display rounding; notes and title are not included)."""
        buffer = io.StringIO()
        writer = csv.writer(buffer, lineterminator="\n")
        writer.writerow(self.columns)
        writer.writerows(self.rows)
        return buffer.getvalue()

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.format()
