"""The experiment registry: one entry point for every table.

Each of the paper's experiments (T1–T12) and the follow-on
workloads (T13+) is registered as an
:class:`Experiment`: metadata (id, title, claim, table schema, default
seed) plus a *plan* function that compiles ``(quick, seed)`` into an
:class:`ExperimentPlan` — a declarative grid of picklable
:class:`~repro.harness.sweep.ScenarioSpec` cells and a pure ``finish``
step that folds the executed cells into a
:class:`~repro.harness.tables.Table`.

Execution is uniform: :func:`run_experiment` (or
:meth:`ExperimentRegistry.run`) builds the plan, fans the grid across
:class:`~repro.harness.sweep.SweepRunner` — worker-count resolution
goes through the shared
:func:`~repro.harness.sweep.default_processes` helper (explicit >
``REPRO_SWEEP_PROCESSES`` > serial) — and finishes the table.
Per-cell results are bit-identical for any worker count, so the table
never depends on the pool size.

>>> from repro.harness import run_experiment
>>> table = run_experiment("t05", quick=True, processes=4)
>>> print(table.format())                          # doctest: +SKIP
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator, Sequence

from repro.errors import ConfigError
from repro.harness.sweep import ScenarioSpec, SweepCellResult, SweepRunner
from repro.harness.tables import Table

#: ``finish(cells, table) -> table`` — folds executed cells into the
#: experiment's table (the table arrives pre-built from the metadata
#: schema; ``finish`` adds rows and notes).
FinishFn = Callable[[Sequence[SweepCellResult], Table], Table]


@dataclass(frozen=True)
class ExperimentPlan:
    """A compiled experiment: the cell grid and the analysis step."""

    specs: list[ScenarioSpec]
    finish: FinishFn


#: ``plan(quick, seed) -> ExperimentPlan``
PlanFn = Callable[[bool, int], ExperimentPlan]


@dataclass(frozen=True)
class Experiment:
    """One registered experiment: metadata plus its plan compiler."""

    id: str
    title: str
    claim: str
    columns: tuple[str, ...]
    plan: PlanFn
    default_seed: int = 0
    tags: tuple[str, ...] = field(default=())

    def make_table(self) -> Table:
        """An empty table with this experiment's schema."""
        return Table(title=self.title, columns=list(self.columns))


class ExperimentRegistry:
    """Id-addressable experiments with one uniform run path."""

    def __init__(self) -> None:
        self._experiments: dict[str, Experiment] = {}

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------

    def add(self, experiment: Experiment) -> None:
        if experiment.id in self._experiments:
            raise ConfigError(
                f"experiment {experiment.id!r} already registered")
        if not experiment.id or not experiment.title \
                or not experiment.claim or not experiment.columns:
            raise ConfigError(
                f"experiment {experiment.id!r} needs id, title, claim, "
                f"and columns")
        self._experiments[experiment.id] = experiment

    def experiment(self, id: str, *, title: str, claim: str,
                   columns: Sequence[str], default_seed: int = 0,
                   tags: Sequence[str] = ()) -> Callable[[PlanFn], PlanFn]:
        """Decorator: register ``plan(quick, seed)`` under ``id``."""

        def decorate(plan: PlanFn) -> PlanFn:
            self.add(Experiment(
                id=id, title=title, claim=claim, columns=tuple(columns),
                plan=plan, default_seed=default_seed, tags=tuple(tags)))
            return plan

        return decorate

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def _loaded(self) -> dict[str, Experiment]:
        _load_builtin_experiments()
        return self._experiments

    def get(self, id: str) -> Experiment:
        experiments = self._loaded()
        experiment = experiments.get(id)
        if experiment is None:
            raise ConfigError(
                f"unknown experiment {id!r}; known: "
                f"{', '.join(sorted(experiments))}")
        return experiment

    def ids(self) -> list[str]:
        return sorted(self._loaded())

    def __iter__(self) -> Iterator[Experiment]:
        experiments = self._loaded()
        return iter(experiments[id] for id in sorted(experiments))

    def __contains__(self, id: str) -> bool:
        return id in self._loaded()

    def __len__(self) -> int:
        return len(self._loaded())

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def run(self, id: str, *, quick: bool = True,
            processes: int | None = None,
            seed: int | None = None,
            engine: str | None = None) -> Table:
        """Plan, sweep, and finish one experiment's table.

        ``processes`` resolves through
        :func:`~repro.harness.sweep.default_processes` (explicit >
        ``REPRO_SWEEP_PROCESSES`` > serial); the output is identical
        for any worker count.  ``seed`` defaults to the experiment's
        registered seed — the one the published tables use.
        ``engine`` overrides the execution backend of every *protocol*
        cell in the plan (non-protocol kinds — ``failure_mc`` etc. —
        are left alone); the named protocols must all support it, or
        the sweep fails eagerly in the builder.
        """
        experiment = self.get(id)
        if seed is None:
            seed = experiment.default_seed
        plan = experiment.plan(quick=quick, seed=seed)
        specs = plan.specs
        if engine is not None:
            from dataclasses import replace

            from repro.core.protocol import ENGINES
            if engine not in ENGINES:
                raise ConfigError(f"unknown engine {engine!r}; known: "
                                  f"{list(ENGINES)}")
            protocol_kinds = {"protocol", "ftgcs", "master_slave",
                              "gcs_single", "srikanth_toueg"}
            specs = [replace(spec, engine=engine)
                     if spec.kind in protocol_kinds else spec
                     for spec in specs]
        cells = SweepRunner(processes).run(specs, base_seed=seed)
        return plan.finish(cells, experiment.make_table())


#: The process-wide registry holding T1–T18 (and any extensions).
REGISTRY = ExperimentRegistry()

_builtin_loaded = False


def _load_builtin_experiments() -> None:
    """Populate :data:`REGISTRY` with the built-in suite on first use.

    Importing :mod:`repro.harness.experiments` runs the registration
    decorators; deferring it keeps ``registry`` importable from the
    experiment definitions themselves without a cycle.
    """
    global _builtin_loaded
    if _builtin_loaded:
        return
    import repro.harness.experiments  # noqa: F401  (registers T1-T18)

    # Only after the import succeeds: a partial failure must re-raise
    # on the next call, not leave a silently truncated registry.
    _builtin_loaded = True


def run_experiment(id: str, *, quick: bool = True,
                   processes: int | None = None,
                   seed: int | None = None,
                   engine: str | None = None) -> Table:
    """Run one registered experiment (see :meth:`ExperimentRegistry.run`)."""
    return REGISTRY.run(id, quick=quick, processes=processes, seed=seed,
                        engine=engine)


__all__ = [
    "Experiment",
    "ExperimentPlan",
    "ExperimentRegistry",
    "REGISTRY",
    "run_experiment",
]
