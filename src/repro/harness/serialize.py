"""Canonical JSON-safe serialization for specs and sweep results.

The simulation service (``repro.service``) needs two things plain
:mod:`json` cannot give it:

1. **Round-tripping specs.**  A :class:`~repro.harness.sweep.ScenarioSpec`
   carries tuples (``key``, ``graph_args``), dataclasses
   (:class:`~repro.core.params.Parameters`, baseline parameter sets in
   ``payload``), and occasionally non-finite floats (``Parameters.eps``
   is NaN for raw ``custom`` builds).  ``POST /jobs`` bodies and the
   on-disk scenario library must encode all of that and decode it back
   *bit-identically*, so a served run is indistinguishable from a
   direct ``run_experiment``.
2. **Round-tripping results.**  The content-addressed result store
   persists whole :class:`~repro.harness.sweep.SweepCellResult` objects
   — :class:`~repro.core.protocol.ProtocolRunResult` with a
   :class:`~repro.core.system.RunResult` detail, skew-snapshot series,
   ``edge_maxima`` dicts keyed by int tuples — as JSON.  Experiment
   ``finish`` steps then fold *decoded* cells into tables, so decoding
   must reproduce the exact objects (types, tuple-ness, float bits)
   the worker produced.

Both ride one tagged, recursive codec:

- JSON natives (``None``, ``bool``, ``int``, ``str``, finite
  ``float``, lists, str-keyed dicts) pass through untouched.
- Tuples become ``{"__tuple__": [...]}``.
- Non-finite floats become ``{"__float__": "nan" | "inf" | "-inf"}``
  (strict encoders reject the bare tokens).
- Dicts with non-string keys (or keys colliding with the tag
  namespace) become ``{"__map__": [[key, value], ...]}`` with
  insertion order preserved.
- Registered dataclasses become ``{"__dc__": "<name>",
  "fields": {...}}``; decoding instantiates the registered class with
  the decoded fields.  Only classes registered via
  :func:`register_serializable` decode — unknown tags raise
  :class:`~repro.errors.ConfigError` rather than silently producing a
  dict.

Float exactness: ``json.dumps`` emits ``repr(float)``, Python's
shortest round-trip representation, so every finite float decodes to
the identical bit pattern — the foundation of the service's
"byte-identical to a direct run" guarantee.

:func:`canonical_json` (sorted keys, minimal separators) is the
hashing form: the same value always encodes to the same byte string
across processes and Python versions, which is what makes the BLAKE2b
spec hash (:func:`content_hash`) a safe cache key.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import math
from typing import Any

from repro.errors import ConfigError

_TUPLE = "__tuple__"
_FLOAT = "__float__"
_MAP = "__map__"
_DC = "__dc__"

_TAGS = frozenset({_TUPLE, _FLOAT, _MAP, _DC})

#: name -> dataclass type, for decoding tagged dataclasses.
_SERIALIZABLE: dict[str, type] = {}


def register_serializable(cls: type, name: str | None = None) -> type:
    """Register a dataclass for tagged encoding/decoding.

    Usable as a decorator.  The registered ``name`` (default: the
    class name) is what travels in the JSON; re-registering the same
    class under the same name is a no-op, a *different* class under a
    taken name is an error.
    """
    if not dataclasses.is_dataclass(cls):
        raise ConfigError(
            f"register_serializable needs a dataclass: {cls!r}")
    key = name or cls.__name__
    existing = _SERIALIZABLE.get(key)
    if existing is not None and existing is not cls:
        raise ConfigError(
            f"serializable name {key!r} already taken by {existing!r}")
    _SERIALIZABLE[key] = cls
    return cls


def serializable_names() -> list[str]:
    """Registered dataclass tag names (sorted)."""
    return sorted(_SERIALIZABLE)


def _encode_float(value: float) -> Any:
    if math.isnan(value):
        return {_FLOAT: "nan"}
    return {_FLOAT: "inf" if value > 0 else "-inf"}


def encode(value: Any) -> Any:
    """Recursively encode ``value`` into JSON-dumpable plain data."""
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        if math.isfinite(value):
            return value
        return _encode_float(value)
    if isinstance(value, tuple):
        return {_TUPLE: [encode(item) for item in value]}
    if isinstance(value, list):
        return [encode(item) for item in value]
    if isinstance(value, dict):
        plain = all(isinstance(key, str) for key in value)
        if plain and not any(key in _TAGS for key in value):
            return {key: encode(item) for key, item in value.items()}
        return {_MAP: [[encode(key), encode(item)]
                       for key, item in value.items()]}
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        name = type(value).__name__
        registered = _SERIALIZABLE.get(name)
        if registered is None or not isinstance(value, registered):
            raise ConfigError(
                f"cannot serialize unregistered dataclass "
                f"{type(value).__module__}.{name}; call "
                f"register_serializable first")
        omit_empty = getattr(registered, "_SERIALIZE_OMIT_EMPTY", ())
        fields = {f.name: encode(getattr(value, f.name))
                  for f in dataclasses.fields(value)
                  if f.name not in omit_empty or getattr(value, f.name)}
        return {_DC: name, "fields": fields}
    raise ConfigError(
        f"cannot serialize {type(value).__name__!r} value: {value!r}")


def decode(value: Any) -> Any:
    """Invert :func:`encode`; unknown tags raise ``ConfigError``."""
    if isinstance(value, list):
        return [decode(item) for item in value]
    if not isinstance(value, dict):
        return value
    if _TUPLE in value:
        return tuple(decode(item) for item in value[_TUPLE])
    if _FLOAT in value:
        token = value[_FLOAT]
        if token == "nan":
            return math.nan
        if token == "inf":
            return math.inf
        if token == "-inf":
            return -math.inf
        raise ConfigError(f"bad {_FLOAT} token: {token!r}")
    if _MAP in value:
        return {decode(key): decode(item) for key, item in value[_MAP]}
    if _DC in value:
        name = value[_DC]
        cls = _SERIALIZABLE.get(name)
        if cls is None:
            raise ConfigError(
                f"unknown serializable dataclass {name!r}; known: "
                f"{serializable_names()}")
        fields = {key: decode(item)
                  for key, item in value.get("fields", {}).items()}
        return cls(**fields)
    return {key: decode(item) for key, item in value.items()}


def canonical_json(value: Any) -> str:
    """The canonical (hashable) JSON text of an encodable value.

    Sorted keys and minimal separators: the same value produces the
    same byte string in every process, every time.
    """
    return json.dumps(encode(value), sort_keys=True,
                      separators=(",", ":"), allow_nan=False)


def content_hash(value: Any, *, digest_size: int = 20) -> str:
    """Hex BLAKE2b digest of :func:`canonical_json` — the cache key."""
    payload = canonical_json(value).encode("utf-8")
    return hashlib.blake2b(payload, digest_size=digest_size).hexdigest()


def _register_builtin_types() -> None:
    """Register every dataclass that travels in specs or results.

    Specs carry :class:`Parameters` and the baseline parameter sets;
    results carry the full protocol-result object graph.  Registering
    them here (import time) keeps ``encode``/``decode`` symmetric in
    every process, including pool workers and the served job path.
    """
    from repro.analysis.bounds import BoundsReport
    from repro.analysis.metrics import SkewSnapshot
    from repro.analysis.sampling import SkewMaxima
    from repro.baselines.gcs_single import GcsParams
    from repro.baselines.srikanth_toueg import StParams
    from repro.core.params import Parameters
    from repro.core.protocol import ProtocolRunResult
    from repro.core.system import RunResult

    for cls in (Parameters, GcsParams, StParams, BoundsReport,
                SkewSnapshot, SkewMaxima, RunResult, ProtocolRunResult):
        register_serializable(cls)


_register_builtin_types()


__all__ = [
    "canonical_json",
    "content_hash",
    "decode",
    "encode",
    "register_serializable",
    "serializable_names",
]
