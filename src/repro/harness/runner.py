"""Shared helpers for the experiment definitions.

These wrap common scenario shapes — "line under attack", "steady-state
tail measurement", "gradient initialization" — so each experiment in
:mod:`repro.harness.experiments` reads as a parameter table rather than
wiring code.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.params import Parameters
from repro.core.system import FtgcsSystem, RunResult, SystemConfig
from repro.faults.placement import place_everywhere
from repro.faults.strategies import ByzantineStrategy
from repro.topology.cluster_graph import ClusterGraph


def default_params(rho: float = 1e-4, d: float = 1.0, u: float = 0.1,
                   f: int = 1, **kwargs) -> Parameters:
    """The parameter set shared by most experiments."""
    return Parameters.practical(rho=rho, d=d, u=u, f=f, **kwargs)


def steady_state_skews(series, tail_fraction: float = 0.5
                       ) -> dict[str, float]:
    """Max skews over the last ``tail_fraction`` of a sample series.

    Excludes the initialization transient, which is governed by the
    (arbitrary) initial jitter rather than by the algorithm.
    """
    if not series:
        raise ValueError("scenario must run with record_series=True")
    start = int(len(series) * (1.0 - tail_fraction))
    tail = series[start:]
    return {
        "global": max(s.global_skew for s in tail),
        "intra": max(s.max_intra_cluster for s in tail),
        "local_cluster": max(s.max_local_cluster for s in tail),
        "local_node": max(s.max_local_node for s in tail),
    }


@dataclass
class ScenarioResult:
    """A run plus the system (for post-hoc analysis accessors)."""

    system: FtgcsSystem
    result: RunResult

    def steady_state_skews(self, tail_fraction: float = 0.5
                           ) -> dict[str, float]:
        """Max skews over the last ``tail_fraction`` of samples."""
        return steady_state_skews(self.result.series, tail_fraction)


def run_scenario(graph: ClusterGraph, params: Parameters, *,
                 rounds: int, seed: int = 0,
                 strategy_factory=None,
                 faults_per_cluster: int | None = None,
                 config: SystemConfig | None = None) -> ScenarioResult:
    """Build and run one system, optionally with faults everywhere.

    The passed ``config`` is never modified: measurement defaults
    (``sample_interval``, ``record_series``, ``track_edges``) and fault
    placement are applied to a private copy, so one config object can
    be reused across scenarios.
    """
    if config is None:
        config = SystemConfig()
    else:
        config = replace(config)
    if config.sample_interval is None:
        config.sample_interval = params.round_length / 4.0
    config.record_series = True
    config.track_edges = True
    if strategy_factory is not None:
        per_cluster = (faults_per_cluster if faults_per_cluster
                       is not None else params.f)
        aug = graph.augment(params.cluster_size)
        config.byzantine = place_everywhere(aug, per_cluster,
                                            strategy_factory)
    system = FtgcsSystem.build(graph, params, seed=seed, config=config)
    result = system.run_rounds(rounds)
    return ScenarioResult(system=system, result=result)


def gradient_offsets(num_clusters: int, per_edge: float) -> list[float]:
    """Linearly increasing cluster offsets: cluster i at ``i*per_edge``."""
    return [i * per_edge for i in range(num_clusters)]


def step_offsets(num_clusters: int, step_at: int,
                 height: float) -> list[float]:
    """Step function: clusters ``>= step_at`` offset by ``height``."""
    return [height if i >= step_at else 0.0
            for i in range(num_clusters)]
