"""Shared helpers for the experiment definitions.

These wrap common scenario shapes — "line under attack", "steady-state
tail measurement", "gradient initialization" — so each experiment in
:mod:`repro.harness.experiments` reads as a parameter table rather than
wiring code.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.params import Parameters
from repro.core.system import FtgcsSystem, RunResult, SystemConfig
from repro.topology.cluster_graph import ClusterGraph


def default_params(rho: float = 1e-4, d: float = 1.0, u: float = 0.1,
                   f: int = 1, **kwargs) -> Parameters:
    """The parameter set shared by most experiments."""
    return Parameters.practical(rho=rho, d=d, u=u, f=f, **kwargs)


def steady_state_skews(series, tail_fraction: float = 0.5
                       ) -> dict[str, float]:
    """Max skews over the last ``tail_fraction`` of a sample series.

    Excludes the initialization transient, which is governed by the
    (arbitrary) initial jitter rather than by the algorithm.
    """
    if not series:
        raise ValueError("scenario must run with record_series=True")
    start = int(len(series) * (1.0 - tail_fraction))
    tail = series[start:]
    return {
        "global": max(s.global_skew for s in tail),
        "intra": max(s.max_intra_cluster for s in tail),
        "local_cluster": max(s.max_local_cluster for s in tail),
        "local_node": max(s.max_local_node for s in tail),
    }


@dataclass
class ScenarioResult:
    """A run plus the system (for post-hoc analysis accessors)."""

    system: FtgcsSystem
    result: RunResult

    def steady_state_skews(self, tail_fraction: float = 0.5
                           ) -> dict[str, float]:
        """Max skews over the last ``tail_fraction`` of samples."""
        return steady_state_skews(self.result.series, tail_fraction)


def run_scenario(graph: ClusterGraph, params: Parameters, *,
                 rounds: int, seed: int = 0,
                 strategy_factory=None,
                 faults_per_cluster: int | None = None,
                 config: SystemConfig | None = None) -> ScenarioResult:
    """Build and run one system, optionally with faults everywhere.

    The passed ``config`` is never modified: measurement defaults
    (``sample_interval``, ``record_series``, ``track_edges``) and fault
    placement are applied to a private copy, so one config object can
    be reused across scenarios.  The defaults come from the same
    :func:`repro.protocols.prepare_ftgcs_config` helper the unified
    ``ftgcs`` protocol uses, so the two paths cannot drift.
    """
    # Function-level import: repro.protocols pulls in every algorithm
    # module, which this frequently-imported helper module should not
    # load eagerly.
    from repro.protocols import prepare_ftgcs_config

    config = prepare_ftgcs_config(
        graph, params, config=config, strategy_factory=strategy_factory,
        faults_per_cluster=faults_per_cluster)
    system = FtgcsSystem.build(graph, params, seed=seed, config=config)
    result = system.run_rounds(rounds)
    return ScenarioResult(system=system, result=result)


def gradient_offsets(num_clusters: int, per_edge: float) -> list[float]:
    """Linearly increasing cluster offsets: cluster i at ``i*per_edge``."""
    return [i * per_edge for i in range(num_clusters)]


def step_offsets(num_clusters: int, step_at: int,
                 height: float) -> list[float]:
    """Step function: clusters ``>= step_at`` offset by ``height``."""
    return [height if i >= step_at else 0.0
            for i in range(num_clusters)]
