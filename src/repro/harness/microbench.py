"""Dependency-free microbenchmarks of the simulation substrate.

Shared by ``python -m repro bench-quick`` (pre-merge smoke check,
finishes well under a minute) and ``benchmarks/record_baseline.py``
(dumps the numbers to ``BENCH_kernel.json`` so the perf trajectory is
tracked PR over PR).  The workloads mirror ``benchmarks/bench_kernel.py``
— event dispatch, alarm inversion under rate changes, a full system
round — plus the vectorized round engine's rounds/second on a 2e4-node
caterpillar and a small sweep-grid measurement comparing the serial
path against a worker pool.

Timing uses best-of-``repeats`` wall clock: simulations are
deterministic, so the minimum is the least-noise estimate.
"""

from __future__ import annotations

import os
import random
import time
from typing import Callable

from repro.clocks import ConstantRate, HardwareClock, LogicalClock
from repro.core.params import Parameters
from repro.core.system import FtgcsSystem
from repro.harness.runner import gradient_offsets
from repro.harness.sweep import (
    ScenarioSpec,
    SweepRunner,
    default_processes,
)
from repro.harness.tables import Table
from repro.net.delays import UniformDelay
from repro.net.network import Network
from repro.sim import Simulator
from repro.topology import ClusterGraph


def _best_of(fn: Callable[[], object], repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - started
        if elapsed < best:
            best = elapsed
    return best


def bench_event_throughput(events: int = 100_000,
                           repeats: int = 3) -> dict:
    """Schedule-and-run ``events`` self-chaining events."""

    def run() -> None:
        sim = Simulator()
        count = [0]

        def tick() -> None:
            count[0] += 1
            if count[0] < events:
                sim.call_in(1.0, tick)

        sim.call_at(0.0, tick)
        sim.run_until_idle()

    best = _best_of(run, repeats)
    return {"name": "event_throughput", "events": events,
            "seconds": best, "events_per_second": events / best}


def bench_repeating_throughput(ticks: int = 100_000,
                               repeats: int = 3) -> dict:
    """Drive one repeating event (the sampler fast path) for ``ticks``."""

    def run() -> None:
        sim = Simulator()
        count = [0]

        def tick() -> None:
            count[0] += 1

        sim.call_repeating(1.0, tick)
        sim.run(until=float(ticks))

    best = _best_of(run, repeats)
    return {"name": "repeating_throughput", "events": ticks,
            "seconds": best, "events_per_second": ticks / best}


def bench_alarm_inversion(alarms: int = 100, rate_changes: int = 2_000,
                          repeats: int = 3) -> dict:
    """Alarms surviving rate changes reschedule in O(log n)."""

    def run() -> None:
        sim = Simulator()
        hw = HardwareClock(sim, ConstantRate(1.0), rho=0.01)
        clock = LogicalClock(sim, hw, phi=0.01, mu=0.001)
        fired: list[int] = []
        for i in range(alarms):
            clock.at_value(2.0 * rate_changes + i, fired.append, i)
        for i in range(rate_changes):
            sim.call_at(float(i), clock.set_delta, 1.0 + (i % 2) * 0.5)
        sim.run(until=3.0 * rate_changes)

    best = _best_of(run, repeats)
    return {"name": "alarm_inversion", "rate_changes": rate_changes,
            "seconds": best,
            "reschedules_per_second": rate_changes / best}


def bench_system_rounds(rounds: int = 4, repeats: int = 3) -> dict:
    """Full rounds of a 12-node, 3-cluster system (events/second)."""
    params = Parameters.practical(rho=1e-4, d=1.0, u=0.1, f=1)
    events = [0]

    def run() -> None:
        system = FtgcsSystem.build(ClusterGraph.line(3), params, seed=1)
        result = system.run_rounds(rounds)
        events[0] = result.events_processed

    best = _best_of(run, repeats)
    return {"name": "system_rounds", "rounds": rounds,
            "seconds": best, "events": events[0],
            "events_per_second": events[0] / best}


def _delivery_flood(batched: bool, diameter: int,
                    ttl: int) -> tuple[int, int]:
    """One D-diameter line flood: every node seeds one broadcast and
    each delivery re-broadcasts until its hop budget runs out, so
    in-flight messages are the entire event population — the regime
    batched delivery targets.  Returns ``(delivered, kernel_events)``.
    """
    sim = Simulator()
    rng = random.Random(7)
    net = Network(sim, d=1.0, u=0.5,
                  default_delay_model=UniformDelay(1.0, 0.5, rng),
                  batched=batched)
    n = diameter + 1

    def forward(node: int, message, _t: float) -> None:
        if message[1] > 0:
            net.broadcast(node, (node, message[1] - 1))

    for i in range(n):
        net.add_node(i, lambda msg, t, i=i: forward(i, msg, t))
    for i in range(diameter):
        net.add_link(i, i + 1)
    for i in range(n):
        net.broadcast(i, (i, ttl))
    sim.run_until_idle()
    return net.messages_delivered, sim.events_processed


def bench_delivery_batching(diameter: int = 64, ttl: int = 6,
                            repeats: int = 3) -> dict:
    """Batched vs legacy delivery on a delivery-bound D=64 line flood.

    Measures the same message stream through both network paths
    (handler execution order is bit-identical); ``speedup`` is legacy
    wall clock over batched wall clock — the headline number for the
    batched-delivery fast path.
    """
    last: list = [None]

    def run_batched() -> None:
        last[0] = _delivery_flood(True, diameter, ttl)

    batched_best = _best_of(run_batched, repeats)
    legacy_best = _best_of(
        lambda: _delivery_flood(False, diameter, ttl), repeats)
    # The flood is deterministic, so the timed runs' (delivered,
    # kernel_events) are the reported ones — no extra run needed.
    delivered, kernel_events = last[0]
    return {"name": "delivery_batching", "diameter": diameter,
            "messages": delivered, "kernel_events": kernel_events,
            "seconds": batched_best, "legacy_seconds": legacy_best,
            "messages_per_second": delivered / batched_best,
            "speedup": legacy_best / batched_best}


def bench_vectorized_rounds(nodes: int = 20_000, rounds: int = 50,
                            repeats: int = 3) -> dict:
    """Vectorized round engine: GCS rounds/second on a caterpillar.

    The struct-of-arrays backend's headline number — one numpy kernel
    step per synchronous round over every node at once.  A caterpillar
    graph keeps the node count high (``~nodes``) at a fixed spine
    length, matching the t17 scale cells.  Skipped (``seconds = None``)
    when numpy is unavailable.
    """
    try:
        from repro.baselines.gcs_single import GcsParams
        from repro.harness.scenario import Scenario
        import numpy  # noqa: F401
    except ImportError:
        return {"name": "vectorized_rounds", "nodes": nodes,
                "rounds": rounds, "seconds": None,
                "rounds_per_second": None}

    params = GcsParams(rho=1e-3, d=1.0, u=0.01, mu=0.01, period=10.0,
                       kappa=0.3, slack=0.1)
    length = 100
    width = max(2, nodes // length)
    spec = (Scenario.on("caterpillar", length, width)
            .protocol("gcs_single").engine("vectorized")
            .payload(params=params, until=rounds * params.period)
            .seed(23).build())

    def run() -> None:
        SweepRunner(processes=1).run([spec], base_seed=23)

    best = _best_of(run, repeats)
    return {"name": "vectorized_rounds", "nodes": length * width,
            "rounds": rounds, "seconds": best,
            "rounds_per_second": rounds / best}


def bench_adversary_overhead(rounds: int = 100,
                             repeats: int = 3) -> dict:
    """Adversary-layer overhead on the vectorized round engine.

    Runs the same GCS caterpillar cell bare, with a static adversary
    (silent), and with a search-based one (random_restart), reporting
    the wall-clock ratios.  The bare run doubles as a hot-path
    regression guard: its headline skews are asserted bit-equal to the
    pre-adversary-layer constants, so ``no adversary == no new work``
    stays an enforced invariant, not a hope.  Skipped when numpy is
    unavailable.
    """
    try:
        from repro.baselines.gcs_single import GcsParams
        from repro.harness.scenario import Scenario
        import numpy  # noqa: F401
    except ImportError:
        return {"name": "adversary_overhead", "seconds": None,
                "static_ratio": None, "adaptive_ratio": None,
                "baseline_unchanged": None}

    params = GcsParams(rho=1e-3, d=1.0, u=0.01, mu=0.01, period=10.0,
                       kappa=0.3, slack=0.1)
    base = (Scenario.on("caterpillar", 15, 40)
            .protocol("gcs_single").engine("vectorized")
            .payload(params=params, until=rounds * params.period)
            .seed(42))
    bare = base.build()
    static = base.adversarial("silent").build()
    adaptive = base.adversarial("random_restart").build()

    last: list = [None]

    def run_bare() -> None:
        last[0] = SweepRunner(processes=1).run([bare],
                                               base_seed=42)[0]

    bare_best = _best_of(run_bare, repeats)
    static_best = _best_of(
        lambda: SweepRunner(processes=1).run([static], base_seed=42),
        repeats)
    adaptive_best = _best_of(
        lambda: SweepRunner(processes=1).run([adaptive],
                                             base_seed=42), repeats)
    # Pre-adversary-layer headline skews of this exact cell at
    # rounds=100 (caterpillar(15, 40), seed 42): the bare path must
    # not drift when the fault-injection layer evolves.
    result = last[0].result
    unchanged = (
        result.max_local_skew == 0.5000000000001137
        and result.max_global_skew == 0.9999999999992042
    ) if rounds == 100 else None
    return {"name": "adversary_overhead", "nodes": 600,
            "rounds": rounds, "seconds": bare_best,
            "static_ratio": static_best / bare_best,
            "adaptive_ratio": adaptive_best / bare_best,
            "baseline_unchanged": unchanged}


def bench_sweep(cells: int = 8, rounds: int = 20,
                processes: int | None = None) -> dict:
    """A small scenario grid: serial wall clock vs a worker pool.

    Speedup > 1 needs real cores; on a single-CPU machine the pool can
    only lose (the numbers are still recorded so the trajectory is
    honest about the hardware it ran on).
    """
    processes = default_processes(
        processes, fallback=min(4, os.cpu_count() or 1))
    params = Parameters.practical(rho=1e-4, d=1.0, u=0.05, f=1,
                                  eps=0.2, k_stab=1)
    specs = [
        ScenarioSpec(
            graph="line", graph_args=(4,), params=params, rounds=rounds,
            strategy="equivocate",
            config={"cluster_offsets": gradient_offsets(
                4, 2.2 * params.kappa)},
            key=("cell", i))
        for i in range(cells)]

    started = time.perf_counter()
    serial = SweepRunner(processes=1).run(specs, base_seed=17)
    serial_s = time.perf_counter() - started

    if processes > 1:
        started = time.perf_counter()
        parallel = SweepRunner(processes=processes).run(specs,
                                                        base_seed=17)
        parallel_s = time.perf_counter() - started
        identical = all(
            a.result.series == b.result.series
            and a.result.max_global_skew == b.result.max_global_skew
            for a, b in zip(serial, parallel))
    else:
        # None, not NaN: the results feed BENCH_kernel.json and bare
        # NaN is not valid JSON for strict parsers.
        parallel_s = None
        identical = True
    return {"name": "sweep_grid", "cells": cells, "rounds": rounds,
            "processes": processes, "serial_seconds": serial_s,
            "parallel_seconds": parallel_s,
            "speedup": serial_s / parallel_s if parallel_s else 1.0,
            "bit_identical": identical}


def run_all_micro(quick: bool = True,
                  processes: int | None = None) -> list[dict]:
    """Every microbenchmark; ``quick`` keeps the total under a minute."""
    scale = 1 if quick else 5
    return [
        bench_event_throughput(events=100_000 * scale),
        bench_repeating_throughput(ticks=100_000 * scale),
        bench_alarm_inversion(rate_changes=2_000 * scale),
        bench_delivery_batching(ttl=6 if quick else 10),
        bench_system_rounds(rounds=4 * scale),
        bench_vectorized_rounds(nodes=20_000 * scale),
        bench_adversary_overhead(),
        bench_sweep(cells=4 * scale, rounds=15, processes=processes),
    ]


def microbench_table(results: list[dict]) -> Table:
    """Render microbenchmark dicts as a harness table."""
    table = Table(
        title="Kernel / substrate microbenchmarks",
        columns=["benchmark", "seconds", "throughput", "unit"])
    for r in results:
        if r["name"] == "sweep_grid":
            table.add_row(
                f"sweep {r['cells']}x{r['rounds']}r "
                f"(p={r['processes']})", r["serial_seconds"],
                r["speedup"], "pool speedup (bit-identical: "
                + ("yes" if r["bit_identical"] else "NO") + ")")
        elif r["name"] == "delivery_batching":
            table.add_row(
                f"delivery D={r['diameter']} "
                f"({r['messages']} msgs)", r["seconds"],
                r["speedup"], "batched/legacy speedup "
                f"({r['messages_per_second']:,.0f} msg/s)")
        elif r["name"] == "adversary_overhead":
            if r["seconds"] is None:
                table.add_row("adversary overhead", float("nan"),
                              float("nan"), "skipped (numpy missing)")
            else:
                guard = {True: "baseline unchanged: yes",
                         False: "baseline unchanged: NO",
                         None: "baseline guard skipped"}[
                             r["baseline_unchanged"]]
                table.add_row(
                    f"adversary n={r['nodes']} "
                    f"({r['rounds']} rounds)", r["seconds"],
                    r["adaptive_ratio"],
                    f"adaptive/bare slowdown (static "
                    f"{r['static_ratio']:.2f}x; {guard})")
        elif r["name"] == "vectorized_rounds":
            if r["seconds"] is None:
                table.add_row("vectorized rounds", float("nan"),
                              float("nan"), "skipped (numpy missing)")
            else:
                table.add_row(
                    f"vectorized n={r['nodes']} "
                    f"({r['rounds']} rounds)", r["seconds"],
                    r["rounds_per_second"], "rounds/s")
        elif "events_per_second" in r:
            table.add_row(r["name"], r["seconds"],
                          r["events_per_second"], "events/s")
        else:
            table.add_row(r["name"], r["seconds"],
                          r["reschedules_per_second"], "reschedules/s")
    return table
