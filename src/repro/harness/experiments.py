"""The paper's experiment suite (T1–T12) plus extensions (T13+),
declaratively.

Every experiment is registered with
:data:`~repro.harness.registry.REGISTRY` as metadata (id, title,
claim, table schema, default seed) plus a *plan* function compiling
``(quick, seed)`` into an
:class:`~repro.harness.registry.ExperimentPlan`: a grid of picklable
:class:`~repro.harness.sweep.ScenarioSpec` cells — built with the
fluent :class:`~repro.harness.scenario.Scenario` builder — and a pure
``finish`` step folding the executed cells into the experiment's
:class:`~repro.harness.tables.Table`.

Execution is uniform across every table:
:func:`~repro.harness.registry.run_experiment` fans each grid across
:class:`~repro.harness.sweep.SweepRunner`, so every experiment accepts
``processes`` (explicit > ``REPRO_SWEEP_PROCESSES`` > serial) and
produces bit-identical tables for any worker count.  Simulation cells
all run through the generic ``"protocol"`` cell kind — one
:class:`~repro.core.protocol.SystemBuilder` path parameterized by
protocol name (``ftgcs``, ``lynch_welch``, ``master_slave``,
``gcs_single``, ``srikanth_toueg``) and an optional topology schedule
for dynamic networks (T13).  Non-simulation work rides the same
engine through dedicated cell kinds: the T5 Monte Carlo
(``failure_mc``, whose cells fast-forward one shared serial RNG
stream so the grid reproduces the historical single-stream
implementation bit-for-bit), the T10 randomized trigger check
(``trigger_fuzz``), and the T8 graph accounting (``augment_counts``).

``quick=True`` (the default) is the CI size; ``quick=False`` the full
sweeps reported in EXPERIMENTS.md.

The module-level ``t01_…()`` … ``t14_…()`` functions remain as thin
wrappers over :func:`run_experiment` for backward compatibility; new
code should call the registry directly::

    from repro.harness import run_experiment
    table = run_experiment("t09", quick=True, processes=4)
"""

from __future__ import annotations

import math
import random

from repro.analysis.bounds import (
    cluster_failure_bound_3ep,
    cluster_failure_bound_binomial,
    cluster_failure_probability,
    resilience_bound,
)
from repro.analysis.metrics import log_log_fit
from repro.baselines.gcs_single import GcsParams
from repro.baselines.srikanth_toueg import StParams
from repro.core.params import Parameters
from repro.core.rounds import RoundSchedule
from repro.harness.registry import (
    REGISTRY,
    ExperimentPlan,
    run_experiment,
)
from repro.harness.runner import (
    default_params,
    gradient_offsets,
    step_offsets,
)
from repro.harness.scenario import Scenario
from repro.harness.tables import Table
from repro.topology.cluster_graph import ClusterGraph


def fast_dynamics_params(rho: float = 1e-4, d: float = 1.0,
                         u: float = 0.05, f: int = 1,
                         **kwargs) -> Parameters:
    """Parameters tuned for convergence-dynamics experiments.

    ``eps = 0.2`` keeps ``E`` (and hence ``kappa`` and the rounds
    needed per kappa-level of catch-up) small; ``k_stab = 1`` shortens
    the trigger slack.  All structural relations of Eq. (5) hold.
    """
    kwargs.setdefault("eps", 0.2)
    kwargs.setdefault("k_stab", 1)
    return Parameters.practical(rho=rho, d=d, u=u, f=f, **kwargs)


# ----------------------------------------------------------------------
# T1 — Theorem 1.1: local skew vs diameter under Byzantine faults
# ----------------------------------------------------------------------

@REGISTRY.experiment(
    "t01",
    title="T1  Local skew vs diameter (Theorem 1.1)",
    claim="Line networks under one equivocator per cluster keep the "
          "steady local skew below the O(kappa log S) bounds of "
          "Theorem 1.1 at every diameter.",
    columns=["D", "global S", "local cluster", "cluster bound",
             "local node", "node bound", "holds"],
    default_seed=1)
def t01_plan(quick: bool, seed: int) -> ExperimentPlan:
    params = fast_dynamics_params(f=1)
    diameters = (2, 4, 8) if quick else (2, 4, 8, 16, 32)
    rounds = 40 if quick else 80
    # The engine-agnostic adversary spelling: on the (default) event
    # engine this realizes the exact legacy equivocator strategy, and
    # it lets ``run_experiment("t01", engine="vectorized")`` move the
    # whole grid onto the numpy round engine unchanged.
    specs = [
        Scenario.line(diameter + 1).params(params).rounds(rounds)
        .seed(seed).adversarial("equivocate")
        .offsets(gradient_offsets(diameter + 1, 2.2 * params.kappa))
        .tag("D", diameter).build()
        for diameter in diameters]

    def finish(cells, table: Table) -> Table:
        for diameter, cell, spec in zip(diameters, cells, specs):
            detail = cell.result.detail
            if isinstance(detail, dict) \
                    and detail.get("engine") == "vectorized":
                # Vectorized rows (engine override): steady skews from
                # the series tail; the cluster-round skeleton has no
                # node-level machinery, so the node column carries the
                # cluster skew against the node bound (envelope
                # contract, see repro.engine_vec.protocols).
                from repro.analysis.bounds import BoundsReport
                series = cell.result.series
                tail = series[int(len(series) * 0.7):] or series
                local = max(v for _, v, _ in tail)
                bounds = BoundsReport.for_run(
                    params, diameter,
                    global_skew=cell.result.max_global_skew)
                holds = (local <= bounds.local_skew_bound
                         and local <= bounds.node_local_skew_bound)
                table.add_row(diameter, cell.result.max_global_skew,
                              local, bounds.local_skew_bound, local,
                              bounds.node_local_skew_bound, holds)
                # Cross-engine agreement, t17-style: run the event
                # twin of the same spec and hold both engines to the
                # shared analytic envelope.
                from dataclasses import replace

                from repro.harness.sweep import SweepRunner
                twin = SweepRunner().run(
                    [replace(spec, engine="event")],
                    base_seed=spec.seed)[0]
                twin_steady = twin.steady_state_skews(
                    tail_fraction=0.3)
                agrees = (holds and twin_steady["local_cluster"]
                          <= bounds.local_skew_bound)
                table.add_note(
                    f"D={diameter}: vectorized steady local "
                    f"{local:.4g} vs event {twin_steady['local_cluster']:.4g}; "
                    f"agrees (both within cluster bound): {agrees}")
                continue
            result = detail
            steady = cell.steady_state_skews(tail_fraction=0.3)
            bounds = result.bounds
            holds = (steady["local_cluster"] <= bounds.local_skew_bound
                     and steady["local_node"]
                     <= bounds.node_local_skew_bound)
            table.add_row(diameter, result.max_global_skew,
                          steady["local_cluster"], bounds.local_skew_bound,
                          steady["local_node"],
                          bounds.node_local_skew_bound, holds)
        table.add_note(
            f"kappa={params.kappa:.4g}, one equivocator per cluster, "
            f"gradient init 2.2*kappa/edge, steady tail of {rounds} rounds")
        table.add_note("bound columns are the explicit O(kappa log S) "
                       "forms of Thm 4.10 / Thm 1.1; measured << bound "
                       "is expected")
        return table

    return ExperimentPlan(specs=specs, finish=finish)


# ----------------------------------------------------------------------
# T2 — Corollary 3.2: intra-cluster skew vs cluster size
# ----------------------------------------------------------------------

@REGISTRY.experiment(
    "t02",
    title="T2  Intra-cluster skew vs cluster size (Corollary 3.2)",
    claim="Single clusters of size 3f+1 under the strongest pulse "
          "attacks keep the steady intra-cluster skew below both "
          "forms of the Corollary 3.2 bound.",
    columns=["f", "k", "attack", "steady skew", "bound 2*theta_g*E",
             "bound B.8", "max ||p(r)||", "E", "holds"],
    default_seed=2)
def t02_plan(quick: bool, seed: int) -> ExperimentPlan:
    fault_counts = (1, 2) if quick else (1, 2, 3)
    rounds = 30 if quick else 60
    attacks = ("equivocate", "silent")
    grid = [(f, attack) for f in fault_counts for attack in attacks]
    specs = [
        Scenario.line(1).params(default_params(f=f)).rounds(rounds)
        .seed(seed).attack(attack).measure("pulse_diameters")
        .tag("f", f, "attack", attack).build()
        for f, attack in grid]

    def finish(cells, table: Table) -> Table:
        for (f, attack), cell in zip(grid, cells):
            params = cell.result.detail.params
            steady = cell.steady_state_skews()
            diameters = cell.pulse_diameters
            worst_pulse = max(
                (v for (_, r), v in diameters.items() if r > 3),
                default=0.0)
            holds = steady["intra"] <= params.intra_skew_bound_paper()
            table.add_row(f, params.cluster_size, attack,
                          steady["intra"],
                          params.intra_skew_bound_paper(),
                          params.intra_skew_bound(), worst_pulse,
                          params.cap_e, holds)
        table.add_note("steady skew = max over final half of samples; "
                       "||p(r)|| should stay below E")
        return table

    return ExperimentPlan(specs=specs, finish=finish)


# ----------------------------------------------------------------------
# T3 — attack gallery + the fault-intolerant GCS failure
# ----------------------------------------------------------------------

@REGISTRY.experiment(
    "t03",
    title="T3  Attack gallery (FTGCS) vs fault-intolerant GCS",
    claim="Every fault strategy leaves the FTGCS bounds intact, while "
          "the fault-intolerant GCS baseline's correct-edge local "
          "skew grows without bound under a single liar.",
    columns=["system", "attack", "intra", "local cluster",
             "bounds hold", "trend"],
    default_seed=3)
def t03_plan(quick: bool, seed: int) -> ExperimentPlan:
    params = default_params(f=1)
    rounds = 15 if quick else 40
    ring_size = 4 if quick else 6
    strategies = [
        ("silent", "silent", ()),
        ("crash@3T", "crash", (3 * params.round_length,)),
        ("random-pulse", "random_pulse", (4.0,)),
        ("fast-clock", "fast_clock", (1.5,)),
        ("slow-clock", "fast_clock", (0.7,)),
        ("equivocate", "equivocate", ()),
        ("pull-apart", "pull_apart", ()),
        ("collusion", "collusion", ()),
    ]
    specs = [
        Scenario.ring(ring_size).params(params).rounds(rounds).seed(seed)
        .attack(strategy, *args).tag("attack", name).build()
        for name, strategy, args in strategies]

    # Fault-intolerant GCS: one liar, correct-edge skew ramps forever.
    gcs_params = GcsParams.default(rho=params.rho, d=params.d, u=params.u)
    horizon = 4000.0 if quick else 12000.0
    specs.append(
        Scenario.ring(6).protocol("gcs_single").seed(seed)
        .payload(params=gcs_params, until=horizon,
                 liars={0: {1: +1, 5: -1}})
        .tag("gcs", "1 liar").build())

    def finish(cells, table: Table) -> Table:
        for (name, _, _), cell in zip(strategies, cells):
            result = cell.result.detail
            steady = cell.steady_state_skews()
            table.add_row("FTGCS", name, steady["intra"],
                          steady["local_cluster"],
                          result.all_bounds_hold, "bounded")
        samples = cells[-1].result.series
        half = len(samples) // 2
        first_half = max(s[1] for s in samples[:half])
        second_half = max(s[1] for s in samples[half:])
        growing = second_half > 1.5 * first_half
        table.add_row("GCS (no FT)", "1 liar", float("nan"),
                      second_half, not growing,
                      "GROWS" if growing else "bounded")
        table.add_note("GCS (no FT) local skew is over correct edges "
                       "only; its growth under a single Byzantine node "
                       "is the paper's motivating failure")
        return table

    return ExperimentPlan(specs=specs, finish=finish)


# ----------------------------------------------------------------------
# T4 — master-slave tree: skew-wave compression (introduction / [15])
# ----------------------------------------------------------------------

@REGISTRY.experiment(
    "t04",
    title="T4  Master-slave compression vs FTGCS (intro / [15])",
    claim="A global skew S injected at the root of a line crosses "
          "every interior edge of a jump-based master-slave tree "
          "nearly in full, while FTGCS caps interior edges near "
          "2 kappa.",
    columns=["D", "S injected", "MS interior max", "FTGCS interior max",
             "FTGCS cap 2*kappa+slack", "MS/S ratio"],
    default_seed=4)
def t04_plan(quick: bool, seed: int) -> ExperimentPlan:
    params = fast_dynamics_params(f=0)
    diameters = (3, 5) if quick else (3, 5, 9)
    injected = 6.0 * params.kappa
    rounds = 25 if quick else 40
    specs = []
    for diameter in diameters:
        n = diameter + 1
        offsets = step_offsets(n, step_at=0, height=0.0)
        offsets[0] = injected  # root ahead by S
        specs.append(
            Scenario.line(n).params(params).seed(seed)
            .protocol("master_slave")
            .payload(rounds=rounds, root=0, cluster_offsets=offsets,
                     jump=True, track_edges=True)
            .tag("ms", diameter).build())
        specs.append(
            Scenario.line(n).params(params).rounds(rounds).seed(seed)
            .offsets(list(offsets)).tag("ftgcs", diameter).build())

    def finish(cells, table: Table) -> Table:
        for diameter, ms_cell, ft_cell in zip(diameters, cells[0::2],
                                              cells[1::2]):
            ms_interior = max(
                (skew for edge, skew in ms_cell.result.edge_maxima.items()
                 if 0 not in edge), default=0.0)
            ft_interior = max(
                (skew for edge, skew in ft_cell.result.edge_maxima.items()
                 if 0 not in edge), default=0.0)
            cap = 2 * params.kappa + params.delta_trigger
            table.add_row(diameter, injected, ms_interior, ft_interior,
                          cap, ms_interior / injected)
        table.add_note("interior max = worst cluster-edge skew excluding "
                       "the root edge, where S is injected; MS/S near 1 "
                       "means full compression onto interior edges")
        return table

    return ExperimentPlan(specs=specs, finish=finish)


# ----------------------------------------------------------------------
# T5 — Inequality (1): cluster failure probability
# ----------------------------------------------------------------------

@REGISTRY.experiment(
    "t05",
    title="T5  Cluster failure probability (Inequality (1))",
    claim="Monte Carlo failure rates stay below the binomial tail "
          "bound, which stays below the printed (3ep)^(f+1) form — "
          "Inequality (1) in both directions.",
    columns=["f", "p", "monte carlo", "exact tail",
             "C(3f+1,f+1)p^(f+1)", "(3ep)^(f+1)", "ordered"],
    default_seed=5)
def t05_plan(quick: bool, seed: int) -> ExperimentPlan:
    trials = 40_000 if quick else 400_000
    grid = [(f, p) for f in (1, 2, 3) for p in (0.01, 0.05, 0.1)]
    specs = []
    skip = 0
    for f, p in grid:
        specs.append(
            Scenario.of_kind("failure_mc").seed(seed)
            .payload(f=f, p=p, trials=trials, skip=skip)
            .tag("f", f, "p", p).build())
        # Every trial consumes exactly k = 3f+1 draws from the shared
        # serial stream, so the next cell's fast-forward is static.
        skip += trials * (3 * f + 1)

    def finish(cells, table: Table) -> Table:
        for (f, p), cell in zip(grid, cells):
            mc = cell.result
            exact = cluster_failure_probability(f, p)
            mid = cluster_failure_bound_binomial(f, p)
            top = cluster_failure_bound_3ep(f, p)
            ordered = mc <= mid * 1.2 + 3e-4 and mid <= top * 1.000001
            table.add_row(f, p, mc, exact, mid, top, ordered)
        table.add_note(f"{trials} Monte Carlo trials per row; 'ordered' "
                       "checks mc <~ binomial bound <= (3ep)^(f+1)")
        return table

    return ExperimentPlan(specs=specs, finish=finish)


# ----------------------------------------------------------------------
# T6 — Lemma 3.6: unanimous clusters converge tighter and keep rates
# ----------------------------------------------------------------------

@REGISTRY.experiment(
    "t06",
    title="T6  Unanimous cluster rates and errors (Lemma 3.6)",
    claim="A lagging cluster in unanimous fast mode outpaces the "
          "Lemma 3.6 rate floor while a leading cluster in unanimous "
          "slow mode stays inside the slow band, with pulse diameters "
          "contracting below the unanimous steady state.",
    columns=["cluster", "mode", "rounds", "min rate", "max rate",
             "fast floor", "slow band lo", "slow band hi", "holds"],
    default_seed=6)
def t06_plan(quick: bool, seed: int) -> ExperimentPlan:
    params = default_params(f=1)
    rounds = 25 if quick else 50
    specs = [
        Scenario.line(2).params(params).rounds(rounds).seed(seed)
        .offsets([0.0, 3.0 * params.kappa])
        .measure("unanimity", "amortized_rates", "pulse_diameters")
        .tag("two clusters").build()]

    def finish(cells, table: Table) -> Table:
        (cell,) = cells
        k_stab = params.k_stab
        fast_floor = (1 + params.phi) * (1 + 7 * params.mu / 8)
        slow_lo = (1 + params.phi) * (1 - params.mu / 8)
        slow_hi = (1 + params.phi) * (1 + params.mu / 8)
        all_rates = cell.extras["amortized_rates"]

        for cluster, expected_gamma in ((0, 1), (1, 0)):
            unanimity = cell.extras["unanimity"][cluster]
            # Longest unanimous prefix in the expected mode.
            stretch = []
            for r in sorted(unanimity):
                unanimous, gamma = unanimity[r]
                if unanimous and gamma == expected_gamma:
                    stretch.append(r)
                else:
                    break
            usable = {r for r in stretch
                      if r > k_stab and r < len(stretch)}
            rates = [rate for c, r, rate in all_rates
                     if c == cluster and r in usable]
            if not rates:
                table.add_row(cluster,
                              "fast" if expected_gamma else "slow",
                              0, float("nan"), float("nan"), fast_floor,
                              slow_lo, slow_hi, False)
                continue
            lo, hi = min(rates), max(rates)
            if expected_gamma == 1:
                holds = lo >= fast_floor * (1 - 1e-9)
                mode = "fast"
            else:
                holds = (lo >= slow_lo * (1 - 1e-9)
                         and hi <= slow_hi * (1 + 1e-9))
                mode = "slow"
            table.add_row(cluster, mode, len(usable), lo, hi, fast_floor,
                          slow_lo, slow_hi, holds)

        # Pulse-diameter comparison: unanimous steady state vs general E.
        diam = cell.pulse_diameters
        for cluster, mode in ((0, "fast"), (1, "slow")):
            entries = [v for (c, r), v in diam.items()
                       if c == cluster and r > k_stab + 2]
            worst = max(entries, default=float("nan"))
            predicted = params.unanimous_steady_state(mode)
            table.add_note(
                f"cluster {cluster} ({mode}): max ||p(r)|| after warmup "
                f"= {worst:.4g} vs e_inf_{mode} = {predicted:.4g} "
                f"vs general E = {params.cap_e:.4g}")
        return table

    return ExperimentPlan(specs=specs, finish=finish)


# ----------------------------------------------------------------------
# T7 — ablation: the amortization stretch c1 (the paper's key insight)
# ----------------------------------------------------------------------

@REGISTRY.experiment(
    "t07",
    title="T7  Ablation: amortization stretch c1 (Section 1)",
    claim="With a short phase 3 (small c1) Lynch-Welch corrections "
          "eat the entire mu speed budget and fast clusters cannot "
          "outrun slow ones; the paper's c1 = Theta(1/rho) restores "
          "the per-round gap.",
    columns=["c1", "E", "T", "min fast rate", "max slow rate",
             "worst gap", "worst gap / mu", "fast outruns slow"],
    default_seed=7)
def t07_plan(quick: bool, seed: int) -> ExperimentPlan:
    rho, d, u = 1e-4, 1.0, 0.1
    structural = (0.5 - 0.05) / ((1 + 32.0) * rho)
    c1_values = (3.0, 30.0, structural) if quick else (
        3.0, 10.0, 30.0, 100.0, structural)
    rounds = 30 if quick else 50
    param_sets = [Parameters.custom(rho=rho, d=d, u=u, f=1, c1=c1,
                                    c2=32.0, k_stab=4)
                  for c1 in c1_values]
    specs = [
        Scenario.line(2).params(params).rounds(rounds).seed(seed)
        .attack("equivocate")
        .offsets([0.0, 3.0 * params.kappa])
        .measure("amortized_rates")
        .tag("c1", c1).build()
        for c1, params in zip(c1_values, param_sets)]

    def finish(cells, table: Table) -> Table:
        for c1, params, cell in zip(c1_values, param_sets, cells):
            rates = {0: [], 1: []}
            for cluster, index, rate in cell.extras["amortized_rates"]:
                if params.k_stab < index < rounds - 1:
                    rates[cluster].append(rate)
            if rates[0] and rates[1]:
                # Lemma 3.6 is a *per-round* guarantee: every fast round
                # must outpace every slow round, so the worst-case gap is
                # min(fast) - max(slow).
                min_fast = min(rates[0])
                max_slow = max(rates[1])
                gap = min_fast - max_slow
            else:
                min_fast = max_slow = gap = float("nan")
            table.add_row(c1, params.cap_e, params.round_length, min_fast,
                          max_slow, gap, gap / params.mu, gap > 0)
        table.add_note("lagging cluster 0 is fast-triggered, leading "
                       "cluster 1 slow-triggered; one equivocator per "
                       "cluster supplies the adversarial correction "
                       "noise; small c1 (short phase 3) lets per-round "
                       "corrections eat the entire mu budget")
        return table

    return ExperimentPlan(specs=specs, finish=finish)


# ----------------------------------------------------------------------
# T8 — overhead accounting: O(f) nodes, O(f^2) edges (Theorem 1.1)
# ----------------------------------------------------------------------

@REGISTRY.experiment(
    "t08",
    title="T8  Augmentation overheads (Theorem 1.1)",
    claim="The augmentation multiplies node counts by exactly "
          "k = 3f+1 = O(f) and edge counts by O(f^2) on every "
          "topology.",
    columns=["graph", "f", "k", "nodes", "node factor", "edges",
             "edge factor"],
    default_seed=8)
def t08_plan(quick: bool, seed: int) -> ExperimentPlan:
    graphs = [("line", (8,)), ("ring", (8,)), ("grid", (4, 4))]
    if not quick:
        graphs += [("torus", (4, 4)), ("hypercube", (4,)),
                   ("balanced_tree", (2, 4))]
    specs = [
        Scenario.on(graph, *args).kind("augment_counts")
        .payload(fault_counts=(0, 1, 2, 3))
        .seed(seed).tag("graph", graph).build()
        for graph, args in graphs]

    def finish(cells, table: Table) -> Table:
        for cell in cells:
            counts = cell.result
            base_nodes = counts["clusters"]
            base_edges = counts["edges"]
            for f, k, nodes, edges in counts["rows"]:
                table.add_row(counts["name"], f, k, nodes,
                              nodes / base_nodes, edges,
                              edges / max(base_edges, 1))
        table.add_note("node factor = k = 3f+1 = O(f); edge factor -> "
                       "k^2 + k(k-1)/2 per original edge/cluster = "
                       "O(f^2)")
        return table

    return ExperimentPlan(specs=specs, finish=finish)


# ----------------------------------------------------------------------
# T9 — Theorem C.3: global skew O(delta * D) and the max-rule rescue
# ----------------------------------------------------------------------

@REGISTRY.experiment(
    "t09",
    title="T9  Global skew (Theorem C.3)",
    claim="Global skew stays below c_global * delta * (D+1) across "
          "diameters, and a lagging tail only recovers under the "
          "Theorem C.3 max-rule — slow-default freezes below the "
          "trigger thresholds forever.",
    columns=["scenario", "D", "policy", "global skew",
             "bound c*delta*(D+1)", "holds"],
    default_seed=9)
def t09_plan(quick: bool, seed: int) -> ExperimentPlan:
    params = fast_dynamics_params(f=1, c_global=2.0)
    diameters = (2, 4) if quick else (2, 4, 8)
    rounds = 20 if quick else 40
    # repro: allow[raw-rng] -- t09's offset stream predates derive_seed;
    # re-deriving it would redraw every initial offset and change the
    # published table bytes.
    rng = random.Random(seed)
    specs = []
    for diameter in diameters:
        n = diameter + 1
        offsets = [rng.uniform(-params.kappa, params.kappa)
                   for _ in range(n)]
        specs.append(
            Scenario.line(n).params(params).rounds(rounds).seed(seed)
            .configure(cluster_offsets=offsets, policy="max_rule",
                       enable_max_estimate=True)
            .tag("random init", diameter).build())

    # (b) lagging-tail convergence: last two clusters far behind.
    n = 5
    lag = (params.c_global * params.delta_trigger + 2.0 * params.kappa)
    offsets = [0.0, 0.0, 0.0, -lag, -lag]
    tail_rounds = 140 if quick else 200
    policies = ("slow_default", "max_rule")
    for policy in policies:
        specs.append(
            Scenario.line(n).params(params).rounds(tail_rounds).seed(seed)
            .configure(cluster_offsets=list(offsets), policy=policy,
                       enable_max_estimate=policy == "max_rule",
                       max_estimate_unit=params.kappa,
                       record_series=True)
            .tag("lagging tail", policy).build())

    def finish(cells, table: Table) -> Table:
        for cell in cells[:len(diameters)]:
            result = cell.result.detail
            table.add_row("random init", cell.key[1], "max_rule",
                          result.max_global_skew,
                          result.bounds.global_skew_bound,
                          result.within_global_bound)
        for policy, cell in zip(policies, cells[len(diameters):]):
            series = cell.result.series
            recovered = next(
                (s.time for s in series if s.global_skew < 0.9 * lag),
                float("inf"))
            table.add_row("lagging tail", n - 1, policy, recovered,
                          float("nan"), True)
        table.add_note("for 'lagging tail' rows the 'global skew' "
                       "column is the time until the tail recovered "
                       "10% of its lag")
        table.add_note("with slow_default the partial gradient freezes "
                       "below the trigger thresholds and the tail NEVER "
                       "recovers (inf) — the M_v rule of Theorem C.3 is "
                       "what bounds the global skew")
        return table

    return ExperimentPlan(specs=specs, finish=finish)


# ----------------------------------------------------------------------
# T10 — Lemmas 4.5 / 4.8: trigger exclusion and faithfulness
# ----------------------------------------------------------------------

@REGISTRY.experiment(
    "t10",
    title="T10  Trigger exclusion & faithfulness (Lemmas 4.5/4.8)",
    claim="No simulated round ever satisfies both triggers, and "
          "conditions on true cluster clocks always imply the "
          "matching trigger on estimates perturbed by up to 2E.",
    columns=["check", "cases", "violations"],
    default_seed=10)
def t10_plan(quick: bool, seed: int) -> ExperimentPlan:
    params = default_params(f=1)
    rounds = 12 if quick else 30
    graphs = (("line", (3,)), ("ring", (4,)))
    specs = []
    for graph, args in graphs:
        num_clusters = getattr(ClusterGraph, graph)(*args).num_clusters
        specs.append(
            Scenario.on(graph, *args).params(params).rounds(rounds)
            .seed(seed).attack("equivocate")
            .offsets(gradient_offsets(num_clusters, 1.5 * params.kappa))
            .tag("exclusion", graph).build())
    trials = 4000 if quick else 40_000
    specs.append(
        Scenario.of_kind("trigger_fuzz").seed(seed)
        .payload(trials=trials, kappa=params.kappa,
                 slack=params.delta_trigger, err=2.0 * params.cap_e)
        .tag("faithfulness").build())

    def finish(cells, table: Table) -> Table:
        simulated = cells[:len(graphs)]
        both = sum(cell.result.detail.both_triggers_rounds
                   for cell in simulated)
        decided = sum(cell.result.detail.fast_rounds
                      + cell.result.detail.slow_rounds
                      for cell in simulated)
        table.add_row("FT & ST simultaneously (simulated rounds)",
                      decided, both)
        table.add_row("FC/SC without matching FT/ST (randomized)",
                      trials, cells[-1].result)
        table.add_note("both checks must report 0 violations")
        return table

    return ExperimentPlan(specs=specs, finish=finish)


# ----------------------------------------------------------------------
# T11 — Appendix A: Lynch–Welch vs Srikanth–Toueg clique skew
# ----------------------------------------------------------------------

@REGISTRY.experiment(
    "t11",
    title="T11  Lynch-Welch vs Srikanth-Toueg cliques (Appendix A)",
    claim="As U shrinks relative to d, Lynch-Welch's measured clique "
          "skew tracks its O(U + (theta-1)d) bound while "
          "Srikanth-Toueg carries an O(d) worst case.",
    columns=["U/d", "LW steady skew", "LW bound", "ST steady skew",
             "ST bound O(d)"],
    default_seed=11)
def t11_plan(quick: bool, seed: int) -> ExperimentPlan:
    rho, d = 1e-4, 1.0
    u_values = (0.2, 0.05) if quick else (0.5, 0.2, 0.05, 0.01)
    rounds = 25 if quick else 60
    param_sets = [default_params(rho=rho, d=d, u=u, f=1)
                  for u in u_values]
    specs = []
    for u, params in zip(u_values, param_sets):
        specs.append(
            Scenario.of_protocol("lynch_welch")
            .params(params).rounds(rounds).seed(seed)
            .attack("equivocate").configure(init_jitter=u / 2)
            .tag("lw", u).build())
        specs.append(
            Scenario.of_protocol("srikanth_toueg").seed(seed)
            .payload(params=StParams(n=4, f=1, rho=rho, d=d, u=u,
                                     period=params.round_length),
                     silent_faults=1, rounds=rounds)
            .tag("st", u).build())

    def finish(cells, table: Table) -> Table:
        for (u, params), lw_cell, st_cell in zip(
                zip(u_values, param_sets), cells[0::2], cells[1::2]):
            lw_steady = lw_cell.steady_state_skews()["intra"]
            table.add_row(u / d, lw_steady,
                          params.intra_skew_bound_paper(),
                          st_cell.result.detail, 2.0 * d)
        table.add_note("LW bound = 2*theta_g*E = O(U + rho*d); ST's "
                       "O(d) worst case needs adversarial "
                       "delay+equivocation schedules; benign "
                       "measurements for both are U-dominated (see "
                       "EXPERIMENTS.md discussion)")
        return table

    return ExperimentPlan(specs=specs, finish=finish)


# ----------------------------------------------------------------------
# T12 — Proposition B.14 / Corollary B.13: convergence from loose init
# ----------------------------------------------------------------------

@REGISTRY.experiment(
    "t12",
    title="T12  Convergence from loose initialization (Prop. B.14)",
    claim="Started with pulse spread ~ e(1) >> E under the adaptive "
          "round schedule, measured ||p(r)|| stays below the "
          "predicted e(r) as it contracts geometrically to E.",
    columns=["round", "predicted e(r)", "measured ||p(r)||", "within"],
    default_seed=12)
def t12_plan(quick: bool, seed: int) -> ExperimentPlan:
    params = default_params(f=1)
    e1 = 20.0 * params.cap_e
    rounds = 30 if quick else 80
    specs = [
        Scenario.line(1).params(params).rounds(rounds).seed(seed)
        .configure(e1=e1, init_jitter=e1 / 2.0)
        .measure("pulse_diameters")
        .tag("e1", e1).build()]

    def finish(cells, table: Table) -> Table:
        (cell,) = cells
        schedule = RoundSchedule(params, e1=e1)
        diameters = cell.pulse_diameters
        report_rounds = [1, 2, 3, 5, 8, 12, 20, rounds]
        for r in report_rounds:
            measured = diameters.get((0, r))
            if measured is None:
                continue
            predicted = schedule.e(r)
            table.add_row(r, predicted, measured, measured <= predicted)
        table.add_note(f"e(1) = 20E = {e1:.4g}; e(r+1) = alpha*e(r) + "
                       f"beta with alpha = {params.alpha:.4f}")
        return table

    return ExperimentPlan(specs=specs, finish=finish)


# ----------------------------------------------------------------------
# T13 — dynamic networks: skew vs edge churn (Kuhn et al. direction)
# ----------------------------------------------------------------------

#: GCS-baseline parameters for the dynamic/parameter-grid workloads:
#: drift fast enough (rho = 1e-2) that trigger-driven corrections
#: happen within a quick-mode horizon.
def _fast_gcs_params(mu: float = 0.05, period: float = 2.0) -> GcsParams:
    return GcsParams.default(rho=1e-2, d=1.0, u=0.05, mu=mu,
                             period=period)


def _stabilization_time(samples, band: float = 1.2,
                        tail_fraction: float = 0.3) -> float:
    """Shim over :func:`repro.analysis.metrics.stabilization_time`.

    The metric was born here (T13's adversarial-schedule rows) and now
    lives in the analysis layer, where protocol adapters also use it;
    this name stays so existing callers and notes are unchanged.
    """
    from repro.analysis.metrics import stabilization_time
    return stabilization_time(samples, band=band,
                              tail_fraction=tail_fraction)


@REGISTRY.experiment(
    "t13",
    title="T13  Dynamic networks: skew vs edge churn (Kuhn et al.)",
    claim="Under i.i.d. edge churn applied through the topology "
          "schedule, FTGCS and the fault-intolerant GCS baseline both "
          "degrade gracefully on line/ring/grid; the sweep quantifies "
          "skew growth against the churn rate for each.  An "
          "adversarial cut-sweep row (first-contact estimator "
          "bring-up enabled) measures the worst case: the topology is "
          "disconnected at every step, yet skew stabilizes after the "
          "events.",
    columns=["graph", "churn", "ftgcs local", "ftgcs global",
             "gcs local", "gcs global"],
    default_seed=13)
def t13_plan(quick: bool, seed: int) -> ExperimentPlan:
    params = fast_dynamics_params(f=1)
    gcs_params = _fast_gcs_params()
    graphs = [("line", (4,)), ("ring", (4,))]
    if not quick:
        graphs.append(("grid", (3, 3)))
    churn_rates = (0.0, 0.25, 0.5)
    rounds = 10 if quick else 25
    interval = 2.0 * params.round_length
    gcs_horizon = 600.0 if quick else 1500.0
    gcs_interval = 50.0

    grid = [(graph, args, churn) for graph, args in graphs
            for churn in churn_rates]
    specs = []
    for graph, args, churn in grid:
        specs.append(
            Scenario.on(graph, *args).params(params).rounds(rounds)
            .dynamic("churn", interval=interval, churn=churn)
            .tag("ftgcs", graph, churn).build())
        specs.append(
            Scenario.on(graph, *args).protocol("gcs_single")
            .dynamic("churn", interval=gcs_interval, churn=churn)
            .payload(params=gcs_params, until=gcs_horizon)
            .tag("gcs", graph, churn).build())

    # Appended after the churn grid so the derived per-cell seeds of
    # the existing cells (and hence the existing rows) stay
    # byte-identical: the adversarial cut-sweep pair, with
    # first-contact estimator bring-up on the FTGCS side.
    sweep_rounds = 12 if quick else 30
    specs.append(
        Scenario.line(4).params(params).rounds(sweep_rounds)
        .dynamic("adversarial_sweep", interval=interval)
        .first_contact()
        .tag("ftgcs", "line-sweep", "adv").build())
    specs.append(
        Scenario.line(4).protocol("gcs_single")
        .dynamic("adversarial_sweep", interval=gcs_interval)
        .payload(params=gcs_params, until=gcs_horizon)
        .tag("gcs", "line-sweep", "adv").build())

    def finish(cells, table: Table) -> Table:
        churn_cells = cells[:2 * len(grid)]
        for (graph, args, churn), ft_cell, gcs_cell in zip(
                grid, churn_cells[0::2], churn_cells[1::2]):
            ft = ft_cell.result
            gcs = gcs_cell.result
            table.add_row(f"{graph}{args}", churn,
                          ft.max_local_skew, ft.max_global_skew,
                          gcs.max_local_skew, gcs.max_global_skew)
        adv_ft, adv_gcs = cells[2 * len(grid):]
        ft = adv_ft.result
        gcs = adv_gcs.result
        table.add_row("line(4,)", "sweep",
                      ft.max_local_skew, ft.max_global_skew,
                      gcs.max_local_skew, gcs.max_global_skew)
        table.add_note(
            f"edges flap i.i.d. per interval (ftgcs: every "
            f"{interval:.3g}, gcs: every {gcs_interval:.3g}); down "
            f"edges drop messages while estimators coast; GCS local "
            f"skew is measured over currently active correct edges")
        table.add_note("the two algorithms run their own parameter "
                       "scales (FTGCS: rho=1e-4 cluster params; GCS: "
                       "rho=1e-2 fast-drift params), so compare trends "
                       "down a column, not across algorithms")
        detail = ft.detail
        settle = _stabilization_time(
            [(s.time, s.max_local_cluster) for s in detail.series])
        table.add_note(
            f"'sweep' row: an adversarial cut walks the line (one "
            f"step per {interval:.3g}, disconnecting the graph each "
            f"step) with first-contact estimator bring-up enabled "
            f"({detail.estimator_bring_ups} bring-ups, "
            f"{detail.estimator_resyncs} resyncs, "
            f"{adv_ft.result.messages_dropped} messages dropped); "
            f"local skew stabilizes into its steady band by "
            f"t={settle:.4g}")
        return table

    return ExperimentPlan(specs=specs, finish=finish)


# ----------------------------------------------------------------------
# T14 — Gradient-TRIX-style parameter grid (Lenzen & Srinivas direction)
# ----------------------------------------------------------------------

#: Deterministic eps ladder searched (in order) when mapping a GCS
#: baseline ``mu`` onto a feasible FTGCS parameter set: aggressive mu
#: needs a larger eps before the Eq. (10) contraction ``alpha < 1``
#: admits a fixed point (and past ``mu ~ 0.05`` no eps does — the
#: feasibility frontier of the paper's construction sits *inside* the
#: baseline's design space, which T14 reports explicitly).
FTGCS_MU_EPS_LADDER = (0.2, 0.25, 0.3, 0.35, 0.4, 0.44)


def ftgcs_params_for_mu(mu: float, d: float = 1.0,
                        u: float = 0.05) -> Parameters | None:
    """Feasible FTGCS parameters with exactly this ``mu``, or ``None``.

    ``rho = mu / 32`` keeps the Eq. (5) structure ``mu = c2 * rho``
    with ``c2 = 32`` (the division by a power of two is float-exact,
    so ``params.mu == mu`` bit-for-bit); eps is taken from
    :data:`FTGCS_MU_EPS_LADDER`, first feasible wins.  Deterministic:
    the same ``mu`` always maps to the same parameters, on any
    machine.
    """
    from repro.errors import ParameterError

    rho = mu / 32.0
    for eps in FTGCS_MU_EPS_LADDER:
        try:
            return Parameters.practical(rho=rho, d=d, u=u, f=1,
                                        eps=eps, k_stab=1)
        except ParameterError:
            continue
    return None


@REGISTRY.experiment(
    "t14",
    title="T14  Gradient-TRIX parameter grid: skew vs mu across D",
    claim="Across the mu/period design space of the gradient "
          "algorithm — now including full-scale diameters D=32/64 — "
          "the steady local skew tracks the trigger unit kappa "
          "(log-log fit of skew against kappa near slope 1 with small "
          "residual) and its kappa-normalized value stays flat in the "
          "diameter; FTGCS swept over the same mu grid tracks its own "
          "kappa until the Eq. (5) feasibility frontier, which lies "
          "inside the baseline's design space — the trade-off "
          "Gradient-TRIX navigates in hardware.",
    columns=["protocol", "D", "mu", "kappa", "steady local",
             "steady global", "local/kappa", "kappa-fit slope",
             "kappa-fit residual"],
    default_seed=14)
def t14_plan(quick: bool, seed: int) -> ExperimentPlan:
    diameters = (4, 8, 32, 64) if quick else (4, 8, 16, 32, 64)
    mu_values = (0.02, 0.05, 0.1) if quick else (0.02, 0.05, 0.1, 0.2)
    horizon = 400.0 if quick else 1200.0
    grid = [(diameter, mu) for diameter in diameters
            for mu in mu_values]
    specs = [
        Scenario.line(diameter + 1).protocol("gcs_single").seed(seed)
        .payload(params=_fast_gcs_params(mu=mu), until=horizon)
        .tag("D", diameter, "mu", mu).build()
        for diameter, mu in grid]

    # FTGCS comparison block: the same mu grid, one cell per feasible
    # mu (see ftgcs_params_for_mu) on a fixed-diameter line with a
    # trigger-forcing initial gradient, fault-free.
    ftgcs_d = 4
    ftgcs_rounds = 12 if quick else 25
    ftgcs_params = {mu: ftgcs_params_for_mu(mu) for mu in mu_values}
    for mu in mu_values:
        params = ftgcs_params[mu]
        if params is None:
            continue
        specs.append(
            Scenario.line(ftgcs_d + 1).params(params)
            .rounds(ftgcs_rounds).seed(seed)
            .offsets(gradient_offsets(ftgcs_d + 1, 2.2 * params.kappa))
            .tag("ftgcs", "mu", mu).build())

    def finish(cells, table: Table) -> Table:
        # (protocol, D, mu, kappa, steady local, steady global); NaN
        # kappa marks an infeasible FTGCS cell (no simulation ran).
        rows: list[tuple] = []
        for (diameter, mu), cell in zip(grid, cells):
            kappa = _fast_gcs_params(mu=mu).kappa
            samples = cell.result.series
            tail = samples[len(samples) // 2:]
            steady_local = max((s[1] for s in tail), default=0.0)
            steady_global = max((s[2] for s in tail), default=0.0)
            rows.append(("gcs", diameter, mu, kappa, steady_local,
                         steady_global))
        ftgcs_cells = iter(cells[len(grid):])
        for mu in mu_values:
            params = ftgcs_params[mu]
            if params is None:
                # None (rendered "-"), not NaN: infeasible cells must
                # compare equal across runs for the pool-invariance
                # and artifact-diff checks.
                rows.append(("ftgcs", ftgcs_d, mu, None, None, None))
                continue
            cell = next(ftgcs_cells)
            steady = cell.steady_state_skews()
            rows.append(("ftgcs", ftgcs_d, mu, params.kappa,
                         steady["local_cluster"], steady["global"]))

        # Per-(protocol, D) kappa-vs-measured-local-skew regression
        # across the mu axis (pure arithmetic on the rows above, so
        # serial and pooled sweeps stay bit-identical).
        groups: dict[tuple[str, int], list[tuple[float, float]]] = {}
        for protocol, diameter, _mu, kappa, local, _global in rows:
            points = groups.setdefault((protocol, diameter), [])
            if kappa is not None and kappa > 0 and local > 0:
                points.append((kappa, local))
        fits = {}
        for key, points in groups.items():
            if len(points) >= 2:
                slope, _intercept, residual = log_log_fit(
                    [p[0] for p in points], [p[1] for p in points])
                fits[key] = (slope, residual)
            else:
                fits[key] = (None, None)
        for protocol, diameter, mu, kappa, local, global_ in rows:
            contributed = kappa is not None and kappa > 0 and local > 0
            # Rows outside the fit's point set (infeasible mu) show no
            # fit either — a dashed row must not display a regression
            # it contributed nothing to.
            slope, residual = (fits[(protocol, diameter)]
                               if contributed else (None, None))
            ratio = local / kappa if contributed else None
            table.add_row(protocol, diameter, mu, kappa, local, global_,
                          ratio, slope, residual)
        table.add_note("steady skews = max over the final half of "
                       "samples; gcs rows: fault-free lines with "
                       "alternating drift rates, rho=1e-2, period=2d; "
                       "ftgcs rows: fault-free line D=4, gradient "
                       "init 2.2*kappa/edge, Eq. (5) params with "
                       "mu = 32*rho")
        table.add_note("kappa-fit slope/residual: least-squares fit "
                       "of ln(steady local) against ln(kappa) across "
                       "the mu grid, per (protocol, D) row group — "
                       "slope near 1 means the measured skew tracks "
                       "the trigger unit proportionally (the "
                       "Gradient-TRIX regression)")
        infeasible = [mu for mu in mu_values if ftgcs_params[mu] is None]
        if infeasible:
            table.add_note(
                f"dashed ftgcs rows: mu in {infeasible} admits no "
                f"alpha < 1 fixed point on the eps ladder "
                f"{FTGCS_MU_EPS_LADDER} — the Eq. (5) feasibility "
                f"frontier lies inside the baseline's mu range")
        return table

    return ExperimentPlan(specs=specs, finish=finish)


# ----------------------------------------------------------------------
# T15 — T-interval connectivity vs measured local skew (Kuhn et al.)
# ----------------------------------------------------------------------

@REGISTRY.experiment(
    "t15",
    title="T15  T-interval connectivity vs local skew (Kuhn et al.)",
    claim="Against a worst-case T-interval-connected adversary (a "
          "rotating spanning backbone; every non-backbone edge down), "
          "FTGCS with first-contact estimator bring-up keeps the "
          "local skew bounded at every T, degrading as T shrinks — "
          "smaller T means a faster-rotating backbone, more "
          "first-contact events, and longer stabilization.",
    columns=["graph", "T", "local skew", "global skew", "bring-ups",
             "resyncs", "stabilized by"],
    default_seed=15)
def t15_plan(quick: bool, seed: int) -> ExperimentPlan:
    params = fast_dynamics_params(f=1)
    graphs = [("ring", (4,))]
    if not quick:
        graphs.append(("grid", (3, 3)))
    t_values = (1, 2, 4) if quick else (1, 2, 4, 8)
    rounds = 15 if quick else 40
    interval = params.round_length

    grid = [(graph, args, T) for graph, args in graphs
            for T in t_values]
    specs = [
        Scenario.on(graph, *args).params(params).rounds(rounds)
        .dynamic("t_interval", interval=interval, T=T)
        .first_contact()
        .tag(graph, T).build()
        for graph, args, T in grid]

    def finish(cells, table: Table) -> Table:
        for (graph, args, T), cell in zip(grid, cells):
            result = cell.result
            detail = result.detail
            settle = _stabilization_time(
                [(s.time, s.max_local_cluster) for s in detail.series])
            table.add_row(f"{graph}{args}", T,
                          result.max_local_skew, result.max_global_skew,
                          detail.estimator_bring_ups,
                          detail.estimator_resyncs, settle)
        table.add_note(
            f"T-interval connectivity: the adversary keeps one seeded "
            f"random spanning tree up per epoch of T intervals (each "
            f"tree lives two epochs, so every sliding window of T "
            f"intervals contains a stable connected spanning "
            f"subgraph) and kills every other edge; interval = "
            f"{interval:.4g} (one round)")
        table.add_note("'stabilized by' = time of the last local-skew "
                       "sample above 1.2x the steady (final-30%) "
                       "level; estimators warm up (one completed "
                       "exchange) before entering the trigger "
                       "aggregation")
        return table

    return ExperimentPlan(specs=specs, finish=finish)


# ----------------------------------------------------------------------
# T16 — Robustness: message loss x node churn (deployment-grade faults)
# ----------------------------------------------------------------------

@REGISTRY.experiment(
    "t16",
    title="T16  Robustness: skew vs message loss and node churn",
    claim="Under deployment-grade fault injection — Bernoulli message "
          "loss on every link and whole-node crash-and-rejoin churn "
          "(rejoin with protocol-state amnesia through the bring-up "
          "path) — every faulted cell degrades relative to the "
          "fault-free corner and FTGCS re-enters its steady band "
          "after each churn wave.  FTGCS skew peaks at *moderate* "
          "loss: heavy loss starves estimates low and the triggers "
          "fail slow (the sound direction), trading clock progress "
          "for gradient.  The zero/zero corner is bit-identical to "
          "the fault-free tables.",
    columns=["protocol", "loss", "churn", "steady local skew",
             "stabilized by", "lost", "link-down", "crashes", "rejoins"],
    default_seed=16)
def t16_plan(quick: bool, seed: int) -> ExperimentPlan:
    params = fast_dynamics_params(f=1)
    gcs_params = _fast_gcs_params()
    loss_rates = (0.0, 0.05, 0.2) if quick else (0.0, 0.02, 0.05,
                                                 0.1, 0.2)
    churn_rates = (0.0, 0.1) if quick else (0.0, 0.05, 0.15)
    rounds = 12 if quick else 30
    ms_rounds = 15 if quick else 40
    reps = 2 if quick else 4
    interval = 2.0 * params.round_length
    gcs_horizon = 600.0 if quick else 1500.0
    gcs_interval = 50.0
    rejoin = 0.8

    def churned(scenario, crash, churn_interval, protect=()):
        if crash == 0.0:
            # No schedule at all: the fault-free corner runs the
            # exact static code path (byte-identity, not just zero
            # counters).
            return scenario
        return scenario.churn_nodes(interval=churn_interval,
                                    crash=crash, rejoin=rejoin,
                                    protect=protect)

    grid = [(loss, churn) for loss in loss_rates
            for churn in churn_rates]
    specs = []
    for loss, churn in grid:
        for rep in range(reps):
            specs.append(
                churned(Scenario.line(4).params(params).rounds(rounds)
                        .lossy(rate=loss), churn, interval)
                .tag("ftgcs", loss, churn, rep).build())
        for rep in range(reps):
            specs.append(
                churned(Scenario.line(4).protocol("gcs_single")
                        .payload(params=gcs_params, until=gcs_horizon)
                        .lossy(rate=loss), churn, gcs_interval)
                .tag("gcs_single", loss, churn, rep).build())
        # Master-slave: churn is link silencing only (no bring-up
        # path to lose state through); the root is protected so the
        # tree still has a master to chase.
        for rep in range(reps):
            specs.append(
                churned(Scenario.line(4).protocol("master_slave")
                        .params(params).rounds(ms_rounds)
                        .payload(record_series=True)
                        .lossy(rate=loss), churn, interval,
                        protect=(0,))
                .tag("master_slave", loss, churn, rep).build())

    def steady_local(result) -> float:
        """Steady-band local skew: max over the final 30% of samples
        (the level the run settles to under *sustained* faults)."""
        series = result.series
        if not series:
            return result.max_local_skew
        if isinstance(series[0], tuple):  # gcs: (t, local, global)
            locals_ = [s[1] for s in series]
        else:  # SkewSnapshot list
            locals_ = [s.max_local_cluster for s in series]
        return max(locals_[int(len(locals_) * 0.7):])

    def finish(cells, table: Table) -> Table:
        per_point = 3 * reps
        for (loss, churn), index in zip(
                grid, range(0, len(cells), per_point)):
            point = cells[index:index + per_point]
            for offset in range(0, per_point, reps):
                group = point[offset:offset + reps]
                results = [cell.result for cell in group]
                settles = [r.stabilization_time for r in results
                           if r.stabilization_time is not None]
                table.add_row(
                    group[0].key[0], loss, churn,
                    sum(steady_local(r) for r in results) / reps,
                    (sum(settles) / len(settles) if settles
                     else float("nan")),
                    sum(r.messages_lost for r in results),
                    sum(r.dropped_link_down for r in results),
                    sum(r.node_crashes for r in results),
                    sum(r.node_rejoins for r in results))
        table.add_note(
            f"loss: i.i.d. Bernoulli per message from a dedicated "
            f"seed stream (delay draws untouched); churn: every "
            f"interval (ftgcs/ms: {interval:.3g}, gcs: "
            f"{gcs_interval:.3g}) each alive node crashes with the "
            f"churn probability and each crashed one rejoins with "
            f"p={rejoin:g} — whole node dark, state lost, rejoin "
            f"through the amnesiac bring-up path")
        table.add_note(
            "master_slave churn silences links only (its root is "
            "protected); the three algorithms run their own parameter "
            "scales, so compare trends down a column, not across "
            "algorithms")
        table.add_note(
            f"'stabilized by' = time of the last local-skew sample "
            f"above 1.2x the steady (final-30%) level; 'lost' counts "
            f"random-loss drops, 'link-down' drops on dark links; "
            f"skew/stabilization are means over {reps} seeds, "
            f"counters are totals")
        table.add_note(
            "FTGCS skew is not monotone in loss: moderate loss "
            "maximizes asymmetric estimate staleness, while heavy "
            "loss starves estimates low so triggers fail slow — the "
            "skew tightens but the clocks visibly lag real time "
            "(progress, not gradient, is what heavy loss costs)")
        return table

    return ExperimentPlan(specs=specs, finish=finish)


# ----------------------------------------------------------------------
# T17 — vectorized engine: cross-engine agreement and scale
# ----------------------------------------------------------------------

@REGISTRY.experiment(
    "t17",
    title="T17  Vectorized engine: skew agreement and scale",
    claim="The struct-of-arrays round engine reproduces the event "
          "engine's GCS skews within one trigger-level width at every "
          "small diameter, and extends the same sweep to "
          "caterpillar graphs of 1e5+ nodes at diameter 256 — sizes "
          "the event kernel cannot touch — reporting measured "
          "rounds/s for both engines.",
    columns=["topology", "D", "nodes", "engine", "rounds",
             "local skew", "global skew", "rounds/s", "agrees"],
    default_seed=17)
def t17_plan(quick: bool, seed: int) -> ExperimentPlan:
    # The drift-sawtooth cell of the equivalence matrix: odd/even
    # neighbors drift apart at rho per unit time, hit the first
    # trigger level (2*kappa - slack), and fast mode pulls them back.
    # kappa is one level width — the documented cross-engine
    # tolerance (at most one round of trigger-decision divergence).
    gcs = GcsParams(rho=1e-3, d=1.0, u=0.01, mu=0.01, period=10.0,
                    kappa=0.3, slack=0.1)
    small_d = (4, 8, 16) if quick else (4, 8, 16, 32, 64)
    small_rounds = 100
    small_until = small_rounds * gcs.period
    # Big cells: caterpillar(length, width) has length * width nodes
    # but diameter length + 1 — node count and diameter decoupled, so
    # D=256 coexists with 1e5 (quick) / 1e6 (full) nodes.  Diameters
    # are computed from the construction, never via graph.diameter()
    # (an O(n^2) BFS at these sizes).
    if quick:
        big = [(63, 160, 50), (255, 393, 50)]      # ~10k, ~100k nodes
    else:
        big = [(63, 1600, 100), (255, 3922, 100)]  # ~100k, ~1e6 nodes

    specs = []
    for d in small_d:
        base = (Scenario.line(d + 1).protocol("gcs_single")
                .payload(params=gcs, until=small_until)
                .seed(seed).timed())
        for engine in ("event", "vectorized"):
            specs.append(base.engine(engine)
                         .tag("line", d, engine).build())
    for length, width, rounds in big:
        specs.append(
            Scenario.on("caterpillar", length, width)
            .protocol("gcs_single").engine("vectorized")
            .payload(params=gcs, until=rounds * gcs.period)
            .seed(seed).timed()
            .tag("caterpillar", length + 1, "vectorized").build())

    def finish(cells, table: Table) -> Table:
        def add_row(cell, nodes, rounds, agrees):
            topology, d, engine = cell.key
            result = cell.result
            wall = cell.extras["timing"]["wall_seconds"]
            table.add_row(topology, d, nodes, engine, rounds,
                          result.max_local_skew,
                          result.max_global_skew,
                          (rounds / wall if wall > 0
                           else float("nan")), agrees)

        index = 0
        for d in small_d:
            event_cell = cells[index]
            vec_cell = cells[index + 1]
            index += 2
            agrees = (
                abs(vec_cell.result.max_local_skew
                    - event_cell.result.max_local_skew) <= gcs.kappa
                and abs(vec_cell.result.max_global_skew
                        - event_cell.result.max_global_skew)
                <= gcs.kappa)
            add_row(event_cell, d + 1, small_rounds, "-")
            add_row(vec_cell, d + 1, small_rounds, agrees)
        for (length, width, rounds), cell in zip(big, cells[index:]):
            add_row(cell, length * width, rounds, "-")
        table.add_note(
            f"agrees: the vectorized row's skews match the event row "
            f"above it within one trigger-level width "
            f"(kappa = {gcs.kappa:g}) — the documented tolerance of "
            f"the engine equivalence contract "
            f"(repro.engine_vec.equivalence)")
        table.add_note(
            "rounds/s is in-worker wall clock (machine-dependent, "
            "excluded from determinism guarantees); every skew column "
            "is bit-reproducible")
        table.add_note(
            "caterpillar(length, width): spine of `length` hubs with "
            "width-1 leaves each — n = length*width nodes at diameter "
            "length+1, so the D=256 rows carry 1e5+ nodes; vectorized "
            "only (the event kernel would need ~n*rounds events)")
        return table

    return ExperimentPlan(specs=specs, finish=finish)


# ----------------------------------------------------------------------
# T18 — adversarial resilience: injected error vs achieved skew
# ----------------------------------------------------------------------

@REGISTRY.experiment(
    "t18",
    title="T18  Adversarial resilience: injected error vs achieved "
          "skew",
    claim="Amplitude-capped adversaries — static and search-based "
          "adaptive, engine-agnostic through the unified "
          "AdversaryModel layer — stay within the absorption envelope "
          "on the deadband-protected protocols (sub-deadband lies are "
          "absorbed outright), adaptive search dominates every static "
          "pattern at equal budget, and the vectorized injection path "
          "sustains 1e4+-node sweeps at measured rounds/s.",
    columns=["protocol", "adversary", "amplitude", "engine", "nodes",
             "local skew", "extra", "envelope", "within", "rounds/s"],
    default_seed=18)
def t18_plan(quick: bool, seed: int) -> ExperimentPlan:
    ft = fast_dynamics_params(f=1)
    gcs = GcsParams(rho=1e-3, d=1.0, u=0.01, mu=0.01, period=10.0,
                    kappa=0.3, slack=0.1)
    st = StParams(n=8, f=2, rho=1e-3, d=1.0, u=0.01, period=10.0)
    ft_n, gcs_n = 6, 16
    ft_rounds = 40 if quick else 80
    gcs_until = (40 if quick else 100) * gcs.period
    st_rounds = 20 if quick else 60
    # Challenge amplitudes sit well above each protocol's deadband
    # (2*kappa - slack); the "_lo" rows sit below it, exhibiting
    # outright absorption.  The clique has no deadband: its envelope
    # is the lie itself plus the jitter width.
    ft_amp, ft_amp_lo = 2.5 * ft.kappa, 0.5 * ft.kappa
    gcs_amp, gcs_amp_lo = 4.0 * gcs.kappa, 0.5 * gcs.kappa
    st_amp, st_amp_lo = st.d, 0.1 * st.d

    def ft_cell() -> Scenario:
        return (Scenario.line(ft_n).params(ft).rounds(ft_rounds)
                .seed(seed))

    def gcs_cell() -> Scenario:
        return (Scenario.line(gcs_n).protocol("gcs_single")
                .payload(params=gcs, until=gcs_until).seed(seed))

    def st_cell() -> Scenario:
        return (Scenario.of_protocol("srikanth_toueg")
                .payload(params=st, rounds=st_rounds).seed(seed))

    specs: list = []
    grid: list[tuple] = []

    def cell(protocol, adversary, amplitude, engine, nodes, builder,
             timed=False):
        if adversary is not None:
            builder = builder.adversarial(adversary,
                                          amplitude=amplitude)
        if engine == "vectorized":
            builder = builder.engine("vectorized")
        if timed:
            builder = builder.timed()
        specs.append(builder.tag(protocol, adversary or "none",
                                 engine).build())
        grid.append((protocol, adversary, amplitude, engine, nodes,
                     timed))

    # Fault-free baselines (the "extra skew" reference points).
    cell("ftgcs", None, 0.0, "vectorized", ft_n, ft_cell())
    cell("gcs_single", None, 0.0, "vectorized", gcs_n, gcs_cell())
    cell("srikanth_toueg", None, 0.0, "vectorized", st.n, st_cell())
    # Static vs adaptive at the challenge amplitude, vectorized.
    for adv in ("silent", "equivocate", "fast_clock", "greedy",
                "random_restart"):
        cell("ftgcs", adv, ft_amp, "vectorized", ft_n, ft_cell())
        cell("gcs_single", adv, gcs_amp, "vectorized", gcs_n,
             gcs_cell())
    for adv in ("silent", "random_pulse", "greedy", "random_restart"):
        cell("srikanth_toueg", adv, st_amp, "vectorized", st.n,
             st_cell())
    # Sub-deadband absorption rows.
    cell("ftgcs", "equivocate", ft_amp_lo, "vectorized", ft_n,
         ft_cell())
    cell("gcs_single", "equivocate", gcs_amp_lo, "vectorized", gcs_n,
         gcs_cell())
    cell("srikanth_toueg", "random_pulse", st_amp_lo, "vectorized",
         st.n, st_cell())
    # Engine-agnostic twins: the same .adversarial(...) spelling on
    # the event kernel (strategy adapter / liars / silent_faults).
    cell("ftgcs", "equivocate", ft_amp, "event", ft_n, ft_cell())
    cell("gcs_single", "equivocate", gcs_amp, "event", gcs_n,
         gcs_cell())
    cell("srikanth_toueg", "silent", st_amp, "event", st.n, st_cell())
    # Scale cell: adaptive search at 1e4+ (quick) / 1e5+ (full) nodes.
    length, width = (63, 160) if quick else (255, 393)
    big_rounds = 20 if quick else 50
    cell("gcs_single", "random_restart", gcs_amp, "vectorized",
         length * width,
         Scenario.on("caterpillar", length, width)
         .protocol("gcs_single")
         .payload(params=gcs, until=big_rounds * gcs.period)
         .seed(seed), timed=True)

    def envelope(protocol: str, amplitude: float) -> float:
        if protocol == "ftgcs":
            return resilience_bound(
                amplitude, kappa=ft.kappa, slack=ft.delta_trigger,
                correction=ft.mu * ft.round_length)
        if protocol == "gcs_single":
            return resilience_bound(
                amplitude, kappa=gcs.kappa, slack=gcs.slack,
                correction=gcs.mu * gcs.period)
        return resilience_bound(amplitude, kappa=0.0, slack=0.0,
                                correction=st.u)

    def finish(cells, table: Table) -> Table:
        baseline = {
            spec_row[0]: cell.result.max_local_skew
            for spec_row, cell in zip(grid, cells)
            if spec_row[1] is None}
        for (protocol, adv, amp, engine, nodes, timed), cell in zip(
                grid, cells):
            skew = cell.result.max_local_skew
            if adv is None:
                table.add_row(protocol, "none", 0.0, engine, nodes,
                              skew, 0.0, "-", "-", "-")
                continue
            extra = max(0.0, skew - baseline[protocol])
            env = envelope(protocol, amp)
            within = extra <= env * (1.0 + 1e-9)
            if timed:
                wall = cell.extras["timing"]["wall_seconds"]
                rounds = cell.result.detail.get("rounds", 0)
                rate = rounds / wall if wall > 0 else float("nan")
            else:
                rate = "-"
            table.add_row(protocol, adv, amp, engine, nodes, skew,
                          extra, env, within, rate)
        table.add_note(
            "extra = max(0, local skew - same-protocol fault-free "
            "baseline); envelope = resilience_bound(...) — the "
            "absorption argument adapted from arXiv:1809.03165 / "
            "arXiv:2006.15832 (deadband 2*kappa - slack plus one "
            "correction quantum per round)")
        table.add_note(
            "greedy/random_restart are search-based adaptive "
            "adversaries (vectorized-only, one-step lookahead over "
            "budget-feasible patterns); 'within' False on the "
            "fault-INtolerant gcs_single baseline is the expected "
            "paper narrative, not a regression")
        table.add_note(
            "rounds/s is in-worker wall clock (machine-dependent, "
            "excluded from determinism guarantees); every skew column "
            "is bit-reproducible, serial == pooled")
        return table

    return ExperimentPlan(specs=specs, finish=finish)


# ----------------------------------------------------------------------
# Backward-compatible wrappers
# ----------------------------------------------------------------------

def t01_local_skew_vs_diameter(quick: bool = True, seed: int = 1,
                               processes: int | None = None) -> Table:
    """Line networks with one equivocator per cluster and an initial
    inter-cluster gradient of ``2.2 kappa`` per edge (forcing trigger
    activity).  Measured steady local skews vs the Theorem 1.1 bounds.
    """
    return run_experiment("t01", quick=quick, seed=seed,
                          processes=processes)


def t02_intra_cluster_skew(quick: bool = True, seed: int = 2,
                           processes: int | None = None) -> Table:
    """Single clusters of size 3f+1 under the strongest pulse attacks;
    steady intra-cluster skew against both forms of the bound."""
    return run_experiment("t02", quick=quick, seed=seed,
                          processes=processes)


def t03_attack_gallery(quick: bool = True, seed: int = 3,
                       processes: int | None = None) -> Table:
    """Every strategy against a ring; all FTGCS bounds must hold.
    The last rows run the *fault-intolerant* GCS baseline under a
    single liar: its correct-edge local skew grows without bound."""
    return run_experiment("t03", quick=quick, seed=seed,
                          processes=processes)


def t04_master_slave_compression(quick: bool = True, seed: int = 4,
                                 processes: int | None = None) -> Table:
    """Inject a global skew ``S`` at the root of a line; the classic
    (jump-based) master–slave tree propagates the *full* S across every
    interior edge, while FTGCS caps interior edges near ``2 kappa``."""
    return run_experiment("t04", quick=quick, seed=seed,
                          processes=processes)


def t05_failure_probability(quick: bool = True, seed: int = 5,
                            processes: int | None = None) -> Table:
    """Monte Carlo estimate vs the exact tail and both printed bounds."""
    return run_experiment("t05", quick=quick, seed=seed,
                          processes=processes)


def t06_unanimous_rates(quick: bool = True, seed: int = 6,
                        processes: int | None = None) -> Table:
    """Two clusters offset by 3*kappa: the laggard runs unanimously
    fast, the leader unanimously slow.  Measures amortized per-round
    rates and pulse diameters against Lemma 3.6's guarantees."""
    return run_experiment("t06", quick=quick, seed=seed,
                          processes=processes)


def t07_ablation_c1(quick: bool = True, seed: int = 7,
                    processes: int | None = None) -> Table:
    """Sweep ``c1``: with a short phase 3 (small c1), Lynch–Welch
    corrections eat the entire ``mu`` speed budget and fast clusters
    cannot outrun slow ones; the paper's ``c1 = Theta(1/rho)`` restores
    the gap.  This is the 'main obstacle' of Section 1, measured."""
    return run_experiment("t07", quick=quick, seed=seed,
                          processes=processes)


def t08_overheads(quick: bool = True, seed: int = 8,
                  processes: int | None = None) -> Table:
    """Exact node/edge counts of the augmentation across topologies."""
    return run_experiment("t08", quick=quick, seed=seed,
                          processes=processes)


def t09_global_skew(quick: bool = True, seed: int = 9,
                    processes: int | None = None) -> Table:
    """(a) Global skew stays below ``c_global * delta * (D+1)`` across
    diameters; (b) a lagging tail converges faster with the Theorem C.3
    max-rule than with slow-default (parallel vs sequential wakeup)."""
    return run_experiment("t09", quick=quick, seed=seed,
                          processes=processes)


def t10_trigger_exclusion(quick: bool = True, seed: int = 10,
                          processes: int | None = None) -> Table:
    """(a) In every simulated scenario, no round ever satisfies both
    triggers; (b) randomized check of Lemma 4.8's core step: conditions
    on true cluster clocks imply triggers on estimates perturbed by up
    to 2E, for delta = (k_stab+5)E and kappa = 3*delta."""
    return run_experiment("t10", quick=quick, seed=seed,
                          processes=processes)


def t11_lw_vs_st(quick: bool = True, seed: int = 11,
                 processes: int | None = None) -> Table:
    """Clique synchronization quality as ``U`` shrinks relative to
    ``d``: Lynch–Welch's bound is ``O(U + (theta-1)d)`` while
    Srikanth–Toueg carries an ``O(d)`` worst case.  We report measured
    steady skews (benign adversary) alongside both bounds."""
    return run_experiment("t11", quick=quick, seed=seed,
                          processes=processes)


def t12_convergence(quick: bool = True, seed: int = 12,
                    processes: int | None = None) -> Table:
    """Single cluster started with pulse spread ~ e(1) >> E under the
    adaptive round schedule: measured ``||p(r)||`` must stay below the
    predicted ``e(r)`` as it contracts geometrically to E."""
    return run_experiment("t12", quick=quick, seed=seed,
                          processes=processes)


def t13_dynamic_networks(quick: bool = True, seed: int = 13,
                         processes: int | None = None) -> Table:
    """Dynamic-topology sweep: FTGCS vs fault-intolerant GCS under
    i.i.d. edge churn on line/ring/grid (skew vs churn rate)."""
    return run_experiment("t13", quick=quick, seed=seed,
                          processes=processes)


def t14_parameter_grid(quick: bool = True, seed: int = 14,
                       processes: int | None = None) -> Table:
    """Gradient-TRIX-style design-space sweep: steady gradient skew
    across the mu grid and diameters up to D=64, with a per-row-group
    kappa-vs-measured-skew log-log regression column and an FTGCS
    comparison block on the same mu grid (infeasible mu reported as
    the Eq. (5) frontier)."""
    return run_experiment("t14", quick=quick, seed=seed,
                          processes=processes)


def t15_t_interval(quick: bool = True, seed: int = 15,
                   processes: int | None = None) -> Table:
    """T-interval-connectivity sweep: local skew and stabilization
    time vs T against a rotating worst-case spanning backbone, with
    first-contact estimator bring-up."""
    return run_experiment("t15", quick=quick, seed=seed,
                          processes=processes)


def t16_robustness(quick: bool = True, seed: int = 16,
                   processes: int | None = None) -> Table:
    """Robustness sweep: local skew, stabilization time, and loss/churn
    accounting for FTGCS vs the GCS and master-slave baselines over a
    message-loss-rate x node-churn-rate grid."""
    return run_experiment("t16", quick=quick, seed=seed,
                          processes=processes)


def t17_scale(quick: bool = True, seed: int = 17,
              processes: int | None = None) -> Table:
    """Vectorized-engine scale sweep: cross-engine GCS skew agreement
    at small diameters, then caterpillar graphs up to D=256 with 1e5+
    nodes (1e6 in full mode), with measured rounds/s per engine."""
    return run_experiment("t17", quick=quick, seed=seed,
                          processes=processes)


def t18_resilience(quick: bool = True, seed: int = 18,
                   processes: int | None = None) -> Table:
    """Adversarial resilience sweep: injected-error magnitude vs
    achieved skew for FTGCS, gcs_single, and srikanth_toueg under the
    unified adversary layer — static vs search-based adaptive models,
    both engines, with the analytic absorption envelope alongside."""
    return run_experiment("t18", quick=quick, seed=seed,
                          processes=processes)


#: All experiments, for "run everything" entry points.
ALL_EXPERIMENTS = {
    "t01": t01_local_skew_vs_diameter,
    "t02": t02_intra_cluster_skew,
    "t03": t03_attack_gallery,
    "t04": t04_master_slave_compression,
    "t05": t05_failure_probability,
    "t06": t06_unanimous_rates,
    "t07": t07_ablation_c1,
    "t08": t08_overheads,
    "t09": t09_global_skew,
    "t10": t10_trigger_exclusion,
    "t11": t11_lw_vs_st,
    "t12": t12_convergence,
    "t13": t13_dynamic_networks,
    "t14": t14_parameter_grid,
    "t15": t15_t_interval,
    "t16": t16_robustness,
    "t17": t17_scale,
    "t18": t18_resilience,
}


def run_all(quick: bool = True,
            processes: int | None = None) -> list[Table]:
    """Run every experiment; returns the tables in order."""
    return [run_experiment(id, quick=quick, processes=processes)
            for id in REGISTRY.ids()]
