"""The paper's experiment suite (T1–T12).

Each function regenerates one "table" of the reproduction (see
DESIGN.md section 3 for the claim-to-experiment mapping) and returns a
:class:`~repro.harness.tables.Table`.  Benchmarks print these tables;
EXPERIMENTS.md records representative rows.

All experiments accept ``quick=True`` (the default) for CI-sized runs
and ``quick=False`` for the full sweeps reported in EXPERIMENTS.md.

The heaviest sweeps (T1, T3, T9, T12) build grids of picklable
:class:`~repro.harness.sweep.ScenarioSpec` cells and execute them
through :class:`~repro.harness.sweep.SweepRunner`, so they accept a
``processes`` argument (default: the ``REPRO_SWEEP_PROCESSES``
environment variable, else serial).  Per-cell results are
bit-identical for any worker count.
"""

from __future__ import annotations

import math
import random

from repro.analysis.bounds import (
    cluster_failure_bound_3ep,
    cluster_failure_bound_binomial,
    cluster_failure_probability,
)
from repro.baselines.gcs_single import GcsParams, GcsSingleSystem
from repro.baselines.master_slave import MasterSlaveSystem
from repro.baselines.srikanth_toueg import SrikanthTouegSystem, StParams
from repro.core.params import Parameters
from repro.core.system import SystemConfig
from repro.core.triggers import evaluate
from repro.faults.strategies import EquivocatorStrategy, SilentStrategy
from repro.core.rounds import RoundSchedule
from repro.harness.runner import (
    default_params,
    gradient_offsets,
    run_scenario,
    step_offsets,
)
from repro.harness.sweep import ScenarioSpec, SweepRunner
from repro.harness.tables import Table
from repro.topology.cluster_graph import ClusterGraph


def fast_dynamics_params(rho: float = 1e-4, d: float = 1.0,
                         u: float = 0.05, f: int = 1,
                         **kwargs) -> Parameters:
    """Parameters tuned for convergence-dynamics experiments.

    ``eps = 0.2`` keeps ``E`` (and hence ``kappa`` and the rounds
    needed per kappa-level of catch-up) small; ``k_stab = 1`` shortens
    the trigger slack.  All structural relations of Eq. (5) hold.
    """
    kwargs.setdefault("eps", 0.2)
    kwargs.setdefault("k_stab", 1)
    return Parameters.practical(rho=rho, d=d, u=u, f=f, **kwargs)


# ----------------------------------------------------------------------
# T1 — Theorem 1.1: local skew vs diameter under Byzantine faults
# ----------------------------------------------------------------------

def t01_local_skew_vs_diameter(quick: bool = True, seed: int = 1,
                               processes: int | None = None) -> Table:
    """Line networks with one equivocator per cluster and an initial
    inter-cluster gradient of ``2.2 kappa`` per edge (forcing trigger
    activity).  Measured steady local skews vs the Theorem 1.1 bounds.
    """
    params = fast_dynamics_params(f=1)
    diameters = (2, 4, 8) if quick else (2, 4, 8, 16)
    rounds = 40 if quick else 80
    table = Table(
        title="T1  Local skew vs diameter (Theorem 1.1)",
        columns=["D", "global S", "local cluster", "cluster bound",
                 "local node", "node bound", "holds"])
    specs = [
        ScenarioSpec(
            graph="line", graph_args=(diameter + 1,), params=params,
            rounds=rounds, seed=seed, strategy="equivocate",
            config={"cluster_offsets": gradient_offsets(
                diameter + 1, 2.2 * params.kappa)},
            key=("D", diameter))
        for diameter in diameters]
    for diameter, cell in zip(diameters,
                              SweepRunner(processes).run(specs)):
        result = cell.result
        steady = cell.steady_state_skews(tail_fraction=0.3)
        bounds = result.bounds
        holds = (steady["local_cluster"] <= bounds.local_skew_bound
                 and steady["local_node"] <= bounds.node_local_skew_bound)
        table.add_row(diameter, result.max_global_skew,
                      steady["local_cluster"], bounds.local_skew_bound,
                      steady["local_node"], bounds.node_local_skew_bound,
                      holds)
    table.add_note(
        f"kappa={params.kappa:.4g}, one equivocator per cluster, "
        f"gradient init 2.2*kappa/edge, steady tail of {rounds} rounds")
    table.add_note("bound columns are the explicit O(kappa log S) forms "
                   "of Thm 4.10 / Thm 1.1; measured << bound is expected")
    return table


# ----------------------------------------------------------------------
# T2 — Corollary 3.2: intra-cluster skew vs cluster size
# ----------------------------------------------------------------------

def t02_intra_cluster_skew(quick: bool = True, seed: int = 2) -> Table:
    """Single clusters of size 3f+1 under the strongest pulse attacks;
    steady intra-cluster skew against both forms of the bound."""
    fault_counts = (1, 2) if quick else (1, 2, 3)
    rounds = 30 if quick else 60
    table = Table(
        title="T2  Intra-cluster skew vs cluster size (Corollary 3.2)",
        columns=["f", "k", "attack", "steady skew", "bound 2*theta_g*E",
                 "bound B.8", "max ||p(r)||", "E", "holds"])
    attacks = [("equivocate", lambda n: EquivocatorStrategy()),
               ("silent", lambda n: SilentStrategy())]
    for f in fault_counts:
        params = default_params(f=f)
        for attack_name, factory in attacks:
            scenario = run_scenario(
                ClusterGraph.line(1), params, rounds=rounds, seed=seed,
                strategy_factory=factory)
            steady = scenario.steady_state_skews()
            diameters = scenario.system.pulse_diameter_table()
            worst_pulse = max(
                (v for (_, r), v in diameters.items() if r > 3),
                default=0.0)
            holds = steady["intra"] <= params.intra_skew_bound_paper()
            table.add_row(f, params.cluster_size, attack_name,
                          steady["intra"],
                          params.intra_skew_bound_paper(),
                          params.intra_skew_bound(), worst_pulse,
                          params.cap_e, holds)
    table.add_note("steady skew = max over final half of samples; "
                   "||p(r)|| should stay below E")
    return table


# ----------------------------------------------------------------------
# T3 — attack gallery + the fault-intolerant GCS failure
# ----------------------------------------------------------------------

def t03_attack_gallery(quick: bool = True, seed: int = 3,
                       processes: int | None = None) -> Table:
    """Every strategy against a ring; all FTGCS bounds must hold.
    The last rows run the *fault-intolerant* GCS baseline under a
    single liar: its correct-edge local skew grows without bound."""
    params = default_params(f=1)
    rounds = 15 if quick else 40
    ring_size = 4 if quick else 6
    table = Table(
        title="T3  Attack gallery (FTGCS) vs fault-intolerant GCS",
        columns=["system", "attack", "intra", "local cluster",
                 "bounds hold", "trend"])
    strategies = [
        ("silent", "silent", ()),
        ("crash@3T", "crash", (3 * params.round_length,)),
        ("random-pulse", "random_pulse", (4.0,)),
        ("fast-clock", "fast_clock", (1.5,)),
        ("slow-clock", "fast_clock", (0.7,)),
        ("equivocate", "equivocate", ()),
        ("pull-apart", "pull_apart", ()),
        ("collusion", "collusion", ()),
    ]
    specs = [
        ScenarioSpec(
            graph="ring", graph_args=(ring_size,), params=params,
            rounds=rounds, seed=seed, strategy=strategy,
            strategy_args=args, key=("attack", name))
        for name, strategy, args in strategies]
    for (name, _, _), cell in zip(strategies,
                                  SweepRunner(processes).run(specs)):
        result = cell.result
        steady = cell.steady_state_skews()
        table.add_row("FTGCS", name, steady["intra"],
                      steady["local_cluster"],
                      result.all_bounds_hold, "bounded")

    # Fault-intolerant GCS: one liar, correct-edge skew ramps forever.
    gcs_params = GcsParams.default(rho=params.rho, d=params.d, u=params.u)
    horizon = 4000.0 if quick else 12000.0
    ring = ClusterGraph.ring(6)
    liar = {0: {1: +1, 5: -1}}
    system = GcsSingleSystem(ring, gcs_params, seed=seed, liars=liar)
    samples = system.run(until=horizon)
    half = len(samples) // 2
    first_half = max(s[1] for s in samples[:half])
    second_half = max(s[1] for s in samples[half:])
    growing = second_half > 1.5 * first_half
    table.add_row("GCS (no FT)", "1 liar", float("nan"),
                  second_half, not growing,
                  "GROWS" if growing else "bounded")
    table.add_note("GCS (no FT) local skew is over correct edges only; "
                   "its growth under a single Byzantine node is the "
                   "paper's motivating failure")
    return table


# ----------------------------------------------------------------------
# T4 — master-slave tree: skew-wave compression (introduction / [15])
# ----------------------------------------------------------------------

def t04_master_slave_compression(quick: bool = True, seed: int = 4
                                 ) -> Table:
    """Inject a global skew ``S`` at the root of a line; the classic
    (jump-based) master–slave tree propagates the *full* S across every
    interior edge, while FTGCS caps interior edges near ``2 kappa``."""
    params = fast_dynamics_params(f=0)
    diameters = (3, 5) if quick else (3, 5, 9)
    injected = 6.0 * params.kappa
    rounds = 25 if quick else 40
    table = Table(
        title="T4  Master-slave compression vs FTGCS (intro / [15])",
        columns=["D", "S injected", "MS interior max", "FTGCS interior max",
                 "FTGCS cap 2*kappa+slack", "MS/S ratio"])
    for diameter in diameters:
        n = diameter + 1
        offsets = step_offsets(n, step_at=0, height=0.0)
        offsets[0] = injected  # root ahead by S

        ms = MasterSlaveSystem(
            ClusterGraph.line(n), params, seed=seed, root=0,
            cluster_offsets=offsets, jump=True, track_edges=True)
        ms_maxima = ms.run_rounds(rounds)
        ms_interior = max(
            (skew for edge, skew in ms_maxima.edge_maxima.items()
             if 0 not in edge), default=0.0)

        config = SystemConfig(cluster_offsets=list(offsets))
        scenario = run_scenario(ClusterGraph.line(n), params,
                                rounds=rounds, seed=seed, config=config)
        ft_interior = max(
            (skew for edge, skew in scenario.result.edge_maxima.items()
             if 0 not in edge), default=0.0)
        cap = 2 * params.kappa + params.delta_trigger
        table.add_row(diameter, injected, ms_interior, ft_interior,
                      cap, ms_interior / injected)
    table.add_note("interior max = worst cluster-edge skew excluding the "
                   "root edge, where S is injected; MS/S near 1 means "
                   "full compression onto interior edges")
    return table


# ----------------------------------------------------------------------
# T5 — Inequality (1): cluster failure probability
# ----------------------------------------------------------------------

def t05_failure_probability(quick: bool = True, seed: int = 5) -> Table:
    """Monte Carlo estimate vs the exact tail and both printed bounds."""
    trials = 40_000 if quick else 400_000
    rng = random.Random(seed)
    table = Table(
        title="T5  Cluster failure probability (Inequality (1))",
        columns=["f", "p", "monte carlo", "exact tail",
                 "C(3f+1,f+1)p^(f+1)", "(3ep)^(f+1)", "ordered"])
    for f in (1, 2, 3):
        k = 3 * f + 1
        for p in (0.01, 0.05, 0.1):
            failures = 0
            for _ in range(trials):
                faulty = sum(1 for _ in range(k) if rng.random() < p)
                if faulty > f:
                    failures += 1
            mc = failures / trials
            exact = cluster_failure_probability(f, p)
            mid = cluster_failure_bound_binomial(f, p)
            top = cluster_failure_bound_3ep(f, p)
            ordered = mc <= mid * 1.2 + 3e-4 and mid <= top * 1.000001
            table.add_row(f, p, mc, exact, mid, top, ordered)
    table.add_note(f"{trials} Monte Carlo trials per row; 'ordered' "
                   "checks mc <~ binomial bound <= (3ep)^(f+1)")
    return table


# ----------------------------------------------------------------------
# T6 — Lemma 3.6: unanimous clusters converge tighter and keep rates
# ----------------------------------------------------------------------

def t06_unanimous_rates(quick: bool = True, seed: int = 6) -> Table:
    """Two clusters offset by 3*kappa: the laggard runs unanimously
    fast, the leader unanimously slow.  Measures amortized per-round
    rates and pulse diameters against Lemma 3.6's guarantees."""
    params = default_params(f=1)
    rounds = 25 if quick else 50
    config = SystemConfig(cluster_offsets=[0.0, 3.0 * params.kappa])
    scenario = run_scenario(ClusterGraph.line(2), params, rounds=rounds,
                            seed=seed, config=config)
    system = scenario.system
    k_stab = params.k_stab

    table = Table(
        title="T6  Unanimous cluster rates and errors (Lemma 3.6)",
        columns=["cluster", "mode", "rounds", "min rate", "max rate",
                 "fast floor", "slow band lo", "slow band hi", "holds"])
    fast_floor = (1 + params.phi) * (1 + 7 * params.mu / 8)
    slow_lo = (1 + params.phi) * (1 - params.mu / 8)
    slow_hi = (1 + params.phi) * (1 + params.mu / 8)

    for cluster, expected_gamma in ((0, 1), (1, 0)):
        unanimity = system.cluster_unanimity(cluster)
        # Longest unanimous prefix in the expected mode.
        stretch = []
        for r in sorted(unanimity):
            unanimous, gamma = unanimity[r]
            if unanimous and gamma == expected_gamma:
                stretch.append(r)
            else:
                break
        usable = [r for r in stretch if r > k_stab and r < len(stretch)]
        rates = []
        for node in system.honest_nodes():
            if node.cluster_id != cluster:
                continue
            for record in node.core.records:
                if (record.round_index in usable
                        and not math.isnan(record.t_end)):
                    rates.append(record.amortized_rate)
        if not rates:
            table.add_row(cluster, "fast" if expected_gamma else "slow",
                          0, float("nan"), float("nan"), fast_floor,
                          slow_lo, slow_hi, False)
            continue
        lo, hi = min(rates), max(rates)
        if expected_gamma == 1:
            holds = lo >= fast_floor * (1 - 1e-9)
            mode = "fast"
        else:
            holds = lo >= slow_lo * (1 - 1e-9) and hi <= slow_hi * (1 + 1e-9)
            mode = "slow"
        table.add_row(cluster, mode, len(usable), lo, hi, fast_floor,
                      slow_lo, slow_hi, holds)

    # Pulse-diameter comparison: unanimous steady state vs general E.
    diam = system.pulse_diameter_table()
    for cluster, mode in ((0, "fast"), (1, "slow")):
        entries = [v for (c, r), v in diam.items()
                   if c == cluster and r > k_stab + 2]
        worst = max(entries, default=float("nan"))
        predicted = params.unanimous_steady_state(mode)
        table.add_note(
            f"cluster {cluster} ({mode}): max ||p(r)|| after warmup = "
            f"{worst:.4g} vs e_inf_{mode} = {predicted:.4g} "
            f"vs general E = {params.cap_e:.4g}")
    return table


# ----------------------------------------------------------------------
# T7 — ablation: the amortization stretch c1 (the paper's key insight)
# ----------------------------------------------------------------------

def t07_ablation_c1(quick: bool = True, seed: int = 7) -> Table:
    """Sweep ``c1``: with a short phase 3 (small c1), Lynch–Welch
    corrections eat the entire ``mu`` speed budget and fast clusters
    cannot outrun slow ones; the paper's ``c1 = Theta(1/rho)`` restores
    the gap.  This is the 'main obstacle' of Section 1, measured."""
    rho, d, u = 1e-4, 1.0, 0.1
    structural = (0.5 - 0.05) / ((1 + 32.0) * rho)
    c1_values = (3.0, 30.0, structural) if quick else (
        3.0, 10.0, 30.0, 100.0, structural)
    rounds = 30 if quick else 50
    table = Table(
        title="T7  Ablation: amortization stretch c1 (Section 1)",
        columns=["c1", "E", "T", "min fast rate", "max slow rate",
                 "worst gap", "worst gap / mu", "fast outruns slow"])
    for c1 in c1_values:
        params = Parameters.custom(rho=rho, d=d, u=u, f=1, c1=c1,
                                   c2=32.0, k_stab=4)
        config = SystemConfig(
            cluster_offsets=[0.0, 3.0 * params.kappa])
        scenario = run_scenario(
            ClusterGraph.line(2), params, rounds=rounds, seed=seed,
            strategy_factory=lambda n: EquivocatorStrategy(),
            config=config)
        system = scenario.system
        rates = {0: [], 1: []}
        for node in system.honest_nodes():
            for record in node.core.records:
                if (params.k_stab < record.round_index < rounds - 1
                        and not math.isnan(record.t_end)):
                    rates[node.cluster_id].append(record.amortized_rate)
        if rates[0] and rates[1]:
            # Lemma 3.6 is a *per-round* guarantee: every fast round
            # must outpace every slow round, so the worst-case gap is
            # min(fast) - max(slow).
            min_fast = min(rates[0])
            max_slow = max(rates[1])
            gap = min_fast - max_slow
        else:
            min_fast = max_slow = gap = float("nan")
        table.add_row(c1, params.cap_e, params.round_length, min_fast,
                      max_slow, gap, gap / params.mu, gap > 0)
    table.add_note("lagging cluster 0 is fast-triggered, leading "
                   "cluster 1 slow-triggered; one equivocator per "
                   "cluster supplies the adversarial correction noise; "
                   "small c1 (short phase 3) lets per-round corrections "
                   "eat the entire mu budget")
    return table


# ----------------------------------------------------------------------
# T8 — overhead accounting: O(f) nodes, O(f^2) edges (Theorem 1.1)
# ----------------------------------------------------------------------

def t08_overheads(quick: bool = True) -> Table:
    """Exact node/edge counts of the augmentation across topologies."""
    graphs = [ClusterGraph.line(8), ClusterGraph.ring(8),
              ClusterGraph.grid(4, 4)]
    if not quick:
        graphs += [ClusterGraph.torus(4, 4), ClusterGraph.hypercube(4),
                   ClusterGraph.balanced_tree(2, 4)]
    table = Table(
        title="T8  Augmentation overheads (Theorem 1.1)",
        columns=["graph", "f", "k", "nodes", "node factor", "edges",
                 "edge factor"])
    for graph in graphs:
        base_nodes = graph.num_clusters
        base_edges = graph.num_edges
        for f in (0, 1, 2, 3):
            k = 3 * f + 1
            aug = graph.augment(k)
            table.add_row(graph.name, f, k, aug.num_nodes,
                          aug.num_nodes / base_nodes, aug.num_edges,
                          aug.num_edges / max(base_edges, 1))
    table.add_note("node factor = k = 3f+1 = O(f); edge factor -> "
                   "k^2 + k(k-1)/2 per original edge/cluster = O(f^2)")
    return table


# ----------------------------------------------------------------------
# T9 — Theorem C.3: global skew O(delta * D) and the max-rule rescue
# ----------------------------------------------------------------------

def t09_global_skew(quick: bool = True, seed: int = 9,
                    processes: int | None = None) -> Table:
    """(a) Global skew stays below ``c_global * delta * (D+1)`` across
    diameters; (b) a lagging tail converges faster with the Theorem C.3
    max-rule than with slow-default (parallel vs sequential wakeup)."""
    params = fast_dynamics_params(f=1, c_global=2.0)
    diameters = (2, 4) if quick else (2, 4, 8)
    rounds = 20 if quick else 40
    table = Table(
        title="T9  Global skew (Theorem C.3)",
        columns=["scenario", "D", "policy", "global skew",
                 "bound c*delta*(D+1)", "holds"])
    rng = random.Random(seed)
    specs = []
    for diameter in diameters:
        n = diameter + 1
        offsets = [rng.uniform(-params.kappa, params.kappa)
                   for _ in range(n)]
        specs.append(ScenarioSpec(
            graph="line", graph_args=(n,), params=params, rounds=rounds,
            seed=seed,
            config={"cluster_offsets": offsets, "policy": "max_rule",
                    "enable_max_estimate": True},
            key=("random init", diameter)))

    # (b) lagging-tail convergence: last two clusters far behind.
    n = 5
    lag = (params.c_global * params.delta_trigger + 2.0 * params.kappa)
    offsets = [0.0, 0.0, 0.0, -lag, -lag]
    tail_rounds = 140 if quick else 200
    policies = ("slow_default", "max_rule")
    for policy in policies:
        specs.append(ScenarioSpec(
            graph="line", graph_args=(n,), params=params,
            rounds=tail_rounds, seed=seed,
            config={"cluster_offsets": list(offsets), "policy": policy,
                    "enable_max_estimate": policy == "max_rule",
                    "max_estimate_unit": params.kappa,
                    "record_series": True},
            key=("lagging tail", policy)))

    cells = SweepRunner(processes).run(specs)
    for cell in cells[:len(diameters)]:
        result = cell.result
        table.add_row("random init", cell.key[1], "max_rule",
                      result.max_global_skew,
                      result.bounds.global_skew_bound,
                      result.within_global_bound)
    for policy, cell in zip(policies, cells[len(diameters):]):
        series = cell.result.series
        recovered = next(
            (s.time for s in series if s.global_skew < 0.9 * lag),
            float("inf"))
        table.add_row("lagging tail", n - 1, policy, recovered,
                      float("nan"), True)
    table.add_note("for 'lagging tail' rows the 'global skew' column is "
                   "the time until the tail recovered 10% of its lag")
    table.add_note("with slow_default the partial gradient freezes "
                   "below the trigger thresholds and the tail NEVER "
                   "recovers (inf) — the M_v rule of Theorem C.3 is "
                   "what bounds the global skew")
    return table


# ----------------------------------------------------------------------
# T10 — Lemmas 4.5 / 4.8: trigger exclusion and faithfulness
# ----------------------------------------------------------------------

def t10_trigger_exclusion(quick: bool = True, seed: int = 10) -> Table:
    """(a) In every simulated scenario, no round ever satisfies both
    triggers; (b) randomized check of Lemma 4.8's core step: conditions
    on true cluster clocks imply triggers on estimates perturbed by up
    to 2E, for delta = (k_stab+5)E and kappa = 3*delta."""
    params = default_params(f=1)
    rounds = 12 if quick else 30
    table = Table(
        title="T10  Trigger exclusion & faithfulness (Lemmas 4.5/4.8)",
        columns=["check", "cases", "violations"])

    both = 0
    decided = 0
    for graph in (ClusterGraph.line(3), ClusterGraph.ring(4)):
        scenario = run_scenario(
            graph, params, rounds=rounds, seed=seed,
            strategy_factory=lambda n: EquivocatorStrategy(),
            config=SystemConfig(cluster_offsets=gradient_offsets(
                graph.num_clusters, 1.5 * params.kappa)))
        result = scenario.result
        both += result.both_triggers_rounds
        decided += result.fast_rounds + result.slow_rounds
    table.add_row("FT & ST simultaneously (simulated rounds)", decided,
                  both)

    rng = random.Random(seed)
    trials = 4000 if quick else 40_000
    cond_violations = 0
    kappa, slack = params.kappa, params.delta_trigger
    err = 2.0 * params.cap_e  # |estimate - cluster clock| <= 2E
    for _ in range(trials):
        own_true = rng.uniform(-5 * kappa, 5 * kappa)
        neighbors = {i: rng.uniform(-5 * kappa, 5 * kappa)
                     for i in range(rng.randint(1, 4))}
        cond = evaluate(own_true, neighbors, kappa, 0.0)
        own_seen = own_true + rng.uniform(-err / 2, err / 2)
        seen = {i: v + rng.uniform(-err, err)
                for i, v in neighbors.items()}
        trig = evaluate(own_seen, seen, kappa, slack)
        if cond.fast and not trig.fast:
            cond_violations += 1
        if cond.slow and not trig.slow:
            cond_violations += 1
    table.add_row("FC/SC without matching FT/ST (randomized)", trials,
                  cond_violations)
    table.add_note("both checks must report 0 violations")
    return table


# ----------------------------------------------------------------------
# T11 — Appendix A: Lynch–Welch vs Srikanth–Toueg clique skew
# ----------------------------------------------------------------------

def t11_lw_vs_st(quick: bool = True, seed: int = 11) -> Table:
    """Clique synchronization quality as ``U`` shrinks relative to
    ``d``: Lynch–Welch's bound is ``O(U + (theta-1)d)`` while
    Srikanth–Toueg carries an ``O(d)`` worst case.  We report measured
    steady skews (benign adversary) alongside both bounds."""
    rho, d = 1e-4, 1.0
    u_values = (0.2, 0.05) if quick else (0.5, 0.2, 0.05, 0.01)
    rounds = 25 if quick else 60
    table = Table(
        title="T11  Lynch-Welch vs Srikanth-Toueg cliques (Appendix A)",
        columns=["U/d", "LW steady skew", "LW bound", "ST steady skew",
                 "ST bound O(d)"])
    for u in u_values:
        params = default_params(rho=rho, d=d, u=u, f=1)
        scenario = run_scenario(
            ClusterGraph.line(1), params, rounds=rounds, seed=seed,
            strategy_factory=lambda n: EquivocatorStrategy(),
            config=SystemConfig(init_jitter=u / 2))
        lw_steady = scenario.steady_state_skews()["intra"]

        st = SrikanthTouegSystem(
            StParams(n=4, f=1, rho=rho, d=d, u=u,
                     period=params.round_length),
            seed=seed, silent_faults=1)
        st_skew = st.run(rounds=rounds)
        table.add_row(u / d, lw_steady, params.intra_skew_bound_paper(),
                      st_skew, 2.0 * d)
    table.add_note("LW bound = 2*theta_g*E = O(U + rho*d); ST's O(d) "
                   "worst case needs adversarial delay+equivocation "
                   "schedules; benign measurements for both are "
                   "U-dominated (see EXPERIMENTS.md discussion)")
    return table


# ----------------------------------------------------------------------
# T12 — Proposition B.14 / Corollary B.13: convergence from loose init
# ----------------------------------------------------------------------

def t12_convergence(quick: bool = True, seed: int = 12,
                    processes: int | None = None) -> Table:
    """Single cluster started with pulse spread ~ e(1) >> E under the
    adaptive round schedule: measured ``||p(r)||`` must stay below the
    predicted ``e(r)`` as it contracts geometrically to E."""
    params = default_params(f=1)
    e1 = 20.0 * params.cap_e
    rounds = 30 if quick else 80
    spec = ScenarioSpec(
        graph="line", graph_args=(1,), params=params, rounds=rounds,
        seed=seed, config={"e1": e1, "init_jitter": e1 / 2.0},
        collect_pulse_diameters=True, key=("e1", e1))
    (cell,) = SweepRunner(processes).run([spec])
    schedule = RoundSchedule(params, e1=e1)
    diameters = cell.pulse_diameters
    table = Table(
        title="T12  Convergence from loose initialization (Prop. B.14)",
        columns=["round", "predicted e(r)", "measured ||p(r)||",
                 "within"])
    report_rounds = [1, 2, 3, 5, 8, 12, 20, rounds]
    for r in report_rounds:
        measured = diameters.get((0, r))
        if measured is None:
            continue
        predicted = schedule.e(r)
        table.add_row(r, predicted, measured, measured <= predicted)
    table.add_note(f"e(1) = 20E = {e1:.4g}; e(r+1) = alpha*e(r) + beta "
                   f"with alpha = {params.alpha:.4f}")
    return table


#: All experiments, for "run everything" entry points.
ALL_EXPERIMENTS = {
    "t01": t01_local_skew_vs_diameter,
    "t02": t02_intra_cluster_skew,
    "t03": t03_attack_gallery,
    "t04": t04_master_slave_compression,
    "t05": t05_failure_probability,
    "t06": t06_unanimous_rates,
    "t07": t07_ablation_c1,
    "t08": t08_overheads,
    "t09": t09_global_skew,
    "t10": t10_trigger_exclusion,
    "t11": t11_lw_vs_st,
    "t12": t12_convergence,
}


def run_all(quick: bool = True) -> list[Table]:
    """Run every experiment; returns the tables in order."""
    tables = []
    for name in sorted(ALL_EXPERIMENTS):
        fn = ALL_EXPERIMENTS[name]
        tables.append(fn(quick=quick))
    return tables
