"""Parallel scenario sweeps over grids of simulation cells.

Every table in the reproduction is a sweep: a grid of (topology,
parameters, fault placement, seed) cells, each an independent
deterministic simulation.  This module makes those sweeps
embarrassingly parallel without giving up determinism.

Design: picklable specs, not live objects
-----------------------------------------
A :class:`ScenarioSpec` describes one cell entirely by *value* — a
cell *kind* (see below), the cluster-graph constructor name and its
arguments, the :class:`~repro.core.params.Parameters`, plain
:class:`~repro.core.system.SystemConfig` keyword arguments, a fault
strategy *registry name* plus constructor arguments, and a seed.  No
simulator, node, lambda, or strategy instance crosses the process
boundary; the worker (:func:`run_cell`) rebuilds the whole system from
the spec, runs it, and returns only picklable measurements
(:class:`SweepCellResult`).  This is what lets one code path serve
both the in-process serial fallback and a ``multiprocessing`` pool.

Cell kinds
----------
``spec.kind`` names the worker routine in :data:`CELL_KINDS`:

``"ftgcs"`` (default)
    A full FTGCS deployment via
    :func:`~repro.harness.runner.run_scenario`; ``result`` is the
    :class:`~repro.core.system.RunResult`.
``"master_slave"``
    The tree-slaved baseline
    (:class:`~repro.baselines.master_slave.MasterSlaveSystem`);
    ``result`` is its :class:`~repro.analysis.sampling.SkewMaxima`.
``"gcs_single"``
    Plain fault-intolerant GCS
    (:class:`~repro.baselines.gcs_single.GcsSingleSystem`); ``result``
    is the ``(t, local_skew, global_skew)`` sample list.
``"srikanth_toueg"``
    A Srikanth–Toueg clique
    (:class:`~repro.baselines.srikanth_toueg.SrikanthTouegSystem`);
    ``result`` is the max observed skew.
``"failure_mc"``
    A Monte Carlo estimate of the cluster failure probability
    (Inequality (1)); ``result`` is the estimated probability.
``"trigger_fuzz"``
    The randomized Lemma 4.8 faithfulness check on perturbed trigger
    inputs; ``result`` is the violation count.
``"augment_counts"``
    Pure graph accounting: node/edge counts of the augmentation across
    fault budgets; no simulation at all.

Kind-specific knobs travel in ``spec.payload`` (a picklable dict);
:func:`register_cell_kind` adds custom kinds.  Custom kinds registered
outside this module are visible to pool workers only under the
``fork`` start method (the default used here when available).

In-worker collectors
--------------------
Post-hoc analysis accessors of a live system (pulse diameters, mode
unanimity, amortized round rates) cannot cross the process boundary,
so ``spec.collect`` names :data:`COLLECTORS` entries that run *inside*
the worker and return picklable data in ``SweepCellResult.extras``.

Seeding scheme
--------------
Cells with an explicit ``seed`` use it verbatim.  Cells with
``seed=None`` get a per-cell seed derived as
``derive_seed(base_seed, f"cell/{index}")`` — a BLAKE2b hash that is
stable across Python versions, processes, and the serial/parallel
split, and independent of how many other cells run.  Identical grids
therefore produce *bit-identical* per-cell results whether executed
serially, in a pool of any size, or cell-by-cell in isolation.

Cells that must share one serial RNG *stream* (the T5 Monte Carlo
reproduces a single ``random.Random(seed)`` consumed across the whole
grid) carry a ``skip`` payload entry: the worker fast-forwards a fresh
generator by that many draws, which is exact because every trial
consumes a statically known number of draws.

Result collection is ordered: ``results[i]`` always corresponds to
``specs[i]`` regardless of which worker finished first.  A raising
cell propagates its exception to the caller in both modes.
"""

from __future__ import annotations

import math
import multiprocessing
import os
import random
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Sequence

from repro.baselines.gcs_single import GcsSingleSystem
from repro.baselines.master_slave import MasterSlaveSystem
from repro.baselines.srikanth_toueg import SrikanthTouegSystem
from repro.core.params import Parameters
from repro.core.system import FtgcsSystem, RunResult, SystemConfig
from repro.core.triggers import evaluate
from repro.errors import ConfigError
from repro.faults.strategies import (
    ColludingEquivocatorStrategy,
    CrashStrategy,
    EquivocatorStrategy,
    FastClockStrategy,
    PullApartStrategy,
    RandomPulseStrategy,
    SilentStrategy,
)
from repro.harness.runner import run_scenario, steady_state_skews
from repro.sim.rng import derive_seed
from repro.topology.cluster_graph import ClusterGraph

#: Fault strategies addressable by name from a picklable spec.
STRATEGIES = {
    "silent": SilentStrategy,
    "crash": CrashStrategy,
    "random_pulse": RandomPulseStrategy,
    "fast_clock": FastClockStrategy,
    "equivocate": EquivocatorStrategy,
    "pull_apart": PullApartStrategy,
    "collusion": ColludingEquivocatorStrategy,
}


@dataclass(frozen=True)
class ScenarioSpec:
    """One sweep cell, described entirely by picklable values.

    Attributes
    ----------
    graph:
        Name of a :class:`~repro.topology.cluster_graph.ClusterGraph`
        classmethod constructor (``"line"``, ``"ring"``, ``"grid"``,
        ``"torus"``, ``"balanced_tree"``, ``"hypercube"``).  Kinds
        without a topology (``"failure_mc"``, ``"trigger_fuzz"``)
        leave it empty.
    graph_args:
        Positional arguments for that constructor.
    params:
        The full parameter set (dataclass; pickles by value).
    rounds:
        Rounds to run (see ``FtgcsSystem.run_rounds``).
    seed:
        Explicit master seed, or ``None`` to derive one per cell from
        the sweep's ``base_seed`` (see module docstring).
    strategy / strategy_args:
        Optional fault strategy registry name (see :data:`STRATEGIES`)
        and its constructor arguments; faults are placed everywhere via
        the standard ``run_scenario`` placement.
    faults_per_cluster:
        Override for the per-cluster fault count (default ``params.f``).
    config:
        Keyword arguments for
        :class:`~repro.core.system.SystemConfig`; values must be
        picklable (no strategy instances — use ``strategy``).
    key:
        Free-form cell coordinates (e.g. ``("D", 8)``), carried through
        to the result for labeling.
    collect_pulse_diameters:
        Also return the per-(cluster, round) pulse diameter table,
        computed in-worker (the system itself never crosses the
        process boundary).  Equivalent to ``"pulse_diameters"`` in
        ``collect``.
    kind:
        Worker routine name in :data:`CELL_KINDS` (module docstring).
    payload:
        Kind-specific picklable knobs (e.g. the master-slave ``jump``
        flag, the Monte Carlo ``trials``/``skip``).
    collect:
        Names of :data:`COLLECTORS` to run in-worker against the live
        system; results land in ``SweepCellResult.extras``.
    """

    graph: str = ""
    graph_args: tuple = ()
    params: Parameters | None = None
    rounds: int = 1
    seed: int | None = None
    strategy: str | None = None
    strategy_args: tuple = ()
    faults_per_cluster: int | None = None
    config: dict = field(default_factory=dict)
    key: tuple = ()
    collect_pulse_diameters: bool = False
    kind: str = "ftgcs"
    payload: dict = field(default_factory=dict)
    collect: tuple = ()


@dataclass
class SweepCellResult:
    """Measurements of one executed cell (picklable).

    ``result`` holds the kind's primary measurement — a
    :class:`~repro.core.system.RunResult` for ``"ftgcs"`` cells, the
    kind-specific value otherwise (module docstring).  ``extras`` maps
    collector names to their in-worker measurements.
    """

    key: tuple
    seed: int
    result: Any
    pulse_diameters: dict[tuple[int, int], float] | None = None
    extras: dict[str, Any] = field(default_factory=dict)

    def steady_state_skews(self, tail_fraction: float = 0.5
                           ) -> dict[str, float]:
        """Max skews over the last ``tail_fraction`` of samples.

        Only meaningful for cells whose ``result`` is a
        :class:`~repro.core.system.RunResult` recorded with a series.
        """
        if not isinstance(self.result, RunResult):
            raise ConfigError(
                f"cell {self.key!r} is not an ftgcs run; "
                f"steady_state_skews needs a RunResult")
        return steady_state_skews(self.result.series, tail_fraction)


# ----------------------------------------------------------------------
# In-worker collectors (ftgcs cells)
# ----------------------------------------------------------------------

def _collect_pulse_diameters(system: FtgcsSystem):
    return system.pulse_diameter_table()


def _collect_unanimity(system: FtgcsSystem):
    """Per-cluster, per-round (unanimous, gamma) of correct members."""
    return {cluster: system.cluster_unanimity(cluster)
            for cluster in range(system.cluster_graph.num_clusters)}


def _collect_amortized_rates(system: FtgcsSystem):
    """``(cluster, round, amortized_rate)`` for completed honest rounds.

    Records with an unfinished round (``t_end`` NaN) are dropped, as
    every rate-based experiment excludes them anyway.
    """
    rates = []
    for node in system.honest_nodes():
        for record in node.core.records:
            if not math.isnan(record.t_end):
                rates.append((node.cluster_id, record.round_index,
                              record.amortized_rate))
    return rates


#: Named in-worker measurements for ``ScenarioSpec.collect``.
COLLECTORS: dict[str, Callable[[FtgcsSystem], Any]] = {
    "pulse_diameters": _collect_pulse_diameters,
    "unanimity": _collect_unanimity,
    "amortized_rates": _collect_amortized_rates,
}


# ----------------------------------------------------------------------
# Cell kinds
# ----------------------------------------------------------------------

def _build_graph(spec: ScenarioSpec) -> ClusterGraph:
    if not spec.graph:
        raise ConfigError(f"cell kind {spec.kind!r} needs a graph")
    graph_factory = getattr(ClusterGraph, spec.graph, None)
    if graph_factory is None:
        raise ConfigError(f"unknown graph constructor: {spec.graph!r}")
    return graph_factory(*spec.graph_args)


def _require_params(spec: ScenarioSpec) -> Parameters:
    if spec.params is None:
        raise ConfigError("ScenarioSpec.params is required to run")
    return spec.params


def _run_ftgcs_cell(spec: ScenarioSpec) -> SweepCellResult:
    graph = _build_graph(spec)
    params = _require_params(spec)

    strategy_factory = None
    if spec.strategy is not None:
        cls = STRATEGIES.get(spec.strategy)
        if cls is None:
            raise ConfigError(
                f"unknown strategy {spec.strategy!r}; known: "
                f"{sorted(STRATEGIES)}")
        args = spec.strategy_args
        strategy_factory = lambda _node, _cls=cls, _args=args: _cls(*_args)

    config = SystemConfig(**spec.config) if spec.config else None
    scenario = run_scenario(
        graph, params, rounds=spec.rounds, seed=spec.seed,
        strategy_factory=strategy_factory,
        faults_per_cluster=spec.faults_per_cluster, config=config)

    extras = {}
    for name in spec.collect:
        collector = COLLECTORS.get(name)
        if collector is None:
            raise ConfigError(
                f"unknown collector {name!r}; known: {sorted(COLLECTORS)}")
        extras[name] = collector(scenario.system)
    pulses = extras.get("pulse_diameters")
    if pulses is None and spec.collect_pulse_diameters:
        pulses = scenario.system.pulse_diameter_table()
    return SweepCellResult(key=spec.key, seed=spec.seed,
                           result=scenario.result, pulse_diameters=pulses,
                           extras=extras)


def _run_master_slave_cell(spec: ScenarioSpec) -> SweepCellResult:
    """Tree-slaved baseline; ``result`` is the sampler's SkewMaxima."""
    graph = _build_graph(spec)
    params = _require_params(spec)
    payload = dict(spec.payload)
    rounds = payload.pop("rounds", spec.rounds)
    system = MasterSlaveSystem(graph, params, seed=spec.seed, **payload)
    maxima = system.run_rounds(rounds)
    return SweepCellResult(key=spec.key, seed=spec.seed, result=maxima)


def _run_gcs_single_cell(spec: ScenarioSpec) -> SweepCellResult:
    """Fault-intolerant GCS; ``result`` is the sample list."""
    graph = _build_graph(spec)
    payload = dict(spec.payload)
    gcs_params = payload.pop("params")
    until = payload.pop("until")
    system = GcsSingleSystem(graph, gcs_params, seed=spec.seed, **payload)
    samples = system.run(until=until)
    return SweepCellResult(key=spec.key, seed=spec.seed, result=samples)


def _run_srikanth_toueg_cell(spec: ScenarioSpec) -> SweepCellResult:
    """Srikanth–Toueg clique; ``result`` is the max observed skew."""
    payload = dict(spec.payload)
    st_params = payload.pop("params")
    rounds = payload.pop("rounds", spec.rounds)
    system = SrikanthTouegSystem(st_params, seed=spec.seed, **payload)
    skew = system.run(rounds=rounds)
    return SweepCellResult(key=spec.key, seed=spec.seed, result=skew)


#: ``(seed, draws_consumed) -> random.Random state`` — lets consecutive
#: ``failure_mc`` cells of one grid continue the shared stream instead
#: of fast-forwarding from scratch (serial and chunked-pool runs then
#: consume exactly the original draw count; a pool worker landing
#: mid-grid pays one fast-forward).  A handful of ~2.5 kB states.
_MC_STREAM_STATES: dict[tuple[int, int], tuple] = {}


def _run_failure_mc_cell(spec: ScenarioSpec) -> SweepCellResult:
    """Monte Carlo cluster-failure estimate (Inequality (1)).

    ``payload``: ``f``, ``p``, ``trials``, and ``skip`` — the number
    of draws consumed by *earlier* grid cells sharing the same serial
    stream.  Fast-forwarding by ``skip`` reproduces the historical
    single-``random.Random`` implementation bit-for-bit while every
    cell still runs independently (each trial consumes exactly
    ``3f + 1`` draws, so skip counts are static).
    """
    payload = spec.payload
    f = payload["f"]
    p = payload["p"]
    trials = payload["trials"]
    skip = payload.get("skip", 0)
    rng = random.Random(spec.seed)
    state = _MC_STREAM_STATES.get((spec.seed, skip)) if skip else None
    if state is not None:
        rng.setstate(state)
    else:
        for _ in range(skip):
            rng.random()
    k = 3 * f + 1
    failures = 0
    for _ in range(trials):
        faulty = sum(1 for _ in range(k) if rng.random() < p)
        if faulty > f:
            failures += 1
    if len(_MC_STREAM_STATES) > 64:
        _MC_STREAM_STATES.clear()
    _MC_STREAM_STATES[(spec.seed, skip + trials * k)] = rng.getstate()
    return SweepCellResult(key=spec.key, seed=spec.seed,
                           result=failures / trials)


def _run_trigger_fuzz_cell(spec: ScenarioSpec) -> SweepCellResult:
    """Randomized Lemma 4.8 faithfulness check; ``result`` is the
    violation count.

    ``payload``: ``trials``, ``kappa``, ``slack``, and ``err`` (the
    ``2E`` estimate-perturbation radius).  Conditions evaluated on
    true cluster clocks must imply the matching trigger on estimates
    perturbed by up to ``err``.
    """
    payload = spec.payload
    trials = payload["trials"]
    kappa = payload["kappa"]
    slack = payload["slack"]
    err = payload["err"]
    rng = random.Random(spec.seed)
    violations = 0
    for _ in range(trials):
        own_true = rng.uniform(-5 * kappa, 5 * kappa)
        neighbors = {i: rng.uniform(-5 * kappa, 5 * kappa)
                     for i in range(rng.randint(1, 4))}
        cond = evaluate(own_true, neighbors, kappa, 0.0)
        own_seen = own_true + rng.uniform(-err / 2, err / 2)
        seen = {i: v + rng.uniform(-err, err)
                for i, v in neighbors.items()}
        trig = evaluate(own_seen, seen, kappa, slack)
        if cond.fast and not trig.fast:
            violations += 1
        if cond.slow and not trig.slow:
            violations += 1
    return SweepCellResult(key=spec.key, seed=spec.seed, result=violations)


def _run_augment_counts_cell(spec: ScenarioSpec) -> SweepCellResult:
    """Node/edge accounting of the augmentation (no simulation).

    ``payload``: ``fault_counts`` (default ``(0, 1, 2, 3)``).
    ``result``: the graph's name and base counts plus
    ``(f, k, nodes, edges)`` per fault budget.
    """
    graph = _build_graph(spec)
    rows = []
    for f in spec.payload.get("fault_counts", (0, 1, 2, 3)):
        k = 3 * f + 1
        aug = graph.augment(k)
        rows.append((f, k, aug.num_nodes, aug.num_edges))
    return SweepCellResult(
        key=spec.key, seed=spec.seed,
        result={"name": graph.name, "clusters": graph.num_clusters,
                "edges": graph.num_edges, "rows": rows})


#: Worker routines addressable by ``ScenarioSpec.kind``.
CELL_KINDS: dict[str, Callable[[ScenarioSpec], SweepCellResult]] = {
    "ftgcs": _run_ftgcs_cell,
    "master_slave": _run_master_slave_cell,
    "gcs_single": _run_gcs_single_cell,
    "srikanth_toueg": _run_srikanth_toueg_cell,
    "failure_mc": _run_failure_mc_cell,
    "trigger_fuzz": _run_trigger_fuzz_cell,
    "augment_counts": _run_augment_counts_cell,
}


def register_cell_kind(name: str,
                       runner: Callable[[ScenarioSpec], SweepCellResult],
                       ) -> None:
    """Register a custom cell kind (see the module docstring caveat
    about non-``fork`` start methods)."""
    if name in CELL_KINDS:
        raise ConfigError(f"cell kind {name!r} already registered")
    CELL_KINDS[name] = runner


def run_cell(spec: ScenarioSpec) -> SweepCellResult:
    """Build, run, and measure one cell (the pool worker).

    Module-level (hence picklable by reference) and usable directly for
    one-off cells.  ``spec.seed`` must be resolved (not ``None``) —
    :meth:`SweepRunner.run` does this before dispatch so serial and
    parallel executions see identical seeds.
    """
    if spec.seed is None:
        raise ConfigError("run_cell needs a resolved seed "
                          "(use SweepRunner.run for derived seeds)")
    runner = CELL_KINDS.get(spec.kind)
    if runner is None:
        raise ConfigError(f"unknown cell kind {spec.kind!r}; known: "
                          f"{sorted(CELL_KINDS)}")
    return runner(spec)


def _coerce_processes(value, source: str) -> int:
    try:
        count = int(value)
    except (TypeError, ValueError):
        raise ConfigError(f"{source} must be an integer: {value!r}")
    return max(1, count)


def default_processes(processes: int | None = None,
                      fallback: int = 1) -> int:
    """Resolve a worker count: explicit > ``REPRO_SWEEP_PROCESSES`` >
    ``fallback``.

    The single resolution path for every worker-count knob in the
    library (experiment registry, CLI, benchmarks, microbenchmarks).
    The stock fallback is serial so unit tests and small sweeps never
    pay pool startup; callers that should scale with the machine pass
    e.g. ``fallback=min(4, os.cpu_count() or 1)``.
    """
    if processes is not None:
        return _coerce_processes(processes, "processes")
    env = os.environ.get("REPRO_SWEEP_PROCESSES")
    if env:
        return _coerce_processes(env, "REPRO_SWEEP_PROCESSES")
    return _coerce_processes(fallback, "fallback")


class SweepRunner:
    """Fan a grid of :class:`ScenarioSpec` cells across worker processes.

    Parameters
    ----------
    processes:
        Pool size; ``1`` (the default) runs every cell in-process with
        no ``multiprocessing`` involvement at all — the fallback for
        platforms without ``fork`` and the determinism reference for
        tests.
    chunksize:
        Cells handed to a worker per dispatch; raise for large grids of
        tiny cells.
    """

    def __init__(self, processes: int | None = None,
                 chunksize: int = 1) -> None:
        self.processes = default_processes(processes)
        if chunksize < 1:
            raise ConfigError(f"chunksize must be >= 1: {chunksize!r}")
        self.chunksize = chunksize

    def run(self, specs: Sequence[ScenarioSpec],
            base_seed: int = 0) -> list[SweepCellResult]:
        """Execute every cell; ``results[i]`` matches ``specs[i]``.

        Cells with ``seed=None`` get deterministic per-cell seeds
        derived from ``base_seed`` and their grid index *before*
        dispatch, so the serial and parallel paths are bit-identical.
        Worker exceptions propagate to the caller.
        """
        resolved = [
            spec if spec.seed is not None else replace(
                spec, seed=derive_seed(base_seed, f"cell/{index}"))
            for index, spec in enumerate(specs)]
        if self.processes <= 1 or len(resolved) <= 1:
            return [run_cell(spec) for spec in resolved]
        methods = multiprocessing.get_all_start_methods()
        method = "fork" if "fork" in methods else None
        ctx = multiprocessing.get_context(method)
        workers = min(self.processes, len(resolved))
        with ctx.Pool(processes=workers) as pool:
            return pool.map(run_cell, resolved, chunksize=self.chunksize)


__all__ = [
    "CELL_KINDS",
    "COLLECTORS",
    "STRATEGIES",
    "ScenarioSpec",
    "SweepCellResult",
    "SweepRunner",
    "default_processes",
    "register_cell_kind",
    "run_cell",
    "steady_state_skews",
]
