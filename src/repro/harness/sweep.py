"""Parallel scenario sweeps over grids of simulation cells.

Every table in the reproduction is a sweep: a grid of (topology,
parameters, fault placement, seed) cells, each an independent
deterministic simulation.  This module makes those sweeps
embarrassingly parallel without giving up determinism.

Design: picklable specs, not live objects
-----------------------------------------
A :class:`ScenarioSpec` describes one cell entirely by *value* — the
cluster-graph constructor name and its arguments, the
:class:`~repro.core.params.Parameters`, plain
:class:`~repro.core.system.SystemConfig` keyword arguments, a fault
strategy *registry name* plus constructor arguments, and a seed.  No
simulator, node, lambda, or strategy instance crosses the process
boundary; the worker (:func:`run_cell`) rebuilds the whole system from
the spec, runs it, and returns only picklable measurements
(:class:`SweepCellResult` holding the
:class:`~repro.core.system.RunResult` and, on request, the pulse
diameter table).  This is what lets one code path serve both the
in-process serial fallback and a ``multiprocessing`` pool.

Seeding scheme
--------------
Cells with an explicit ``seed`` use it verbatim.  Cells with
``seed=None`` get a per-cell seed derived as
``derive_seed(base_seed, f"cell/{index}")`` — a BLAKE2b hash that is
stable across Python versions, processes, and the serial/parallel
split, and independent of how many other cells run.  Identical grids
therefore produce *bit-identical* per-cell results whether executed
serially, in a pool of any size, or cell-by-cell in isolation.

Result collection is ordered: ``results[i]`` always corresponds to
``specs[i]`` regardless of which worker finished first.  A raising
cell propagates its exception to the caller in both modes.
"""

from __future__ import annotations

import multiprocessing
import os
from dataclasses import dataclass, field, replace
from typing import Sequence

from repro.core.params import Parameters
from repro.core.system import RunResult, SystemConfig
from repro.errors import ConfigError
from repro.faults.strategies import (
    ColludingEquivocatorStrategy,
    CrashStrategy,
    EquivocatorStrategy,
    FastClockStrategy,
    PullApartStrategy,
    RandomPulseStrategy,
    SilentStrategy,
)
from repro.harness.runner import run_scenario, steady_state_skews
from repro.sim.rng import derive_seed
from repro.topology.cluster_graph import ClusterGraph

#: Fault strategies addressable by name from a picklable spec.
STRATEGIES = {
    "silent": SilentStrategy,
    "crash": CrashStrategy,
    "random_pulse": RandomPulseStrategy,
    "fast_clock": FastClockStrategy,
    "equivocate": EquivocatorStrategy,
    "pull_apart": PullApartStrategy,
    "collusion": ColludingEquivocatorStrategy,
}


@dataclass(frozen=True)
class ScenarioSpec:
    """One sweep cell, described entirely by picklable values.

    Attributes
    ----------
    graph:
        Name of a :class:`~repro.topology.cluster_graph.ClusterGraph`
        classmethod constructor (``"line"``, ``"ring"``, ``"grid"``,
        ``"torus"``, ``"balanced_tree"``, ``"hypercube"``).
    graph_args:
        Positional arguments for that constructor.
    params:
        The full parameter set (dataclass; pickles by value).
    rounds:
        Rounds to run (see ``FtgcsSystem.run_rounds``).
    seed:
        Explicit master seed, or ``None`` to derive one per cell from
        the sweep's ``base_seed`` (see module docstring).
    strategy / strategy_args:
        Optional fault strategy registry name (see :data:`STRATEGIES`)
        and its constructor arguments; faults are placed everywhere via
        the standard ``run_scenario`` placement.
    faults_per_cluster:
        Override for the per-cluster fault count (default ``params.f``).
    config:
        Keyword arguments for
        :class:`~repro.core.system.SystemConfig`; values must be
        picklable (no strategy instances — use ``strategy``).
    key:
        Free-form cell coordinates (e.g. ``("D", 8)``), carried through
        to the result for labeling.
    collect_pulse_diameters:
        Also return the per-(cluster, round) pulse diameter table,
        computed in-worker (the system itself never crosses the
        process boundary).
    """

    graph: str
    graph_args: tuple = ()
    params: Parameters | None = None
    rounds: int = 1
    seed: int | None = None
    strategy: str | None = None
    strategy_args: tuple = ()
    faults_per_cluster: int | None = None
    config: dict = field(default_factory=dict)
    key: tuple = ()
    collect_pulse_diameters: bool = False


@dataclass
class SweepCellResult:
    """Measurements of one executed cell (picklable)."""

    key: tuple
    seed: int
    result: RunResult
    pulse_diameters: dict[tuple[int, int], float] | None = None

    def steady_state_skews(self, tail_fraction: float = 0.5
                           ) -> dict[str, float]:
        """Max skews over the last ``tail_fraction`` of samples."""
        return steady_state_skews(self.result.series, tail_fraction)


def run_cell(spec: ScenarioSpec) -> SweepCellResult:
    """Build, run, and measure one cell (the pool worker).

    Module-level (hence picklable by reference) and usable directly for
    one-off cells.  ``spec.seed`` must be resolved (not ``None``) —
    :meth:`SweepRunner.run` does this before dispatch so serial and
    parallel executions see identical seeds.
    """
    if spec.seed is None:
        raise ConfigError("run_cell needs a resolved seed "
                          "(use SweepRunner.run for derived seeds)")
    graph_factory = getattr(ClusterGraph, spec.graph, None)
    if graph_factory is None:
        raise ConfigError(f"unknown graph constructor: {spec.graph!r}")
    graph = graph_factory(*spec.graph_args)
    params = spec.params
    if params is None:
        raise ConfigError("ScenarioSpec.params is required to run")

    strategy_factory = None
    if spec.strategy is not None:
        cls = STRATEGIES.get(spec.strategy)
        if cls is None:
            raise ConfigError(
                f"unknown strategy {spec.strategy!r}; known: "
                f"{sorted(STRATEGIES)}")
        args = spec.strategy_args
        strategy_factory = lambda _node, _cls=cls, _args=args: _cls(*_args)

    config = SystemConfig(**spec.config) if spec.config else None
    scenario = run_scenario(
        graph, params, rounds=spec.rounds, seed=spec.seed,
        strategy_factory=strategy_factory,
        faults_per_cluster=spec.faults_per_cluster, config=config)
    pulses = (scenario.system.pulse_diameter_table()
              if spec.collect_pulse_diameters else None)
    return SweepCellResult(key=spec.key, seed=spec.seed,
                           result=scenario.result, pulse_diameters=pulses)


def _coerce_processes(value, source: str) -> int:
    try:
        count = int(value)
    except (TypeError, ValueError):
        raise ConfigError(f"{source} must be an integer: {value!r}")
    return max(1, count)


def default_processes(processes: int | None = None,
                      fallback: int = 1) -> int:
    """Resolve a worker count: explicit > ``REPRO_SWEEP_PROCESSES`` >
    ``fallback``.

    The single resolution path for every worker-count knob in the
    library (CLI, benchmarks, microbenchmarks).  The stock fallback is
    serial so unit tests and small sweeps never pay pool startup;
    callers that should scale with the machine pass e.g.
    ``fallback=min(4, os.cpu_count() or 1)``.
    """
    if processes is not None:
        return _coerce_processes(processes, "processes")
    env = os.environ.get("REPRO_SWEEP_PROCESSES")
    if env:
        return _coerce_processes(env, "REPRO_SWEEP_PROCESSES")
    return _coerce_processes(fallback, "fallback")


class SweepRunner:
    """Fan a grid of :class:`ScenarioSpec` cells across worker processes.

    Parameters
    ----------
    processes:
        Pool size; ``1`` (the default) runs every cell in-process with
        no ``multiprocessing`` involvement at all — the fallback for
        platforms without ``fork`` and the determinism reference for
        tests.
    chunksize:
        Cells handed to a worker per dispatch; raise for large grids of
        tiny cells.
    """

    def __init__(self, processes: int | None = None,
                 chunksize: int = 1) -> None:
        self.processes = default_processes(processes)
        if chunksize < 1:
            raise ConfigError(f"chunksize must be >= 1: {chunksize!r}")
        self.chunksize = chunksize

    def run(self, specs: Sequence[ScenarioSpec],
            base_seed: int = 0) -> list[SweepCellResult]:
        """Execute every cell; ``results[i]`` matches ``specs[i]``.

        Cells with ``seed=None`` get deterministic per-cell seeds
        derived from ``base_seed`` and their grid index *before*
        dispatch, so the serial and parallel paths are bit-identical.
        Worker exceptions propagate to the caller.
        """
        resolved = [
            spec if spec.seed is not None else replace(
                spec, seed=derive_seed(base_seed, f"cell/{index}"))
            for index, spec in enumerate(specs)]
        if self.processes <= 1 or len(resolved) <= 1:
            return [run_cell(spec) for spec in resolved]
        methods = multiprocessing.get_all_start_methods()
        method = "fork" if "fork" in methods else None
        ctx = multiprocessing.get_context(method)
        workers = min(self.processes, len(resolved))
        with ctx.Pool(processes=workers) as pool:
            return pool.map(run_cell, resolved, chunksize=self.chunksize)


__all__ = [
    "STRATEGIES",
    "ScenarioSpec",
    "SweepCellResult",
    "SweepRunner",
    "default_processes",
    "run_cell",
    "steady_state_skews",
]
