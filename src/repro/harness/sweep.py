"""Parallel scenario sweeps over grids of simulation cells.

Every table in the reproduction is a sweep: a grid of (topology,
parameters, fault placement, seed) cells, each an independent
deterministic simulation.  This module makes those sweeps
embarrassingly parallel without giving up determinism.

Design: picklable specs, not live objects
-----------------------------------------
A :class:`ScenarioSpec` describes one cell entirely by *value* — a
cell *kind* (see below), the cluster-graph constructor name and its
arguments, the :class:`~repro.core.params.Parameters`, plain
:class:`~repro.core.system.SystemConfig` keyword arguments, a fault
strategy *registry name* plus constructor arguments, and a seed.  No
simulator, node, lambda, or strategy instance crosses the process
boundary; the worker (:func:`run_cell`) rebuilds the whole system from
the spec, runs it, and returns only picklable measurements
(:class:`SweepCellResult`).  This is what lets one code path serve
both the in-process serial fallback and a ``multiprocessing`` pool.

Cell kinds
----------
``spec.kind`` names the worker routine in :data:`CELL_KINDS`:

``"protocol"`` (default)
    A full synchronization run through the unified
    :class:`~repro.core.protocol.SystemBuilder` path: ``spec.protocol``
    names any registered :class:`~repro.core.protocol.SyncProtocol`
    (``ftgcs`` — the default — ``lynch_welch``, ``master_slave``,
    ``gcs_single``, ``srikanth_toueg``, or a custom registration), and
    ``spec.schedule``/``spec.schedule_args`` optionally select a
    :data:`~repro.topology.schedule.SCHEDULES` topology schedule for
    dynamic-network runs.  ``result`` is always a
    :class:`~repro.core.protocol.ProtocolRunResult` (the protocol's
    native result rides in ``.detail``).
``"failure_mc"``
    A Monte Carlo estimate of the cluster failure probability
    (Inequality (1)); ``result`` is the estimated probability.
``"trigger_fuzz"``
    The randomized Lemma 4.8 faithfulness check on perturbed trigger
    inputs; ``result`` is the violation count.
``"augment_counts"``
    Pure graph accounting: node/edge counts of the augmentation across
    fault budgets; no simulation at all.

The historical per-algorithm kinds (``"ftgcs"``, ``"master_slave"``,
``"gcs_single"``, ``"srikanth_toueg"``) remain registered as thin
aliases that forward to the ``"protocol"`` runner with the matching
protocol name; they accept the same payloads and return the unified
result shape.

Kind-specific knobs travel in ``spec.payload`` (a picklable dict);
:func:`register_cell_kind` adds custom kinds.  Custom kinds registered
outside this module are visible to pool workers only under the
``fork`` start method (the default used here when available).

In-worker collectors
--------------------
Post-hoc analysis accessors of a live system (pulse diameters, mode
unanimity, amortized round rates) cannot cross the process boundary,
so ``spec.collect`` names :data:`COLLECTORS` entries that run *inside*
the worker and return picklable data in ``SweepCellResult.extras``.

Seeding scheme
--------------
Cells with an explicit ``seed`` use it verbatim.  Cells with
``seed=None`` get a per-cell seed derived as
``derive_seed(base_seed, f"cell/{index}")`` — a BLAKE2b hash that is
stable across Python versions, processes, and the serial/parallel
split, and independent of how many other cells run.  Identical grids
therefore produce *bit-identical* per-cell results whether executed
serially, in a pool of any size, or cell-by-cell in isolation.

Cells that must share one serial RNG *stream* (the T5 Monte Carlo
reproduces a single ``random.Random(seed)`` consumed across the whole
grid) carry a ``skip`` payload entry: the worker fast-forwards a fresh
generator by that many draws, which is exact because every trial
consumes a statically known number of draws.

Result collection is ordered: ``results[i]`` always corresponds to
``specs[i]`` regardless of which worker finished first.  A raising
cell propagates its exception to the caller in both modes.
"""

from __future__ import annotations

import math
import multiprocessing
import os
import random
import time
from dataclasses import dataclass, field, fields, replace
from typing import Any, Callable, Sequence

from repro.core.params import Parameters
from repro.core.protocol import (
    ProtocolRunResult,
    SystemBuilder,
    get_protocol,
)
from repro.core.system import FtgcsSystem, RunResult
from repro.core.triggers import evaluate
from repro.errors import ConfigError
from repro.faults.strategies import STRATEGIES
from repro.harness import serialize
from repro.harness.runner import steady_state_skews
from repro.sim.rng import derive_seed
from repro.topology.cluster_graph import ClusterGraph
from repro.topology.schedule import build_schedule


@dataclass(frozen=True)
class ScenarioSpec:
    """One sweep cell, described entirely by picklable values.

    Attributes
    ----------
    graph:
        Name of a :class:`~repro.topology.cluster_graph.ClusterGraph`
        classmethod constructor (``"line"``, ``"ring"``, ``"grid"``,
        ``"torus"``, ``"balanced_tree"``, ``"hypercube"``).  Kinds
        without a topology (``"failure_mc"``, ``"trigger_fuzz"``)
        leave it empty.
    graph_args:
        Positional arguments for that constructor.
    params:
        The full parameter set (dataclass; pickles by value).
    rounds:
        Rounds to run (see ``FtgcsSystem.run_rounds``).
    seed:
        Explicit master seed, or ``None`` to derive one per cell from
        the sweep's ``base_seed`` (see module docstring).
    strategy / strategy_args:
        Optional fault strategy registry name (see :data:`STRATEGIES`)
        and its constructor arguments; faults are placed everywhere via
        the standard ``run_scenario`` placement.
    faults_per_cluster:
        Override for the per-cluster fault count (default ``params.f``).
    config:
        Keyword arguments for
        :class:`~repro.core.system.SystemConfig`; values must be
        picklable (no strategy instances — use ``strategy``).
    key:
        Free-form cell coordinates (e.g. ``("D", 8)``), carried through
        to the result for labeling.
    collect_pulse_diameters:
        Also return the per-(cluster, round) pulse diameter table,
        computed in-worker (the system itself never crosses the
        process boundary).  Equivalent to ``"pulse_diameters"`` in
        ``collect``.
    kind:
        Worker routine name in :data:`CELL_KINDS` (module docstring).
    protocol:
        For ``"protocol"`` cells: the registered
        :class:`~repro.core.protocol.SyncProtocol` name (``None``
        means ``"ftgcs"``).
    schedule / schedule_args:
        For ``"protocol"`` cells: a
        :data:`~repro.topology.schedule.SCHEDULES` name plus factory
        kwargs, turning the (static) ``graph`` into a time-varying
        topology.  ``"static"`` (the default) is the trivial schedule.
    first_contact:
        For ``"protocol"`` cells: enable first-contact estimator
        bring-up (``SystemBuilder.first_contact``); the protocol must
        declare ``supports_first_contact``.
    loss:
        For ``"protocol"`` cells: a message-loss spec
        (``{"kind": "bernoulli"|"burst", ...}``, see
        :func:`repro.net.loss.build_loss_model`) attached to the
        network via ``SystemBuilder.lossy``.  Empty dict: no loss
        model at all (bit-identical to the historical path).
    engine:
        For ``"protocol"`` cells: the execution backend
        (:data:`repro.core.protocol.ENGINES` — ``"event"``, the
        default, or ``"vectorized"`` for protocols with a
        struct-of-arrays round model).  Part of the spec content, so
        the service's content-addressed result cache keys the two
        engines' results separately.
    timing:
        For ``"protocol"`` cells: also measure the run's wall-clock
        time in-worker; lands in ``extras["timing"]`` as
        ``{"wall_seconds": ...}`` (plus ``rounds_per_second`` when the
        result reports its round count).  Opt-in because wall-clock
        readings are *not* deterministic — determinism checks must
        ignore them (the simulation results themselves stay
        bit-reproducible).
    payload:
        Kind- or protocol-specific picklable knobs (e.g. the
        master-slave ``jump`` flag, the Monte Carlo
        ``trials``/``skip``).
    collect:
        Names of :data:`COLLECTORS` to run in-worker against the live
        system; results land in ``SweepCellResult.extras``.
    """

    graph: str = ""
    graph_args: tuple = ()
    params: Parameters | None = None
    rounds: int = 1
    seed: int | None = None
    strategy: str | None = None
    strategy_args: tuple = ()
    faults_per_cluster: int | None = None
    config: dict = field(default_factory=dict)
    key: tuple = ()
    collect_pulse_diameters: bool = False
    kind: str = "protocol"
    protocol: str | None = None
    schedule: str = "static"
    schedule_args: dict = field(default_factory=dict)
    first_contact: bool = False
    loss: dict = field(default_factory=dict)
    engine: str = "event"
    timing: bool = False
    payload: dict = field(default_factory=dict)
    collect: tuple = ()
    #: Unified adversary spec ``{"name": ..., **kwargs}`` (see
    #: :mod:`repro.faults.adversary`); empty means none.  Mutually
    #: exclusive with the legacy ``strategy`` spelling.
    adversary: dict = field(default_factory=dict)

    #: Spec fields that are tuples in the dataclass but commonly arrive
    #: as lists from hand-authored JSON/YAML (scenario library files,
    #: ``POST /jobs`` bodies); :meth:`from_dict` coerces them.
    _TUPLE_FIELDS = ("graph_args", "strategy_args", "key", "collect")
    #: Fields the canonical codec omits when falsy, so specs that never
    #: used them keep their historical encodings (and ``spec_hash``)
    #: bit-identical across the field's introduction.
    _SERIALIZE_OMIT_EMPTY = ("adversary",)

    def to_dict(self) -> dict:
        """JSON-safe plain-data form of the spec.

        Every field is encoded with the canonical tagged codec of
        :mod:`repro.harness.serialize` (tuples, dataclass parameter
        sets, and non-finite floats all survive), so the result can go
        through ``json.dumps``/``json.loads`` and :meth:`from_dict`
        and come back *bit-identical* — the round trip the simulation
        service relies on.
        """
        return {f.name: serialize.encode(getattr(self, f.name))
                for f in fields(self)}

    @classmethod
    def from_dict(cls, data: dict) -> "ScenarioSpec":
        """Rebuild a spec from :meth:`to_dict` output (or hand-written
        plain data: list-valued tuple fields are coerced, unknown keys
        rejected by name)."""
        if not isinstance(data, dict):
            raise ConfigError(
                f"ScenarioSpec.from_dict needs a dict: {data!r}")
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ConfigError(
                f"unknown ScenarioSpec field(s) {unknown}; known: "
                f"{sorted(known)}")
        decoded = {key: serialize.decode(value)
                   for key, value in data.items()}
        for name in cls._TUPLE_FIELDS:
            value = decoded.get(name)
            if isinstance(value, list):
                decoded[name] = tuple(value)
        params = decoded.get("params")
        if params is not None and not isinstance(params, Parameters):
            raise ConfigError(
                f"spec params must decode to Parameters, got "
                f"{type(params).__name__}")
        return cls(**decoded)


def spec_hash(spec: ScenarioSpec) -> str:
    """Canonical BLAKE2b content hash of a spec — the result-cache key.

    Computed over the canonical JSON of the *whole* spec (sorted keys,
    tagged values), so it is stable across processes and Python
    versions, and any field change — including the resolved seed —
    changes the key.  Specs must have a resolved (non-``None``) seed:
    an unresolved spec does not name one deterministic simulation, so
    hashing it would alias distinct cells.
    """
    if spec.seed is None:
        raise ConfigError(
            "spec_hash needs a resolved seed (use resolve_cell_seeds "
            "or SweepRunner.run's derivation first)")
    return serialize.content_hash(spec)


def resolve_cell_seeds(specs: Sequence[ScenarioSpec],
                       base_seed: int = 0) -> list[ScenarioSpec]:
    """Resolve ``seed=None`` cells to their deterministic per-cell
    seeds — exactly the derivation :meth:`SweepRunner.run` applies
    before dispatch (``derive_seed(base_seed, f"cell/{index}")``).

    Exposed so cache layers can compute content hashes for a grid
    *without* running it and be certain the hashes match what an
    actual sweep of the same grid would produce.
    """
    return [
        spec if spec.seed is not None else replace(
            spec, seed=derive_seed(base_seed, f"cell/{index}"))
        for index, spec in enumerate(specs)]


@dataclass
class SweepCellResult:
    """Measurements of one executed cell (picklable).

    ``result`` holds the kind's primary measurement — a
    :class:`~repro.core.protocol.ProtocolRunResult` for ``"protocol"``
    cells, the kind-specific value otherwise (module docstring).
    ``extras`` maps collector names to their in-worker measurements.
    """

    key: tuple
    seed: int
    result: Any
    pulse_diameters: dict[tuple[int, int], float] | None = None
    extras: dict[str, Any] = field(default_factory=dict)

    def steady_state_skews(self, tail_fraction: float = 0.5
                           ) -> dict[str, float]:
        """Max skews over the last ``tail_fraction`` of samples.

        Only meaningful for FTGCS-family cells, whose series is a
        :class:`~repro.analysis.metrics.SkewSnapshot` list (carried by
        a :class:`~repro.core.protocol.ProtocolRunResult` whose
        ``detail`` is a :class:`~repro.core.system.RunResult`, or by a
        bare ``RunResult`` from direct ``run_scenario`` use).
        """
        result = self.result
        if isinstance(result, ProtocolRunResult):
            result = result.detail
        if not isinstance(result, RunResult):
            raise ConfigError(
                f"cell {self.key!r} is not an FTGCS-family run; "
                f"steady_state_skews needs a RunResult")
        return steady_state_skews(result.series, tail_fraction)


# Both sides of the service boundary: specs travel in job submissions,
# cell results in the content-addressed store.
serialize.register_serializable(ScenarioSpec)
serialize.register_serializable(SweepCellResult)


# ----------------------------------------------------------------------
# In-worker collectors (ftgcs cells)
# ----------------------------------------------------------------------

def _collect_pulse_diameters(system: FtgcsSystem):
    return system.pulse_diameter_table()


def _collect_unanimity(system: FtgcsSystem):
    """Per-cluster, per-round (unanimous, gamma) of correct members."""
    return {cluster: system.cluster_unanimity(cluster)
            for cluster in range(system.cluster_graph.num_clusters)}


def _collect_amortized_rates(system: FtgcsSystem):
    """``(cluster, round, amortized_rate)`` for completed honest rounds.

    Records with an unfinished round (``t_end`` NaN) are dropped, as
    every rate-based experiment excludes them anyway.
    """
    rates = []
    for node in system.honest_nodes():
        for record in node.core.records:
            if not math.isnan(record.t_end):
                rates.append((node.cluster_id, record.round_index,
                              record.amortized_rate))
    return rates


#: Named in-worker measurements for ``ScenarioSpec.collect``.
COLLECTORS: dict[str, Callable[[FtgcsSystem], Any]] = {
    "pulse_diameters": _collect_pulse_diameters,
    "unanimity": _collect_unanimity,
    "amortized_rates": _collect_amortized_rates,
}


# ----------------------------------------------------------------------
# Cell kinds
# ----------------------------------------------------------------------

def _build_graph(spec: ScenarioSpec) -> ClusterGraph:
    if not spec.graph:
        raise ConfigError(f"cell kind {spec.kind!r} needs a graph")
    graph_factory = getattr(ClusterGraph, spec.graph, None)
    if graph_factory is None:
        raise ConfigError(f"unknown graph constructor: {spec.graph!r}")
    return graph_factory(*spec.graph_args)


def _run_protocol_cell(spec: ScenarioSpec) -> SweepCellResult:
    """The generic worker: any registered protocol through the
    :class:`~repro.core.protocol.SystemBuilder` path.

    ``result`` is always a
    :class:`~repro.core.protocol.ProtocolRunResult`; in-worker
    collectors run against the protocol's analysis system (FTGCS
    family only).
    """
    name = spec.protocol or "ftgcs"
    builder = SystemBuilder(get_protocol(name)())
    if spec.graph:
        graph = _build_graph(spec)
        if spec.schedule and spec.schedule != "static":
            builder.topology(build_schedule(spec.schedule, graph,
                                            **spec.schedule_args))
        else:
            builder.topology(graph)
    elif spec.schedule not in ("", "static"):
        raise ConfigError(
            f"topology schedule {spec.schedule!r} needs a graph")
    if spec.params is not None:
        builder.params(spec.params)
    builder.rounds(spec.rounds).seed(spec.seed)
    if spec.engine:
        builder.engine(spec.engine)
    if spec.first_contact:
        builder.first_contact(True)
    if spec.loss:
        builder.lossy(**spec.loss)
    if spec.strategy is not None:
        builder.faults(spec.strategy, *spec.strategy_args,
                       per_cluster=spec.faults_per_cluster)
    if spec.adversary:
        builder.adversary(**spec.adversary)
    if spec.config:
        builder.configure(**spec.config)
    if spec.payload:
        builder.payload(**spec.payload)

    system = builder.build()
    extras = {}
    if spec.timing:
        # repro: allow[wall-clock] -- opt-in timing extras; documented
        # as nondeterministic and excluded from determinism checks.
        start = time.perf_counter()
        result = system.run()
        # repro: allow[wall-clock] -- second leg of the same opt-in
        # timing measurement.
        wall = time.perf_counter() - start
        timing = {"wall_seconds": wall}
        detail = getattr(result, "detail", None)
        rounds = (detail.get("rounds")
                  if isinstance(detail, dict) else None)
        if rounds and wall > 0.0:
            timing["rounds_per_second"] = rounds / wall
        extras["timing"] = timing
    else:
        result = system.run()

    target = system.protocol.analysis_system()
    needs_target = spec.collect or spec.collect_pulse_diameters
    if needs_target and target is None:
        raise ConfigError(
            f"protocol {name!r} does not support in-worker collectors")
    for collector_name in spec.collect:
        collector = COLLECTORS.get(collector_name)
        if collector is None:
            raise ConfigError(
                f"unknown collector {collector_name!r}; known: "
                f"{sorted(COLLECTORS)}")
        extras[collector_name] = collector(target)
    pulses = extras.get("pulse_diameters")
    if pulses is None and spec.collect_pulse_diameters:
        pulses = target.pulse_diameter_table()
    return SweepCellResult(key=spec.key, seed=spec.seed, result=result,
                           pulse_diameters=pulses, extras=extras)


def _legacy_protocol_kind(name: str) -> Callable[[ScenarioSpec],
                                                 SweepCellResult]:
    """Back-compat alias: historical per-algorithm kinds forward to
    the generic ``"protocol"`` runner with the matching protocol."""

    def run(spec: ScenarioSpec) -> SweepCellResult:
        return _run_protocol_cell(
            replace(spec, kind="protocol", protocol=name))

    return run


#: ``(seed, draws_consumed) -> random.Random state`` — lets consecutive
#: ``failure_mc`` cells of one grid continue the shared stream instead
#: of fast-forwarding from scratch (serial and chunked-pool runs then
#: consume exactly the original draw count; a pool worker landing
#: mid-grid pays one fast-forward).  A handful of ~2.5 kB states.
_MC_STREAM_STATES: dict[tuple[int, int], tuple] = {}


def _run_failure_mc_cell(spec: ScenarioSpec) -> SweepCellResult:
    """Monte Carlo cluster-failure estimate (Inequality (1)).

    ``payload``: ``f``, ``p``, ``trials``, and ``skip`` — the number
    of draws consumed by *earlier* grid cells sharing the same serial
    stream.  Fast-forwarding by ``skip`` reproduces the historical
    single-``random.Random`` implementation bit-for-bit while every
    cell still runs independently (each trial consumes exactly
    ``3f + 1`` draws, so skip counts are static).
    """
    payload = spec.payload
    f = payload["f"]
    p = payload["p"]
    trials = payload["trials"]
    skip = payload.get("skip", 0)
    # repro: allow[raw-rng] -- reproduces the seed-era single
    # random.Random(seed) Monte Carlo stream bit-for-bit; cells
    # fast-forward it by static skip counts (module docstring).
    rng = random.Random(spec.seed)
    state = _MC_STREAM_STATES.get((spec.seed, skip)) if skip else None
    if state is not None:
        rng.setstate(state)
    else:
        for _ in range(skip):
            rng.random()
    k = 3 * f + 1
    failures = 0
    for _ in range(trials):
        faulty = sum(1 for _ in range(k) if rng.random() < p)
        if faulty > f:
            failures += 1
    if len(_MC_STREAM_STATES) > 64:
        _MC_STREAM_STATES.clear()
    _MC_STREAM_STATES[(spec.seed, skip + trials * k)] = rng.getstate()
    return SweepCellResult(key=spec.key, seed=spec.seed,
                           result=failures / trials)


def _run_trigger_fuzz_cell(spec: ScenarioSpec) -> SweepCellResult:
    """Randomized Lemma 4.8 faithfulness check; ``result`` is the
    violation count.

    ``payload``: ``trials``, ``kappa``, ``slack``, and ``err`` (the
    ``2E`` estimate-perturbation radius).  Conditions evaluated on
    true cluster clocks must imply the matching trigger on estimates
    perturbed by up to ``err``.
    """
    payload = spec.payload
    trials = payload["trials"]
    kappa = payload["kappa"]
    slack = payload["slack"]
    err = payload["err"]
    # repro: allow[raw-rng] -- reproduces the seed-era fuzz stream
    # bit-for-bit (same draw order as the original single-RNG t10).
    rng = random.Random(spec.seed)
    violations = 0
    for _ in range(trials):
        own_true = rng.uniform(-5 * kappa, 5 * kappa)
        neighbors = {i: rng.uniform(-5 * kappa, 5 * kappa)
                     for i in range(rng.randint(1, 4))}
        cond = evaluate(own_true, neighbors, kappa, 0.0)
        own_seen = own_true + rng.uniform(-err / 2, err / 2)
        seen = {i: v + rng.uniform(-err, err)
                for i, v in neighbors.items()}
        trig = evaluate(own_seen, seen, kappa, slack)
        if cond.fast and not trig.fast:
            violations += 1
        if cond.slow and not trig.slow:
            violations += 1
    return SweepCellResult(key=spec.key, seed=spec.seed, result=violations)


def _run_augment_counts_cell(spec: ScenarioSpec) -> SweepCellResult:
    """Node/edge accounting of the augmentation (no simulation).

    ``payload``: ``fault_counts`` (default ``(0, 1, 2, 3)``).
    ``result``: the graph's name and base counts plus
    ``(f, k, nodes, edges)`` per fault budget.
    """
    graph = _build_graph(spec)
    rows = []
    for f in spec.payload.get("fault_counts", (0, 1, 2, 3)):
        k = 3 * f + 1
        aug = graph.augment(k)
        rows.append((f, k, aug.num_nodes, aug.num_edges))
    return SweepCellResult(
        key=spec.key, seed=spec.seed,
        result={"name": graph.name, "clusters": graph.num_clusters,
                "edges": graph.num_edges, "rows": rows})


#: Worker routines addressable by ``ScenarioSpec.kind``.  The
#: per-algorithm names are aliases of ``"protocol"`` (module
#: docstring).
CELL_KINDS: dict[str, Callable[[ScenarioSpec], SweepCellResult]] = {
    "protocol": _run_protocol_cell,
    "ftgcs": _legacy_protocol_kind("ftgcs"),
    "master_slave": _legacy_protocol_kind("master_slave"),
    "gcs_single": _legacy_protocol_kind("gcs_single"),
    "srikanth_toueg": _legacy_protocol_kind("srikanth_toueg"),
    "failure_mc": _run_failure_mc_cell,
    "trigger_fuzz": _run_trigger_fuzz_cell,
    "augment_counts": _run_augment_counts_cell,
}


def register_cell_kind(name: str,
                       runner: Callable[[ScenarioSpec], SweepCellResult],
                       ) -> None:
    """Register a custom cell kind (see the module docstring caveat
    about non-``fork`` start methods)."""
    if name in CELL_KINDS:
        raise ConfigError(f"cell kind {name!r} already registered")
    CELL_KINDS[name] = runner


def run_cell(spec: ScenarioSpec) -> SweepCellResult:
    """Build, run, and measure one cell (the pool worker).

    Module-level (hence picklable by reference) and usable directly for
    one-off cells.  ``spec.seed`` must be resolved (not ``None``) —
    :meth:`SweepRunner.run` does this before dispatch so serial and
    parallel executions see identical seeds.
    """
    if spec.seed is None:
        raise ConfigError("run_cell needs a resolved seed "
                          "(use SweepRunner.run for derived seeds)")
    runner = CELL_KINDS.get(spec.kind)
    if runner is None:
        raise ConfigError(f"unknown cell kind {spec.kind!r}; known: "
                          f"{sorted(CELL_KINDS)}")
    return runner(spec)


def _coerce_processes(value, source: str) -> int:
    try:
        count = int(value)
    except (TypeError, ValueError):
        raise ConfigError(f"{source} must be an integer: {value!r}")
    return max(1, count)


def default_processes(processes: int | None = None,
                      fallback: int = 1) -> int:
    """Resolve a worker count: explicit > ``REPRO_SWEEP_PROCESSES`` >
    ``fallback``.

    The single resolution path for every worker-count knob in the
    library (experiment registry, CLI, benchmarks, microbenchmarks).
    The stock fallback is serial so unit tests and small sweeps never
    pay pool startup; callers that should scale with the machine pass
    e.g. ``fallback=min(4, os.cpu_count() or 1)``.
    """
    if processes is not None:
        return _coerce_processes(processes, "processes")
    env = os.environ.get("REPRO_SWEEP_PROCESSES")
    if env:
        return _coerce_processes(env, "REPRO_SWEEP_PROCESSES")
    return _coerce_processes(fallback, "fallback")


class SweepRunner:
    """Fan a grid of :class:`ScenarioSpec` cells across worker processes.

    Parameters
    ----------
    processes:
        Pool size; ``1`` (the default) runs every cell in-process with
        no ``multiprocessing`` involvement at all — the fallback for
        platforms without ``fork`` and the determinism reference for
        tests.
    chunksize:
        Cells handed to a worker per dispatch; raise for large grids of
        tiny cells.
    """

    def __init__(self, processes: int | None = None,
                 chunksize: int = 1) -> None:
        self.processes = default_processes(processes)
        if chunksize < 1:
            raise ConfigError(f"chunksize must be >= 1: {chunksize!r}")
        self.chunksize = chunksize

    def run(self, specs: Sequence[ScenarioSpec],
            base_seed: int = 0) -> list[SweepCellResult]:
        """Execute every cell; ``results[i]`` matches ``specs[i]``.

        Cells with ``seed=None`` get deterministic per-cell seeds
        derived from ``base_seed`` and their grid index *before*
        dispatch, so the serial and parallel paths are bit-identical.
        Worker exceptions propagate to the caller.
        """
        resolved = resolve_cell_seeds(specs, base_seed)
        if self.processes <= 1 or len(resolved) <= 1:
            return [run_cell(spec) for spec in resolved]
        methods = multiprocessing.get_all_start_methods()
        method = "fork" if "fork" in methods else None
        ctx = multiprocessing.get_context(method)
        workers = min(self.processes, len(resolved))
        with ctx.Pool(processes=workers) as pool:
            return pool.map(run_cell, resolved, chunksize=self.chunksize)


__all__ = [
    "CELL_KINDS",
    "COLLECTORS",
    "STRATEGIES",
    "ScenarioSpec",
    "SweepCellResult",
    "SweepRunner",
    "default_processes",
    "register_cell_kind",
    "resolve_cell_seeds",
    "run_cell",
    "spec_hash",
    "steady_state_skews",
]
