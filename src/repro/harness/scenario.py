"""Fluent, declarative scenario construction.

:class:`Scenario` is the builder half of the experiment API: it
composes topology × parameters × faults × schedule × measurements and
compiles to a picklable :class:`~repro.harness.sweep.ScenarioSpec`.
Builders are immutable — every method returns a *new* builder — so a
shared base fans out into grids without aliasing:

>>> from repro.harness import Scenario, SweepRunner, default_params
>>> base = (Scenario.line(3).params(default_params())
...         .rounds(20).attack("equivocate"))
>>> specs = [base.configure(init_jitter=j).tag("jitter", j).build()
...          for j in (0.01, 0.05, 0.1)]
>>> cells = SweepRunner().run(specs, base_seed=7)

Validation that only needs the spec itself (known cell kind, known
protocol, known topology schedule, known strategy, known collectors)
happens *eagerly* at :meth:`Scenario.build`, each failure naming the
known alternatives — a typo fails where the grid is written, not
inside a pool worker.  Topology and parameter validation happens in
the worker, where the system is actually constructed.
"""

from __future__ import annotations

from repro.core.params import Parameters
from repro.core.protocol import ENGINES, get_protocol, protocol_names
from repro.errors import ConfigError
from repro.harness import serialize
from repro.harness.sweep import (
    CELL_KINDS,
    COLLECTORS,
    STRATEGIES,
    ScenarioSpec,
)
from repro.net.loss import validate_loss_spec
from repro.topology.cluster_graph import ClusterGraph
from repro.topology.schedule import SCHEDULES, build_schedule

#: Built-in kinds that never read ``spec.schedule`` — pairing them
#: with ``.dynamic(...)`` is a misconfiguration caught at build time.
#: (Protocol cells are checked against the named protocol's
#: ``supports_dynamic_topology`` flag instead; custom kinds are given
#: the benefit of the doubt.)
_SCHEDULE_BLIND_KINDS = frozenset(
    {"failure_mc", "trigger_fuzz", "augment_counts"})

#: Legacy alias kinds that forward to the ``protocol`` runner.
_LEGACY_PROTOCOL_KINDS = frozenset(
    {"ftgcs", "master_slave", "gcs_single", "srikanth_toueg"})


class Scenario:
    """Immutable fluent builder for one sweep cell.

    Start from a topology classmethod (:meth:`line`, :meth:`ring`,
    :meth:`on`, …) or :meth:`of_kind` for non-graph cells, chain
    setters, and :meth:`build` the spec.
    """

    __slots__ = ("_fields",)

    def __init__(self, **fields) -> None:
        object.__setattr__(self, "_fields", fields)

    def __setattr__(self, name, value):  # pragma: no cover - guard
        raise AttributeError("Scenario is immutable; chain methods")

    def _with(self, **changes) -> "Scenario":
        merged = dict(self._fields)
        merged.update(changes)
        return Scenario(**merged)

    # ------------------------------------------------------------------
    # Topology / kind entry points
    # ------------------------------------------------------------------

    @classmethod
    def on(cls, graph: str, *graph_args) -> "Scenario":
        """Start from any ClusterGraph constructor name."""
        return cls(graph=graph, graph_args=tuple(graph_args))

    @classmethod
    def line(cls, n: int) -> "Scenario":
        return cls.on("line", n)

    @classmethod
    def ring(cls, n: int) -> "Scenario":
        return cls.on("ring", n)

    @classmethod
    def grid_graph(cls, rows: int, cols: int) -> "Scenario":
        return cls.on("grid", rows, cols)

    @classmethod
    def of_kind(cls, kind: str) -> "Scenario":
        """Start a non-default cell kind (may be graph-free)."""
        return cls(kind=kind)

    @classmethod
    def of_protocol(cls, name: str) -> "Scenario":
        """Start a (possibly graph-free) protocol cell, e.g.
        ``Scenario.of_protocol("srikanth_toueg")``."""
        return cls(kind="protocol", protocol=name)

    # ------------------------------------------------------------------
    # Parameters / schedule / faults
    # ------------------------------------------------------------------

    def kind(self, kind: str) -> "Scenario":
        """Select the worker routine (see ``CELL_KINDS``)."""
        return self._with(kind=kind)

    def protocol(self, name: str) -> "Scenario":
        """Run through the unified protocol path (``kind="protocol"``)
        with the named :class:`~repro.core.protocol.SyncProtocol`."""
        return self._with(kind="protocol", protocol=name)

    def dynamic(self, schedule: str, **schedule_args) -> "Scenario":
        """Make the topology time-varying: a registered
        :data:`~repro.topology.schedule.SCHEDULES` name plus its
        factory kwargs (e.g. ``.dynamic("churn", interval=40.0,
        churn=0.25)``)."""
        return self._with(schedule=schedule,
                          schedule_args=dict(schedule_args))

    def first_contact(self, enabled: bool = True) -> "Scenario":
        """Enable first-contact estimator bring-up: estimator state
        follows the live edge set (dormant while the link is down,
        brought up on first contact, warm-up rule before entering the
        trigger aggregation).  The protocol must declare
        ``supports_first_contact`` (checked at :meth:`build`)."""
        return self._with(first_contact=bool(enabled))

    def lossy(self, kind: str = "bernoulli", **kwargs) -> "Scenario":
        """Attach a random message-loss model to the network, e.g.
        ``.lossy(rate=0.05)`` (Bernoulli) or ``.lossy("burst",
        p_g2b=0.02, p_b2g=0.3, p_bad=0.9)`` (Gilbert–Elliott).  The
        spec is validated at :meth:`build`; loss draws come from a
        dedicated seed stream, so delay sequences are untouched and a
        zero-rate model stays bit-identical to no model."""
        return self._with(loss={"kind": kind, **kwargs})

    def churn_nodes(self, interval: float, crash: float,
                    rejoin: float = 0.5, protect: tuple = (),
                    drop_in_flight: bool = True) -> "Scenario":
        """Crash-and-rejoin node churn: sugar for
        ``.dynamic("node_churn", ...)``.  Every ``interval`` each
        alive unprotected vertex crashes with probability ``crash``
        (whole node down: links dark, state lost) and each crashed one
        rejoins with probability ``rejoin`` through the protocol's
        amnesiac bring-up path.  The protocol must declare
        ``supports_node_churn`` (checked at :meth:`build`)."""
        return self.dynamic("node_churn", interval=interval, crash=crash,
                            rejoin=rejoin, protect=tuple(protect),
                            drop_in_flight=drop_in_flight)

    def engine(self, name: str) -> "Scenario":
        """Select the execution backend
        (:data:`~repro.core.protocol.ENGINES`): ``"event"`` — the
        default — or ``"vectorized"`` for the numpy round engine.
        The protocol must declare ``supports_vectorized`` (checked at
        :meth:`build`)."""
        if name not in ENGINES:
            raise ConfigError(
                f"unknown engine {name!r}; known: {list(ENGINES)}")
        return self._with(engine=name)

    def timed(self, enabled: bool = True) -> "Scenario":
        """Also measure in-worker wall-clock time
        (``extras["timing"]``).  Opt-in: timing readings are not
        deterministic, so determinism checks must ignore them."""
        return self._with(timing=bool(enabled))

    def params(self, params: Parameters) -> "Scenario":
        """Attach the full FTGCS parameter set."""
        return self._with(params=params)

    def rounds(self, rounds: int) -> "Scenario":
        """How many rounds the cell runs."""
        return self._with(rounds=rounds)

    def seed(self, seed: int | None) -> "Scenario":
        """Explicit master seed (``None``: derived per cell)."""
        return self._with(seed=seed)

    def attack(self, strategy: str, *args) -> "Scenario":
        """Place a named fault strategy in every cluster."""
        return self._with(strategy=strategy, strategy_args=tuple(args))

    def adversarial(self, name: str, **kwargs) -> "Scenario":
        """Attach a unified engine-agnostic adversary
        (:data:`~repro.faults.adversary.ADVERSARIES`): a named
        :class:`~repro.faults.adversary.AdversaryModel` plus its knobs,
        e.g. ``.adversarial("equivocate", amplitude=2.0)`` or
        ``.adversarial("greedy", count=3)``.  The name, kwargs, and
        the engine × protocol realization are validated at
        :meth:`build`; mutually exclusive with :meth:`attack` (the
        legacy per-strategy spelling, unchanged for back-compat)."""
        return self._with(adversary={"name": name, **kwargs})

    def faults_per_cluster(self, count: int) -> "Scenario":
        """Override the per-cluster fault count (default ``params.f``)."""
        return self._with(faults_per_cluster=count)

    def configure(self, **config) -> "Scenario":
        """Merge :class:`~repro.core.system.SystemConfig` kwargs."""
        merged = dict(self._fields.get("config", {}))
        merged.update(config)
        return self._with(config=merged)

    def offsets(self, cluster_offsets: list[float]) -> "Scenario":
        """Initial per-cluster logical offsets (gradient setups)."""
        return self.configure(cluster_offsets=list(cluster_offsets))

    def payload(self, **payload) -> "Scenario":
        """Merge kind-specific knobs (non-``ftgcs`` cells)."""
        merged = dict(self._fields.get("payload", {}))
        merged.update(payload)
        return self._with(payload=merged)

    # ------------------------------------------------------------------
    # Measurements / labeling
    # ------------------------------------------------------------------

    def measure(self, *collectors: str) -> "Scenario":
        """Add in-worker collectors (see ``COLLECTORS``)."""
        existing = self._fields.get("collect", ())
        added = tuple(c for c in collectors if c not in existing)
        return self._with(collect=existing + added)

    def tag(self, *key) -> "Scenario":
        """Set the cell's free-form coordinates (``result.key``)."""
        return self._with(key=tuple(key))

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-safe plain-data form of the builder's *set* fields.

        Only fields a chained method actually set appear (a fresh
        ``Scenario.line(3)`` serializes to two keys), so the dict reads
        like the chain that built it.  Values go through the canonical
        tagged codec of :mod:`repro.harness.serialize`;
        :meth:`from_dict` restores a builder whose :meth:`build` output
        is bit-identical to the original's.
        """
        return {name: serialize.encode(value)
                for name, value in self._fields.items()}

    @classmethod
    def from_dict(cls, data: dict) -> "Scenario":
        """Rebuild a builder from :meth:`to_dict` output (or
        hand-written plain data; field names are validated against
        :class:`~repro.harness.sweep.ScenarioSpec`)."""
        if not isinstance(data, dict):
            raise ConfigError(
                f"Scenario.from_dict needs a dict: {data!r}")
        # The builder's field namespace IS the spec's; reuse its
        # decoding (tuple coercion, params type check, unknown-key
        # rejection), then keep only the keys that were present.
        spec = ScenarioSpec.from_dict(data)
        return cls(**{name: getattr(spec, name) for name in data})

    # ------------------------------------------------------------------
    # Compilation
    # ------------------------------------------------------------------

    def build(self) -> ScenarioSpec:
        """Compile to a picklable :class:`ScenarioSpec`.

        Everything resolvable from the spec alone is validated here —
        cell kind, protocol name, topology schedule, strategy, and
        collectors all fail at build time with the known-names list.
        """
        fields = dict(self._fields)
        kind = fields.get("kind", "protocol")
        if kind not in CELL_KINDS:
            raise ConfigError(f"unknown cell kind {kind!r}; known: "
                              f"{sorted(CELL_KINDS)}")
        protocol = fields.get("protocol")
        if protocol is not None:
            known = protocol_names()
            if protocol not in known:
                raise ConfigError(f"unknown protocol {protocol!r}; "
                                  f"known: {known}")
        schedule = fields.get("schedule")
        if schedule is not None and schedule not in SCHEDULES:
            raise ConfigError(f"unknown topology schedule {schedule!r}; "
                              f"known: {sorted(SCHEDULES)}")
        if schedule not in (None, "static"):
            if kind in _SCHEDULE_BLIND_KINDS:
                raise ConfigError(
                    f"cell kind {kind!r} ignores topology schedules; "
                    f".dynamic(...) needs a protocol cell")
            name = None
            if kind == "protocol":
                name = protocol or "ftgcs"
            elif kind in _LEGACY_PROTOCOL_KINDS:
                name = kind
            if name is not None:
                # Capability check by what the schedule class actually
                # emits: edge events need supports_dynamic_topology,
                # node events supports_node_churn (a node-churn-only
                # schedule is legal on e.g. master_slave, which cannot
                # track per-edge estimator state).
                cls = SCHEDULES[schedule]
                proto = get_protocol(name)
                from repro.topology.schedule import TopologySchedule
                if (cls.events is not TopologySchedule.events
                        and not proto.supports_dynamic_topology):
                    raise ConfigError(
                        f"protocol {name!r} does not support dynamic "
                        f"topologies")
                if (cls.node_events is not TopologySchedule.node_events
                        and not proto.supports_node_churn):
                    raise ConfigError(
                        f"protocol {name!r} does not support node churn")
        if fields.get("first_contact"):
            if kind in _SCHEDULE_BLIND_KINDS:
                raise ConfigError(
                    f"cell kind {kind!r} ignores first_contact; "
                    f".first_contact() needs a protocol cell")
            name = None
            if kind == "protocol":
                name = protocol or "ftgcs"
            elif kind in _LEGACY_PROTOCOL_KINDS:
                name = kind
            if (name is not None
                    and not get_protocol(name).supports_first_contact):
                raise ConfigError(
                    f"protocol {name!r} does not support first-contact "
                    f"estimator bring-up")
        loss = fields.get("loss")
        if loss:
            if kind in _SCHEDULE_BLIND_KINDS or kind == "augment_counts":
                raise ConfigError(
                    f"cell kind {kind!r} has no network; .lossy(...) "
                    f"needs a protocol cell")
            validate_loss_spec(loss)
        if schedule == "node_churn":
            # Churn-arg typos should fail where the grid is written,
            # not inside a pool worker: construct the schedule against
            # the cell's own graph (cheap — no simulation).
            graph_name = fields.get("graph")
            if graph_name:
                graph_factory = getattr(ClusterGraph, graph_name, None)
                if graph_factory is not None:
                    build_schedule(
                        "node_churn",
                        graph_factory(*fields.get("graph_args", ())),
                        **fields.get("schedule_args", {}))
        engine = fields.get("engine")
        if engine is not None and engine not in ENGINES:
            raise ConfigError(f"unknown engine {engine!r}; known: "
                              f"{list(ENGINES)}")
        if engine not in (None, "event"):
            if kind in _SCHEDULE_BLIND_KINDS:
                raise ConfigError(
                    f"cell kind {kind!r} ignores engines; "
                    f".engine(...) needs a protocol cell")
            name = None
            if kind == "protocol":
                name = protocol or "ftgcs"
            elif kind in _LEGACY_PROTOCOL_KINDS:
                name = kind
            if (name is not None
                    and not get_protocol(name).supports_vectorized):
                raise ConfigError(
                    f"protocol {name!r} has no vectorized port "
                    f"(supports_vectorized is False)")
        strategy = fields.get("strategy")
        if strategy is not None and strategy not in STRATEGIES:
            raise ConfigError(f"unknown strategy {strategy!r}; known: "
                              f"{sorted(STRATEGIES)}")
        adversary = fields.get("adversary")
        if adversary:
            if strategy is not None:
                raise ConfigError(
                    "compose either .attack(...) or .adversarial(...), "
                    "not both")
            if kind in _SCHEDULE_BLIND_KINDS:
                raise ConfigError(
                    f"cell kind {kind!r} has no fault layer; "
                    f".adversarial(...) needs a protocol cell")
            from repro.faults.adversary import (
                get_adversary,
                validate_event_support,
            )
            model = get_adversary(**adversary)
            name = None
            if kind == "protocol":
                name = protocol or "ftgcs"
            elif kind in _LEGACY_PROTOCOL_KINDS:
                name = kind
            if name is not None:
                proto = get_protocol(name)
                if engine not in (None, "event"):
                    if not proto.supports_vectorized_faults:
                        raise ConfigError(
                            f"protocol {name!r} has no vectorized "
                            f"fault injection "
                            f"(supports_vectorized_faults is False)")
                    if not model.supports_vectorized:
                        raise ConfigError(
                            f"adversary {model.name!r} has no "
                            f"vectorized realization; use the event "
                            f"engine")
                else:
                    validate_event_support(model, name)
        for collector in fields.get("collect", ()):
            if collector not in COLLECTORS:
                raise ConfigError(
                    f"unknown collector {collector!r}; known: "
                    f"{sorted(COLLECTORS)}")
        return ScenarioSpec(**fields)


__all__ = ["Scenario"]
