"""Experiment harness: scenario builders, the sweep engine, tables,
and the registered T1-T18 suite.

The stable programmatic surface (see API.md):

- :class:`Scenario` — fluent builder compiling to picklable
  :class:`ScenarioSpec` cells.
- :class:`SweepRunner` — fans spec grids across worker processes with
  deterministic per-cell seeding.
- :data:`REGISTRY` / :func:`run_experiment` — every table of the
  reproduction, one uniform entry point.
"""

from repro.core.protocol import (
    PROTOCOLS,
    ProtocolRunResult,
    SyncProtocol,
    SystemBuilder,
    register_protocol,
)
from repro.harness.experiments import (
    ALL_EXPERIMENTS,
    fast_dynamics_params,
    run_all,
)
from repro.harness.registry import (
    REGISTRY,
    Experiment,
    ExperimentPlan,
    ExperimentRegistry,
    run_experiment,
)
from repro.harness.runner import (
    ScenarioResult,
    default_params,
    gradient_offsets,
    run_scenario,
    steady_state_skews,
    step_offsets,
)
from repro.harness.scenario import Scenario
from repro.harness.serialize import (
    canonical_json,
    content_hash,
    register_serializable,
)
from repro.harness.sweep import (
    CELL_KINDS,
    COLLECTORS,
    STRATEGIES,
    ScenarioSpec,
    SweepCellResult,
    SweepRunner,
    default_processes,
    register_cell_kind,
    resolve_cell_seeds,
    run_cell,
    spec_hash,
)
from repro.harness.tables import Table

__all__ = [
    # experiments + registry
    "ALL_EXPERIMENTS",
    "run_all",
    "REGISTRY",
    "Experiment",
    "ExperimentPlan",
    "ExperimentRegistry",
    "run_experiment",
    # unified protocol surface (re-exported from repro.core.protocol)
    "PROTOCOLS",
    "ProtocolRunResult",
    "SyncProtocol",
    "SystemBuilder",
    "register_protocol",
    # scenario construction
    "Scenario",
    "ScenarioSpec",
    "fast_dynamics_params",
    "default_params",
    "gradient_offsets",
    "step_offsets",
    # direct runners
    "ScenarioResult",
    "run_scenario",
    "steady_state_skews",
    # sweep engine
    "CELL_KINDS",
    "COLLECTORS",
    "STRATEGIES",
    "SweepCellResult",
    "SweepRunner",
    "default_processes",
    "register_cell_kind",
    "resolve_cell_seeds",
    "run_cell",
    # serialization (the simulation service rides on these)
    "canonical_json",
    "content_hash",
    "register_serializable",
    "spec_hash",
    # output
    "Table",
]
