"""Experiment harness: scenario runners, tables, the T1-T12 suite."""

from repro.harness.experiments import ALL_EXPERIMENTS, run_all
from repro.harness.runner import (
    ScenarioResult,
    default_params,
    gradient_offsets,
    run_scenario,
    steady_state_skews,
    step_offsets,
)
from repro.harness.sweep import (
    ScenarioSpec,
    SweepCellResult,
    SweepRunner,
    run_cell,
)
from repro.harness.tables import Table

__all__ = [
    "ALL_EXPERIMENTS",
    "run_all",
    "ScenarioResult",
    "default_params",
    "gradient_offsets",
    "run_scenario",
    "steady_state_skews",
    "step_offsets",
    "ScenarioSpec",
    "SweepCellResult",
    "SweepRunner",
    "run_cell",
    "Table",
]
