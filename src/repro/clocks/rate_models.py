"""Hardware clock drift-rate models.

The paper's model (Section 2) prescribes hardware rates
``1 <= h_v(t) <= 1 + rho`` that may vary arbitrarily over time.  A
:class:`RateModel` produces one such trajectory as a sequence of
piecewise-constant segments: :meth:`RateModel.initial_rate` gives the
rate at time 0, and :meth:`RateModel.next_change` yields the next
``(time, rate)`` breakpoint (or ``None`` for "constant forever").

Worst-case analyses are driven by *adversarial* trajectories; the
models here cover the extremes used in the experiments:

* :class:`ConstantRate` — pinned at any value in ``[1, 1+rho]``; the
  classic worst case is one node at ``1`` and another at ``1+rho``.
* :class:`FlipRate` — alternates between two rates with a fixed period
  and phase; used to "pump" skew back and forth along a line, the
  pattern that defeats master–slave synchronization.
* :class:`ScheduleRate` — explicit breakpoint list.
* :class:`RandomWalkRate` — bounded random walk, re-stepped every
  ``interval``; a realistic oscillator model.
* :class:`JitterRate` — independent uniform draw every ``interval``.
"""

from __future__ import annotations

import math
import random
from abc import ABC, abstractmethod

from repro.errors import ClockError


class RateModel(ABC):
    """A piecewise-constant rate trajectory."""

    @abstractmethod
    def initial_rate(self) -> float:
        """Rate in effect at simulation start."""

    @abstractmethod
    def next_change(self, now: float) -> tuple[float, float] | None:
        """Return ``(t, rate)`` of the next breakpoint strictly after
        ``now``, or ``None`` if the rate never changes again."""


class ConstantRate(RateModel):
    """A clock that runs at a fixed rate forever."""

    def __init__(self, rate: float = 1.0) -> None:
        if rate <= 0:
            raise ClockError(f"rate must be positive: {rate!r}")
        self._rate = rate

    def initial_rate(self) -> float:
        return self._rate

    def next_change(self, now: float) -> tuple[float, float] | None:
        return None

    def __repr__(self) -> str:
        return f"ConstantRate({self._rate!r})"


class FlipRate(RateModel):
    """Alternates between ``low`` and ``high`` every ``period``.

    The first flip happens at ``t = phase`` (or at ``t = period`` when
    ``phase == 0``, since the initial segment must have positive
    length); subsequent flips follow every ``period``.  With
    ``start_high=True`` the clock begins at ``high``.  This is the
    adversarial "drift pump": running a region of the network fast
    while another runs slow, then swapping, maximizes the skew an
    oblivious algorithm accumulates.
    """

    def __init__(self, low: float, high: float, period: float,
                 phase: float = 0.0, start_high: bool = False) -> None:
        if not 0 < low <= high:
            raise ClockError(f"need 0 < low <= high: {low!r}, {high!r}")
        if period <= 0:
            raise ClockError(f"period must be positive: {period!r}")
        if phase < 0:
            raise ClockError(f"phase must be non-negative: {phase!r}")
        self._low = low
        self._high = high
        self._period = period
        self._phase = phase
        self._start_high = start_high
        # Flip times are t_i = phase + i*period (i >= 0); only strictly
        # positive times are real flips, so skip t_0 when phase == 0.
        self._i_first = 0 if phase > 0 else 1

    def _rate_after_flips(self, nflips: int) -> float:
        """Rate in effect after ``nflips`` flips have occurred."""
        starts_high = self._start_high
        if nflips % 2 == 0:
            return self._high if starts_high else self._low
        return self._low if starts_high else self._high

    def initial_rate(self) -> float:
        return self._rate_after_flips(0)

    def next_change(self, now: float) -> tuple[float, float] | None:
        index = max(self._i_first,
                    math.floor((now - self._phase) / self._period) + 1)
        t = self._phase + index * self._period
        while t <= now:  # guard against float rounding at boundaries
            index += 1
            t = self._phase + index * self._period
        nflips = index - self._i_first + 1
        return t, self._rate_after_flips(nflips)


class ScheduleRate(RateModel):
    """Follows an explicit ``[(time, rate), ...]`` breakpoint list.

    ``initial`` is the rate before the first breakpoint.  Breakpoints
    must be strictly increasing in time.
    """

    def __init__(self, initial: float,
                 schedule: list[tuple[float, float]]) -> None:
        if initial <= 0:
            raise ClockError(f"rate must be positive: {initial!r}")
        last_t = float("-inf")
        for t, rate in schedule:
            if t <= last_t:
                raise ClockError("schedule times must strictly increase")
            if rate <= 0:
                raise ClockError(f"rate must be positive: {rate!r}")
            last_t = t
        self._initial = initial
        self._schedule = list(schedule)

    def initial_rate(self) -> float:
        return self._initial

    def next_change(self, now: float) -> tuple[float, float] | None:
        for t, rate in self._schedule:
            if t > now:
                return t, rate
        return None


class RandomWalkRate(RateModel):
    """Bounded random walk re-stepped every ``interval``.

    Each step moves the rate by ``±step`` (chosen uniformly) and clips
    to ``[low, high]``.  A dedicated :class:`random.Random` must be
    supplied so executions replay deterministically.
    """

    def __init__(self, low: float, high: float, step: float,
                 interval: float, rng: random.Random,
                 initial: float | None = None) -> None:
        if not 0 < low <= high:
            raise ClockError(f"need 0 < low <= high: {low!r}, {high!r}")
        if interval <= 0:
            raise ClockError(f"interval must be positive: {interval!r}")
        if step < 0:
            raise ClockError(f"step must be non-negative: {step!r}")
        self._low = low
        self._high = high
        self._step = step
        self._interval = interval
        self._rng = rng
        if initial is None:
            initial = rng.uniform(low, high)
        self._current = min(max(initial, low), high)

    def initial_rate(self) -> float:
        return self._current

    def next_change(self, now: float) -> tuple[float, float] | None:
        index = int(now // self._interval) + 1
        t = index * self._interval
        if t <= now:
            t += self._interval
        delta = self._step if self._rng.random() < 0.5 else -self._step
        self._current = min(max(self._current + delta, self._low), self._high)
        return t, self._current


class JitterRate(RateModel):
    """Fresh uniform draw from ``[low, high]`` every ``interval``."""

    def __init__(self, low: float, high: float, interval: float,
                 rng: random.Random) -> None:
        if not 0 < low <= high:
            raise ClockError(f"need 0 < low <= high: {low!r}, {high!r}")
        if interval <= 0:
            raise ClockError(f"interval must be positive: {interval!r}")
        self._low = low
        self._high = high
        self._interval = interval
        self._rng = rng
        self._current = rng.uniform(low, high)

    def initial_rate(self) -> float:
        return self._current

    def next_change(self, now: float) -> tuple[float, float] | None:
        index = int(now // self._interval) + 1
        t = index * self._interval
        if t <= now:
            t += self._interval
        self._current = self._rng.uniform(self._low, self._high)
        return t, self._current
