"""Shared machinery for piecewise-constant-rate clocks.

Every clock in the library — hardware, logical, and scaled estimate
clocks — is an :class:`IntegratingClock`: it stores a state triple
``(t0, v0, rate)`` meaning "at Newtonian time ``t0`` the clock read
``v0`` and currently advances at ``rate``".  Reads and alarm-time
inversions are exact; there is no numeric integration anywhere.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.clocks.alarms import Alarm, AlarmManager
from repro.errors import ClockError
from repro.sim.kernel import Simulator


class IntegratingClock:
    """A clock with piecewise-constant rate and exact alarms.

    Subclasses determine the rate; they must call
    :meth:`_change_rate` (never mutate ``_rate`` directly) so pending
    alarms stay consistent.
    """

    def __init__(self, sim: Simulator, initial_value: float = 0.0,
                 initial_rate: float = 1.0, name: str = "") -> None:
        if initial_rate <= 0:
            raise ClockError(f"clock rate must be positive: {initial_rate!r}")
        self._sim = sim
        self._t0 = sim.now
        self._v0 = initial_value
        self._rate = initial_rate
        self.name = name
        self._alarms = AlarmManager(sim, self)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------

    @property
    def sim(self) -> Simulator:
        return self._sim

    @property
    def rate(self) -> float:
        """Current instantaneous rate dV/dt."""
        return self._rate

    def value(self, t: float | None = None) -> float:
        """Clock reading at time ``t`` (default: current kernel time).

        Only the current rate segment is stored, so ``t`` must not
        precede the segment start (i.e. the last rate change).
        """
        if t is None:
            t = self._sim.now
        if t < self._t0 - 1e-9:
            raise ClockError(
                f"cannot read clock {self.name!r} at t={t!r}: current "
                f"rate segment starts at t={self._t0!r}")
        return self._v0 + self._rate * (t - self._t0)

    def time_of_value(self, target: float) -> float:
        """Newtonian time at which the clock reaches ``target``.

        Assumes the current rate persists; the alarm manager re-invokes
        this whenever the rate changes.  Targets already reached map to
        the current time.
        """
        t = self._t0 + (target - self._v0) / self._rate
        now = self._sim.now
        return t if t > now else now

    # ------------------------------------------------------------------
    # Mutation (subclass API)
    # ------------------------------------------------------------------

    def _advance_to_now(self) -> None:
        """Fold elapsed time into ``(t0, v0)`` before a state change."""
        now = self._sim.now
        if now != self._t0:
            self._v0 += self._rate * (now - self._t0)
            self._t0 = now

    def _change_rate(self, new_rate: float) -> None:
        """Switch to ``new_rate`` as of the current kernel time."""
        if new_rate <= 0:
            raise ClockError(
                f"clock {self.name!r}: rate must be positive, "
                f"got {new_rate!r}")
        self._advance_to_now()
        if new_rate != self._rate:
            self._rate = new_rate
            self._alarms.reschedule()

    def _jump_to_value(self, new_value: float) -> None:
        """Discontinuously set the reading (must not move backwards)."""
        self._advance_to_now()
        if new_value < self._v0:
            raise ClockError(
                f"clock {self.name!r}: cannot jump backwards from "
                f"{self._v0!r} to {new_value!r}")
        if new_value != self._v0:
            self._v0 = new_value
            self._alarms.reschedule()

    # ------------------------------------------------------------------
    # Alarms
    # ------------------------------------------------------------------

    def at_value(self, target: float, callback: Callable[..., None],
                 *args: Any) -> Alarm:
        """Invoke ``callback(*args)`` when the clock reaches ``target``."""
        return self._alarms.add(target, callback, args)

    def cancel_alarm(self, alarm: Alarm) -> None:
        """Cancel an alarm returned by :meth:`at_value`."""
        self._alarms.cancel(alarm)

    def pending_alarms(self) -> int:
        """Number of pending alarms (introspection for tests)."""
        return len(self._alarms)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"{type(self).__name__}(name={self.name!r}, "
                f"value={self.value():.6g}, rate={self._rate:.6g})")
