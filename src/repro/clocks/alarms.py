"""Alarms that fire when a clock reaches a target value.

The algorithms in this library are driven by statements of the form
"at logical time ``X`` do ...".  Because every clock in the simulation
has a piecewise-constant rate, the Newtonian firing time of such an
alarm is obtained by *exact inversion*::

    t_fire = t_now + (target - value_now) / rate

Whenever the clock's rate changes (hardware drift step, ``delta``/
``gamma`` update), pending alarms are rescheduled with the new rate.
The :class:`AlarmManager` keeps at most one kernel event outstanding —
the one for the earliest pending target — so rate changes cost
O(log n) regardless of how many alarms are registered.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Any, Callable

if TYPE_CHECKING:  # pragma: no cover
    from repro.clocks.base import IntegratingClock
    from repro.sim.kernel import Simulator

#: Absolute tolerance when deciding that a clock has reached a target.
#: Inversion arithmetic on float64 with the magnitudes used in this
#: library (times up to ~1e7) is accurate to ~1e-9, so 1e-7 is safely
#: above numeric noise yet far below any algorithmically relevant gap.
ALARM_TOLERANCE = 1e-7


class Alarm:
    """A pending "call me when the clock reads ``target``" request."""

    __slots__ = ("target", "seq", "_callback", "_args", "cancelled")

    def __init__(self, target: float, seq: int,
                 callback: Callable[..., None], args: tuple[Any, ...]):
        self.target = target
        self.seq = seq
        self._callback = callback
        self._args = args
        self.cancelled = False

    def fire(self) -> None:
        self._callback(*self._args)

    def __lt__(self, other: "Alarm") -> bool:
        if self.target != other.target:
            return self.target < other.target
        return self.seq < other.seq


class AlarmManager:
    """Maintains the alarm heap for one clock.

    The owning clock must call :meth:`reschedule` after *every* rate or
    value change; the manager then re-inverts the earliest target.
    """

    def __init__(self, sim: "Simulator", clock: "IntegratingClock") -> None:
        self._sim = sim
        self._clock = clock
        self._heap: list[Alarm] = []
        self._seq = 0
        self._kernel_event = None

    def __len__(self) -> int:
        return sum(1 for a in self._heap if not a.cancelled)

    def add(self, target: float, callback: Callable[..., None],
            args: tuple[Any, ...]) -> Alarm:
        """Register an alarm at clock value ``target``.

        Targets at or before the current clock reading fire on the next
        kernel dispatch at the current time ("when the clock reaches X"
        is immediately true).  This matters for clocks that can jump
        forward (max-estimates, jump-based baselines), which may pass
        several pending targets at once.
        """
        alarm = Alarm(target, self._seq, callback, args)
        self._seq += 1
        heapq.heappush(self._heap, alarm)
        self.reschedule()
        return alarm

    def cancel(self, alarm: Alarm) -> None:
        """Cancel a pending alarm (lazy removal from the heap)."""
        alarm.cancelled = True

    def reschedule(self) -> None:
        """Re-invert the earliest pending target after a clock change."""
        if self._kernel_event is not None:
            self._sim.cancel(self._kernel_event)
            self._kernel_event = None
        heap = self._heap
        while heap and heap[0].cancelled:
            heapq.heappop(heap)
        if not heap:
            return
        target = heap[0].target
        t_fire = self._clock.time_of_value(target)
        self._kernel_event = self._sim.call_at(t_fire, self._on_fire)

    def _on_fire(self) -> None:
        """Fire every alarm whose target the clock has now reached."""
        self._kernel_event = None
        value = self._clock.value()
        heap = self._heap
        due: list[Alarm] = []
        while heap and (heap[0].cancelled
                        or heap[0].target <= value + ALARM_TOLERANCE):
            alarm = heapq.heappop(heap)
            if not alarm.cancelled:
                due.append(alarm)
        # Reschedule *before* firing: callbacks may register new alarms
        # or change the clock rate, both of which call reschedule()
        # themselves; doing ours first keeps the invariant simple.
        self.reschedule()
        for alarm in due:
            alarm.fire()
