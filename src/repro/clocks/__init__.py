"""Clock substrate: hardware drift models, logical clocks, alarms."""

from repro.clocks.alarms import ALARM_TOLERANCE, Alarm, AlarmManager
from repro.clocks.base import IntegratingClock
from repro.clocks.hardware import HardwareClock
from repro.clocks.logical import LogicalClock, ScaledClock
from repro.clocks.rate_models import (
    ConstantRate,
    FlipRate,
    JitterRate,
    RandomWalkRate,
    RateModel,
    ScheduleRate,
)

__all__ = [
    "ALARM_TOLERANCE",
    "Alarm",
    "AlarmManager",
    "IntegratingClock",
    "HardwareClock",
    "LogicalClock",
    "ScaledClock",
    "ConstantRate",
    "FlipRate",
    "JitterRate",
    "RandomWalkRate",
    "RateModel",
    "ScheduleRate",
]
