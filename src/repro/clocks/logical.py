"""Logical clocks implementing Eq. (2) of the paper.

The logical clock of node ``v`` is

    L_v(t) = ∫_0^t (1 + phi * delta_v(τ)) (1 + mu * gamma_v(τ)) h_v(τ) dτ

where the algorithm controls ``delta_v(t) >= 0`` (the amortized
Lynch–Welch correction, Section 3) and ``gamma_v(t) ∈ {0, 1}`` (the GCS
fast-mode flag, Section 4), and ``h_v`` is the hardware rate.

:class:`LogicalClock` realizes this exactly on top of
:class:`~repro.clocks.base.IntegratingClock`: any change to ``delta``,
``gamma`` or the hardware rate folds the elapsed segment into the state
and re-inverts pending alarms.

:class:`ScaledClock` is the simpler sibling used for the global-skew
estimate ``M_v`` of Lemma C.2: it advances at ``scale * h_v(t)`` (with
``scale = 1/(1+rho)``) and additionally supports the *upward jumps*
that max-pulse flooding performs.
"""

from __future__ import annotations

from repro.clocks.base import IntegratingClock
from repro.clocks.hardware import HardwareClock
from repro.errors import ClockError
from repro.sim.kernel import Simulator


class LogicalClock(IntegratingClock):
    """The paper's logical clock ``L_v`` (Eq. (2)).

    Parameters
    ----------
    sim, hardware:
        Kernel and the driving hardware clock.  The logical clock
        registers itself as a hardware rate-change listener.
    phi, mu:
        The constants of Eq. (2): ``0 <= phi < 1``, ``mu >= 0``.
        (The paper requires ``phi > 0`` for the full algorithm; plain
        baselines may run with ``phi = 0``.)
    delta, gamma:
        Initial control values; the defaults (``delta=1``, ``gamma=0``)
        match phases 1–2 of Algorithm 1 in slow mode.
    """

    def __init__(self, sim: Simulator, hardware: HardwareClock,
                 phi: float, mu: float, delta: float = 1.0,
                 gamma: int = 0, initial_value: float = 0.0,
                 name: str = "") -> None:
        if not 0.0 <= phi < 1.0:
            raise ClockError(f"phi must be in [0, 1): {phi!r}")
        if mu < 0:
            raise ClockError(f"mu must be non-negative: {mu!r}")
        if delta < 0:
            raise ClockError(f"delta must be non-negative: {delta!r}")
        if gamma not in (0, 1):
            raise ClockError(f"gamma must be 0 or 1: {gamma!r}")
        self._hardware = hardware
        self._phi = phi
        self._mu = mu
        self._delta = delta
        self._gamma = gamma
        rate = self._multiplier() * hardware.rate
        super().__init__(sim, initial_value=initial_value,
                         initial_rate=rate, name=name)
        hardware.add_listener(self._on_hardware_change)

    # ------------------------------------------------------------------

    @property
    def hardware(self) -> HardwareClock:
        return self._hardware

    @property
    def phi(self) -> float:
        return self._phi

    @property
    def mu(self) -> float:
        return self._mu

    @property
    def delta(self) -> float:
        """Current amortization control ``delta_v(t)``."""
        return self._delta

    @property
    def gamma(self) -> int:
        """Current GCS mode flag ``gamma_v(t)`` (1 = fast)."""
        return self._gamma

    def _multiplier(self) -> float:
        return (1.0 + self._phi * self._delta) * (1.0 + self._mu * self._gamma)

    def _refresh_rate(self) -> None:
        self._change_rate(self._multiplier() * self._hardware.rate)

    def _on_hardware_change(self) -> None:
        self._refresh_rate()

    # ------------------------------------------------------------------
    # Algorithm controls
    # ------------------------------------------------------------------

    def set_delta(self, delta: float) -> None:
        """Set ``delta_v`` (phase-3 amortization level)."""
        if delta < 0:
            raise ClockError(f"delta must be non-negative: {delta!r}")
        if delta != self._delta:
            self._delta = delta
            self._refresh_rate()

    def set_gamma(self, gamma: int) -> None:
        """Set ``gamma_v`` (1 = fast mode, 0 = slow mode)."""
        if gamma not in (0, 1):
            raise ClockError(f"gamma must be 0 or 1: {gamma!r}")
        if gamma != self._gamma:
            self._gamma = gamma
            self._refresh_rate()

    def jump_to(self, value: float) -> bool:
        """Discontinuously raise the clock to ``value`` (forward only).

        The FTGCS algorithm never jumps — Eq. (2) clocks are continuous
        by construction.  This exists for *baselines* (e.g. the
        jump-based master–slave tree), whose unbounded instantaneous
        rate is exactly the property the paper's construction avoids.
        Returns ``True`` when the jump was applied.
        """
        if value <= self.value():
            return False
        self._jump_to_value(value)
        return True


class ScaledClock(IntegratingClock):
    """A clock advancing at ``scale * h_v(t)``, with upward jumps.

    Used for the max-estimate ``M_v`` (Lemma C.2), which increases at
    rate ``h_v/(1+rho) <= 1`` and jumps forward when max-pulse flooding
    reveals a larger system clock.
    """

    def __init__(self, sim: Simulator, hardware: HardwareClock,
                 scale: float, initial_value: float = 0.0,
                 name: str = "") -> None:
        if scale <= 0:
            raise ClockError(f"scale must be positive: {scale!r}")
        self._hardware = hardware
        self._scale = scale
        super().__init__(sim, initial_value=initial_value,
                         initial_rate=scale * hardware.rate, name=name)
        hardware.add_listener(self._on_hardware_change)

    @property
    def scale(self) -> float:
        return self._scale

    def _on_hardware_change(self) -> None:
        self._change_rate(self._scale * self._hardware.rate)

    def jump_to(self, value: float) -> bool:
        """Raise the reading to ``value`` if that is an increase.

        Returns ``True`` when the jump was applied, ``False`` when the
        clock already read at least ``value``.
        """
        if value <= self.value():
            return False
        self._jump_to_value(value)
        return True
