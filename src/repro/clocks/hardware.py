"""Hardware clocks: drifting oscillators with rates in ``[1, 1+rho]``.

A :class:`HardwareClock` integrates a :class:`~repro.clocks.rate_models.
RateModel` trajectory exactly and notifies registered listeners (the
node's logical clock, estimate clocks, max-estimate clock) whenever its
rate steps, so they can fold the change into their own piecewise state.
"""

from __future__ import annotations

from typing import Callable

from repro.clocks.base import IntegratingClock
from repro.clocks.rate_models import RateModel
from repro.errors import ClockError
from repro.sim.kernel import Simulator

#: Slack for validating model rates against [1, 1+rho]; strategy models
#: used by *Byzantine* nodes may exceed the envelope on purpose.
_BOUND_TOL = 1e-12


class HardwareClock(IntegratingClock):
    """A drifting hardware clock following a rate model.

    Parameters
    ----------
    sim:
        The simulation kernel.
    rate_model:
        Piecewise-constant rate trajectory.
    rho:
        Drift bound; honest rates must stay within ``[1, 1+rho]``.
    enforce_bounds:
        When ``True`` (default) a model rate outside ``[1, 1+rho]``
        raises :class:`ClockError`.  Byzantine nodes construct their
        clocks with ``enforce_bounds=False`` — a faulty oscillator is
        exactly a clock violating its specification.
    """

    def __init__(self, sim: Simulator, rate_model: RateModel, rho: float,
                 enforce_bounds: bool = True, name: str = "") -> None:
        if rho < 0:
            raise ClockError(f"rho must be non-negative: {rho!r}")
        self._model = rate_model
        self._rho = rho
        self._enforce = enforce_bounds
        self._listeners: list[Callable[[], None]] = []
        initial = rate_model.initial_rate()
        self._check(initial)
        super().__init__(sim, initial_value=0.0, initial_rate=initial,
                         name=name)
        self._schedule_next_change()

    @property
    def rho(self) -> float:
        """The drift bound this clock was configured with."""
        return self._rho

    def _check(self, rate: float) -> None:
        if not self._enforce:
            if rate <= 0:
                raise ClockError(f"rate must be positive: {rate!r}")
            return
        if rate < 1.0 - _BOUND_TOL or rate > 1.0 + self._rho + _BOUND_TOL:
            raise ClockError(
                f"hardware rate {rate!r} outside [1, 1+rho] with "
                f"rho={self._rho!r}")

    def add_listener(self, callback: Callable[[], None]) -> None:
        """Register ``callback()`` to run after every rate change.

        Listeners are invoked in registration order, after this clock's
        own state has been updated, so reading :attr:`rate` from inside
        a listener sees the new value.
        """
        self._listeners.append(callback)

    def _schedule_next_change(self) -> None:
        change = self._model.next_change(self._sim.now)
        if change is None:
            return
        t, rate = change
        self._check(rate)
        self._sim.call_at(t, self._apply_change, rate)

    def _apply_change(self, rate: float) -> None:
        self._change_rate(rate)
        self._schedule_next_change()
        for callback in self._listeners:
            callback()
