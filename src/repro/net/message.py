"""Message types exchanged over the network.

The paper's nodes communicate with *contentless pulses*.  We model a
pulse as a small record carrying only routing metadata (sender) and a
``kind`` tag distinguishing the two pulse channels the full algorithm
uses:

* :data:`PulseKind.SYNC` — the per-round clock pulse of Algorithm 1;
* :data:`PulseKind.MAX` — the max-estimate flooding pulse of Lemma C.2
  ("distinguishable from the ones for providing their actual clock
  values").

Baseline algorithms that are *not* restricted to contentless pulses
(e.g. the fault-intolerant GCS baseline, which ships clock readings)
use :class:`ValueMessage`.

Honest algorithm code must never read anything but ``sender`` and
``kind`` from a pulse: attribution of a pulse to a round happens by
arrival order at the receiver, exactly as it would with genuinely
contentless signals.  The ``debug_round`` field exists purely for
assertions in tests and is ignored by algorithm logic.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class PulseKind(enum.Enum):
    """Channel tag for contentless pulses."""

    SYNC = "sync"
    MAX = "max"
    PROPOSE = "propose"  # used by the Srikanth–Toueg baseline


@dataclass(frozen=True, slots=True)
class Pulse:
    """A contentless pulse.

    Attributes
    ----------
    sender:
        Node id of the transmitter (link-level information: a receiver
        knows which port a pulse arrived on).
    kind:
        Which pulse channel this is.
    debug_round:
        Sender-side round number for test assertions only; honest
        receiver logic must not read it (Byzantine senders may set it
        arbitrarily, which is one more reason not to trust it).
    """

    sender: int
    kind: PulseKind = PulseKind.SYNC
    debug_round: int = field(default=-1, compare=False)


@dataclass(frozen=True, slots=True)
class ValueMessage:
    """A message carrying an explicit clock reading (baselines only)."""

    sender: int
    value: float
    kind: str = "clock-value"
