"""Link delay models.

The model of Section 2: a pulse sent at time ``p`` arrives at each
neighbor at some time in ``[p + d - U, p + d]`` where ``d`` is the
maximum delay and ``U`` the delay uncertainty.  A :class:`DelayModel`
draws the per-message delay; the network validates that every draw
stays inside the envelope (Byzantine *links* are not part of the
paper's model — only Byzantine nodes are).

Models provided:

* :class:`FixedDelay` — every message takes exactly ``delay``.
* :class:`UniformDelay` — i.i.d. uniform draw from ``[d-U, d]``.
* :class:`ExtremalDelay` — always the minimum or always the maximum;
  the worst cases for synchronization error are at the envelope edges.
* :class:`BiasedDelay` — per-*direction* fixed delays; lets an
  experiment place ``d-U`` on one direction of a link and ``d`` on the
  other, the classic configuration that maximizes one-round estimation
  error.
* :class:`PolicyDelay` — arbitrary callable, for adversarial schedules.

Out-of-model delays (fault injection)
-------------------------------------
Two models deliberately step *outside* the paper's envelope to measure
graceful degradation (they set the class attribute
``in_model = False``, which tells the network to skip envelope
validation and only require non-negative draws):

* :class:`ParetoDelay` — heavy-tailed delays ``(d - U) + Pareto``.
  The documented out-of-model policy: with ``policy="clamp"`` every
  sample is clamped into ``[d-U, d]`` (in-model marginal with a point
  mass at ``d``; useful as a sanity anchor), with ``policy="exceed"``
  (the default) samples beyond ``d`` are delivered late, exactly as
  drawn — late messages are *stale but not reordered against physics*,
  and the protocol under test must absorb them.
* :class:`AsymmetricDelay` — composes two models, one per direction,
  so one direction of a link can be heavy-tailed while the other stays
  uniform (asymmetric routes, half-duplex contention).
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Callable

from repro.errors import NetworkError


class DelayModel(ABC):
    """Draws the delay for one message on one directed link."""

    #: True when every draw is guaranteed to lie in ``[d - U, d]``;
    #: the network validates such draws against the envelope.  Models
    #: that inject out-of-model delays (fault injection) set this
    #: False, and the network then only requires non-negative draws.
    in_model: bool = True

    @abstractmethod
    def draw(self, sender: int, receiver: int, now: float) -> float:
        """Delay (in Newtonian time units) for a message sent now."""


class FixedDelay(DelayModel):
    """Every message takes exactly ``delay``."""

    def __init__(self, delay: float) -> None:
        if delay < 0:
            raise NetworkError(f"delay must be non-negative: {delay!r}")
        self._delay = delay

    def draw(self, sender: int, receiver: int, now: float) -> float:
        return self._delay


class UniformDelay(DelayModel):
    """I.i.d. uniform delay in ``[d - U, d]``."""

    def __init__(self, d: float, u: float, rng: random.Random) -> None:
        if d <= 0:
            raise NetworkError(f"d must be positive: {d!r}")
        if not 0 <= u <= d:
            raise NetworkError(f"need 0 <= U <= d: U={u!r}, d={d!r}")
        self._d = d
        self._u = u
        self._rng = rng

    def draw(self, sender: int, receiver: int, now: float) -> float:
        return self._d - self._u * self._rng.random()


class ExtremalDelay(DelayModel):
    """Always ``d - U`` (``mode='min'``) or always ``d`` (``mode='max'``)."""

    def __init__(self, d: float, u: float, mode: str = "max") -> None:
        if mode not in ("min", "max"):
            raise NetworkError(f"mode must be 'min' or 'max': {mode!r}")
        if not 0 <= u <= d:
            raise NetworkError(f"need 0 <= U <= d: U={u!r}, d={d!r}")
        self._delay = d if mode == "max" else d - u

    def draw(self, sender: int, receiver: int, now: float) -> float:
        return self._delay


class BiasedDelay(DelayModel):
    """Fixed delay per direction: ``forward`` when ``sender < receiver``,
    else ``backward``.

    With ``forward = d`` and ``backward = d - U`` this realizes the
    asymmetric-link worst case for round-trip-free estimation.
    """

    def __init__(self, forward: float, backward: float) -> None:
        if forward < 0 or backward < 0:
            raise NetworkError("delays must be non-negative")
        self._forward = forward
        self._backward = backward

    def draw(self, sender: int, receiver: int, now: float) -> float:
        return self._forward if sender < receiver else self._backward


class PolicyDelay(DelayModel):
    """Delegates to ``policy(sender, receiver, now) -> delay``.

    The network still validates the returned delay against the
    ``[d-U, d]`` envelope, so a policy cannot smuggle out-of-model
    behaviour in by accident.
    """

    def __init__(self, policy: Callable[[int, int, float], float]) -> None:
        self._policy = policy

    def draw(self, sender: int, receiver: int, now: float) -> float:
        return self._policy(sender, receiver, now)


class ParetoDelay(DelayModel):
    """Heavy-tailed delay: ``(d - U) + U * (Pareto(alpha) - 1)``.

    The Pareto variate has scale 1 and shape ``alpha``, so the minimum
    delay is exactly ``d - U`` and the *median* stays near the uniform
    model's range, but the tail decays polynomially — occasional
    samples land far beyond ``d``.  Out-of-model policy for those
    samples (the explicit knob this class exists for):

    ``policy="exceed"`` (default)
        Deliver late, exactly as drawn.  The run leaves the paper's
        model; skew bounds are no longer guaranteed and the measured
        degradation is the experiment's subject.
    ``policy="clamp"``
        Clamp into ``[d - U, d]``.  In-model marginal with a point
        mass at ``d``; the sanity anchor for A/B runs.

    Smaller ``alpha`` means heavier tails (``alpha <= 1`` has infinite
    mean — legal here, brutal on the protocol).
    """

    in_model = False

    def __init__(self, d: float, u: float, alpha: float,
                 rng: random.Random, policy: str = "exceed") -> None:
        if d <= 0:
            raise NetworkError(f"d must be positive: {d!r}")
        if not 0 < u <= d:
            raise NetworkError(f"need 0 < U <= d: U={u!r}, d={d!r}")
        if alpha <= 0:
            raise NetworkError(f"alpha must be positive: {alpha!r}")
        if policy not in ("exceed", "clamp"):
            raise NetworkError(
                f"policy must be 'exceed' or 'clamp': {policy!r}")
        self._d = d
        self._u = u
        self._alpha = alpha
        self._rng = rng
        self._clamp = policy == "clamp"
        # Clamped draws are in-model by construction; declare it so
        # the network keeps validating them.
        if self._clamp:
            self.in_model = True

    def draw(self, sender: int, receiver: int, now: float) -> float:
        # Inverse-CDF Pareto with scale 1: x = (1 - U)^(-1/alpha).
        x = (1.0 - self._rng.random()) ** (-1.0 / self._alpha)
        delay = (self._d - self._u) + self._u * (x - 1.0)
        if self._clamp and delay > self._d:
            return self._d
        return delay


class AsymmetricDelay(DelayModel):
    """Direction-split composite: ``forward`` when ``sender <
    receiver``, else ``backward``.

    Each direction delegates to its own full :class:`DelayModel`, so
    e.g. one direction can be :class:`ParetoDelay` while the other is
    :class:`UniformDelay`.  The composite is in-model only if both
    halves are.
    """

    def __init__(self, forward: DelayModel,
                 backward: DelayModel) -> None:
        self._forward = forward
        self._backward = backward
        self.in_model = forward.in_model and backward.in_model

    def draw(self, sender: int, receiver: int, now: float) -> float:
        model = self._forward if sender < receiver else self._backward
        return model.draw(sender, receiver, now)
