"""Link delay models.

The model of Section 2: a pulse sent at time ``p`` arrives at each
neighbor at some time in ``[p + d - U, p + d]`` where ``d`` is the
maximum delay and ``U`` the delay uncertainty.  A :class:`DelayModel`
draws the per-message delay; the network validates that every draw
stays inside the envelope (Byzantine *links* are not part of the
paper's model — only Byzantine nodes are).

Models provided:

* :class:`FixedDelay` — every message takes exactly ``delay``.
* :class:`UniformDelay` — i.i.d. uniform draw from ``[d-U, d]``.
* :class:`ExtremalDelay` — always the minimum or always the maximum;
  the worst cases for synchronization error are at the envelope edges.
* :class:`BiasedDelay` — per-*direction* fixed delays; lets an
  experiment place ``d-U`` on one direction of a link and ``d`` on the
  other, the classic configuration that maximizes one-round estimation
  error.
* :class:`PolicyDelay` — arbitrary callable, for adversarial schedules.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Callable

from repro.errors import NetworkError


class DelayModel(ABC):
    """Draws the delay for one message on one directed link."""

    @abstractmethod
    def draw(self, sender: int, receiver: int, now: float) -> float:
        """Delay (in Newtonian time units) for a message sent now."""


class FixedDelay(DelayModel):
    """Every message takes exactly ``delay``."""

    def __init__(self, delay: float) -> None:
        if delay < 0:
            raise NetworkError(f"delay must be non-negative: {delay!r}")
        self._delay = delay

    def draw(self, sender: int, receiver: int, now: float) -> float:
        return self._delay


class UniformDelay(DelayModel):
    """I.i.d. uniform delay in ``[d - U, d]``."""

    def __init__(self, d: float, u: float, rng: random.Random) -> None:
        if d <= 0:
            raise NetworkError(f"d must be positive: {d!r}")
        if not 0 <= u <= d:
            raise NetworkError(f"need 0 <= U <= d: U={u!r}, d={d!r}")
        self._d = d
        self._u = u
        self._rng = rng

    def draw(self, sender: int, receiver: int, now: float) -> float:
        return self._d - self._u * self._rng.random()


class ExtremalDelay(DelayModel):
    """Always ``d - U`` (``mode='min'``) or always ``d`` (``mode='max'``)."""

    def __init__(self, d: float, u: float, mode: str = "max") -> None:
        if mode not in ("min", "max"):
            raise NetworkError(f"mode must be 'min' or 'max': {mode!r}")
        if not 0 <= u <= d:
            raise NetworkError(f"need 0 <= U <= d: U={u!r}, d={d!r}")
        self._delay = d if mode == "max" else d - u

    def draw(self, sender: int, receiver: int, now: float) -> float:
        return self._delay


class BiasedDelay(DelayModel):
    """Fixed delay per direction: ``forward`` when ``sender < receiver``,
    else ``backward``.

    With ``forward = d`` and ``backward = d - U`` this realizes the
    asymmetric-link worst case for round-trip-free estimation.
    """

    def __init__(self, forward: float, backward: float) -> None:
        if forward < 0 or backward < 0:
            raise NetworkError("delays must be non-negative")
        self._forward = forward
        self._backward = backward

    def draw(self, sender: int, receiver: int, now: float) -> float:
        return self._forward if sender < receiver else self._backward


class PolicyDelay(DelayModel):
    """Delegates to ``policy(sender, receiver, now) -> delay``.

    The network still validates the returned delay against the
    ``[d-U, d]`` envelope, so a policy cannot smuggle out-of-model
    behaviour in by accident.
    """

    def __init__(self, policy: Callable[[int, int, float], float]) -> None:
        self._policy = policy

    def draw(self, sender: int, receiver: int, now: float) -> float:
        return self._policy(sender, receiver, now)
