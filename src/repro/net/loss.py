"""Message-loss models (out-of-model fault injection).

The paper's model has perfectly reliable links: every message sent over
an active link arrives within ``[d - U, d]``.  Deployed networks do
not.  A :class:`LossModel` decides, per message, whether the wire eats
it — *before* any delay is drawn, so attaching a loss model never
perturbs the delay streams (opt-out-by-construction: a run without a
loss model, or with :class:`NoLoss`, is byte-identical to a run built
before this module existed).

Models provided:

* :class:`NoLoss` — never drops; the explicit "reliable wire" object.
* :class:`BernoulliLoss` — i.i.d. per-message drop with probability
  ``rate``, one shared seeded stream (draw order is the deterministic
  send order, so runs replay exactly).
* :class:`BurstLoss` — Gilbert–Elliott two-state chain per *directed*
  link: a ``good`` state dropping with probability ``p_good`` and a
  ``bad`` state dropping with probability ``p_bad``, with per-message
  transition probabilities ``p_g2b`` / ``p_b2g``.  Models correlated
  (bursty) loss — interference, congested queues — that i.i.d. loss
  cannot.

:func:`build_loss_model` maps the picklable spec dict carried by
:class:`~repro.harness.sweep.ScenarioSpec` onto a model instance;
:func:`validate_loss_spec` performs the same argument checks eagerly
(``Scenario.build()`` calls it so a bad rate fails at build time, not
mid-sweep inside a pool worker).
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod

from repro.errors import ConfigError, NetworkError
from repro.sim.rng import derive_seed


class LossModel(ABC):
    """Decides, per message on one directed link, whether to drop it."""

    @abstractmethod
    def drop(self, sender: int, receiver: int, now: float) -> bool:
        """True if the message sent now on ``sender -> receiver`` is
        lost in transit."""


class NoLoss(LossModel):
    """Never drops a message (the paper's reliable-link model)."""

    def drop(self, sender: int, receiver: int, now: float) -> bool:
        return False


class BernoulliLoss(LossModel):
    """I.i.d. per-message loss with probability ``rate``.

    All links share one stream; because honest send order is itself
    deterministic, the per-link drop pattern replays exactly for a
    fixed seed.  ``rate=0.0`` never draws from the stream at all, so a
    zero-rate model is measurement-identical to :class:`NoLoss`.
    """

    def __init__(self, rate: float, rng: random.Random) -> None:
        if not 0.0 <= rate < 1.0:
            raise NetworkError(
                f"loss rate must be in [0, 1): {rate!r}")
        self._rate = rate
        self._rng = rng

    @property
    def rate(self) -> float:
        return self._rate

    def drop(self, sender: int, receiver: int, now: float) -> bool:
        if self._rate == 0.0:
            return False
        return self._rng.random() < self._rate


class BurstLoss(LossModel):
    """Gilbert–Elliott bursty loss, one two-state chain per directed
    link.

    Each message first advances the link's chain (``good -> bad`` with
    probability ``p_g2b``, ``bad -> good`` with ``p_b2g``), then drops
    with the new state's loss probability (``p_good`` resp. ``p_bad``).
    Chains start in ``good``.  State is keyed by the directed pair, so
    forward and backward traffic on one physical link burst
    independently — matching directional interference.
    """

    def __init__(self, p_g2b: float, p_b2g: float,
                 p_bad: float, rng: random.Random,
                 p_good: float = 0.0) -> None:
        for name, p in (("p_g2b", p_g2b), ("p_b2g", p_b2g),
                        ("p_good", p_good)):
            if not 0.0 <= p <= 1.0:
                raise NetworkError(
                    f"{name} must be in [0, 1]: {p!r}")
        if not 0.0 <= p_bad <= 1.0:
            # 1.0 is legal: the bad state is transient (it exits with
            # p_b2g), so total in-burst loss cannot silence a link
            # forever the way a Bernoulli rate of 1.0 would.
            raise NetworkError(
                f"p_bad must be in [0, 1]: {p_bad!r}")
        self._p_g2b = p_g2b
        self._p_b2g = p_b2g
        self._p_good = p_good
        self._p_bad = p_bad
        self._rng = rng
        #: Directed pair -> True while the link is in the bad state.
        self._bad: dict[tuple[int, int], bool] = {}

    def drop(self, sender: int, receiver: int, now: float) -> bool:
        key = (sender, receiver)
        bad = self._bad.get(key, False)
        rng = self._rng
        if bad:
            if rng.random() < self._p_b2g:
                bad = False
        else:
            if rng.random() < self._p_g2b:
                bad = True
        self._bad[key] = bad
        p = self._p_bad if bad else self._p_good
        if p == 0.0:
            return False
        return rng.random() < p


#: Loss-spec kinds accepted by :func:`build_loss_model`.
LOSS_KINDS = ("bernoulli", "burst")


def validate_loss_spec(spec: dict) -> None:
    """Eagerly validate a loss-spec dict (raises :class:`ConfigError`).

    The spec shape is ``{"kind": ..., **kwargs}`` with kinds
    ``"bernoulli"`` (kwarg ``rate``) and ``"burst"`` (kwargs ``p_g2b``,
    ``p_b2g``, ``p_bad``, optional ``p_good``).  Called by
    ``Scenario.build()`` so malformed specs fail before any sweep cell
    is dispatched.
    """
    if not isinstance(spec, dict):
        raise ConfigError(f"loss spec must be a dict: {spec!r}")
    kind = spec.get("kind")
    if kind not in LOSS_KINDS:
        raise ConfigError(
            f"unknown loss kind {kind!r}; known: {list(LOSS_KINDS)}")
    try:
        # Building against a throwaway derived stream runs the
        # constructors' argument checks without consuming any real
        # stream (the trial model is discarded, so the label never
        # collides with live draws).
        build_loss_model(
            spec, random.Random(derive_seed(0, "net/loss-validate")))
    except NetworkError as exc:
        raise ConfigError(f"bad loss spec {spec!r}: {exc}") from exc
    except TypeError as exc:
        raise ConfigError(f"bad loss spec {spec!r}: {exc}") from exc


def build_loss_model(spec: dict, rng: random.Random) -> LossModel:
    """Instantiate the loss model described by ``spec``.

    ``rng`` must be a dedicated stream (the builders derive it as
    ``derive_seed(seed, "net/loss")``) so loss draws never perturb
    delay or fault streams.
    """
    kind = spec.get("kind")
    kwargs = {k: v for k, v in spec.items() if k != "kind"}
    if kind == "bernoulli":
        return BernoulliLoss(rng=rng, **kwargs)
    if kind == "burst":
        return BurstLoss(rng=rng, **kwargs)
    raise ConfigError(
        f"unknown loss kind {kind!r}; known: {list(LOSS_KINDS)}")


__all__ = [
    "LOSS_KINDS",
    "BernoulliLoss",
    "BurstLoss",
    "LossModel",
    "NoLoss",
    "build_loss_model",
    "validate_loss_spec",
]
