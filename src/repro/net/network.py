"""The message-passing network.

:class:`Network` owns the link set of the augmented graph and delivers
messages with per-link delays drawn from :class:`~repro.net.delays.
DelayModel` instances.  Every delay is validated against the model
envelope ``[d - U, d]`` — the paper's adversary controls *which* delay
a message experiences but only within the envelope; nodes (not links)
are the Byzantine entities.

Byzantine node power is expressed through the sending API:

* honest nodes call :meth:`Network.broadcast`, which delivers one copy
  to every neighbor with independent delay draws;
* Byzantine nodes may call :meth:`Network.send` per neighbor (no
  broadcast obligation — "they are not required to communicate by
  broadcast") and may pick the exact delay within the envelope via
  :meth:`Network.send_with_delay`.

Dynamic topologies
------------------
Links can be *deactivated* and re-activated mid-run
(:meth:`Network.set_link_active`), which is how
:class:`~repro.topology.schedule.TopologySchedule` events reach the
wire: a down link silently carries nothing (sends are dropped,
broadcasts skip it) while the structural link set — and therefore
:meth:`neighbors` — is unchanged.  Messages already in flight when a
link goes down still deliver (the packet left the sender while the
link was up).  Static runs never populate the inactive set, so the
hot paths stay byte-identical to the static-only implementation.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.errors import NetworkError
from repro.net.delays import DelayModel, UniformDelay
from repro.sim.kernel import Simulator

#: Numeric slack when validating drawn delays against [d-U, d].
_ENVELOPE_TOL = 1e-9

#: A message handler: ``handler(message, receive_time)``.
Handler = Callable[[Any, float], None]


class Network:
    """Point-to-point network over an explicit link set.

    Parameters
    ----------
    sim:
        The simulation kernel.
    d, u:
        Maximum delay and delay uncertainty; all deliveries take time
        in ``[d - u, d]``.
    default_delay_model:
        Model used by links that do not override it.  ``None`` means
        links must each specify their own model.
    """

    def __init__(self, sim: Simulator, d: float, u: float,
                 default_delay_model: DelayModel | None = None) -> None:
        if d <= 0:
            raise NetworkError(f"d must be positive: {d!r}")
        if not 0 <= u <= d:
            raise NetworkError(f"need 0 <= U <= d: U={u!r}, d={d!r}")
        self._sim = sim
        self._d = d
        self._u = u
        self._default_model = default_delay_model
        self._handlers: dict[int, Handler] = {}
        self._adjacency: dict[int, list[int]] = {}
        self._link_models: dict[tuple[int, int], DelayModel] = {}
        #: Directed pairs currently down (both directions are stored,
        #: so membership tests need no normalization).  Empty for
        #: static topologies — the common case the hot paths check
        #: with one falsy test.
        self._inactive: set[tuple[int, int]] = set()
        self.messages_sent = 0
        self.messages_delivered = 0
        self.messages_dropped = 0

    # ------------------------------------------------------------------
    # Topology construction
    # ------------------------------------------------------------------

    @property
    def d(self) -> float:
        return self._d

    @property
    def u(self) -> float:
        return self._u

    def add_node(self, node_id: int,
                 handler: Handler | None = None) -> None:
        """Register a node; ``handler`` may be attached later."""
        if node_id in self._adjacency:
            raise NetworkError(f"duplicate node id: {node_id!r}")
        self._adjacency[node_id] = []
        if handler is not None:
            self._handlers[node_id] = handler

    def set_handler(self, node_id: int, handler: Handler) -> None:
        """Attach or replace the message handler of ``node_id``."""
        if node_id not in self._adjacency:
            raise NetworkError(f"unknown node: {node_id!r}")
        self._handlers[node_id] = handler

    def add_link(self, a: int, b: int,
                 delay_model: DelayModel | None = None) -> None:
        """Add the undirected link ``{a, b}``."""
        if a == b:
            raise NetworkError(f"self-links are not allowed: {a!r}")
        for end in (a, b):
            if end not in self._adjacency:
                raise NetworkError(f"unknown node: {end!r}")
        if b in self._adjacency[a]:
            raise NetworkError(f"duplicate link: {{{a!r}, {b!r}}}")
        self._adjacency[a].append(b)
        self._adjacency[b].append(a)
        if delay_model is not None:
            self._link_models[(a, b)] = delay_model
            self._link_models[(b, a)] = delay_model

    def set_link_delay_model(self, a: int, b: int, model: DelayModel,
                             direction: str = "both") -> None:
        """Override the delay model of an existing link.

        ``direction`` is ``"both"``, ``"ab"`` (messages a→b only) or
        ``"ba"``.
        """
        if b not in self._adjacency.get(a, ()):
            raise NetworkError(f"no such link: {{{a!r}, {b!r}}}")
        if direction not in ("both", "ab", "ba"):
            raise NetworkError(f"bad direction: {direction!r}")
        if direction in ("both", "ab"):
            self._link_models[(a, b)] = model
        if direction in ("both", "ba"):
            self._link_models[(b, a)] = model

    def neighbors(self, node_id: int) -> tuple[int, ...]:
        """Neighbors of ``node_id`` in deterministic insertion order."""
        try:
            return tuple(self._adjacency[node_id])
        except KeyError:
            raise NetworkError(f"unknown node: {node_id!r}") from None

    def has_link(self, a: int, b: int) -> bool:
        return b in self._adjacency.get(a, ())

    def set_link_active(self, a: int, b: int, active: bool) -> None:
        """Activate or deactivate the existing link ``{a, b}``.

        Deactivation is a *transmission* state, not a structural one:
        the link (and delay model) stays registered, but sends are
        dropped and broadcasts skip it until re-activation.
        Idempotent in both directions.
        """
        if b not in self._adjacency.get(a, ()):
            raise NetworkError(f"no such link: {{{a!r}, {b!r}}}")
        if active:
            self._inactive.discard((a, b))
            self._inactive.discard((b, a))
        else:
            self._inactive.add((a, b))
            self._inactive.add((b, a))

    def link_active(self, a: int, b: int) -> bool:
        """Whether the existing link ``{a, b}`` currently carries
        messages."""
        if b not in self._adjacency.get(a, ()):
            raise NetworkError(f"no such link: {{{a!r}, {b!r}}}")
        return (a, b) not in self._inactive

    def node_ids(self) -> tuple[int, ...]:
        return tuple(self._adjacency)

    # ------------------------------------------------------------------
    # Messaging
    # ------------------------------------------------------------------

    def _model_for(self, sender: int, receiver: int) -> DelayModel:
        model = self._link_models.get((sender, receiver))
        if model is None:
            model = self._default_model
        if model is None:
            raise NetworkError(
                f"link ({sender!r}, {receiver!r}) has no delay model and "
                f"no network default is set")
        return model

    def _validate_delay(self, delay: float) -> None:
        low = self._d - self._u - _ENVELOPE_TOL
        high = self._d + _ENVELOPE_TOL
        if not low <= delay <= high:
            raise NetworkError(
                f"delay {delay!r} outside envelope [{self._d - self._u!r}, "
                f"{self._d!r}]")

    def send(self, sender: int, receiver: int, message: Any) -> None:
        """Unicast ``message`` with a model-drawn delay.

        A deactivated link drops the message silently (counted in
        ``messages_dropped``): the sender cannot observe a down link.
        """
        if receiver not in self._adjacency.get(sender, ()):
            raise NetworkError(
                f"{sender!r} is not adjacent to {receiver!r}")
        if self._inactive and (sender, receiver) in self._inactive:
            self.messages_dropped += 1
            return
        delay = self._model_for(sender, receiver).draw(
            sender, receiver, self._sim.now)
        self._validate_delay(delay)
        self.messages_sent += 1
        self._sim.call_in(delay, self._deliver, receiver, message)

    def send_with_delay(self, sender: int, receiver: int, message: Any,
                        delay: float) -> None:
        """Unicast with an explicitly chosen delay (adversary API).

        The delay must still lie in ``[d - U, d]``: Byzantine nodes
        control *when* and *what* they send, but physics still applies
        to the wire.
        """
        if receiver not in self._adjacency.get(sender, ()):
            raise NetworkError(
                f"{sender!r} is not adjacent to {receiver!r}")
        if self._inactive and (sender, receiver) in self._inactive:
            self.messages_dropped += 1
            return
        self._validate_delay(delay)
        self.messages_sent += 1
        self._sim.call_in(delay, self._deliver, receiver, message)

    def broadcast(self, sender: int, message: Any) -> int:
        """Send ``message`` to every neighbor; returns the copy count.

        Each copy experiences an independent delay draw, matching the
        model: "when a (correct) node broadcasts a pulse, all of its
        neighbors receive the pulse after some delay, which is itself
        subject to some uncertainty".
        """
        neighbors = self._adjacency.get(sender)
        if neighbors is None:
            raise NetworkError(f"unknown node: {sender!r}")
        now = self._sim.now
        inactive = self._inactive
        copies = 0
        for receiver in neighbors:
            if inactive and (sender, receiver) in inactive:
                self.messages_dropped += 1
                continue
            delay = self._model_for(sender, receiver).draw(
                sender, receiver, now)
            self._validate_delay(delay)
            self.messages_sent += 1
            self._sim.call_in(delay, self._deliver, receiver, message)
            copies += 1
        return copies

    def _deliver(self, receiver: int, message: Any) -> None:
        handler = self._handlers.get(receiver)
        self.messages_delivered += 1
        if handler is not None:
            handler(message, self._sim.now)


def uniform_network(sim: Simulator, d: float, u: float,
                    rng_stream) -> Network:
    """Convenience: a network whose default model is i.i.d. uniform."""
    return Network(sim, d, u,
                   default_delay_model=UniformDelay(d, u, rng_stream))
