"""The message-passing network.

:class:`Network` owns the link set of the augmented graph and delivers
messages with per-link delays drawn from :class:`~repro.net.delays.
DelayModel` instances.  Every delay is validated against the model
envelope ``[d - U, d]`` — the paper's adversary controls *which* delay
a message experiences but only within the envelope; nodes (not links)
are the Byzantine entities.

Byzantine node power is expressed through the sending API:

* honest nodes call :meth:`Network.broadcast`, which delivers one copy
  to every neighbor with independent delay draws;
* Byzantine nodes may call :meth:`Network.send` per neighbor (no
  broadcast obligation — "they are not required to communicate by
  broadcast") and may pick the exact delay within the envelope via
  :meth:`Network.send_with_delay`.

Dynamic topologies
------------------
Links can be *deactivated* and re-activated mid-run
(:meth:`Network.set_link_active`), which is how
:class:`~repro.topology.schedule.TopologySchedule` events reach the
wire: a down link silently carries nothing (sends are dropped,
broadcasts skip it) while the structural link set — and therefore
:meth:`neighbors` — is unchanged.  Messages already in flight when a
link goes down still deliver (the packet left the sender while the
link was up), unless the deactivation asked for in-flight quarantine
(``set_link_active(..., drop_in_flight=True)`` — the crashed-node
semantics, where queued deliveries die with the node).  Static runs
never populate the inactive set, so the hot paths stay byte-identical
to the static-only implementation.

Fault injection (lossy links, out-of-model delays)
--------------------------------------------------
A :class:`~repro.net.loss.LossModel` attached via
:meth:`Network.set_loss_model` may eat messages on otherwise-active
links.  The loss decision happens *before* the delay draw, from the
loss model's own seeded stream, so attaching (or detaching) a loss
model never perturbs delay streams — a run without one is
byte-identical to a run built before loss existed.  Drops are
accounted by cause: ``dropped_link_down`` (deactivated link),
``dropped_loss`` (loss model), ``dropped_in_flight`` (quarantined by a
``drop_in_flight`` deactivation); the legacy ``messages_dropped`` name
remains as their sum.

Delay models declaring ``in_model = False`` (e.g.
:class:`~repro.net.delays.ParetoDelay` with the ``"exceed"`` policy)
bypass the ``[d - U, d]`` envelope check — only non-negativity is
enforced — so experiments can measure degradation under heavy-tailed
delays.  See :mod:`repro.net.delays` for the documented out-of-model
policy.

Batched delivery (the default fast path)
----------------------------------------
In-flight messages dominate the event population of large runs (at
diameter 64 they outnumber every alarm and sampler event combined), so
by default the network does **not** allocate one kernel event per
message.  Instead every send pushes a plain ``(time, seq, receiver,
message)`` tuple onto an internal delivery heap — with ``seq`` drawn
from the *kernel's* sequence counter, exactly the number the legacy
per-message event would have carried — and a single *flush* event,
co-keyed with the earliest pending delivery, wakes the network up.
One wake-up then drains every consecutively-due delivery (all entries
whose ``(time, seq)`` key precedes the kernel's next queued event and
the current run horizon), advancing ``sim.now`` per entry.

Because seq allocation, delivery times, and the position of every
delivery relative to every other kernel event are all unchanged,
handler execution order is **bit-identical** to the legacy
one-event-per-message stream; only ``Simulator.events_processed``
shrinks (one flush per batch instead of one event per message).
``batched=False`` restores the legacy stream for A/B measurements
(``SystemConfig.batched_delivery`` surfaces the knob on the FTGCS
family).
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from typing import Any, Callable

from repro.errors import NetworkError
from repro.net.delays import DelayModel, UniformDelay
from repro.net.loss import LossModel
from repro.sim.kernel import Simulator

#: Numeric slack when validating drawn delays against [d-U, d].
_ENVELOPE_TOL = 1e-9

#: A message handler: ``handler(message, receive_time)``.
Handler = Callable[[Any, float], None]


class Network:
    """Point-to-point network over an explicit link set.

    Parameters
    ----------
    sim:
        The simulation kernel.
    d, u:
        Maximum delay and delay uncertainty; all deliveries take time
        in ``[d - u, d]``.
    default_delay_model:
        Model used by links that do not override it.  ``None`` means
        links must each specify their own model.
    batched:
        Deliver through the batched fast path (module docstring).
        ``False`` restores the legacy one-kernel-event-per-message
        stream; handler execution order is bit-identical either way.
    """

    def __init__(self, sim: Simulator, d: float, u: float,
                 default_delay_model: DelayModel | None = None,
                 batched: bool = True) -> None:
        if d <= 0:
            raise NetworkError(f"d must be positive: {d!r}")
        if not 0 <= u <= d:
            raise NetworkError(f"need 0 <= U <= d: U={u!r}, d={d!r}")
        self._sim = sim
        self._d = d
        self._u = u
        self._default_model = default_delay_model
        self._handlers: dict[int, Handler] = {}
        self._adjacency: dict[int, list[int]] = {}
        self._link_models: dict[tuple[int, int], DelayModel] = {}
        #: Directed pairs currently down (both directions are stored,
        #: so membership tests need no normalization).  Empty for
        #: static topologies — the common case the hot paths check
        #: with one falsy test.
        self._inactive: set[tuple[int, int]] = set()
        self.batched = bool(batched)
        #: Pending ``(time, seq, receiver, message, sender)``
        #: deliveries (batched mode); ``seq`` comes from the kernel's
        #: counter so ordering against kernel events matches the
        #: legacy stream.
        self._pending: list[tuple[float, int, int, Any, int]] = []
        #: ``(time, seq)`` of the earliest armed flush event, or
        #: ``None``.  Invariant: whenever ``_pending`` is non-empty
        #: (and no drain is active), a flush is armed at a key <= the
        #: head entry's key.
        self._flush_key: tuple[float, int] | None = None
        #: True while :meth:`_flush` drains; sends occurring inside a
        #: drain skip arming (the drain re-arms once at its end).
        self._draining = False
        #: Stable bound-method reference: wake-ups are always armed
        #: with this exact object so the drain can recognize (and
        #: absorb) this network's own events by identity.
        self._flush_cb = self._flush
        #: Message-loss model on active links, or ``None`` (reliable
        #: wire).  ``None`` keeps the hot paths on one falsy test.
        self._loss: LossModel | None = None
        self.messages_sent = 0
        self.messages_delivered = 0
        #: Drops by cause; ``messages_dropped`` (property) is the sum.
        self.dropped_link_down = 0
        self.dropped_loss = 0
        self.dropped_in_flight = 0

    # ------------------------------------------------------------------
    # Topology construction
    # ------------------------------------------------------------------

    @property
    def d(self) -> float:
        return self._d

    @property
    def u(self) -> float:
        return self._u

    @property
    def messages_dropped(self) -> int:
        """Total drops, all causes (the pre-split legacy counter)."""
        return (self.dropped_link_down + self.dropped_loss
                + self.dropped_in_flight)

    def set_loss_model(self, model: LossModel | None) -> None:
        """Attach (or clear) the message-loss model.

        The model applies to every active link; it is consulted before
        the delay draw, so it must own a dedicated RNG stream (the
        builders derive ``"net/loss"``) to keep delay streams
        untouched.
        """
        if model is not None and not isinstance(model, LossModel):
            raise NetworkError(
                f"loss model must be a LossModel: {model!r}")
        self._loss = model

    def add_node(self, node_id: int,
                 handler: Handler | None = None) -> None:
        """Register a node; ``handler`` may be attached later."""
        if node_id in self._adjacency:
            raise NetworkError(f"duplicate node id: {node_id!r}")
        self._adjacency[node_id] = []
        if handler is not None:
            self._handlers[node_id] = handler

    def set_handler(self, node_id: int, handler: Handler) -> None:
        """Attach or replace the message handler of ``node_id``."""
        if node_id not in self._adjacency:
            raise NetworkError(f"unknown node: {node_id!r}")
        self._handlers[node_id] = handler

    def add_link(self, a: int, b: int,
                 delay_model: DelayModel | None = None) -> None:
        """Add the undirected link ``{a, b}``."""
        if a == b:
            raise NetworkError(f"self-links are not allowed: {a!r}")
        for end in (a, b):
            if end not in self._adjacency:
                raise NetworkError(f"unknown node: {end!r}")
        if b in self._adjacency[a]:
            raise NetworkError(f"duplicate link: {{{a!r}, {b!r}}}")
        self._adjacency[a].append(b)
        self._adjacency[b].append(a)
        if delay_model is not None:
            self._link_models[(a, b)] = delay_model
            self._link_models[(b, a)] = delay_model

    def set_link_delay_model(self, a: int, b: int, model: DelayModel,
                             direction: str = "both") -> None:
        """Override the delay model of an existing link.

        ``direction`` is ``"both"``, ``"ab"`` (messages a→b only) or
        ``"ba"``.
        """
        if b not in self._adjacency.get(a, ()):
            raise NetworkError(f"no such link: {{{a!r}, {b!r}}}")
        if direction not in ("both", "ab", "ba"):
            raise NetworkError(f"bad direction: {direction!r}")
        if direction in ("both", "ab"):
            self._link_models[(a, b)] = model
        if direction in ("both", "ba"):
            self._link_models[(b, a)] = model

    def neighbors(self, node_id: int) -> tuple[int, ...]:
        """Neighbors of ``node_id`` in deterministic insertion order."""
        try:
            return tuple(self._adjacency[node_id])
        except KeyError:
            raise NetworkError(f"unknown node: {node_id!r}") from None

    def has_link(self, a: int, b: int) -> bool:
        return b in self._adjacency.get(a, ())

    def set_link_active(self, a: int, b: int, active: bool,
                        drop_in_flight: bool = False) -> None:
        """Activate or deactivate the existing link ``{a, b}``.

        Deactivation is a *transmission* state, not a structural one:
        the link (and delay model) stays registered, but sends are
        dropped and broadcasts skip it until re-activation.
        Idempotent in both directions.

        By default messages already in flight still deliver (the
        packet left the sender while the link was up).
        ``drop_in_flight=True`` additionally quarantines every queued
        delivery on the link (both directions) — the crashed-node
        semantics, where the receiver's queue dies with it.  Counted
        in ``dropped_in_flight``.
        """
        if b not in self._adjacency.get(a, ()):
            raise NetworkError(f"no such link: {{{a!r}, {b!r}}}")
        if active:
            self._inactive.discard((a, b))
            self._inactive.discard((b, a))
        else:
            self._inactive.add((a, b))
            self._inactive.add((b, a))
            if drop_in_flight:
                self._quarantine_in_flight(((a, b), (b, a)))

    def _quarantine_in_flight(
            self, pairs: tuple[tuple[int, int], ...]) -> None:
        """Drop queued deliveries traversing the directed ``pairs``.

        Batched mode filters the delivery heap; legacy mode lazily
        cancels the matching per-message kernel events.  Neither path
        perturbs sequence allocation, so the surviving deliveries keep
        their exact legacy ordering.
        """
        dropped = 0
        directed = set(pairs)
        if self._pending:
            kept = [entry for entry in self._pending
                    if (entry[4], entry[2]) not in directed]
            dropped += len(self._pending) - len(kept)
            if dropped:
                heapify(kept)
                self._pending = kept
        # Legacy per-message events (and any scheduled before a
        # batched-mode switch): cancel without reordering survivors.
        # NB: ``==``, not ``is`` — every ``self._deliver`` access makes
        # a fresh bound-method object; they compare equal, never
        # identical.
        deliver = self._deliver
        for _, _, event in self._sim._queue._heap:
            if (event.callback == deliver and not event.cancelled
                    and not event.fired):
                args = event.args
                if len(args) >= 3 and (args[2], args[0]) in directed:
                    self._sim.cancel(event)
                    dropped += 1
        self.dropped_in_flight += dropped

    def link_active(self, a: int, b: int) -> bool:
        """Whether the existing link ``{a, b}`` currently carries
        messages."""
        if b not in self._adjacency.get(a, ()):
            raise NetworkError(f"no such link: {{{a!r}, {b!r}}}")
        return (a, b) not in self._inactive

    def node_ids(self) -> tuple[int, ...]:
        return tuple(self._adjacency)

    # ------------------------------------------------------------------
    # Messaging
    # ------------------------------------------------------------------

    def _model_for(self, sender: int, receiver: int) -> DelayModel:
        model = self._link_models.get((sender, receiver))
        if model is None:
            model = self._default_model
        if model is None:
            raise NetworkError(
                f"link ({sender!r}, {receiver!r}) has no delay model and "
                f"no network default is set")
        return model

    def _validate_delay(self, delay: float) -> None:
        low = self._d - self._u - _ENVELOPE_TOL
        high = self._d + _ENVELOPE_TOL
        if not low <= delay <= high:
            raise NetworkError(
                f"delay {delay!r} outside envelope [{self._d - self._u!r}, "
                f"{self._d!r}]")

    def _validate_drawn(self, model: DelayModel, delay: float) -> None:
        """Envelope-check a model draw; out-of-model models (fault
        injection) only need non-negativity."""
        if model.in_model:
            self._validate_delay(delay)
        elif delay < 0:
            raise NetworkError(
                f"delay must be non-negative: {delay!r}")

    def send(self, sender: int, receiver: int, message: Any) -> None:
        """Unicast ``message`` with a model-drawn delay.

        A deactivated link drops the message silently (counted in
        ``dropped_link_down``): the sender cannot observe a down link.
        An attached loss model may also eat it (``dropped_loss``) —
        decided before the delay draw, so the delay stream is
        loss-independent.
        """
        if receiver not in self._adjacency.get(sender, ()):
            raise NetworkError(
                f"{sender!r} is not adjacent to {receiver!r}")
        if self._inactive and (sender, receiver) in self._inactive:
            self.dropped_link_down += 1
            return
        if self._loss is not None and self._loss.drop(
                sender, receiver, self._sim.now):
            self.dropped_loss += 1
            return
        model = self._model_for(sender, receiver)
        delay = model.draw(sender, receiver, self._sim.now)
        self._validate_drawn(model, delay)
        self.messages_sent += 1
        if self.batched:
            self._schedule_delivery(delay, receiver, message, sender)
        else:
            self._sim.call_in(delay, self._deliver, receiver, message,
                              sender)

    def send_with_delay(self, sender: int, receiver: int, message: Any,
                        delay: float) -> None:
        """Unicast with an explicitly chosen delay (adversary API).

        The delay must still lie in ``[d - U, d]``: Byzantine nodes
        control *when* and *what* they send, but physics still applies
        to the wire — including an attached loss model, which eats
        Byzantine traffic with the same probability as honest traffic.
        """
        if receiver not in self._adjacency.get(sender, ()):
            raise NetworkError(
                f"{sender!r} is not adjacent to {receiver!r}")
        if self._inactive and (sender, receiver) in self._inactive:
            self.dropped_link_down += 1
            return
        if self._loss is not None and self._loss.drop(
                sender, receiver, self._sim.now):
            self.dropped_loss += 1
            return
        self._validate_delay(delay)
        self.messages_sent += 1
        if self.batched:
            self._schedule_delivery(delay, receiver, message, sender)
        else:
            self._sim.call_in(delay, self._deliver, receiver, message,
                              sender)

    def broadcast(self, sender: int, message: Any) -> int:
        """Send ``message`` to every neighbor; returns the copy count.

        Each copy experiences an independent delay draw, matching the
        model: "when a (correct) node broadcasts a pulse, all of its
        neighbors receive the pulse after some delay, which is itself
        subject to some uncertainty".
        """
        neighbors = self._adjacency.get(sender)
        if neighbors is None:
            raise NetworkError(f"unknown node: {sender!r}")
        now = self._sim.now
        inactive = self._inactive
        loss = self._loss
        batched = self.batched
        copies = 0
        for receiver in neighbors:
            if inactive and (sender, receiver) in inactive:
                self.dropped_link_down += 1
                continue
            if loss is not None and loss.drop(sender, receiver, now):
                self.dropped_loss += 1
                continue
            model = self._model_for(sender, receiver)
            delay = model.draw(sender, receiver, now)
            self._validate_drawn(model, delay)
            self.messages_sent += 1
            if batched:
                self._schedule_delivery(delay, receiver, message, sender)
            else:
                self._sim.call_in(delay, self._deliver, receiver,
                                  message, sender)
            copies += 1
        return copies

    @property
    def pending_deliveries(self) -> int:
        """In-flight messages not yet handed to a receiver.

        Batched mode: the delivery heap's size.  Legacy mode: always 0
        (per-message kernel events are not tracked here — use
        ``sim.pending_events``).
        """
        return len(self._pending)

    def _schedule_delivery(self, delay: float, receiver: int,
                           message: Any, sender: int) -> None:
        """Queue one delivery on the batched path.

        The entry takes the kernel sequence number the legacy
        per-message event would have consumed, so ordering against
        every other kernel event is unchanged; a flush wake-up is
        (re)armed whenever this entry becomes the earliest pending
        delivery.  ``sender`` rides along (heap keys are the first two
        elements, so ordering is untouched) purely for in-flight
        quarantine bookkeeping.
        """
        sim = self._sim
        now = sim._now
        time = now + delay
        if time < now:
            # A few-ulp negative draw inside the validation tolerance;
            # clamp exactly like Simulator.call_in would.
            time = now
        # Inlined Simulator.alloc_seq: this runs once per message.
        queue = sim._queue
        seq = queue._seq
        queue._seq = seq + 1
        heappush(self._pending, (time, seq, receiver, message, sender))
        if self._draining:
            # The active drain re-checks the pending head every step
            # and re-arms once at its end; arming here would only
            # churn wake-up events the drain immediately absorbs.
            return
        key = self._flush_key
        if key is None or time < key[0] or (time == key[0]
                                            and seq < key[1]):
            self._flush_key = (time, seq)
            sim.call_at_key(time, seq, self._flush_cb, time, seq)

    def _flush(self, time: float, seq: int) -> None:
        """Deliver every consecutively-due pending message (hot path).

        Fired by a kernel wake-up co-keyed with a delivery entry.  The
        drain hands over every pending entry whose ``(time, seq)`` key
        precedes both the kernel's next *foreign* queued event and the
        active run horizon — exactly the entries the legacy stream
        would have fired as individual events before the kernel got to
        do anything else — advancing ``sim.now`` to each entry's own
        due time.  The network's own not-yet-fired wake-up events (and
        lazily-cancelled entries) at the kernel head are absorbed
        rather than treated as drain boundaries, so a delivery-bound
        workload drains in one wake-up per foreign-event gap instead
        of one per arm.
        """
        if self._flush_key is not None and self._flush_key[0] == time \
                and self._flush_key[1] == seq:
            self._flush_key = None
        sim = self._sim
        queue = sim._queue
        pending = self._pending
        handlers_get = self._handlers.get
        kernel_heap = queue._heap
        horizon = sim._horizon
        budget = sim._batch_budget
        heappop_ = heappop
        flush_cb = self._flush_cb
        flush_key = self._flush_key
        delivered = 0
        self._draining = True
        try:
            while pending:
                if delivered >= budget:
                    # run_until_idle(max_events=...) budget spent mid
                    # drain: hand control back so the kernel's
                    # runaway-loop guard can fire (the re-arm below
                    # keeps the remaining entries schedulable).
                    break
                head = pending[0]
                t = head[0]
                if t > horizon:
                    break
                while kernel_heap:
                    k = kernel_heap[0]
                    event = k[2]
                    if event.cancelled:
                        # The kernel loop would skip it anyway.
                        heappop_(kernel_heap)
                        continue
                    if event.callback is flush_cb:
                        # One of our own wake-ups: absorb it into this
                        # drain instead of bouncing through the kernel.
                        heappop_(kernel_heap)
                        event.fired = True
                        queue._live -= 1
                        if flush_key is not None and k[0] == flush_key[0] \
                                and k[1] == flush_key[1]:
                            flush_key = None
                        continue
                    break
                if kernel_heap:
                    k = kernel_heap[0]
                    if t > k[0] or (t == k[0] and head[1] > k[1]):
                        break
                heappop_(pending)
                # Monotonic by heap order (every entry key is >= the
                # flush key that woke us); assigning directly skips a
                # method call per message.
                sim._now = t
                delivered += 1
                # Counted before the handler runs, like the legacy
                # per-message path: handlers reading the public
                # counter mid-run see identical values either way.
                self.messages_delivered += 1
                handler = handlers_get(head[2])
                if handler is not None:
                    handler(head[3], t)
        finally:
            self._draining = False
            self._flush_key = flush_key
            sim._batch_budget = budget - delivered
            if pending:
                head = pending[0]
                if flush_key is None or head[0] < flush_key[0] \
                        or (head[0] == flush_key[0]
                            and head[1] < flush_key[1]):
                    self._flush_key = (head[0], head[1])
                    sim.call_at_key(head[0], head[1], self._flush_cb,
                                    head[0], head[1])

    def _deliver(self, receiver: int, message: Any,
                 sender: int | None = None) -> None:
        """Legacy per-message kernel-event delivery (``batched=False``).

        ``sender`` is carried in the event args only so in-flight
        quarantine can identify the link; delivery ignores it.
        """
        handler = self._handlers.get(receiver)
        self.messages_delivered += 1
        if handler is not None:
            handler(message, self._sim.now)


def uniform_network(sim: Simulator, d: float, u: float,
                    rng_stream) -> Network:
    """Convenience: a network whose default model is i.i.d. uniform."""
    return Network(sim, d, u,
                   default_delay_model=UniformDelay(d, u, rng_stream))
