"""Network substrate: messages, delay models, point-to-point delivery."""

from repro.net.delays import (
    BiasedDelay,
    DelayModel,
    ExtremalDelay,
    FixedDelay,
    PolicyDelay,
    UniformDelay,
)
from repro.net.message import Pulse, PulseKind, ValueMessage
from repro.net.network import Network, uniform_network

__all__ = [
    "BiasedDelay",
    "DelayModel",
    "ExtremalDelay",
    "FixedDelay",
    "PolicyDelay",
    "UniformDelay",
    "Pulse",
    "PulseKind",
    "ValueMessage",
    "Network",
    "uniform_network",
]
