"""Fault placement policies.

The model fixes a set ``F`` of faulty nodes with at most ``f`` per
cluster.  These helpers build the ``{node_id: strategy}`` maps that
:class:`~repro.core.system.SystemConfig` consumes.
"""

from __future__ import annotations

import random
from typing import Callable

from repro.errors import ConfigError
from repro.faults.strategies import ByzantineStrategy
from repro.topology.cluster_graph import AugmentedGraph

#: Builds a fresh strategy for a node id (strategies are stateful).
StrategyFactory = Callable[[int], ByzantineStrategy]


def place_in_clusters(graph: AugmentedGraph, clusters: list[int],
                      per_cluster: int, factory: StrategyFactory,
                      rng: random.Random | None = None,
                      pick: str = "first"
                      ) -> dict[int, ByzantineStrategy]:
    """Make ``per_cluster`` nodes faulty in each listed cluster.

    ``pick`` selects which members: ``"first"`` (deterministic: lowest
    ids) or ``"random"`` (requires ``rng``).
    """
    if per_cluster < 0:
        raise ConfigError(f"per_cluster must be >= 0: {per_cluster!r}")
    if pick not in ("first", "random"):
        raise ConfigError(f"pick must be 'first' or 'random': {pick!r}")
    if pick == "random" and rng is None:
        raise ConfigError("pick='random' requires an rng")
    result: dict[int, ByzantineStrategy] = {}
    for cluster in clusters:
        members = list(graph.members(cluster))
        if per_cluster > len(members):
            raise ConfigError(
                f"cluster {cluster} has only {len(members)} members, "
                f"cannot make {per_cluster} faulty")
        if pick == "random":
            chosen = rng.sample(members, per_cluster)
        else:
            chosen = members[:per_cluster]
        for node_id in chosen:
            result[node_id] = factory(node_id)
    return result


def place_everywhere(graph: AugmentedGraph, per_cluster: int,
                     factory: StrategyFactory,
                     rng: random.Random | None = None,
                     pick: str = "first") -> dict[int, ByzantineStrategy]:
    """``per_cluster`` faults in *every* cluster — the worst allowed
    deterministic placement."""
    clusters = list(range(graph.cluster_graph.num_clusters))
    return place_in_clusters(graph, clusters, per_cluster, factory,
                             rng, pick)


def place_random_iid(graph: AugmentedGraph, p: float,
                     factory: StrategyFactory, rng: random.Random,
                     cap_per_cluster: int | None = None
                     ) -> dict[int, ByzantineStrategy]:
    """Each node fails independently with probability ``p``.

    This is the stochastic model behind Inequality (1).  When
    ``cap_per_cluster`` is given, clusters that would exceed the cap
    keep only that many faults (lowest ids kept faulty) — use ``None``
    to sample the uncapped model and *measure* budget violations.
    """
    if not 0.0 <= p <= 1.0:
        raise ConfigError(f"p must be a probability: {p!r}")
    result: dict[int, ByzantineStrategy] = {}
    for cluster in range(graph.cluster_graph.num_clusters):
        failed = [m for m in graph.members(cluster) if rng.random() < p]
        if cap_per_cluster is not None:
            failed = failed[:cap_per_cluster]
        for node_id in failed:
            result[node_id] = factory(node_id)
    return result


def count_by_cluster(graph: AugmentedGraph,
                     faulty: dict[int, ByzantineStrategy]
                     ) -> dict[int, int]:
    """Number of faulty nodes per cluster (validation/reporting)."""
    counts: dict[int, int] = {}
    for node_id in faulty:
        cluster = graph.cluster_of(node_id)
        counts[cluster] = counts.get(cluster, 0) + 1
    return counts
