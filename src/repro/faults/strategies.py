"""Byzantine fault strategies.

The paper's faulty nodes are "fully Byzantine: we make no assumptions
whatsoever about their behavior; in particular, they are not required
to communicate by broadcast."  A :class:`ByzantineStrategy` describes
one concrete adversarial behaviour; the system builder instantiates a
*driver* per faulty node.

Worst-case adversaries in proofs are existential; the gallery here
implements the attack shapes known to be strongest against clock
synchronization:

* :class:`SilentStrategy` — sends nothing (receivers must cope with
  missing samples every round).
* :class:`CrashStrategy` — honest until a given time, then dead
  (fail-stop; exercises the mid-run transition).
* :class:`RandomPulseStrategy` — pulse spam at random times, stressing
  round attribution and buffer bounds.
* :class:`FastClockStrategy` — runs the *honest protocol* on an
  out-of-spec oscillator (factor beyond ``1 + rho``); the classic
  "sub/super-nominal clock that cannot be proven faulty" from the
  introduction's impossibility discussion.
* :class:`EquivocatorStrategy` — the two-faced attack: sends each
  round's pulse *early* to one target group and *late* to another,
  maximizing disagreement among receivers; the trim-f midpoint is
  exactly the defense this probes.
* :class:`PullApartStrategy` — an equivocator whose early/late group
  assignment alternates over rounds, attempting to resonate with the
  correction loop.

Strategies whose behaviour is "honest protocol plus a twist" set
``wants_honest_node`` and receive a fully built
:class:`~repro.core.node.FtgcsNode` to corrupt; the rest implement
their own (much simpler) driver.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.clocks.logical import LogicalClock
from repro.clocks.rate_models import ConstantRate, RateModel
from repro.errors import ConfigError
from repro.net.message import Pulse, PulseKind

if TYPE_CHECKING:  # pragma: no cover
    from repro.clocks.hardware import HardwareClock
    from repro.core.node import FtgcsNode
    from repro.core.params import Parameters
    from repro.core.rounds import RoundSchedule
    from repro.net.network import Network
    from repro.sim.kernel import Simulator


@dataclass
class StrategyContext:
    """Everything a strategy may use to build its driver."""

    node_id: int
    cluster_id: int
    sim: "Simulator"
    network: "Network"
    params: "Parameters"
    schedule: "RoundSchedule"
    hardware: "HardwareClock"
    base: float
    cluster_members: tuple[int, ...]
    adjacent_members: dict[int, tuple[int, ...]]
    rng: random.Random
    honest_node: "FtgcsNode | None" = None

    def all_neighbors(self) -> tuple[int, ...]:
        peers = [m for m in self.cluster_members if m != self.node_id]
        for members in self.adjacent_members.values():
            peers.extend(members)
        return tuple(peers)


class ByzantineStrategy:
    """Base class; concrete strategies override :meth:`build`."""

    #: When True the system builds a normal honest node first and hands
    #: it to :meth:`build` via ``ctx.honest_node``.
    wants_honest_node = False

    def hardware_spec(self, params: "Parameters",
                      rng: random.Random
                      ) -> tuple[RateModel, bool] | None:
        """Override the node's hardware clock.

        Returns ``(rate_model, enforce_bounds)`` or ``None`` to accept
        the system default.  Returning ``enforce_bounds=False`` lets
        the clock violate the ``[1, 1+rho]`` envelope — the faulty-
        oscillator attack.
        """
        return None

    def build(self, ctx: StrategyContext):
        """Create and return the driver (any object with ``start()``)."""
        raise NotImplementedError

    def describe(self) -> str:
        return type(self).__name__


class _NullDriver:
    """Driver for strategies that take no actions at all."""

    def start(self) -> None:
        return None


class SilentStrategy(ByzantineStrategy):
    """Never sends anything; ignores everything."""

    def build(self, ctx: StrategyContext) -> _NullDriver:
        ctx.network.set_handler(ctx.node_id, lambda msg, t: None)
        return _NullDriver()


class CrashStrategy(ByzantineStrategy):
    """Run the honest protocol, then fail-stop at ``crash_time``."""

    wants_honest_node = True

    def __init__(self, crash_time: float) -> None:
        if crash_time < 0:
            raise ConfigError(f"crash_time must be >= 0: {crash_time!r}")
        self.crash_time = crash_time

    def build(self, ctx: StrategyContext) -> "_CrashDriver":
        if ctx.honest_node is None:
            raise ConfigError("CrashStrategy requires an honest node")
        return _CrashDriver(ctx.sim, ctx.honest_node, self.crash_time)

    def describe(self) -> str:
        return f"CrashStrategy(t={self.crash_time:g})"


class _CrashDriver:
    def __init__(self, sim: "Simulator", node: "FtgcsNode",
                 crash_time: float) -> None:
        self._sim = sim
        self._node = node
        self._crash_time = crash_time

    def start(self) -> None:
        self._sim.call_at(self._crash_time, self._node.crash)


class RandomPulseStrategy(ByzantineStrategy):
    """Broadcast SYNC pulses at exponential random intervals.

    ``pulses_per_round`` scales the intensity relative to the round
    length, so the attack automatically matches any parameter set.
    """

    def __init__(self, pulses_per_round: float = 3.0) -> None:
        if pulses_per_round <= 0:
            raise ConfigError(
                f"pulses_per_round must be positive: {pulses_per_round!r}")
        self.pulses_per_round = pulses_per_round

    def build(self, ctx: StrategyContext) -> "_RandomPulseDriver":
        ctx.network.set_handler(ctx.node_id, lambda msg, t: None)
        mean_gap = ctx.schedule.round_length(1) / self.pulses_per_round
        return _RandomPulseDriver(ctx, mean_gap)


class _RandomPulseDriver:
    def __init__(self, ctx: StrategyContext, mean_gap: float) -> None:
        self._ctx = ctx
        self._mean_gap = mean_gap

    def start(self) -> None:
        self._arm()

    def _arm(self) -> None:
        gap = self._ctx.rng.expovariate(1.0 / self._mean_gap)
        self._ctx.sim.call_in(gap, self._fire)

    def _fire(self) -> None:
        self._ctx.network.broadcast(
            self._ctx.node_id,
            Pulse(sender=self._ctx.node_id, kind=PulseKind.SYNC))
        self._arm()


class FastClockStrategy(ByzantineStrategy):
    """Honest protocol on an out-of-spec oscillator.

    ``speed_factor > 1`` runs faster than ``1 + rho`` allows;
    ``speed_factor < 1`` runs slower than ``1`` allows.  The node obeys
    the algorithm to the letter — only its physics lies.
    """

    wants_honest_node = True

    def __init__(self, speed_factor: float) -> None:
        if speed_factor <= 0:
            raise ConfigError(
                f"speed_factor must be positive: {speed_factor!r}")
        self.speed_factor = speed_factor

    def hardware_spec(self, params: "Parameters", rng: random.Random
                      ) -> tuple[RateModel, bool]:
        if self.speed_factor >= 1.0:
            rate = (1.0 + params.rho) * self.speed_factor
        else:
            rate = self.speed_factor
        return ConstantRate(rate), False

    def build(self, ctx: StrategyContext) -> _NullDriver:
        # The honest node does all the work; its clock is the attack.
        return _NullDriver()

    def describe(self) -> str:
        return f"FastClockStrategy(x{self.speed_factor:g})"


class EquivocatorStrategy(ByzantineStrategy):
    """Two-faced pulser: early pulses to one group, late to the other.

    The node follows the honest round schedule on its own logical clock
    (without corrections — it has no interest in agreeing), but at each
    round's pulse time it unicasts to every neighbor individually:
    *early* targets get the pulse ``spread`` logical time units before
    the honest pulse point, *late* targets the same amount after.

    ``spread`` defaults to the steady-state error ``E`` — large enough
    to matter, small enough to stay inside the plausible window (a
    grosser lie would land outside phase 2 and be trimmed or
    substituted anyway, weakening the attack).

    Group assignment: same-cluster peers split by id parity; entire
    adjacent clusters get early when their id is below the attacker's
    cluster id, late otherwise — sustained directional pressure that
    tries to stretch the intercluster gradient.
    """

    def __init__(self, spread: float | None = None) -> None:
        self.spread = spread

    def build(self, ctx: StrategyContext) -> "_EquivocatorDriver":
        ctx.network.set_handler(ctx.node_id, lambda msg, t: None)
        spread = self.spread
        if spread is None:
            spread = ctx.params.cap_e
        early, late = self._split_targets(ctx)
        return _EquivocatorDriver(ctx, spread, early, late,
                                  alternate=False)

    @staticmethod
    def _split_targets(ctx: StrategyContext
                       ) -> tuple[tuple[int, ...], tuple[int, ...]]:
        early: list[int] = []
        late: list[int] = []
        for m in ctx.cluster_members:
            if m == ctx.node_id:
                continue
            (early if m % 2 == 0 else late).append(m)
        for b_cluster, members in ctx.adjacent_members.items():
            bucket = early if b_cluster < ctx.cluster_id else late
            bucket.extend(members)
        return tuple(early), tuple(late)


class PullApartStrategy(EquivocatorStrategy):
    """Equivocator that swaps its early/late groups every round,
    attempting to resonate with the per-round correction loop."""

    def build(self, ctx: StrategyContext) -> "_EquivocatorDriver":
        ctx.network.set_handler(ctx.node_id, lambda msg, t: None)
        spread = self.spread
        if spread is None:
            spread = ctx.params.cap_e
        early, late = self._split_targets(ctx)
        return _EquivocatorDriver(ctx, spread, early, late,
                                  alternate=True)


class ColludingEquivocatorStrategy(EquivocatorStrategy):
    """Equivocators coordinating a single global push direction.

    Independent equivocators partially cancel (each picks groups from
    its own vantage point); colluders share one convention — *every*
    faulty node sends early to lower-indexed clusters and late to
    higher-indexed ones, and splits its own cluster the same way by
    node id.  This is the strongest coalition the model allows short of
    exceeding the per-cluster budget, and the hardest test for the
    trimmed-midpoint defense.
    """

    def build(self, ctx: StrategyContext) -> "_EquivocatorDriver":
        ctx.network.set_handler(ctx.node_id, lambda msg, t: None)
        spread = self.spread
        if spread is None:
            spread = ctx.params.cap_e
        early: list[int] = []
        late: list[int] = []
        cutoff = ctx.cluster_members[len(ctx.cluster_members) // 2]
        for m in ctx.cluster_members:
            if m == ctx.node_id:
                continue
            (early if m < cutoff else late).append(m)
        for b_cluster, members in ctx.adjacent_members.items():
            bucket = early if b_cluster < ctx.cluster_id else late
            bucket.extend(members)
        return _EquivocatorDriver(ctx, spread, tuple(early), tuple(late),
                                  alternate=False)


class _EquivocatorDriver:
    """Round-driven two-faced pulse sender."""

    def __init__(self, ctx: StrategyContext, spread: float,
                 early: tuple[int, ...], late: tuple[int, ...],
                 alternate: bool) -> None:
        self._ctx = ctx
        self._spread = spread
        self._early = early
        self._late = late
        self._alternate = alternate
        # Free-running logical clock at nominal honest rate; the
        # attacker stays plausibly in-schedule without correcting.
        self._clock = LogicalClock(
            ctx.sim, ctx.hardware, phi=ctx.params.phi, mu=ctx.params.mu,
            delta=1.0, gamma=0, initial_value=ctx.base,
            name=f"byz[{ctx.node_id}]")
        self._round = 1

    def start(self) -> None:
        self._arm_round(self._round)

    def _arm_round(self, r: int) -> None:
        sched = self._ctx.schedule
        pulse = self._ctx.base + sched.pulse_offset(r)
        early_at = max(pulse - self._spread,
                       self._ctx.base + sched.round_start(r))
        self._clock.at_value(early_at, self._send, r, True)
        self._clock.at_value(pulse + self._spread, self._send, r, False)
        self._clock.at_value(self._ctx.base + sched.round_start(r + 1),
                             self._next_round, r + 1)

    def _groups_for_round(self, r: int) -> tuple[tuple[int, ...],
                                                 tuple[int, ...]]:
        if self._alternate and r % 2 == 0:
            return self._late, self._early
        return self._early, self._late

    def _send(self, r: int, is_early: bool) -> None:
        early, late = self._groups_for_round(r)
        targets = early if is_early else late
        pulse = Pulse(sender=self._ctx.node_id, kind=PulseKind.SYNC,
                      debug_round=r)
        for target in targets:
            self._ctx.network.send(self._ctx.node_id, target, pulse)

    def _next_round(self, r: int) -> None:
        self._round = r
        self._arm_round(r)


#: Fault strategies addressable by name from picklable specs (the
#: sweep engine and the protocol builder both resolve through this).
STRATEGIES: "dict[str, type[ByzantineStrategy]]" = {
    "silent": SilentStrategy,
    "crash": CrashStrategy,
    "random_pulse": RandomPulseStrategy,
    "fast_clock": FastClockStrategy,
    "equivocate": EquivocatorStrategy,
    "pull_apart": PullApartStrategy,
    "collusion": ColludingEquivocatorStrategy,
}
