"""The engine-agnostic adversary layer.

The paper's fault model is Byzantine — up to ``f`` corrupted members
per cluster, no behavioural assumptions — but until this module the
implementation of that model was welded to the event kernel: a
:class:`~repro.faults.strategies.ByzantineStrategy` hooks per-message
handlers and therefore only exists where messages exist.  An
:class:`AdversaryModel` describes the *same* adversary one level up,
in terms both engines can realize:

observe / act phases
    Each round (vectorized engine) or each delivery (event kernel) the
    adversary first *observes* — a read-only view of public state —
    and then *acts* within its budget.  On the vectorized engine the
    act is literal: the model returns per-slot clock-estimate offsets
    and a keep/silence mask, applied as masked numpy writes into the
    struct-of-arrays round state.  On the event kernel the act phase
    is realized by the existing strategy drivers: the seven
    :data:`~repro.faults.strategies.STRATEGIES` classes *are* the
    per-delivery act implementations, re-homed here as event-side
    adapters behind the same names (legacy ``ScenarioSpec.strategy``
    specs resolve through :func:`resolve_strategy` and stay
    bit-identical, ``spec_hash`` included).

budget contract
    An adversary controls at most its fault budget (``count`` nodes —
    per-cluster ``f`` on the clique protocols) and may displace any
    clock estimate it emits by at most ``amplitude`` time units.  The
    runtimes *enforce* the contract: an act that touches a non-faulty
    slot, silences an honest sender, or exceeds the amplitude is
    rejected at runtime with a :class:`~repro.errors.ConfigError`
    naming the violation — a model cannot quietly cheat its way to an
    impressive skew.

adaptive models
    ``greedy`` picks, every round, the budget-feasible action
    maximizing a one-step lookahead of the honest local skew;
    ``random_restart`` evaluates a seeded batch of random
    budget-feasible actions and keeps the best.  Both need the
    lookahead closure the vectorized round models provide, so they are
    vectorized-only.  Randomness comes from ``vec/<protocol>/adv/*``
    seed streams — bit-reproducible across processes and pool sizes.

The registry :data:`ADVERSARIES` is the one name space:
``Scenario.adversarial("equivocate", ...)``,
``SystemBuilder.adversary(...)``, and ``ScenarioSpec.adversary`` all
resolve here, eagerly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import ConfigError
from repro.faults.strategies import STRATEGIES

#: Kwargs every adversary accepts (the budget knobs); model-specific
#: knobs are validated by each constructor.
_COMMON_KWARGS = ("amplitude", "count")


@dataclass(frozen=True)
class AdversaryBudget:
    """The enforced contract: how many nodes, how large a lie.

    ``amplitude`` caps the absolute clock-estimate displacement (time
    units) any controlled sender may apply; ``count`` is the number of
    controlled nodes (clique protocols additionally cap it at the
    parameter set's ``f``).
    """

    amplitude: float
    count: int


class AdversaryModel:
    """Base class: one adversary, realizable on one or both engines.

    Subclasses override the vectorized :meth:`act` /
    :meth:`act_pairs` hooks (graph and clique shapes respectively)
    and/or the event-side :meth:`event_strategy` mapping.  ``observe``
    defaults to a no-op; models that adapt to public state override
    it.
    """

    name = ""
    #: Realizable on the event kernel (via a strategy adapter or a
    #: protocol payload mechanism).
    supports_event = False
    #: Has a vectorized act implementation (masked numpy writes).
    supports_vectorized = False

    def __init__(self, *, amplitude: float | None = None,
                 count: int | None = None) -> None:
        if amplitude is not None and amplitude < 0:
            raise ConfigError(
                f"adversary amplitude must be >= 0: {amplitude!r}")
        if count is not None and count < 1:
            raise ConfigError(
                f"adversary count must be >= 1: {count!r}")
        self.amplitude = amplitude
        self.count = count

    # -- vectorized observe/act -----------------------------------------

    def observe(self, view: "ObserveView") -> None:
        """Read-only phase before each act; default no-op."""

    def act(self, view: "ActView") -> tuple[Any, Any]:
        """Graph-shaped act: return ``(offsets, keep)`` over slots.

        ``offsets`` is a float array over the CSR slots (additive
        displacement of the estimate seen at that slot; must be zero
        outside the faulty-sender slots and within ``±amplitude``),
        ``keep`` a bool array (``False`` silences the slot; honest
        slots must stay ``True``).
        """
        raise ConfigError(
            f"adversary {self.name!r} has no vectorized act() for "
            f"graph protocols; use the event engine")

    def act_pairs(self, view: "PairActView") -> tuple[Any, Any]:
        """Clique-shaped act: ``(offsets, keep)`` with ``offsets`` of
        shape ``(faulty, receivers)`` (per faulty-sender,
        per-correct-receiver arrival displacement) and ``keep`` of
        shape ``(faulty,)`` (``False``: that sender says nothing)."""
        raise ConfigError(
            f"adversary {self.name!r} has no vectorized act() for "
            f"clique protocols; use the event engine")

    # -- event-side realization -----------------------------------------

    def event_strategy(self) -> tuple[str, tuple] | None:
        """The FTGCS-family strategy realization ``(name, args)``, or
        ``None`` when the model has no per-delivery driver."""
        return None

    def spec(self) -> dict:
        """The model's resolved knobs, for counters and describe()."""
        out: dict[str, Any] = {"name": self.name}
        if self.amplitude is not None:
            out["amplitude"] = self.amplitude
        if self.count is not None:
            out["count"] = self.count
        return out

    def describe(self) -> str:
        knobs = ", ".join(f"{k}={v!r}" for k, v in self.spec().items()
                          if k != "name")
        return f"{type(self).__name__}({knobs})"


@dataclass
class ObserveView:
    """Public state an adversary may read before acting."""

    round_index: int
    #: Honest-only local (edge) skew after the previous round, or 0.0
    #: on the first round.
    honest_local_skew: float = 0.0


@dataclass
class ActView:
    """Inputs to a graph-shaped act (CSR slot space)."""

    round_index: int
    amplitude: float
    num_slots: int
    #: Bool over slots: the slot's *sender* is adversary-controlled.
    faulty_slots: Any
    #: Receiver node id per slot (``csr.row``).
    receivers: Any
    #: Sender node id per slot (``csr.indices``).
    senders: Any
    #: Seeded generator (``vec/<protocol>/adv/<model>`` stream).
    rng: Any
    #: One-step lookahead: ``evaluate(offsets, keep) -> honest local
    #: skew`` after this round under that action, or ``None`` when the
    #: round model provides no lookahead (static models never need it).
    evaluate: Callable[[Any, Any], float] | None = None


@dataclass
class PairActView:
    """Inputs to a clique-shaped act (faulty x receiver space)."""

    round_index: int
    amplitude: float
    #: Controlled node ids (the first ``count`` clique members).
    faulty_ids: Any
    #: Correct node ids (arrival columns, in order).
    receiver_ids: Any
    rng: Any
    evaluate: Callable[[Any, Any], float] | None = None


# ----------------------------------------------------------------------
# Static adversaries (the seven legacy strategy names)
# ----------------------------------------------------------------------

class SilentAdversary(AdversaryModel):
    """Controlled nodes say nothing at all.

    Event side: :class:`~repro.faults.strategies.SilentStrategy` on the
    FTGCS family; the ``silent_faults`` payload mechanism on
    Srikanth–Toueg (where silencing the first ``count`` members is the
    protocol's native fault knob).
    """

    name = "silent"
    supports_event = True
    supports_vectorized = True

    def act(self, view: ActView):
        import numpy as np

        return (np.zeros(view.num_slots), ~view.faulty_slots)

    def act_pairs(self, view: PairActView):
        import numpy as np

        fc = len(view.faulty_ids)
        return (np.zeros((fc, len(view.receiver_ids))),
                np.zeros(fc, dtype=bool))

    def event_strategy(self):
        return ("silent", ())


class CrashAdversary(AdversaryModel):
    """Honest until ``crash_time``, then fail-stop (event-only: the
    mid-run transition is inherently per-delivery state)."""

    name = "crash"
    supports_event = True

    def __init__(self, *, crash_time: float = 0.0, **kwargs) -> None:
        super().__init__(**kwargs)
        self.crash_time = crash_time

    def spec(self) -> dict:
        out = super().spec()
        out["crash_time"] = self.crash_time
        return out

    def event_strategy(self):
        return ("crash", (self.crash_time,))


class RandomPulseAdversary(AdversaryModel):
    """Amplitude-capped noise: each controlled estimate is displaced
    by an independent uniform draw in ``[-amplitude, +amplitude]``.

    Event side: :class:`~repro.faults.strategies.RandomPulseStrategy`
    (pulse spam at random times — the per-delivery analogue)."""

    name = "random_pulse"
    supports_event = True
    supports_vectorized = True

    def __init__(self, *, pulses_per_round: float | None = None,
                 **kwargs) -> None:
        super().__init__(**kwargs)
        self.pulses_per_round = pulses_per_round

    def act(self, view: ActView):
        import numpy as np

        offsets = np.zeros(view.num_slots)
        hits = int(view.faulty_slots.sum())
        if hits:
            offsets[view.faulty_slots] = view.rng.uniform(
                -view.amplitude, view.amplitude, hits)
        return offsets, np.ones(view.num_slots, dtype=bool)

    def act_pairs(self, view: PairActView):
        import numpy as np

        fc = len(view.faulty_ids)
        rc = len(view.receiver_ids)
        offsets = view.rng.uniform(-view.amplitude, view.amplitude,
                                   (fc, rc))
        return offsets, np.ones(fc, dtype=bool)

    def event_strategy(self):
        if self.pulses_per_round is not None:
            return ("random_pulse", (self.pulses_per_round,))
        return ("random_pulse", ())


class FastClockAdversary(AdversaryModel):
    """An out-of-spec oscillator, amplitude-capped.

    Vectorized act: the controlled clock appears progressively ahead —
    a ramp of ``amplitude * r / ramp_rounds`` capped at ``amplitude``
    (the displacement a faster-than-``1+rho`` clock accumulates before
    the lie saturates the plausible window).  Event side:
    :class:`~repro.faults.strategies.FastClockStrategy` with
    ``speed_factor``."""

    name = "fast_clock"
    supports_event = True
    supports_vectorized = True

    def __init__(self, *, speed_factor: float = 2.0,
                 ramp_rounds: int = 8, **kwargs) -> None:
        super().__init__(**kwargs)
        if speed_factor <= 0:
            raise ConfigError(
                f"speed_factor must be positive: {speed_factor!r}")
        if ramp_rounds < 1:
            raise ConfigError(
                f"ramp_rounds must be >= 1: {ramp_rounds!r}")
        self.speed_factor = speed_factor
        self.ramp_rounds = ramp_rounds

    def spec(self) -> dict:
        out = super().spec()
        out["speed_factor"] = self.speed_factor
        return out

    def _ramp(self, r: int, amplitude: float) -> float:
        return min(amplitude, amplitude * r / self.ramp_rounds)

    def act(self, view: ActView):
        import numpy as np

        offsets = np.where(view.faulty_slots,
                           self._ramp(view.round_index, view.amplitude),
                           0.0)
        return offsets, np.ones(view.num_slots, dtype=bool)

    def act_pairs(self, view: PairActView):
        import numpy as np

        fc = len(view.faulty_ids)
        rc = len(view.receiver_ids)
        # Arrival-time displacement: a fast clock proposes *early*.
        offsets = np.full((fc, rc),
                          -self._ramp(view.round_index, view.amplitude))
        return offsets, np.ones(fc, dtype=bool)

    def event_strategy(self):
        return ("fast_clock", (self.speed_factor,))


def _equivocate_signs(receivers, amplitude):
    """The two-faced split: even-id receivers see ``+amplitude``, odd
    see ``-amplitude`` (mirrors the event strategy's parity split)."""
    import numpy as np

    return np.where(receivers % 2 == 0, amplitude, -amplitude)


class EquivocateAdversary(AdversaryModel):
    """The two-faced attack: each controlled sender shows one group of
    receivers a clock ``amplitude`` ahead and the other ``amplitude``
    behind, maximizing disagreement.  Event side:
    :class:`~repro.faults.strategies.EquivocatorStrategy` (``spread``
    is the amplitude when given)."""

    name = "equivocate"
    supports_event = True
    supports_vectorized = True

    def act(self, view: ActView):
        import numpy as np

        offsets = np.where(
            view.faulty_slots,
            _equivocate_signs(view.receivers, view.amplitude), 0.0)
        return offsets, np.ones(view.num_slots, dtype=bool)

    def act_pairs(self, view: PairActView):
        import numpy as np

        fc = len(view.faulty_ids)
        signs = _equivocate_signs(view.receiver_ids, view.amplitude)
        return (np.broadcast_to(signs, (fc, len(view.receiver_ids))
                                ).copy(),
                np.ones(fc, dtype=bool))

    def event_strategy(self):
        if self.amplitude is not None:
            return ("equivocate", (self.amplitude,))
        return ("equivocate", ())


class PullApartAdversary(EquivocateAdversary):
    """Equivocation whose group assignment flips every round,
    attempting to resonate with the correction loop."""

    name = "pull_apart"

    def act(self, view: ActView):
        offsets, keep = super().act(view)
        if view.round_index % 2 == 0:
            offsets = -offsets
        return offsets, keep

    def act_pairs(self, view: PairActView):
        offsets, keep = super().act_pairs(view)
        if view.round_index % 2 == 0:
            offsets = -offsets
        return offsets, keep

    def event_strategy(self):
        if self.amplitude is not None:
            return ("pull_apart", (self.amplitude,))
        return ("pull_apart", ())


class CollusionAdversary(AdversaryModel):
    """Coordinated equivocators sharing one global push convention
    (event-only: the coalition's vantage-point split is defined over
    the cluster structure the vectorized skeletons abstract away)."""

    name = "collusion"
    supports_event = True

    def event_strategy(self):
        if self.amplitude is not None:
            return ("collusion", (self.amplitude,))
        return ("collusion", ())


# ----------------------------------------------------------------------
# Adaptive adversaries (vectorized-only: they need the lookahead)
# ----------------------------------------------------------------------

def _static_candidates(view, faulty_shape_offsets):
    """The budget-feasible static patterns a searcher starts from:
    both equivocation orientations, both constant pushes, and full
    silence.  ``faulty_shape_offsets(pattern)`` embeds a per-target
    pattern into the full (masked) offset arrays."""
    import numpy as np  # noqa: F401  (callers are numpy-bound)

    equiv, keep_all = faulty_shape_offsets("equivocate")
    candidates = [
        (equiv, keep_all),
        (-equiv, keep_all),
    ]
    plus, _ = faulty_shape_offsets("plus")
    candidates.append((plus, keep_all))
    candidates.append((-plus, keep_all))
    candidates.append(faulty_shape_offsets("silent"))
    return candidates


class _AdaptiveBase(AdversaryModel):
    """Shared candidate plumbing for the searching adversaries."""

    supports_vectorized = True

    def __init__(self, **kwargs) -> None:
        super().__init__(**kwargs)
        self.last_observed_skew = 0.0

    def observe(self, view: ObserveView) -> None:
        self.last_observed_skew = view.honest_local_skew

    @staticmethod
    def _graph_patterns(view: ActView):
        import numpy as np

        keep_all = np.ones(view.num_slots, dtype=bool)

        def embed(pattern):
            if pattern == "silent":
                return np.zeros(view.num_slots), ~view.faulty_slots
            if pattern == "plus":
                offsets = np.where(view.faulty_slots, view.amplitude,
                                   0.0)
            else:  # equivocate
                offsets = np.where(
                    view.faulty_slots,
                    _equivocate_signs(view.receivers, view.amplitude),
                    0.0)
            return offsets, keep_all

        return embed, keep_all

    @staticmethod
    def _pair_patterns(view: PairActView):
        import numpy as np

        fc = len(view.faulty_ids)
        rc = len(view.receiver_ids)
        keep_all = np.ones(fc, dtype=bool)

        def embed(pattern):
            if pattern == "silent":
                return np.zeros((fc, rc)), np.zeros(fc, dtype=bool)
            if pattern == "plus":
                return np.full((fc, rc), view.amplitude), keep_all
            signs = _equivocate_signs(view.receiver_ids, view.amplitude)
            return (np.broadcast_to(signs, (fc, rc)).copy(), keep_all)

        return embed, keep_all

    @staticmethod
    def _pick(candidates, evaluate):
        """Deterministic argmax: ties go to the earliest candidate."""
        best = None
        best_skew = -1.0
        for offsets, keep in candidates:
            skew = evaluate(offsets, keep)
            if skew > best_skew:
                best_skew = skew
                best = (offsets, keep)
        return best

    def _require_evaluate(self, view):
        if view.evaluate is None:
            raise ConfigError(
                f"adaptive adversary {self.name!r} needs a lookahead-"
                f"capable round model (no evaluate closure provided)")


class GreedyAdversary(_AdaptiveBase):
    """Per-round greedy pick from the budget set: evaluate every
    static pattern's one-step lookahead and act with the argmax.
    Deterministic (no random draws; ties break to the first
    candidate)."""

    name = "greedy"

    def act(self, view: ActView):
        self._require_evaluate(view)
        embed, _ = self._graph_patterns(view)
        return self._pick(_static_candidates(view, embed), view.evaluate)

    def act_pairs(self, view: PairActView):
        self._require_evaluate(view)
        embed, _ = self._pair_patterns(view)
        return self._pick(_static_candidates(view, embed), view.evaluate)


class RandomRestartAdversary(_AdaptiveBase):
    """Seeded random-restart search: each round draws ``restarts``
    random budget-feasible sign patterns (scaled to the full
    amplitude), evaluates each plus the static candidates, and acts
    with the best.  Draws come from the model's ``vec/adv`` stream in
    a fixed order, so serial and pooled runs are bit-identical."""

    name = "random_restart"

    def __init__(self, *, restarts: int = 8, **kwargs) -> None:
        super().__init__(**kwargs)
        if restarts < 1:
            raise ConfigError(f"restarts must be >= 1: {restarts!r}")
        self.restarts = restarts

    def spec(self) -> dict:
        out = super().spec()
        out["restarts"] = self.restarts
        return out

    def act(self, view: ActView):
        import numpy as np

        self._require_evaluate(view)
        embed, keep_all = self._graph_patterns(view)
        candidates = _static_candidates(view, embed)
        hits = int(view.faulty_slots.sum())
        for _ in range(self.restarts):
            offsets = np.zeros(view.num_slots)
            if hits:
                signs = view.rng.choice((-1.0, 1.0), hits)
                offsets[view.faulty_slots] = signs * view.amplitude
            candidates.append((offsets, keep_all))
        return self._pick(candidates, view.evaluate)

    def act_pairs(self, view: PairActView):
        import numpy as np

        self._require_evaluate(view)
        embed, keep_all = self._pair_patterns(view)
        candidates = _static_candidates(view, embed)
        fc = len(view.faulty_ids)
        rc = len(view.receiver_ids)
        for _ in range(self.restarts):
            signs = view.rng.choice((-1.0, 1.0), (fc, rc))
            candidates.append((signs * view.amplitude, keep_all))
        return self._pick(candidates, view.evaluate)


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------

#: Adversary models addressable by name from picklable specs.  The
#: first seven are the legacy strategy names (event realizations are
#: the re-homed :data:`~repro.faults.strategies.STRATEGIES` classes);
#: ``greedy``/``random_restart`` are the adaptive searchers.
ADVERSARIES: dict[str, type[AdversaryModel]] = {
    "silent": SilentAdversary,
    "crash": CrashAdversary,
    "random_pulse": RandomPulseAdversary,
    "fast_clock": FastClockAdversary,
    "equivocate": EquivocateAdversary,
    "pull_apart": PullApartAdversary,
    "collusion": CollusionAdversary,
    "greedy": GreedyAdversary,
    "random_restart": RandomRestartAdversary,
}


def get_adversary(name: str, **kwargs) -> AdversaryModel:
    """Construct the named adversary; unknown names and bad kwargs
    fail here (the eager half of build-time validation)."""
    cls = ADVERSARIES.get(name)
    if cls is None:
        raise ConfigError(f"unknown adversary {name!r}; known: "
                          f"{sorted(ADVERSARIES)}")
    try:
        return cls(**kwargs)
    except TypeError as exc:
        raise ConfigError(
            f"bad adversary kwargs for {name!r}: {exc}") from None


def resolve_strategy(name: str):
    """Resolve a legacy strategy name through the adversary registry.

    Every :data:`~repro.faults.strategies.STRATEGIES` name is also an
    :data:`ADVERSARIES` name; this is the single lookup the protocol
    adapters use, so legacy ``strategy=`` specs and the new
    ``adversary=`` specs share one namespace.  Returns the strategy
    *class* (the event-side driver factory input).
    """
    model_cls = ADVERSARIES.get(name)
    strategy_cls = STRATEGIES.get(name)
    if model_cls is None or strategy_cls is None:
        raise ConfigError(f"unknown strategy {name!r}; known: "
                          f"{sorted(STRATEGIES)}")
    return strategy_cls


def stride_placement(num_nodes: int, count: int):
    """Evenly strided controlled-node ids over ``range(num_nodes)``.

    The one placement both engines use for graph protocols, so the
    event-side ``liars`` realization and the vectorized fault vectors
    corrupt the *same* nodes.
    """
    import numpy as np

    if count < 1:
        raise ConfigError(f"adversary count must be >= 1: {count!r}")
    if count >= num_nodes:
        raise ConfigError(
            f"adversary count {count} must leave honest nodes "
            f"(n={num_nodes})")
    return np.unique(
        np.round(np.linspace(0, num_nodes - 1, count)).astype(np.int64))


def default_count(num_nodes: int) -> int:
    """Default controlled-node count for graph protocols: 5% of the
    grid, at least one, never the whole graph."""
    return max(1, min(num_nodes - 1, num_nodes // 20))


# ----------------------------------------------------------------------
# Vectorized runtimes (budget enforcement + counters)
# ----------------------------------------------------------------------

class _CounterMixin:
    def _init_counters(self, model: AdversaryModel, count: int,
                       amplitude: float, mechanism: str) -> None:
        self.model = model
        self.amplitude = amplitude
        self.budget = AdversaryBudget(amplitude=amplitude, count=count)
        self._counters = {
            **model.spec(),
            "count": count,
            "amplitude": amplitude,
            "mechanism": mechanism,
            "rounds_acted": 0,
            "injected_abs_max": 0.0,
            "injected_abs_sum": 0.0,
            "silenced_slots": 0,
        }

    def counters(self) -> dict:
        """The uniform ``ProtocolRunResult.adversary`` block."""
        return dict(self._counters)

    def _record(self, injected_abs, silenced: int) -> None:
        c = self._counters
        c["rounds_acted"] += 1
        if injected_abs.size:
            c["injected_abs_max"] = max(c["injected_abs_max"],
                                        float(injected_abs.max()))
            c["injected_abs_sum"] += float(injected_abs.sum())
        c["silenced_slots"] += silenced

    def _check_amplitude(self, offsets) -> None:
        import numpy as np

        worst = float(np.max(np.abs(offsets))) if offsets.size else 0.0
        if worst > self.amplitude * (1.0 + 1e-9) + 1e-15:
            raise ConfigError(
                f"adversary {self.model.name!r} act() exceeded its "
                f"amplitude budget: |offset| {worst:g} > "
                f"{self.amplitude:g}")


class VecAdversaryRuntime(_CounterMixin):
    """Per-round fault-vector injection for CSR graph protocols.

    Owns the placement (``stride_placement``), the ``vec/adv/*`` seed
    stream, the budget enforcement, the counters, and the honest-only
    skew measurements the round models report (matching the event
    engine's correct-edges convention).
    """

    def __init__(self, model: AdversaryModel, csr, streams,
                 default_amplitude: float) -> None:
        import numpy as np

        if not model.supports_vectorized:
            raise ConfigError(
                f"adversary {model.name!r} has no vectorized "
                f"realization; use the event engine")
        n = csr.num_nodes
        count = model.count if model.count is not None \
            else default_count(n)
        amplitude = model.amplitude if model.amplitude is not None \
            else default_amplitude
        self.faulty_nodes = stride_placement(n, count)
        faulty_mask = np.zeros(n, dtype=bool)
        faulty_mask[self.faulty_nodes] = True
        self.faulty_mask = faulty_mask
        self.honest_mask = ~faulty_mask
        self.honest_ids = np.nonzero(self.honest_mask)[0]
        #: Slots whose *sender* is controlled.
        self.faulty_slots = faulty_mask[csr.indices]
        self.csr = csr
        honest_edges = (self.honest_mask[csr.edge_a]
                        & self.honest_mask[csr.edge_b])
        self._edge_a = csr.edge_a[honest_edges]
        self._edge_b = csr.edge_b[honest_edges]
        self.rng = streams.stream(f"adv/{model.name}")
        self._init_counters(model, int(self.faulty_nodes.size),
                            amplitude, "vectorized")

    def round_vectors(self, round_index: int, *,
                      honest_local_skew: float = 0.0,
                      evaluate=None):
        """Observe, act, enforce the budget; returns
        ``(offsets, keep)`` ready for the masked estimate writes."""
        import numpy as np

        csr = self.csr
        self.model.observe(ObserveView(
            round_index=round_index,
            honest_local_skew=honest_local_skew))
        offsets, keep = self.model.act(ActView(
            round_index=round_index, amplitude=self.amplitude,
            num_slots=csr.num_slots, faulty_slots=self.faulty_slots,
            receivers=csr.row, senders=csr.indices, rng=self.rng,
            evaluate=evaluate))
        offsets = np.asarray(offsets, dtype=np.float64)
        keep = np.asarray(keep, dtype=bool)
        if offsets.shape != (csr.num_slots,) \
                or keep.shape != (csr.num_slots,):
            raise ConfigError(
                f"adversary {self.model.name!r} act() returned wrong "
                f"shapes: {offsets.shape}, {keep.shape} for "
                f"{csr.num_slots} slots")
        honest = ~self.faulty_slots
        if np.any(offsets[honest] != 0.0):
            raise ConfigError(
                f"adversary {self.model.name!r} act() wrote offsets "
                f"outside its fault set (budget: "
                f"{self.budget.count} node(s))")
        if np.any(~keep[honest]):
            raise ConfigError(
                f"adversary {self.model.name!r} act() silenced honest "
                f"slots (budget: {self.budget.count} node(s))")
        self._check_amplitude(offsets)
        self._record(np.abs(offsets[self.faulty_slots]),
                     int((~keep).sum()))
        return offsets, keep

    def local_skew(self, clocks) -> float:
        """Max skew over honest–honest edges (the event engine's
        correct-edges convention)."""
        import numpy as np

        if self._edge_a.size == 0:
            return 0.0
        return float(np.max(np.abs(clocks[self._edge_a]
                                   - clocks[self._edge_b])))

    def global_skew(self, clocks) -> float:
        import numpy as np

        honest = clocks[self.honest_ids]
        if honest.size == 0:
            return 0.0
        return float(honest.max() - honest.min())


class CliqueAdversaryRuntime(_CounterMixin):
    """Per-round arrival-vector injection for clique protocols
    (Srikanth–Toueg): the first ``count ≤ f`` members are controlled,
    mirroring the ``silent_faults`` convention, and each act displaces
    per-receiver arrival times within ``±amplitude``."""

    def __init__(self, model: AdversaryModel, n: int, f: int, streams,
                 default_amplitude: float) -> None:
        import numpy as np

        if not model.supports_vectorized:
            raise ConfigError(
                f"adversary {model.name!r} has no vectorized "
                f"realization; use the event engine")
        count = model.count if model.count is not None else max(f, 1)
        if count > f:
            raise ConfigError(
                f"adversary count {count} exceeds the clique fault "
                f"budget f={f}")
        if count >= n:
            raise ConfigError(
                f"adversary count {count} must leave honest nodes "
                f"(n={n})")
        amplitude = model.amplitude if model.amplitude is not None \
            else default_amplitude
        self.faulty_ids = np.arange(count)
        self.correct_ids = np.arange(count, n)
        self.rng = streams.stream(f"adv/{model.name}")
        self._init_counters(model, count, amplitude, "vectorized")

    def round_pairs(self, round_index: int, *,
                    honest_local_skew: float = 0.0, evaluate=None):
        """Observe, act, enforce the budget; returns
        ``(offsets, keep)`` with shapes ``(count, correct)`` /
        ``(count,)``."""
        import numpy as np

        self.model.observe(ObserveView(
            round_index=round_index,
            honest_local_skew=honest_local_skew))
        offsets, keep = self.model.act_pairs(PairActView(
            round_index=round_index, amplitude=self.amplitude,
            faulty_ids=self.faulty_ids, receiver_ids=self.correct_ids,
            rng=self.rng, evaluate=evaluate))
        offsets = np.asarray(offsets, dtype=np.float64)
        keep = np.asarray(keep, dtype=bool)
        expect = (self.faulty_ids.size, self.correct_ids.size)
        if offsets.shape != expect or keep.shape != (expect[0],):
            raise ConfigError(
                f"adversary {self.model.name!r} act_pairs() returned "
                f"wrong shapes: {offsets.shape}, {keep.shape} for "
                f"{expect}")
        self._check_amplitude(offsets)
        self._record(np.abs(offsets[keep]) if keep.any()
                     else np.abs(offsets[:0]), int((~keep).sum()))
        return offsets, keep


# ----------------------------------------------------------------------
# Event-side validation helpers
# ----------------------------------------------------------------------

#: Per-protocol event-engine realizations: strategy adapters for the
#: FTGCS family, native payload mechanisms for the baselines.
_EVENT_MECHANISMS = {
    "ftgcs": "strategy",
    "lynch_welch": "strategy",
    "gcs_single": "liars",
    "srikanth_toueg": "silent_faults",
}


def validate_event_support(model: AdversaryModel,
                           protocol: str) -> str:
    """Check (eagerly) that ``model`` is realizable on the event
    engine under ``protocol``; returns the mechanism name."""
    mechanism = _EVENT_MECHANISMS.get(protocol)
    if mechanism is None:
        raise ConfigError(
            f"protocol {protocol!r} has no event-engine adversary "
            f"realization; supported: {sorted(_EVENT_MECHANISMS)}")
    if not model.supports_event:
        raise ConfigError(
            f"adversary {model.name!r} is search-based "
            f"(vectorized-only); use .engine('vectorized')")
    if mechanism == "strategy":
        if model.event_strategy() is None:
            raise ConfigError(
                f"adversary {model.name!r} has no event-side strategy "
                f"adapter for protocol {protocol!r}")
    elif mechanism == "silent_faults":
        if model.name != "silent":
            raise ConfigError(
                f"srikanth_toueg on the event engine realizes only "
                f"the 'silent' adversary (its native silent_faults "
                f"mechanism); got {model.name!r} — use the "
                f"vectorized engine")
    elif mechanism == "liars":
        if model.name != "equivocate":
            raise ConfigError(
                f"gcs_single on the event engine realizes only the "
                f"'equivocate' adversary (its native liars "
                f"mechanism); got {model.name!r} — use the "
                f"vectorized engine")
    return mechanism


__all__ = [
    "ADVERSARIES",
    "ActView",
    "AdversaryBudget",
    "AdversaryModel",
    "CliqueAdversaryRuntime",
    "CollusionAdversary",
    "CrashAdversary",
    "EquivocateAdversary",
    "FastClockAdversary",
    "GreedyAdversary",
    "ObserveView",
    "PairActView",
    "PullApartAdversary",
    "RandomPulseAdversary",
    "RandomRestartAdversary",
    "SilentAdversary",
    "VecAdversaryRuntime",
    "default_count",
    "get_adversary",
    "resolve_strategy",
    "stride_placement",
    "validate_event_support",
]
