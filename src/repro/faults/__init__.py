"""Byzantine fault strategies and placement policies."""

from repro.faults.placement import (
    count_by_cluster,
    place_everywhere,
    place_in_clusters,
    place_random_iid,
)
from repro.faults.strategies import (
    ByzantineStrategy,
    ColludingEquivocatorStrategy,
    CrashStrategy,
    EquivocatorStrategy,
    FastClockStrategy,
    PullApartStrategy,
    RandomPulseStrategy,
    SilentStrategy,
    StrategyContext,
)

__all__ = [
    "count_by_cluster",
    "place_everywhere",
    "place_in_clusters",
    "place_random_iid",
    "ByzantineStrategy",
    "ColludingEquivocatorStrategy",
    "CrashStrategy",
    "EquivocatorStrategy",
    "FastClockStrategy",
    "PullApartStrategy",
    "RandomPulseStrategy",
    "SilentStrategy",
    "StrategyContext",
]
