"""Exception hierarchy for the FTGCS reproduction.

All library-raised exceptions derive from :class:`ReproError` so callers
can catch everything from this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SimulationError(ReproError):
    """Raised when the discrete-event kernel is used incorrectly.

    Examples: scheduling an event in the past, running a finished
    simulator backwards, or reading a clock before its start time.
    """


class ClockError(ReproError):
    """Raised for invalid clock configurations or queries.

    Examples: non-positive clock rates, reading a clock at a time before
    its last known state, or registering an alarm for a logical value
    that lies in the past.
    """


class TopologyError(ReproError):
    """Raised for malformed graphs or cluster assignments.

    Examples: cluster sizes below ``3f + 1``, duplicate node
    identifiers, or edges referencing unknown clusters.
    """


class ParameterError(ReproError):
    """Raised when algorithm parameters are infeasible.

    The cluster synchronization analysis requires ``alpha < 1`` (see
    Eq. (11) of the paper) and ``0 < phi < 1``; violating either makes
    the round structure meaningless, so we fail fast.
    """


class NetworkError(ReproError):
    """Raised for invalid messaging operations.

    Examples: sending to a non-neighbor, or a delay model returning a
    delay outside ``[d - U, d]`` without being explicitly marked
    adversarial-unchecked.
    """


class ConfigError(ReproError):
    """Raised when an experiment configuration is inconsistent.

    Examples: more faults requested than the placement can accommodate
    (``f`` per cluster), or unknown mode-policy names.
    """
