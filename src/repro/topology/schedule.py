"""Time-varying topologies: schedules of edge activations.

Dynamic-network synchronization (Kuhn, Lenzen, Locher, Oshman,
"Optimal Gradient Clock Synchronization in Dynamic Networks") models a
*fixed* vertex set whose edge set changes over time.  This module
expresses that as a :class:`TopologySchedule` over a base
:class:`~repro.topology.cluster_graph.ClusterGraph`: the base graph is
the **union** of every edge that can ever exist, and the schedule is a
deterministic, seeded list of ``(time, edge, active)`` events toggling
individual edges.

The generic :class:`~repro.core.protocol.System` applies those events
through the simulation kernel: at each event time it activates or
deactivates the corresponding network links (one cluster edge maps to
``k x k`` node links on the augmented graph), so pulses simply stop
crossing a down edge while estimators coast on extrapolation.  A static
graph is the trivial schedule with no events — the static path never
touches link activation, so static runs are bit-identical to the
pre-schedule implementation.

Determinism: every schedule draws from ``random.Random(derive_seed(
seed, "topology/<name>"))``, a stream keyed separately from every
delay/clock stream, so adding or removing churn never perturbs the
delay draws of the underlying simulation.
"""

from __future__ import annotations

import math
import random
from typing import Callable, Iterable

from repro.errors import ConfigError, TopologyError
from repro.sim.rng import derive_seed
from repro.topology import graphs as g
from repro.topology.cluster_graph import ClusterGraph

#: One schedule event: at ``time``, set cluster edge ``(a, b)`` to
#: ``active``.
EdgeEvent = "tuple[float, tuple[int, int], bool]"


def tick_count(interval: float, horizon: float) -> int:
    """Number of schedule ticks ``interval, 2*interval, ...`` up to and
    *including* ``horizon``.

    This pins the horizon boundary rule for every periodic schedule: a
    tick landing nominally at ``t == horizon`` **fires**.  The count is
    computed by division (with one relative ulp of tolerance) rather
    than by comparing accumulated tick times against the horizon, so
    float drift in the running sum can never silently drop — or
    duplicate — the final tick.  Event loops pair this with
    :func:`clamp_tick` so the final tick's *timestamp* also lands at
    or before the horizon (an accumulated sum can drift a few ulps
    past it, which would leave the event enqueued beyond the kernel's
    run window — emitted but never executed).
    """
    return max(0, int(math.floor(horizon / interval * (1.0 + 1e-12))))


def clamp_tick(t: float, horizon: float) -> float:
    """Clamp an accumulated tick timestamp to the horizon.

    Only the final tick can drift past the horizon (the drift is a few
    ulps, many orders below one interval), and by the boundary rule
    that tick is nominally *at* the horizon — so its event time is the
    horizon itself.  All earlier ticks pass through unchanged, keeping
    event streams byte-identical to the historical accumulation.
    """
    return horizon if t > horizon else t


class TopologySchedule:
    """A (possibly time-varying) activation of a base graph's edges.

    The base class *is* the static schedule: every edge of ``graph``
    is active forever and :meth:`events` is empty.  Subclasses override
    :meth:`events` (and optionally :meth:`initial_down`) to describe
    dynamics.  Schedules are pure descriptions — they never touch a
    kernel themselves; the generic system applies them.
    """

    name = "static"

    def __init__(self, graph: ClusterGraph) -> None:
        self.graph = graph

    @property
    def is_static(self) -> bool:
        """Whether the topology never changes (fast path: no edge *or*
        node events)."""
        return not (self.has_edge_events or self.has_node_events)

    @property
    def has_edge_events(self) -> bool:
        """Whether the schedule can emit edge activation events
        (override-identity check, like the historical ``is_static``)."""
        return type(self).events is not TopologySchedule.events

    @property
    def has_node_events(self) -> bool:
        """Whether the schedule can emit node crash/rejoin events."""
        return type(self).node_events is not TopologySchedule.node_events

    def initial_down(self, seed: int) -> list[tuple[int, int]]:
        """Edges inactive at time zero (default: none)."""
        return []

    def events(self, horizon: float, seed: int
               ) -> list[tuple[float, tuple[int, int], bool]]:
        """Deterministic edge events up to ``horizon`` (sorted by time).

        The same ``(horizon, seed)`` always yields the same list, on
        any machine and in any process.
        """
        return []

    def initial_crashed(self, seed: int) -> list[int]:
        """Clusters crashed at time zero (default: none)."""
        return []

    def node_events(self, horizon: float, seed: int
                    ) -> list[tuple[float, int, bool]]:
        """Deterministic node churn events up to ``horizon``.

        Each event is ``(time, cluster, alive)``: ``alive=False``
        crashes the whole cluster node (all incident links down, state
        lost), ``alive=True`` rejoins it with amnesia.  Same
        determinism contract as :meth:`events`.
        """
        return []

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.graph.name})"


class EdgeChurnSchedule(TopologySchedule):
    """I.i.d. edge churn: every ``interval``, each edge is down for the
    next interval independently with probability ``churn``.

    This is the standard "edges flap" dynamic-network adversary in its
    oblivious randomized form.  ``churn=0`` produces an event stream
    that re-asserts the all-up state (still deterministic, and
    byte-identical in measurements to the static schedule because link
    activation is idempotent).

    ``protect`` names edges that never churn (e.g. to keep a spanning
    backbone connected).
    """

    name = "churn"

    def __init__(self, graph: ClusterGraph, interval: float,
                 churn: float,
                 protect: Iterable[tuple[int, int]] = ()) -> None:
        super().__init__(graph)
        if interval <= 0:
            raise ConfigError(
                f"churn interval must be positive: {interval!r}")
        if not 0.0 <= churn <= 1.0:
            raise ConfigError(f"churn must be a probability: {churn!r}")
        self.interval = float(interval)
        self.churn = float(churn)
        self.protect = frozenset(
            (min(a, b), max(a, b)) for a, b in protect)
        edges = set(graph.edges)
        for edge in self.protect:
            if edge not in edges:
                raise TopologyError(
                    f"protected edge {edge!r} is not in the base graph")

    def events(self, horizon: float, seed: int):
        rng = random.Random(derive_seed(seed, f"topology/{self.name}"))
        churnable = [edge for edge in self.graph.edges
                     if edge not in self.protect]
        events = []
        down: set[tuple[int, int]] = set()
        t = 0.0
        for _ in range(tick_count(self.interval, horizon)):
            t += self.interval
            tick = clamp_tick(t, horizon)
            # One draw per churnable edge per tick, in canonical edge
            # order, regardless of current state — keeps the stream
            # independent of history.
            next_down = {edge for edge in churnable
                         if rng.random() < self.churn}
            for edge in churnable:
                if edge in next_down and edge not in down:
                    events.append((tick, edge, False))
                elif edge not in next_down and edge in down:
                    events.append((tick, edge, True))
            down = next_down
        return events


class RewireSchedule(TopologySchedule):
    """Periodic rewiring: a protected core stays up while exactly
    ``active_extras`` of the remaining ("chord") edges are active at a
    time, re-drawn every ``interval``.

    Models small-world/overlay maintenance: the potential edge set is
    fixed (the base graph), but which chords are materialized rotates.
    ``core`` defaults to the first ``num_clusters - 1`` edges — for the
    standard constructors (line, ring, grid) that keeps a connected
    backbone.  A custom ``core`` need not span the graph; pass
    ``require_connected=True`` to make every draw re-sample (with the
    same seeded stream, so determinism is preserved) until
    ``core + active chords`` is connected.
    """

    name = "rewire"

    #: Bounded re-sampling for ``require_connected`` draws.
    MAX_DRAW_ATTEMPTS = 256

    def __init__(self, graph: ClusterGraph, interval: float,
                 active_extras: int,
                 core: Iterable[tuple[int, int]] | None = None,
                 require_connected: bool = False) -> None:
        super().__init__(graph)
        if interval <= 0:
            raise ConfigError(
                f"rewire interval must be positive: {interval!r}")
        if core is None:
            core = graph.edges[:max(graph.num_clusters - 1, 0)]
        self.core = frozenset((min(a, b), max(a, b)) for a, b in core)
        self.chords = [edge for edge in graph.edges
                       if edge not in self.core]
        if not 0 <= active_extras <= len(self.chords):
            raise ConfigError(
                f"active_extras must be in 0..{len(self.chords)}: "
                f"{active_extras!r}")
        self.interval = float(interval)
        self.active_extras = int(active_extras)
        self.require_connected = bool(require_connected)
        if (self.require_connected
                and not self._connected_with(set(self.chords))):
            # Necessary-condition check only: core plus *all* chords
            # disconnected means no draw of any size can succeed.
            # Infeasibility of the specific ``active_extras``-sized
            # draws (a subset-sum question) surfaces at draw time as
            # the exhausted-attempts error below.
            raise TopologyError(
                "require_connected: core plus all chords is "
                "disconnected; no draw can satisfy it")

    def _connected_with(self, active: set[tuple[int, int]]) -> bool:
        edges = sorted(self.core | active)
        return g.is_connected(
            g.adjacency_from_edges(self.graph.num_clusters, edges))

    def _draw_active(self, rng: random.Random) -> set[tuple[int, int]]:
        attempts = self.MAX_DRAW_ATTEMPTS if self.require_connected else 1
        for _ in range(attempts):
            active = set(rng.sample(self.chords, self.active_extras))
            if not self.require_connected or self._connected_with(active):
                return active
        raise TopologyError(
            f"rewire could not draw a connected active set in "
            f"{self.MAX_DRAW_ATTEMPTS} attempts (core={sorted(self.core)}, "
            f"active_extras={self.active_extras}); the configuration "
            f"may admit no connected draw of this size at all — raise "
            f"active_extras or extend the core")

    def initial_down(self, seed: int) -> list[tuple[int, int]]:
        rng = random.Random(derive_seed(seed, f"topology/{self.name}"))
        active = self._draw_active(rng)
        return [edge for edge in self.chords if edge not in active]

    def events(self, horizon: float, seed: int):
        rng = random.Random(derive_seed(seed, f"topology/{self.name}"))
        active = self._draw_active(rng)  # replays initial_down's draw
        events = []
        t = 0.0
        for _ in range(tick_count(self.interval, horizon)):
            t += self.interval
            tick = clamp_tick(t, horizon)
            next_active = self._draw_active(rng)
            for edge in self.chords:
                if edge in next_active and edge not in active:
                    events.append((tick, edge, True))
                elif edge not in next_active and edge in active:
                    events.append((tick, edge, False))
            active = next_active
        return events


class TIntervalSchedule(TopologySchedule):
    """Worst-case *T-interval-connected* dynamics (Kuhn–Lynch–Oshman).

    Time is divided into intervals of length ``interval``; the dynamic
    graph is **T-interval connected**: for every window of ``T``
    consecutive intervals there is one *stable* connected spanning
    subgraph present throughout the window.  The deterministic
    adversary keeps exactly that guarantee and nothing more: it draws a
    seeded random spanning tree ``S_e`` per epoch of ``T`` intervals,
    keeps ``S_e`` up for *two* consecutive epochs (``[eT, (e+2)T)``
    intervals — so every sliding window of ``T`` intervals falls
    inside some tree's lifetime), and kills every other edge.  Smaller
    ``T`` therefore means a faster-rotating backbone and more
    first-contact events; ``T -> inf`` degenerates to one static
    spanning tree.

    The spanning-tree sequence is a seeded randomized Kruskal walk, so
    the same ``(horizon, seed)`` always yields the same events.
    """

    name = "t_interval"

    def __init__(self, graph: ClusterGraph, interval: float,
                 T: int) -> None:
        super().__init__(graph)
        if interval <= 0:
            raise ConfigError(
                f"t_interval interval must be positive: {interval!r}")
        if T < 1:
            raise ConfigError(f"T must be >= 1: {T!r}")
        if not graph.is_connected():
            raise TopologyError(
                f"t_interval needs a connected base graph: {graph!r}")
        self.interval = float(interval)
        self.T = int(T)

    def _spanning_tree(self, rng: random.Random) -> frozenset:
        """One seeded random spanning tree (randomized Kruskal)."""
        edges = list(self.graph.edges)
        rng.shuffle(edges)
        parent = list(range(self.graph.num_clusters))

        def find(x: int) -> int:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        tree = []
        for a, b in edges:
            ra, rb = find(a), find(b)
            if ra != rb:
                parent[ra] = rb
                tree.append((a, b))
        return frozenset(tree)

    def _active_for_epoch(self, trees: list, e: int) -> frozenset:
        """Edges up during epoch ``e``: the current tree plus the
        previous one (still inside its two-epoch lifetime)."""
        active = set(trees[e])
        if e > 0:
            active |= trees[e - 1]
        return frozenset(active)

    def initial_down(self, seed: int) -> list[tuple[int, int]]:
        rng = random.Random(derive_seed(seed, f"topology/{self.name}"))
        s0 = self._spanning_tree(rng)
        return [edge for edge in self.graph.edges if edge not in s0]

    def events(self, horizon: float, seed: int):
        rng = random.Random(derive_seed(seed, f"topology/{self.name}"))
        epoch_length = self.T * self.interval
        epochs = tick_count(epoch_length, horizon)
        trees = [self._spanning_tree(rng) for _ in range(epochs + 1)]
        events = []
        active = self._active_for_epoch(trees, 0)
        t = 0.0
        for e in range(1, epochs + 1):
            t += epoch_length
            tick = clamp_tick(t, horizon)
            next_active = self._active_for_epoch(trees, e)
            for edge in self.graph.edges:
                if edge in next_active and edge not in active:
                    events.append((tick, edge, True))
                elif edge not in next_active and edge in active:
                    events.append((tick, edge, False))
            active = next_active
        return events


class AdversarialSweepSchedule(TopologySchedule):
    """A deterministic adversary walking a *cut* across the graph.

    Cluster ids define a linear order; cut position ``c`` downs every
    edge ``(a, b)`` with ``a <= c < b``.  Each tick the position
    advances by one (wrapping over the ``num_clusters - 1`` interior
    positions), so the down set sweeps across the graph, temporarily
    **disconnecting** it at every step while the union over any full
    sweep restores every edge.  This is strictly harsher than
    T-interval connectivity — it is the "eventually connected" regime
    where only union-connectivity over a window holds — and is the
    worst case for estimator staleness: every edge periodically
    disappears and re-appears, so every estimator pair periodically
    re-establishes contact.

    Entirely deterministic (the seed is unused): the same cut walk on
    every run, which makes stabilization-time measurements directly
    comparable across seeds.
    """

    name = "adversarial_sweep"

    def __init__(self, graph: ClusterGraph, interval: float) -> None:
        super().__init__(graph)
        if interval <= 0:
            raise ConfigError(
                f"sweep interval must be positive: {interval!r}")
        if graph.num_clusters < 3:
            # Two clusters have a single cut position: the "walk"
            # would pin that cut down forever, never restoring any
            # edge — use an explicit one-shot schedule for that.
            raise TopologyError(
                f"adversarial sweep needs >= 3 clusters (with 2 the "
                f"only cut never moves): {graph!r}")
        self.interval = float(interval)

    def _cut(self, position: int) -> list[tuple[int, int]]:
        """Edges crossing the cut between ``position`` and
        ``position + 1`` in the id order."""
        return [(a, b) for a, b in self.graph.edges
                if a <= position < b]

    def initial_down(self, seed: int) -> list[tuple[int, int]]:
        return self._cut(0)

    def events(self, horizon: float, seed: int):
        positions = self.graph.num_clusters - 1
        events = []
        down = set(self._cut(0))
        t = 0.0
        for i in range(1, tick_count(self.interval, horizon) + 1):
            t += self.interval
            tick = clamp_tick(t, horizon)
            next_down = set(self._cut(i % positions))
            for edge in self.graph.edges:
                if edge in next_down and edge not in down:
                    events.append((tick, edge, False))
                elif edge not in next_down and edge in down:
                    events.append((tick, edge, True))
            down = next_down
        return events


class NodeChurnSchedule(TopologySchedule):
    """Whole-node crash-and-rejoin churn (fail-recover, not fail-stop).

    Every ``interval``, each unprotected cluster node advances a
    two-state Markov chain: an alive node crashes for the next
    interval with probability ``crash``; a crashed node rejoins with
    probability ``rejoin``.  A crash downs **all** incident links at
    once and loses the node's volatile state; a rejoin brings the node
    back *with amnesia* — it must re-acquire estimates through the
    first-contact bring-up path, which is what separates node churn
    from mere link flaps.

    One draw per node per tick, in canonical id order, regardless of
    state — so the random stream (keyed ``"topology/node_churn"``,
    disjoint from every edge-churn/delay/loss stream) is independent
    of history and the event list replays exactly.

    ``protect`` names cluster ids that never crash (e.g. the reference
    cluster of a skew measurement, or a master–slave root).
    ``drop_in_flight`` (default True) selects the crashed-node
    in-flight semantics: messages queued to or from a crashing node
    are quarantined rather than delivered.
    """

    name = "node_churn"

    def __init__(self, graph: ClusterGraph, interval: float,
                 crash: float, rejoin: float = 0.5,
                 protect: Iterable[int] = (),
                 drop_in_flight: bool = True) -> None:
        super().__init__(graph)
        if interval <= 0:
            raise ConfigError(
                f"node churn interval must be positive: {interval!r}")
        if not 0.0 <= crash <= 1.0:
            raise ConfigError(
                f"crash must be a probability: {crash!r}")
        if not 0.0 < rejoin <= 1.0:
            raise ConfigError(
                f"rejoin must be a probability in (0, 1] (a node that "
                f"can never rejoin is a permanent fault — model it "
                f"with the fault layer instead): {rejoin!r}")
        self.interval = float(interval)
        self.crash = float(crash)
        self.rejoin = float(rejoin)
        self.protect = frozenset(int(c) for c in protect)
        self.drop_in_flight = bool(drop_in_flight)
        for cluster in self.protect:
            if not 0 <= cluster < graph.num_clusters:
                raise TopologyError(
                    f"protected cluster {cluster!r} is not in the base "
                    f"graph (num_clusters={graph.num_clusters})")

    def node_events(self, horizon: float, seed: int):
        rng = random.Random(derive_seed(seed, f"topology/{self.name}"))
        churnable = [c for c in range(self.graph.num_clusters)
                     if c not in self.protect]
        events = []
        crashed: set[int] = set()
        t = 0.0
        for _ in range(tick_count(self.interval, horizon)):
            t += self.interval
            tick = clamp_tick(t, horizon)
            # One draw per churnable node per tick; the threshold
            # depends on the node's current state (Markov chain), the
            # draw count does not.
            for cluster in churnable:
                r = rng.random()
                if cluster in crashed:
                    if r < self.rejoin:
                        crashed.discard(cluster)
                        events.append((tick, cluster, True))
                elif r < self.crash:
                    crashed.add(cluster)
                    events.append((tick, cluster, False))
        return events


#: ``name -> factory(graph, **kwargs)`` for picklable-spec addressing.
SCHEDULES: dict[str, Callable[..., TopologySchedule]] = {
    "static": TopologySchedule,
    "churn": EdgeChurnSchedule,
    "rewire": RewireSchedule,
    "t_interval": TIntervalSchedule,
    "adversarial_sweep": AdversarialSweepSchedule,
    "node_churn": NodeChurnSchedule,
}


def register_schedule(name: str,
                      factory: Callable[..., TopologySchedule]) -> None:
    """Register a custom topology schedule under ``name``.

    Like cell kinds, custom schedules registered outside this module
    are visible to pool workers only under the ``fork`` start method.
    """
    if name in SCHEDULES:
        raise ConfigError(f"topology schedule {name!r} already registered")
    SCHEDULES[name] = factory


def build_schedule(name: str, graph: ClusterGraph,
                   **kwargs) -> TopologySchedule:
    """Instantiate a registered schedule over ``graph``."""
    factory = SCHEDULES.get(name)
    if factory is None:
        raise ConfigError(f"unknown topology schedule {name!r}; known: "
                          f"{sorted(SCHEDULES)}")
    return factory(graph, **kwargs)


__all__ = [
    "SCHEDULES",
    "AdversarialSweepSchedule",
    "EdgeChurnSchedule",
    "NodeChurnSchedule",
    "RewireSchedule",
    "TIntervalSchedule",
    "TopologySchedule",
    "build_schedule",
    "register_schedule",
    "tick_count",
]
