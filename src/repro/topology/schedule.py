"""Time-varying topologies: schedules of edge activations.

Dynamic-network synchronization (Kuhn, Lenzen, Locher, Oshman,
"Optimal Gradient Clock Synchronization in Dynamic Networks") models a
*fixed* vertex set whose edge set changes over time.  This module
expresses that as a :class:`TopologySchedule` over a base
:class:`~repro.topology.cluster_graph.ClusterGraph`: the base graph is
the **union** of every edge that can ever exist, and the schedule is a
deterministic, seeded list of ``(time, edge, active)`` events toggling
individual edges.

The generic :class:`~repro.core.protocol.System` applies those events
through the simulation kernel: at each event time it activates or
deactivates the corresponding network links (one cluster edge maps to
``k x k`` node links on the augmented graph), so pulses simply stop
crossing a down edge while estimators coast on extrapolation.  A static
graph is the trivial schedule with no events — the static path never
touches link activation, so static runs are bit-identical to the
pre-schedule implementation.

Determinism: every schedule draws from ``random.Random(derive_seed(
seed, "topology/<name>"))``, a stream keyed separately from every
delay/clock stream, so adding or removing churn never perturbs the
delay draws of the underlying simulation.
"""

from __future__ import annotations

import random
from typing import Callable, Iterable

from repro.errors import ConfigError, TopologyError
from repro.sim.rng import derive_seed
from repro.topology.cluster_graph import ClusterGraph

#: One schedule event: at ``time``, set cluster edge ``(a, b)`` to
#: ``active``.
EdgeEvent = "tuple[float, tuple[int, int], bool]"


class TopologySchedule:
    """A (possibly time-varying) activation of a base graph's edges.

    The base class *is* the static schedule: every edge of ``graph``
    is active forever and :meth:`events` is empty.  Subclasses override
    :meth:`events` (and optionally :meth:`initial_down`) to describe
    dynamics.  Schedules are pure descriptions — they never touch a
    kernel themselves; the generic system applies them.
    """

    name = "static"

    def __init__(self, graph: ClusterGraph) -> None:
        self.graph = graph

    @property
    def is_static(self) -> bool:
        """Whether the edge set never changes (fast path: no events)."""
        return type(self).events is TopologySchedule.events

    def initial_down(self, seed: int) -> list[tuple[int, int]]:
        """Edges inactive at time zero (default: none)."""
        return []

    def events(self, horizon: float, seed: int
               ) -> list[tuple[float, tuple[int, int], bool]]:
        """Deterministic edge events up to ``horizon`` (sorted by time).

        The same ``(horizon, seed)`` always yields the same list, on
        any machine and in any process.
        """
        return []

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.graph.name})"


class EdgeChurnSchedule(TopologySchedule):
    """I.i.d. edge churn: every ``interval``, each edge is down for the
    next interval independently with probability ``churn``.

    This is the standard "edges flap" dynamic-network adversary in its
    oblivious randomized form.  ``churn=0`` produces an event stream
    that re-asserts the all-up state (still deterministic, and
    byte-identical in measurements to the static schedule because link
    activation is idempotent).

    ``protect`` names edges that never churn (e.g. to keep a spanning
    backbone connected).
    """

    name = "churn"

    def __init__(self, graph: ClusterGraph, interval: float,
                 churn: float,
                 protect: Iterable[tuple[int, int]] = ()) -> None:
        super().__init__(graph)
        if interval <= 0:
            raise ConfigError(
                f"churn interval must be positive: {interval!r}")
        if not 0.0 <= churn <= 1.0:
            raise ConfigError(f"churn must be a probability: {churn!r}")
        self.interval = float(interval)
        self.churn = float(churn)
        self.protect = frozenset(
            (min(a, b), max(a, b)) for a, b in protect)
        edges = set(graph.edges)
        for edge in self.protect:
            if edge not in edges:
                raise TopologyError(
                    f"protected edge {edge!r} is not in the base graph")

    def events(self, horizon: float, seed: int):
        rng = random.Random(derive_seed(seed, f"topology/{self.name}"))
        churnable = [edge for edge in self.graph.edges
                     if edge not in self.protect]
        events = []
        down: set[tuple[int, int]] = set()
        t = self.interval
        while t <= horizon:
            # One draw per churnable edge per tick, in canonical edge
            # order, regardless of current state — keeps the stream
            # independent of history.
            next_down = {edge for edge in churnable
                         if rng.random() < self.churn}
            for edge in churnable:
                if edge in next_down and edge not in down:
                    events.append((t, edge, False))
                elif edge not in next_down and edge in down:
                    events.append((t, edge, True))
            down = next_down
            t += self.interval
        return events


class RewireSchedule(TopologySchedule):
    """Periodic rewiring: a protected core stays up while exactly
    ``active_extras`` of the remaining ("chord") edges are active at a
    time, re-drawn every ``interval``.

    Models small-world/overlay maintenance: the potential edge set is
    fixed (the base graph), but which chords are materialized rotates.
    ``core`` defaults to the first ``num_clusters - 1`` edges — for the
    standard constructors (line, ring, grid) that keeps a connected
    backbone.
    """

    name = "rewire"

    def __init__(self, graph: ClusterGraph, interval: float,
                 active_extras: int,
                 core: Iterable[tuple[int, int]] | None = None) -> None:
        super().__init__(graph)
        if interval <= 0:
            raise ConfigError(
                f"rewire interval must be positive: {interval!r}")
        if core is None:
            core = graph.edges[:max(graph.num_clusters - 1, 0)]
        self.core = frozenset((min(a, b), max(a, b)) for a, b in core)
        self.chords = [edge for edge in graph.edges
                       if edge not in self.core]
        if not 0 <= active_extras <= len(self.chords):
            raise ConfigError(
                f"active_extras must be in 0..{len(self.chords)}: "
                f"{active_extras!r}")
        self.interval = float(interval)
        self.active_extras = int(active_extras)

    def _draw_active(self, rng: random.Random) -> set[tuple[int, int]]:
        return set(rng.sample(self.chords, self.active_extras))

    def initial_down(self, seed: int) -> list[tuple[int, int]]:
        rng = random.Random(derive_seed(seed, f"topology/{self.name}"))
        active = self._draw_active(rng)
        return [edge for edge in self.chords if edge not in active]

    def events(self, horizon: float, seed: int):
        rng = random.Random(derive_seed(seed, f"topology/{self.name}"))
        active = self._draw_active(rng)  # replays initial_down's draw
        events = []
        t = self.interval
        while t <= horizon:
            next_active = self._draw_active(rng)
            for edge in self.chords:
                if edge in next_active and edge not in active:
                    events.append((t, edge, True))
                elif edge not in next_active and edge in active:
                    events.append((t, edge, False))
            active = next_active
            t += self.interval
        return events


#: ``name -> factory(graph, **kwargs)`` for picklable-spec addressing.
SCHEDULES: dict[str, Callable[..., TopologySchedule]] = {
    "static": TopologySchedule,
    "churn": EdgeChurnSchedule,
    "rewire": RewireSchedule,
}


def register_schedule(name: str,
                      factory: Callable[..., TopologySchedule]) -> None:
    """Register a custom topology schedule under ``name``.

    Like cell kinds, custom schedules registered outside this module
    are visible to pool workers only under the ``fork`` start method.
    """
    if name in SCHEDULES:
        raise ConfigError(f"topology schedule {name!r} already registered")
    SCHEDULES[name] = factory


def build_schedule(name: str, graph: ClusterGraph,
                   **kwargs) -> TopologySchedule:
    """Instantiate a registered schedule over ``graph``."""
    factory = SCHEDULES.get(name)
    if factory is None:
        raise ConfigError(f"unknown topology schedule {name!r}; known: "
                          f"{sorted(SCHEDULES)}")
    return factory(graph, **kwargs)


__all__ = [
    "SCHEDULES",
    "EdgeChurnSchedule",
    "RewireSchedule",
    "TopologySchedule",
    "build_schedule",
    "register_schedule",
]
