"""The cluster graph ``G`` and the paper's augmentation ``G -> G``.

Section 2 of the paper: given ``G = (C, E)``, identify each cluster
``C`` with ``k`` nodes.  The augmented node graph ``G = (V, E)`` has

* **cluster edges** — each cluster forms a ``k``-clique, and
* **intercluster edges** — clusters adjacent in ``G`` are connected by
  a complete bipartite graph.

:class:`ClusterGraph` is the cluster-level object (with named
constructors for the standard topologies); :meth:`ClusterGraph.augment`
produces an :class:`AugmentedGraph` holding the node-level structure
the simulator wires up, plus the grouping metadata nodes need ("which
cluster does this neighbor belong to" — the paper assumes each node
knows this).
"""

from __future__ import annotations

import random

from repro.errors import TopologyError
from repro.topology import graphs as g


class ClusterGraph:
    """The abstract network ``G = (C, E)`` of supernodes."""

    def __init__(self, num_clusters: int, edges: list[tuple[int, int]],
                 name: str = "") -> None:
        if num_clusters < 1:
            raise TopologyError(f"need at least one cluster: {num_clusters!r}")
        self._edges = g.normalize_edges(num_clusters, edges)
        self._adjacency = g.adjacency_from_edges(num_clusters, self._edges)
        self.name = name or f"cluster-graph({num_clusters})"

    # -- named constructors -------------------------------------------

    @classmethod
    def line(cls, n: int) -> "ClusterGraph":
        return cls(n, g.line_edges(n), name=f"line({n})")

    @classmethod
    def ring(cls, n: int) -> "ClusterGraph":
        return cls(n, g.ring_edges(n), name=f"ring({n})")

    @classmethod
    def complete(cls, n: int) -> "ClusterGraph":
        return cls(n, g.complete_edges(n), name=f"complete({n})")

    @classmethod
    def star(cls, n: int) -> "ClusterGraph":
        return cls(n, g.star_edges(n), name=f"star({n})")

    @classmethod
    def grid(cls, width: int, height: int) -> "ClusterGraph":
        return cls(width * height, g.grid_edges(width, height),
                   name=f"grid({width}x{height})")

    @classmethod
    def torus(cls, width: int, height: int) -> "ClusterGraph":
        return cls(width * height, g.torus_edges(width, height),
                   name=f"torus({width}x{height})")

    @classmethod
    def balanced_tree(cls, branching: int, height: int) -> "ClusterGraph":
        edges = g.balanced_tree_edges(branching, height)
        num = 1 + sum(branching ** i for i in range(1, height + 1))
        return cls(num, edges, name=f"tree(b={branching},h={height})")

    @classmethod
    def caterpillar(cls, length: int, width: int) -> "ClusterGraph":
        """Spine path of ``length`` hubs, ``width - 1`` leaves each:
        ``length * width`` vertices with diameter ``length + 1`` (for
        ``width >= 2``) — vertex count and diameter decoupled."""
        return cls(length * width, g.caterpillar_edges(length, width),
                   name=f"caterpillar({length}x{width})")

    @classmethod
    def hypercube(cls, dim: int) -> "ClusterGraph":
        return cls(1 << dim, g.hypercube_edges(dim),
                   name=f"hypercube({dim})")

    @classmethod
    def random_connected(cls, n: int, extra_edge_prob: float,
                         rng: random.Random) -> "ClusterGraph":
        edges = g.random_connected_edges(n, extra_edge_prob, rng)
        return cls(n, edges, name=f"random({n},p={extra_edge_prob})")

    # -- accessors -----------------------------------------------------

    @property
    def num_clusters(self) -> int:
        return len(self._adjacency)

    @property
    def edges(self) -> list[tuple[int, int]]:
        return list(self._edges)

    @property
    def num_edges(self) -> int:
        return len(self._edges)

    def neighbors(self, cluster: int) -> tuple[int, ...]:
        try:
            return tuple(self._adjacency[cluster])
        except IndexError:
            raise TopologyError(f"unknown cluster: {cluster!r}") from None

    def degree(self, cluster: int) -> int:
        return len(self.neighbors(cluster))

    def max_degree(self) -> int:
        return max(len(adj) for adj in self._adjacency)

    def diameter(self) -> int:
        """Exact hop diameter of ``G`` (also the diameter of ``G``)."""
        return g.hop_diameter(self._adjacency)

    def is_connected(self) -> bool:
        return g.is_connected(self._adjacency)

    # -- augmentation ---------------------------------------------------

    def augment(self, cluster_size: int) -> "AugmentedGraph":
        """Build the node-level graph with ``cluster_size`` nodes per
        cluster (cliques inside, complete bipartite across ``E``)."""
        return AugmentedGraph(self, cluster_size)

    def __repr__(self) -> str:
        return (f"ClusterGraph({self.name}, n={self.num_clusters}, "
                f"m={self.num_edges})")


class AugmentedGraph:
    """The node-level graph ``G`` produced from a :class:`ClusterGraph`.

    Node ids are dense integers; cluster ``c`` owns the contiguous block
    ``[c * k, (c+1) * k)``.  Besides plain adjacency, the object exposes
    the grouped views algorithm code needs:

    * :meth:`cluster_neighbors` — same-cluster peers of a node;
    * :meth:`inter_neighbors` — a node's neighbors grouped by adjacent
      cluster (for per-cluster passive estimators).
    """

    def __init__(self, cluster_graph: ClusterGraph,
                 cluster_size: int) -> None:
        if cluster_size < 1:
            raise TopologyError(
                f"cluster_size must be >= 1: {cluster_size!r}")
        self._cluster_graph = cluster_graph
        self._k = cluster_size
        n_clusters = cluster_graph.num_clusters
        self._members: list[tuple[int, ...]] = [
            tuple(range(c * cluster_size, (c + 1) * cluster_size))
            for c in range(n_clusters)
        ]
        self._cluster_of: list[int] = [
            c for c in range(n_clusters) for _ in range(cluster_size)
        ]

    # -- identity -------------------------------------------------------

    @property
    def cluster_graph(self) -> ClusterGraph:
        return self._cluster_graph

    @property
    def cluster_size(self) -> int:
        return self._k

    @property
    def num_nodes(self) -> int:
        return self._cluster_graph.num_clusters * self._k

    def members(self, cluster: int) -> tuple[int, ...]:
        """Node ids belonging to ``cluster``."""
        try:
            return self._members[cluster]
        except IndexError:
            raise TopologyError(f"unknown cluster: {cluster!r}") from None

    def cluster_of(self, node: int) -> int:
        """Cluster id owning ``node``."""
        try:
            return self._cluster_of[node]
        except IndexError:
            raise TopologyError(f"unknown node: {node!r}") from None

    # -- adjacency -------------------------------------------------------

    def cluster_neighbors(self, node: int) -> tuple[int, ...]:
        """Same-cluster peers of ``node`` (clique edges), excluding it."""
        cluster = self.cluster_of(node)
        return tuple(m for m in self._members[cluster] if m != node)

    def adjacent_clusters(self, cluster: int) -> tuple[int, ...]:
        """Clusters adjacent to ``cluster`` in ``G``."""
        return self._cluster_graph.neighbors(cluster)

    def inter_neighbors(self, node: int) -> dict[int, tuple[int, ...]]:
        """Neighbors of ``node`` in other clusters, grouped by cluster."""
        cluster = self.cluster_of(node)
        return {b: self._members[b]
                for b in self._cluster_graph.neighbors(cluster)}

    def neighbors(self, node: int) -> tuple[int, ...]:
        """All neighbors: same-cluster peers, then intercluster nodes."""
        result = list(self.cluster_neighbors(node))
        for neighbors in self.inter_neighbors(node).values():
            result.extend(neighbors)
        return tuple(result)

    def node_edges(self) -> list[tuple[int, int]]:
        """All undirected node-level edges (cluster + intercluster)."""
        edges: list[tuple[int, int]] = []
        k = self._k
        for members in self._members:
            for i, a in enumerate(members):
                for b in members[i + 1:]:
                    edges.append((a, b))
        for ca, cb in self._cluster_graph.edges:
            for a in self._members[ca]:
                for b in self._members[cb]:
                    edges.append((min(a, b), max(a, b)))
        return edges

    # -- counts (Theorem 1.1 overhead accounting) -------------------------

    @property
    def num_cluster_edges(self) -> int:
        """Total clique edges: ``|C| * k*(k-1)/2``."""
        return (self._cluster_graph.num_clusters
                * self._k * (self._k - 1) // 2)

    @property
    def num_intercluster_edges(self) -> int:
        """Total bipartite edges: ``|E| * k^2``."""
        return self._cluster_graph.num_edges * self._k * self._k

    @property
    def num_edges(self) -> int:
        return self.num_cluster_edges + self.num_intercluster_edges

    def __repr__(self) -> str:
        return (f"AugmentedGraph({self._cluster_graph.name}, "
                f"k={self._k}, nodes={self.num_nodes}, "
                f"edges={self.num_edges})")
