"""Topologies: the cluster graph ``G``, its augmentation ``G``, and
time-varying edge schedules for dynamic networks."""

from repro.topology.cluster_graph import AugmentedGraph, ClusterGraph
from repro.topology.schedule import (
    SCHEDULES,
    AdversarialSweepSchedule,
    EdgeChurnSchedule,
    RewireSchedule,
    TIntervalSchedule,
    TopologySchedule,
    build_schedule,
    register_schedule,
)
from repro.topology.graphs import (
    adjacency_from_edges,
    balanced_tree_edges,
    bfs_distances,
    complete_edges,
    grid_edges,
    hop_diameter,
    hypercube_edges,
    is_connected,
    line_edges,
    normalize_edges,
    random_connected_edges,
    ring_edges,
    star_edges,
    torus_edges,
)

__all__ = [
    "AugmentedGraph",
    "ClusterGraph",
    "SCHEDULES",
    "AdversarialSweepSchedule",
    "EdgeChurnSchedule",
    "RewireSchedule",
    "TIntervalSchedule",
    "TopologySchedule",
    "build_schedule",
    "register_schedule",
    "adjacency_from_edges",
    "balanced_tree_edges",
    "bfs_distances",
    "complete_edges",
    "grid_edges",
    "hop_diameter",
    "hypercube_edges",
    "is_connected",
    "line_edges",
    "normalize_edges",
    "random_connected_edges",
    "ring_edges",
    "star_edges",
    "torus_edges",
]
